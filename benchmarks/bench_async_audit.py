"""E9 — the concurrent enforcement pipeline vs sequential incremental audits.

The pipeline's throughput claim: draining the commit log as *batched,
coalesced, per-rule audit tasks* beats auditing each commit as it arrives.
The workload is a star schema under 8 rules — five join-shaped checks
(three referential targets, two exclusion lists) and three domain checks —
with ``COMMITS`` transactions of ``DELTA_SIZE`` new fact tuples each
committed against a 100k steady state.  The committed stream is audited
two ways:

* **sequential** — one ``violated_constraints_incremental`` call per
  commit, in commit order: the PR 3 enforcement loop.  Every join-shaped
  rule re-builds its target-relation hash table on every commit (the delta
  plans touch O(|Δ|) *delta* state, but the probe targets are full
  relations);
* **pipeline** — an :class:`~repro.core.scheduler.AuditScheduler` drains
  all commits from the commit log in one batch, coalesces their deltas
  into a single net differential, and executes the 8 per-rule audit tasks
  (inline or on the worker pool, per the cost model's call) — each target
  hash table is built once per drain instead of once per commit.

Audit *throughput* is commits audited per second; the gate is the >= 4x
floor from the pipeline issue.  Verdicts must agree (everything clean).
The measured numbers are additionally emitted as
``benchmarks/bench_async_audit.json`` for the CI build artifact.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from benchmarks import report
from repro.core.scheduler import AuditScheduler
from repro.core.subsystem import IntegrityController
from repro.engine import (
    Database,
    DatabaseSchema,
    INT,
    RelationSchema,
    STRING,
    Session,
)

EXPERIMENT = "E9 / async audit fan-out"
ORDERS = 100_000
CUSTOMERS = 10_000
PRODUCTS = 10_000
REGIONS = 1000
EXCLUDED = 5000
DELTA_SIZE = 100
COMMITS = 32
ROUNDS = 5
SPEEDUP_FLOOR = 4.0
JSON_PATH = Path(__file__).resolve().parent / "bench_async_audit.json"

# Eight aborting rules over the fact table, all triggered by INS(orders),
# all with differential programs.
RULES = {
    "orders_customer": "(forall x)(x in orders => "
    "(exists y)(y in customers and x.customer = y.cid))",
    "orders_product": "(forall x)(x in orders => "
    "(exists y)(y in products and x.product = y.pid))",
    "orders_region": "(forall x)(x in orders => "
    "(exists y)(y in regions and x.region = y.rid))",
    "orders_not_banned": "(forall x in orders)(forall y in banned)"
    "(x.customer != y.cid)",
    "orders_not_discontinued": "(forall x in orders)(forall y in "
    "discontinued)(x.product != y.pid)",
    "orders_amount": "(forall x)(x in orders => x.amount >= 0)",
    "orders_id": "(forall x)(x in orders => x.id >= 0)",
    "orders_region_domain": "(forall x)(x in orders => x.region >= 0)",
}


def star_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema(
                "orders",
                [
                    ("id", INT),
                    ("customer", INT),
                    ("product", INT),
                    ("region", INT),
                    ("amount", INT),
                ],
            ),
            RelationSchema("customers", [("cid", INT), ("name", STRING)]),
            RelationSchema("products", [("pid", INT), ("label", STRING)]),
            RelationSchema("regions", [("rid", INT), ("zone", STRING)]),
            RelationSchema("banned", [("cid", INT)]),
            RelationSchema("discontinued", [("pid", INT)]),
        ]
    )


def star_database(seed: int = 1993) -> Database:
    rng = random.Random(seed)
    db = Database(star_schema())
    db.load("customers", [(c, f"customer_{c}") for c in range(CUSTOMERS)])
    db.load("products", [(p, f"product_{p}") for p in range(PRODUCTS)])
    db.load("regions", [(r, f"zone_{r}") for r in range(REGIONS)])
    # Excluded keys never referenced by any order: the exclusion rules
    # stay satisfied while their hash builds cost real work.
    db.load("banned", [(1_000_000 + i,) for i in range(EXCLUDED)])
    db.load("discontinued", [(1_000_000 + i,) for i in range(EXCLUDED)])
    db.load("orders", [_order(i, rng) for i in range(ORDERS)])
    return db


def _order(order_id: int, rng: random.Random) -> tuple:
    return (
        order_id,
        rng.randrange(CUSTOMERS),
        rng.randrange(PRODUCTS),
        rng.randrange(REGIONS),
        rng.randint(0, 10000),
    )


def _controller() -> IntegrityController:
    controller = IntegrityController(star_schema())
    for name, condition in RULES.items():
        controller.add_constraint(name, condition)
    return controller


def _commit_stream(db, start_id: int, seed: int):
    """Commit COMMITS transactions of DELTA_SIZE order inserts each."""
    rng = random.Random(seed)
    session = Session(db)
    results = []
    for index in range(COMMITS):
        rows = [
            _order(start_id + index * DELTA_SIZE + offset, rng)
            for offset in range(DELTA_SIZE)
        ]
        statements = "\n".join(
            f"    insert(orders, ({o}, {c}, {p}, {r}, {a}));"
            for o, c, p, r, a in rows
        )
        result = session.execute(f"begin\n{statements}\nend")
        assert result.committed
        results.append(result)
    return results


@pytest.mark.benchmark(group="async-audit")
def test_async_audit_throughput(benchmark):
    report.experiment(
        EXPERIMENT,
        f"{len(RULES)} rules x {COMMITS} commits of {DELTA_SIZE} tuples "
        f"against a {ORDERS:,}-row steady state: per-commit incremental "
        f"audits vs one coalesced scheduler drain",
        ["variant", "per stream (ms)", "commits/s", "speedup"],
    )

    def run():
        db = star_database()
        controller = _controller()
        sequential_times = []
        pipeline_times = []
        fanned_out = ran_inline = 0
        for round_index in range(ROUNDS):
            start_sequence = db.commit_log.next_sequence
            results = _commit_stream(
                db,
                ORDERS + round_index * COMMITS * DELTA_SIZE,
                seed=29 + round_index,
            )
            started = time.perf_counter()
            for result in results:
                violated = controller.violated_constraints_incremental(
                    db, result
                )
                assert violated == []
            sequential_times.append(time.perf_counter() - started)

            scheduler = AuditScheduler(
                controller, db, workers=8, start_sequence=start_sequence
            )
            started = time.perf_counter()
            scheduler.drain(asynchronous=True, coalesce=True)
            outcomes = scheduler.wait()
            pipeline_times.append(time.perf_counter() - started)
            scheduler.close()
            assert all(not o.failed and not o.violated for o in outcomes)
            assert {o.rule for o in outcomes} == set(RULES)
            fanned_out += scheduler.fanned_out
            ran_inline += scheduler.ran_inline
        return {
            "sequential_seconds": min(sequential_times),
            "pipeline_seconds": min(pipeline_times),
            "fanned_out": fanned_out,
            "ran_inline": ran_inline,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sequential = results["sequential_seconds"]
    pipeline = results["pipeline_seconds"]
    speedup = sequential / pipeline
    report.record(
        EXPERIMENT,
        "sequential per-commit",
        f"{sequential * 1000:.2f}",
        f"{COMMITS / sequential:,.0f}",
        "1.0x",
    )
    report.record(
        EXPERIMENT,
        "pipeline drain",
        f"{pipeline * 1000:.2f}",
        f"{COMMITS / pipeline:,.0f}",
        f"{speedup:.1f}x",
    )
    report.note(
        EXPERIMENT,
        "the drain coalesces the commit stream into one net delta and "
        "audits it once per rule (inline or fanned out per the cost "
        "model), so each referential target's hash table is built once "
        "per drain instead of once per commit",
    )
    payload = {
        "experiment": EXPERIMENT,
        "orders": ORDERS,
        "delta_size": DELTA_SIZE,
        "commits": COMMITS,
        "rules": len(RULES),
        "speedup_floor": SPEEDUP_FLOOR,
        "sequential_seconds": sequential,
        "pipeline_seconds": pipeline,
        "sequential_commits_per_second": COMMITS / sequential,
        "pipeline_commits_per_second": COMMITS / pipeline,
        "speedup": speedup,
        "fanned_out": results["fanned_out"],
        "ran_inline": results["ran_inline"],
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    assert speedup >= SPEEDUP_FLOOR, (
        f"pipeline audit throughput {speedup:.1f}x below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
