"""E9 — the concurrent enforcement pipeline vs sequential incremental audits.

The pipeline's throughput claim: draining the commit log as *batched,
coalesced, per-rule audit tasks* beats auditing each commit as it arrives.
The workload is a star schema under 8 rules — five join-shaped checks
(three referential targets, two exclusion lists) and three domain checks —
with ``COMMITS`` transactions of ``DELTA_SIZE`` new fact tuples each
committed against a 100k steady state.  The committed stream is audited
two ways:

* **sequential** — one ``violated_constraints_incremental`` call per
  commit, in commit order: the PR 3 enforcement loop.  Every join-shaped
  rule re-builds its target-relation hash table on every commit (the delta
  plans touch O(|Δ|) *delta* state, but the probe targets are full
  relations);
* **pipeline** — an :class:`~repro.core.scheduler.AuditScheduler` drains
  all commits from the commit log in one batch, coalesces their deltas
  into a single net differential, and executes the 8 per-rule audit tasks
  (inline or on the worker pool, per the cost model's call) — each target
  hash table is built once per drain instead of once per commit.

Audit *throughput* is commits audited per second; the gate is the >= 4x
floor from the pipeline issue.  Verdicts must agree (everything clean).
The measured numbers are additionally emitted as
``benchmarks/bench_async_audit.json`` for the CI build artifact.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from benchmarks import report
from repro.core.scheduler import AuditScheduler
from repro.core.subsystem import IntegrityController
from repro.engine import (
    Database,
    DatabaseSchema,
    INT,
    RelationSchema,
    STRING,
    Session,
)

EXPERIMENT = "E9 / async audit fan-out"
ORDERS = 100_000
CUSTOMERS = 10_000
PRODUCTS = 10_000
REGIONS = 1000
EXCLUDED = 5000
DELTA_SIZE = 100
COMMITS = 32
ROUNDS = 5
SPEEDUP_FLOOR = 4.0
#: Process executor must beat the thread pool by this much on the
#: CPU-bound rule mix — but only where a second core exists to win.
PROCESS_SPEEDUP_FLOOR = 1.5
LADDER_ROUNDS = 3
JSON_PATH = Path(__file__).resolve().parent / "bench_async_audit.json"

# Eight aborting rules over the fact table, all triggered by INS(orders),
# all with differential programs.
RULES = {
    "orders_customer": "(forall x)(x in orders => "
    "(exists y)(y in customers and x.customer = y.cid))",
    "orders_product": "(forall x)(x in orders => "
    "(exists y)(y in products and x.product = y.pid))",
    "orders_region": "(forall x)(x in orders => "
    "(exists y)(y in regions and x.region = y.rid))",
    "orders_not_banned": "(forall x in orders)(forall y in banned)"
    "(x.customer != y.cid)",
    "orders_not_discontinued": "(forall x in orders)(forall y in "
    "discontinued)(x.product != y.pid)",
    "orders_amount": "(forall x)(x in orders => x.amount >= 0)",
    "orders_id": "(forall x)(x in orders => x.id >= 0)",
    "orders_region_domain": "(forall x)(x in orders => x.region >= 0)",
}


def star_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema(
                "orders",
                [
                    ("id", INT),
                    ("customer", INT),
                    ("product", INT),
                    ("region", INT),
                    ("amount", INT),
                ],
            ),
            RelationSchema("customers", [("cid", INT), ("name", STRING)]),
            RelationSchema("products", [("pid", INT), ("label", STRING)]),
            RelationSchema("regions", [("rid", INT), ("zone", STRING)]),
            RelationSchema("banned", [("cid", INT)]),
            RelationSchema("discontinued", [("pid", INT)]),
        ]
    )


def star_database(
    seed: int = 1993, customers: int = CUSTOMERS, products: int = PRODUCTS
) -> Database:
    rng = random.Random(seed)
    db = Database(star_schema())
    db.load("customers", [(c, f"customer_{c}") for c in range(customers)])
    db.load("products", [(p, f"product_{p}") for p in range(products)])
    db.load("regions", [(r, f"zone_{r}") for r in range(REGIONS)])
    # Excluded keys never referenced by any order: the exclusion rules
    # stay satisfied while their hash builds cost real work.
    db.load("banned", [(1_000_000 + i,) for i in range(EXCLUDED)])
    db.load("discontinued", [(1_000_000 + i,) for i in range(EXCLUDED)])
    db.load("orders", [_order(i, rng) for i in range(ORDERS)])
    return db


def _order(order_id: int, rng: random.Random) -> tuple:
    return (
        order_id,
        rng.randrange(CUSTOMERS),
        rng.randrange(PRODUCTS),
        rng.randrange(REGIONS),
        rng.randint(0, 10000),
    )


def _controller() -> IntegrityController:
    controller = IntegrityController(star_schema())
    for name, condition in RULES.items():
        controller.add_constraint(name, condition)
    return controller


def _commit_stream(db, start_id: int, seed: int):
    """Commit COMMITS transactions of DELTA_SIZE order inserts each."""
    rng = random.Random(seed)
    session = Session(db)
    results = []
    for index in range(COMMITS):
        rows = [
            _order(start_id + index * DELTA_SIZE + offset, rng)
            for offset in range(DELTA_SIZE)
        ]
        statements = "\n".join(
            f"    insert(orders, ({o}, {c}, {p}, {r}, {a}));"
            for o, c, p, r, a in rows
        )
        result = session.execute(f"begin\n{statements}\nend")
        assert result.committed
        results.append(result)
    return results


@pytest.mark.benchmark(group="async-audit")
def test_async_audit_throughput(benchmark):
    report.experiment(
        EXPERIMENT,
        f"{len(RULES)} rules x {COMMITS} commits of {DELTA_SIZE} tuples "
        f"against a {ORDERS:,}-row steady state: per-commit incremental "
        f"audits vs one coalesced scheduler drain",
        ["variant", "per stream (ms)", "commits/s", "speedup"],
    )

    def run():
        db = star_database()
        controller = _controller()
        sequential_times = []
        pipeline_times = []
        fanned_out = ran_inline = 0
        for round_index in range(ROUNDS):
            start_sequence = db.commit_log.next_sequence
            results = _commit_stream(
                db,
                ORDERS + round_index * COMMITS * DELTA_SIZE,
                seed=29 + round_index,
            )
            started = time.perf_counter()
            for result in results:
                violated = controller.violated_constraints_incremental(
                    db, result
                )
                assert violated == []
            sequential_times.append(time.perf_counter() - started)

            scheduler = AuditScheduler(
                controller, db, workers=8, start_sequence=start_sequence
            )
            started = time.perf_counter()
            scheduler.drain(asynchronous=True, coalesce=True)
            outcomes = scheduler.wait()
            pipeline_times.append(time.perf_counter() - started)
            scheduler.close()
            assert all(not o.failed and not o.violated for o in outcomes)
            assert {o.rule for o in outcomes} == set(RULES)
            fanned_out += scheduler.fanned_out
            ran_inline += scheduler.ran_inline
        return {
            "sequential_seconds": min(sequential_times),
            "pipeline_seconds": min(pipeline_times),
            "fanned_out": fanned_out,
            "ran_inline": ran_inline,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sequential = results["sequential_seconds"]
    pipeline = results["pipeline_seconds"]
    speedup = sequential / pipeline
    report.record(
        EXPERIMENT,
        "sequential per-commit",
        f"{sequential * 1000:.2f}",
        f"{COMMITS / sequential:,.0f}",
        "1.0x",
    )
    report.record(
        EXPERIMENT,
        "pipeline drain",
        f"{pipeline * 1000:.2f}",
        f"{COMMITS / pipeline:,.0f}",
        f"{speedup:.1f}x",
    )
    report.note(
        EXPERIMENT,
        "the drain coalesces the commit stream into one net delta and "
        "audits it once per rule (inline or fanned out per the cost "
        "model), so each referential target's hash table is built once "
        "per drain instead of once per commit",
    )
    payload = {
        "experiment": EXPERIMENT,
        "orders": ORDERS,
        "delta_size": DELTA_SIZE,
        "commits": COMMITS,
        "rules": len(RULES),
        "speedup_floor": SPEEDUP_FLOOR,
        "sequential_seconds": sequential,
        "pipeline_seconds": pipeline,
        "sequential_commits_per_second": COMMITS / sequential,
        "pipeline_commits_per_second": COMMITS / pipeline,
        "speedup": speedup,
        "fanned_out": results["fanned_out"],
        "ran_inline": results["ran_inline"],
    }
    _merge_json(payload)
    assert speedup >= SPEEDUP_FLOOR, (
        f"pipeline audit throughput {speedup:.1f}x below the "
        f"{SPEEDUP_FLOOR}x floor"
    )


#: E9b sizing: the referential targets are scaled up so one rule audit is
#: tens of milliseconds of pure-Python hash building — CPU-bound work that
#: dwarfs the per-task pickle cost and that the GIL serializes on threads.
LADDER_CUSTOMERS = 150_000
LADDER_PRODUCTS = 150_000

# Eight near-uniform referential audits (four per target): every task
# rebuilds a 150k-key hash table, so round-robin placement over the
# process workers stays balanced.
LADDER_RULES = {
    f"orders_{target}_{index}": (
        f"(forall x)(x in orders => (exists y)(y in {target}s "
        f"and x.{target} = y.{key} and y.{key} >= {-index}))"
    )
    for target, key in (("customer", "cid"), ("product", "pid"))
    for index in range(4)
}


@pytest.mark.benchmark(group="async-audit")
def test_executor_ladder_multicore_speedup(benchmark):
    """E9b — inline vs thread vs process on the same CPU-bound rule mix.

    The same coalesced drain (8 per-rule tasks, dispatch_overhead=0 so
    every task fans out) is executed per executor.  The rule audits are
    pure-Python hash builds and probes, so the thread pool serializes on
    the GIL and cannot beat inline by more than its overlap slack; the
    process pool owns one database replica per worker — the 150k-row
    probe targets are already resident, only ``(rule, Δ)`` crosses the
    pipe — and audits on all cores.  Pool setup (replica shipment,
    per-worker plan rebuild) happens in ``scheduler.start()`` outside the
    timed region; commit-record replication to the replicas stays inside
    it (it is the process arm's real steady-state cost).  The >= {floor}x
    process-vs-thread gate applies wherever a second core exists (always
    in CI).
    """.format(floor=PROCESS_SPEEDUP_FLOOR)
    report.experiment(
        "E9b / executor ladder",
        f"{len(LADDER_RULES)} fanned-out {LADDER_CUSTOMERS // 1000}k-target "
        f"rule audits over a coalesced {COMMITS}x{DELTA_SIZE}-tuple delta, "
        f"per executor",
        ["executor", "drain (ms)", "vs thread"],
    )

    def run():
        db = star_database(
            customers=LADDER_CUSTOMERS, products=LADDER_PRODUCTS
        )
        controller = IntegrityController(star_schema())
        for name, condition in LADDER_RULES.items():
            controller.add_constraint(name, condition)
        workers = max(2, min(8, os.cpu_count() or 1))
        seconds = {}
        verdicts = {}
        next_id = ORDERS
        for executor in ("inline", "thread", "process"):
            scheduler = AuditScheduler(
                controller,
                db,
                workers=workers,
                dispatch_overhead=0.0,
                start_sequence=db.commit_log.next_sequence,
                executor=executor,
            )
            scheduler.start()  # pool creation outside the timed region
            best = float("inf")
            for round_index in range(LADDER_ROUNDS):
                _commit_stream(db, next_id, seed=71 + round_index)
                next_id += COMMITS * DELTA_SIZE
                started = time.perf_counter()
                scheduler.drain(asynchronous=True, coalesce=True)
                outcomes = scheduler.wait()
                best = min(best, time.perf_counter() - started)
                assert not any(o.failed for o in outcomes)
                verdicts[executor] = sorted(
                    (o.rule, o.violated, tuple(sorted(map(repr, o.violations))))
                    for o in outcomes
                )
            scheduler.close()
            seconds[executor] = best
        # Verdict parity across the ladder (clean data: every rule holds
        # on every stream, on every executor).
        assert verdicts["inline"] == verdicts["thread"] == verdicts["process"]
        return {"seconds": seconds, "workers": workers}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds = results["seconds"]
    process_vs_thread = seconds["thread"] / seconds["process"]
    for executor in ("inline", "thread", "process"):
        report.record(
            "E9b / executor ladder",
            executor,
            f"{seconds[executor] * 1000:.2f}",
            f"{seconds['thread'] / seconds[executor]:.2f}x",
        )
    cores = os.cpu_count() or 1
    report.note(
        "E9b / executor ladder",
        f"{cores} core(s), {results['workers']} workers; process-vs-thread "
        f"{process_vs_thread:.2f}x (gate {PROCESS_SPEEDUP_FLOOR}x needs "
        f">= 2 cores)",
    )
    _merge_json(
        {
            "executor_ladder": {
                "cpu_count": cores,
                "workers": results["workers"],
                "seconds": seconds,
                "process_vs_thread": process_vs_thread,
                "process_speedup_floor": PROCESS_SPEEDUP_FLOOR,
                "gated": cores >= 2,
            }
        }
    )
    if cores >= 2:
        assert process_vs_thread >= PROCESS_SPEEDUP_FLOOR, (
            f"process executor only {process_vs_thread:.2f}x over the "
            f"thread pool on {cores} cores; floor is "
            f"{PROCESS_SPEEDUP_FLOOR}x"
        )


def _merge_json(payload: dict) -> None:
    """Update bench_async_audit.json in place (both tests feed one file)."""
    existing = {}
    if JSON_PATH.exists():
        try:
            existing = json.loads(JSON_PATH.read_text())
        except ValueError:
            existing = {}
    existing.update(payload)
    JSON_PATH.write_text(json.dumps(existing, indent=2) + "\n")
