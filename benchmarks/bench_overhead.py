"""E9 (supplementary) — total integrity-control overhead.

The paper's closing claim: "constraint enforcement costs do not have to be
an obstacle for integrity control in practice."  This bench quantifies the
claim on the sequential engine: total transaction cost with and without
the integrity controller attached, for growing transaction sizes, under
differential enforcement.

Expected shape: overhead is a bounded factor (the appended checks are
linear in the batch the transaction touched, not in the database), and the
*relative* overhead shrinks as the transaction itself grows.
"""

from __future__ import annotations

import time

import pytest

from benchmarks import report
from repro.core.subsystem import IntegrityController
from repro.engine import Session
from repro.workloads.section7 import (
    SECTION7_DOMAIN,
    SECTION7_REFERENTIAL,
    section7_database,
    section7_insert_batch,
    section7_transaction_text,
)

EXPERIMENT = "E9 / enforcement overhead"
BATCH_SIZES = (10, 100, 1000)


def run(batch_size: int, with_controller: bool) -> float:
    db = section7_database(pk_size=1000, fk_size=10_000)
    controller = None
    if with_controller:
        controller = IntegrityController(db.schema, differential=True)
        controller.add_rule(SECTION7_REFERENTIAL)
        controller.add_rule(SECTION7_DOMAIN)
    session = Session(db, controller)
    batch = section7_insert_batch(
        batch_size=batch_size, pk_size=1000, start_id=50_000
    )
    transaction = session.transaction(section7_transaction_text(batch))
    snapshot = db.snapshot()
    repeats = 5
    started = time.perf_counter()
    for _ in range(repeats):
        db.restore(snapshot)
        result = session.execute(transaction)
        assert result.committed
    return (time.perf_counter() - started) / repeats


@pytest.mark.benchmark(group="overhead")
def test_enforcement_overhead_sweep(benchmark):
    report.experiment(
        EXPERIMENT,
        "Insert transactions with vs without the integrity controller "
        "(differential mode, referential + domain rules)",
        ["batch size", "no control (ms)", "with control (ms)", "overhead"],
    )

    def sweep():
        rows = []
        for batch_size in BATCH_SIZES:
            bare = run(batch_size, with_controller=False)
            controlled = run(batch_size, with_controller=True)
            rows.append((batch_size, bare, controlled))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for batch_size, bare, controlled in rows:
        report.record(
            EXPERIMENT,
            batch_size,
            f"{bare * 1000:.2f}",
            f"{controlled * 1000:.2f}",
            f"+{(controlled / bare - 1) * 100:.0f}%",
        )
    report.note(
        EXPERIMENT,
        "paper's closing claim: enforcement cost is not an obstacle — the "
        "relative overhead shrinks as transactions grow",
    )
    small = rows[0][2] / rows[0][1]
    large = rows[-1][2] / rows[-1][1]
    assert large < small * 1.5  # relative overhead must not explode
