"""E4 — parallel scaling and enforcement strategies (Section 7 / [7]).

The paper's evaluation ran on an 8-node POOMA with fragmented relations.
This bench sweeps the node count (1, 2, 4, 8) and the enforcement strategy
(local on co-fragmented relations, broadcast, repartition), reporting
simulated times from the calibrated cost model over actually-executed
fragmented checks.  All checks — full-relation and differential alike —
run through the *same* plan-backed pipeline
(:meth:`~repro.parallel.enforcement.ParallelEnforcer.enforce_expression`),
so the simulated PRISMA numbers and the real enforcement-pipeline numbers
come from one code path.

Expected shapes: near-linear speedup for LOCAL; BROADCAST pays for shipping
the key relation to every node; REPARTITION sits between (it ships each
tuple at most once).  The differential experiment (E4c) reproduces the
Section 7 measured configuration — check only the 5000 inserted tuples —
with the movement chosen per *delta*: a co-fragmented per-node write log
ships nothing, a coordinator-held commit-log delta ships |Δ| once.
"""

from __future__ import annotations

import pytest

from benchmarks import report
from repro.core.optimization import differential_programs
from repro.core.rules import IntegrityRule
from repro.core.translation import trans_r
from repro.core.triggers import INS
from repro.calculus.parser import parse_constraint
from repro.engine.relation import Relation
from repro.parallel import (
    FragmentedDatabase,
    FragmentedRelation,
    HashFragmentation,
    ParallelEnforcer,
    RoundRobinFragmentation,
    Strategy,
)
from repro.parallel.bridge import ParallelRuleEnforcer
from repro.workloads.section7 import (
    section7_database,
    section7_insert_batch,
    section7_schema,
)

NODE_COUNTS = (1, 2, 4, 8)
SCALING = "E4a / node scaling"
STRATEGIES = "E4b / strategies"
DIFFERENTIAL = "E4c / differential fan-out"


def co_fragmented(db, nodes):
    return FragmentedDatabase.from_database(
        db,
        {
            "pk": HashFragmentation("key", nodes),
            "fk": HashFragmentation("ref", nodes),
        },
        nodes=nodes,
    )


def attribute_blind(db, nodes):
    return FragmentedDatabase.from_database(
        db,
        {
            "pk": HashFragmentation("key", nodes),
            "fk": RoundRobinFragmentation(nodes),
        },
        nodes=nodes,
    )


@pytest.mark.benchmark(group="parallel")
def test_node_scaling_local_strategy(benchmark, section7_full):
    db = section7_full
    report.experiment(
        SCALING,
        "Full referential check (50k FK vs 5k keys), LOCAL strategy, "
        "simulated times",
        ["nodes", "simulated (s)", "speedup", "efficiency"],
    )

    def sweep():
        results = {}
        for nodes in NODE_COUNTS:
            enforcer = ParallelEnforcer(co_fragmented(db, nodes))
            results[nodes] = enforcer.referential_check(
                "fk", "ref", "pk", "key", Strategy.LOCAL
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = results[1].simulated_seconds
    for nodes in NODE_COUNTS:
        simulated = results[nodes].simulated_seconds
        speedup = base / simulated
        report.record(
            SCALING,
            nodes,
            f"{simulated:.2f}",
            f"{speedup:.2f}x",
            f"{speedup / nodes * 100:.0f}%",
        )
    report.note(
        SCALING,
        "paper shape: near-linear scale-out for local enforcement on "
        "co-fragmented relations",
    )
    assert results[8].simulated_seconds < results[1].simulated_seconds / 4


@pytest.mark.benchmark(group="parallel")
def test_strategy_comparison(benchmark, section7_full):
    db = section7_full
    report.experiment(
        STRATEGIES,
        "Referential check strategies on 8 nodes (Grefen & Apers [7])",
        ["fragmentation", "strategy", "simulated (s)", "tuples shipped"],
    )

    def run_all():
        rows = []
        local = ParallelEnforcer(co_fragmented(db, 8)).referential_check(
            "fk", "ref", "pk", "key", Strategy.LOCAL
        )
        rows.append(("co-fragmented on key", local))
        blind = attribute_blind(db, 8)
        broadcast = ParallelEnforcer(blind).referential_check(
            "fk", "ref", "pk", "key", Strategy.BROADCAST
        )
        rows.append(("round-robin FK", broadcast))
        blind2 = attribute_blind(db, 8)
        repartition = ParallelEnforcer(blind2).referential_check(
            "fk", "ref", "pk", "key", Strategy.REPARTITION
        )
        rows.append(("round-robin FK", repartition))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for fragmentation, result in rows:
        report.record(
            STRATEGIES,
            fragmentation,
            result.strategy.value,
            f"{result.simulated_seconds:.2f}",
            result.tuples_shipped,
        )
    report.note(
        STRATEGIES,
        "paper shape: local enforcement avoids all data movement; "
        "redistribution strategies pay shipping costs",
    )
    local, broadcast, repartition = (result for _, result in rows)
    assert local.simulated_seconds <= repartition.simulated_seconds
    assert local.tuples_shipped == 0


@pytest.mark.benchmark(group="parallel")
def test_differential_fanout(benchmark, section7_full):
    """Section 7's measured configuration through the delta pipeline:
    referential-check only the 5000 inserted FK tuples, on 8 nodes, with
    the movement strategy chosen per delta."""
    db = section7_full
    report.experiment(
        DIFFERENTIAL,
        "5000-tuple fk@plus delta vs 5k keys on 8 nodes: per-delta "
        "movement through the plan-backed differential pipeline",
        ["delta binding", "placement", "simulated (s)", "tuples shipped"],
    )
    rule = IntegrityRule(
        parse_constraint("(forall x in fk)(exists y in pk)(x.ref = y.key)"),
        name="fk_ref",
    )
    program = trans_r(rule, section7_schema())
    plus_program = differential_programs(rule, program)[(INS, "fk")]
    batch = section7_insert_batch()

    def run_all():
        rows = []
        # (a) the delta already lives fragmented at the nodes, co-hashed
        # with pk on the join key (per-node write logs): LOCAL, no traffic.
        fragmented = co_fragmented(db, 8)
        local_delta = FragmentedRelation(
            section7_schema().relation("fk"), HashFragmentation("ref", 8)
        )
        local_delta.load(batch)
        enforcer = ParallelRuleEnforcer(fragmented)
        enforcer.bind_auxiliary("fk@plus", local_delta)
        [local] = enforcer.enforce_program(plus_program)
        rows.append(("co-fragmented write log", local))
        # (b) a coordinator-held commit-log delta: shipped once (hash on
        # the join attribute), AUTO picks REPARTITION for it.
        fragmented = co_fragmented(db, 8)
        plain_delta = Relation(section7_schema().relation("fk"), batch)
        enforcer = ParallelRuleEnforcer(fragmented)
        enforcer.bind_auxiliary("fk@plus", plain_delta)
        [shipped] = enforcer.enforce_program(plus_program)
        rows.append(("commit-log delta", shipped))
        # (c) the full-relation check, for scale: all 50k referers.
        full = ParallelEnforcer(co_fragmented(db, 8)).referential_check(
            "fk", "ref", "pk", "key", Strategy.LOCAL
        )
        rows.append(("(full check)", full))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for binding, result in rows:
        report.record(
            DIFFERENTIAL,
            binding,
            result.placements.get("fk@plus", result.strategy).value
            if binding != "(full check)"
            else "-",
            f"{result.simulated_seconds:.2f}",
            result.tuples_shipped,
        )
    report.note(
        DIFFERENTIAL,
        "paper shape: the differential check is 'within 3 seconds' on the "
        "1992 cost model; shipping the delta costs one pass over 5000 "
        "tuples, not over the 50k relation",
    )
    local, shipped, full = (result for _, result in rows)
    assert local.violations == shipped.violations == 0
    assert local.tuples_shipped == 0
    assert local.placements["fk@plus"] is Strategy.LOCAL
    assert shipped.placements["fk@plus"] is Strategy.REPARTITION
    assert 0 < shipped.tuples_shipped <= len(batch)
    assert local.simulated_seconds < full.simulated_seconds
    assert shipped.simulated_seconds < full.simulated_seconds
    # The paper's published bound for this configuration on 8 nodes.
    assert local.simulated_seconds < 3.0


@pytest.mark.benchmark(group="parallel")
def test_fragment_skew(benchmark, section7_full):
    """Hash fragmentation balances the Section 7 data well (skew ~ 1)."""
    db = section7_full

    def skew():
        fdb = co_fragmented(db, 8)
        return fdb.relation("fk").skew()

    result = benchmark.pedantic(skew, rounds=1, iterations=1)
    assert result < 1.1
