"""E4 — parallel scaling and enforcement strategies (Section 7 / [7]).

The paper's evaluation ran on an 8-node POOMA with fragmented relations.
This bench sweeps the node count (1, 2, 4, 8) and the enforcement strategy
(local on co-fragmented relations, broadcast, repartition), reporting
simulated times from the calibrated cost model over actually-executed
fragmented checks.

Expected shapes: near-linear speedup for LOCAL; BROADCAST pays for shipping
the key relation to every node; REPARTITION sits between (it ships each
tuple at most once).
"""

from __future__ import annotations

import pytest

from benchmarks import report
from repro.parallel import (
    FragmentedDatabase,
    HashFragmentation,
    ParallelEnforcer,
    RoundRobinFragmentation,
    Strategy,
)
from repro.workloads.section7 import section7_database

NODE_COUNTS = (1, 2, 4, 8)
SCALING = "E4a / node scaling"
STRATEGIES = "E4b / strategies"


def co_fragmented(db, nodes):
    return FragmentedDatabase.from_database(
        db,
        {
            "pk": HashFragmentation("key", nodes),
            "fk": HashFragmentation("ref", nodes),
        },
        nodes=nodes,
    )


def attribute_blind(db, nodes):
    return FragmentedDatabase.from_database(
        db,
        {
            "pk": HashFragmentation("key", nodes),
            "fk": RoundRobinFragmentation(nodes),
        },
        nodes=nodes,
    )


@pytest.mark.benchmark(group="parallel")
def test_node_scaling_local_strategy(benchmark, section7_full):
    db = section7_full
    report.experiment(
        SCALING,
        "Full referential check (50k FK vs 5k keys), LOCAL strategy, "
        "simulated times",
        ["nodes", "simulated (s)", "speedup", "efficiency"],
    )

    def sweep():
        results = {}
        for nodes in NODE_COUNTS:
            enforcer = ParallelEnforcer(co_fragmented(db, nodes))
            results[nodes] = enforcer.referential_check(
                "fk", "ref", "pk", "key", Strategy.LOCAL
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = results[1].simulated_seconds
    for nodes in NODE_COUNTS:
        simulated = results[nodes].simulated_seconds
        speedup = base / simulated
        report.record(
            SCALING,
            nodes,
            f"{simulated:.2f}",
            f"{speedup:.2f}x",
            f"{speedup / nodes * 100:.0f}%",
        )
    report.note(
        SCALING,
        "paper shape: near-linear scale-out for local enforcement on "
        "co-fragmented relations",
    )
    assert results[8].simulated_seconds < results[1].simulated_seconds / 4


@pytest.mark.benchmark(group="parallel")
def test_strategy_comparison(benchmark, section7_full):
    db = section7_full
    report.experiment(
        STRATEGIES,
        "Referential check strategies on 8 nodes (Grefen & Apers [7])",
        ["fragmentation", "strategy", "simulated (s)", "tuples shipped"],
    )

    def run_all():
        rows = []
        local = ParallelEnforcer(co_fragmented(db, 8)).referential_check(
            "fk", "ref", "pk", "key", Strategy.LOCAL
        )
        rows.append(("co-fragmented on key", local))
        blind = attribute_blind(db, 8)
        broadcast = ParallelEnforcer(blind).referential_check(
            "fk", "ref", "pk", "key", Strategy.BROADCAST
        )
        rows.append(("round-robin FK", broadcast))
        blind2 = attribute_blind(db, 8)
        repartition = ParallelEnforcer(blind2).referential_check(
            "fk", "ref", "pk", "key", Strategy.REPARTITION
        )
        rows.append(("round-robin FK", repartition))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for fragmentation, result in rows:
        report.record(
            STRATEGIES,
            fragmentation,
            result.strategy.value,
            f"{result.simulated_seconds:.2f}",
            result.tuples_shipped,
        )
    report.note(
        STRATEGIES,
        "paper shape: local enforcement avoids all data movement; "
        "redistribution strategies pay shipping costs",
    )
    local, broadcast, repartition = (result for _, result in rows)
    assert local.simulated_seconds <= repartition.simulated_seconds
    assert local.tuples_shipped == 0


@pytest.mark.benchmark(group="parallel")
def test_fragment_skew(benchmark, section7_full):
    """Hash fragmentation balances the Section 7 data well (skew ~ 1)."""
    db = section7_full

    def skew():
        fdb = co_fragmented(db, 8)
        return fdb.relation("fk").skew()

    result = benchmark.pedantic(skew, rounds=1, iterations=1)
    assert result < 1.1
