"""E11 — epoch MVCC: O(Δ) snapshots, stable readers under a live writer.

The PR 10 claim: ``Database.snapshot()`` is an epoch pin, not a relation
copy, and readers pinned to an epoch stay fast and correct while the
single writer keeps committing.  Three dimensions:

* **Snapshot cost** — eager deep copy of every relation (the pre-epoch
  ``snapshot()``) vs an epoch pin, at n=100k rows.  Gated on the pin
  being >= 10x cheaper.
* **Reader throughput under a writer** — latency of a pinned selection
  query while a writer thread commits continuously at ~1k commits/s,
  vs the same query against the quiet live state.  Gated on the pinned
  read staying within 1.2x of the unpinned baseline (reported as the
  unpinned/pinned ratio with floor 1/1.2).  The writer is paced: an
  unpaced tight loop saturates the GIL and measures scheduler fairness
  (which taxes pinned and unpinned readers alike), not MVCC overhead.
* **Epoch reclamation overhead** — commit throughput with a rolling
  pin/release cycle per commit vs bare commits; informational (the
  retained-entry bookkeeping must stay in the noise).

Numbers are emitted as ``benchmarks/bench_mvcc.json`` for the CI gate
(``python -m benchmarks.report --strict``) and build artifact.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

from benchmarks import report
from repro.engine import Database, DatabaseSchema, Relation, RelationSchema, Session
from repro.engine.types import INT

EXPERIMENT = "E11 / epoch MVCC snapshots"
N = 100_000
SNAPSHOT_ROUNDS = 200
READER_ROUNDS = 30
COMMIT_ROUNDS = 300
WINDOWS = 3  # best-of windows: one noisy stall must not fail the gate
WRITER_PACING_SECONDS = 0.001  # ~1k commits/s: hot, not GIL-saturating
SNAPSHOT_SPEEDUP_FLOOR = 10.0
READER_RATIO_FLOOR = 1 / 1.2  # pinned latency within 1.2x of unpinned
JSON_PATH = Path(__file__).resolve().parent / "bench_mvcc.json"


def _database(n: int = N) -> Database:
    schema = DatabaseSchema([RelationSchema("big", [("a", INT), ("b", INT)])])
    database = Database(schema)
    database.load("big", [(i, i % 997) for i in range(n)])
    return database


def _commit_one(database: Database, key: int) -> None:
    schema = database.relation_schema("big")
    plus = Relation(schema, [(key, key % 997)])
    database.apply_deltas({"big": (plus, None)})


def _best(callable_, rounds: int) -> float:
    """Best-of-WINDOWS mean seconds per call over ``rounds`` calls."""
    best = float("inf")
    for _ in range(WINDOWS):
        started = time.perf_counter()
        for _ in range(rounds):
            callable_()
        best = min(best, (time.perf_counter() - started) / rounds)
    return best


@pytest.mark.benchmark(group="mvcc")
def test_epoch_snapshots_and_pinned_readers(benchmark):
    report.experiment(
        EXPERIMENT,
        f"epoch pins vs eager copies over a {N:,}-row relation, and "
        "pinned selection queries while a writer thread commits",
        ["dimension", "measured", "floor"],
    )

    def run():
        database = _database()
        session = Session(database)

        # -- snapshot cost: eager copy vs epoch pin --------------------------
        def eager():
            copies = {
                name: database.relation(name).copy()
                for name in database.relation_names
            }
            assert len(copies["big"]) >= N

        def pinned():
            database.snapshot().release()

        eager_seconds = _best(eager, 3)
        pinned_seconds = _best(pinned, SNAPSHOT_ROUNDS)
        snapshot_speedup = eager_seconds / pinned_seconds

        # -- reader latency: quiet live baseline, then pinned under writer ---
        query = f"select(big, a > {N // 2})"
        live_seconds = _best(lambda: session.query(query, pinned=False), READER_ROUNDS)

        stop = threading.Event()
        committed = [0]

        def writer():
            # A hot-but-paced commit stream (~1k commits/s): continuous
            # churn for the epoch machinery without saturating the GIL.
            # An unpaced tight loop measures interpreter-level CPU
            # fairness, not MVCC overhead — it slows *any* concurrent
            # reader (pinned or not) by the same scheduler tax.
            key = 10_000_000
            while not stop.is_set():
                _commit_one(database, key)
                key += 1
                committed[0] += 1
                time.sleep(WRITER_PACING_SECONDS)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            pinned_reader_seconds = _best(
                lambda: session.query(query, pinned=True), READER_ROUNDS
            )
        finally:
            stop.set()
            thread.join()
        reader_ratio = live_seconds / pinned_reader_seconds

        # -- reclamation overhead: rolling pin/release per commit ------------
        bare = _database(1_000)
        bare_seconds = _best(lambda: _commit_one(bare, 20_000_000), COMMIT_ROUNDS)
        pinned_db = _database(1_000)

        def commit_with_pin():
            pin = pinned_db.epochs.pin()
            _commit_one(pinned_db, 30_000_000)
            pin.release()

        pin_seconds = _best(commit_with_pin, COMMIT_ROUNDS)
        return {
            "eager_seconds": eager_seconds,
            "pinned_seconds": pinned_seconds,
            "snapshot_speedup": snapshot_speedup,
            "live_seconds": live_seconds,
            "pinned_reader_seconds": pinned_reader_seconds,
            "reader_ratio": reader_ratio,
            "writer_commits": committed[0],
            "bare_commit_seconds": bare_seconds,
            "pinned_commit_seconds": pin_seconds,
            "reclaimed": pinned_db.epochs.reclaimed,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    payload = {
        "experiment": EXPERIMENT,
        "snapshot": {
            "n": N,
            "eager_seconds": results["eager_seconds"],
            "pinned_seconds": results["pinned_seconds"],
            "speedup": results["snapshot_speedup"],
        },
        "snapshot_speedup_floor": SNAPSHOT_SPEEDUP_FLOOR,
        "reader": {
            "live_seconds": results["live_seconds"],
            "pinned_seconds": results["pinned_reader_seconds"],
            "ratio": results["reader_ratio"],
            "writer_commits": results["writer_commits"],
        },
        "reader_ratio_floor": READER_RATIO_FLOOR,
        "reclamation": {
            "bare_commit_seconds": results["bare_commit_seconds"],
            "pinned_commit_seconds": results["pinned_commit_seconds"],
            "overhead": results["pinned_commit_seconds"]
            / results["bare_commit_seconds"],
            "reclaimed_entries": results["reclaimed"],
        },
    }
    report.record(
        EXPERIMENT,
        f"epoch pin vs eager copy @n={N:,}",
        f"{results['snapshot_speedup']:,.0f}x",
        f">= {SNAPSHOT_SPEEDUP_FLOOR:.0f}x",
    )
    report.record(
        EXPERIMENT,
        "pinned query under writer vs quiet live query",
        f"{results['reader_ratio']:.2f}x",
        f">= {READER_RATIO_FLOOR:.2f}x",
    )
    report.record(
        EXPERIMENT,
        "commit with rolling pin vs bare commit",
        f"{payload['reclamation']['overhead']:.2f}x",
        "informational",
    )
    report.note(
        EXPERIMENT,
        f"snapshot(): {results['pinned_seconds'] * 1e6:.0f} µs/pin vs "
        f"{results['eager_seconds'] * 1e3:.1f} ms/copy; the writer landed "
        f"{results['writer_commits']} commits during the pinned-reader "
        f"window and {payload['reclamation']['reclaimed_entries']} epoch "
        "entries were reclaimed in the rolling-pin run",
    )
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    assert results["snapshot_speedup"] >= SNAPSHOT_SPEEDUP_FLOOR, (
        f"epoch pin only {results['snapshot_speedup']:.1f}x cheaper than an "
        f"eager copy at n={N} (floor {SNAPSHOT_SPEEDUP_FLOOR}x)"
    )
    assert results["reader_ratio"] >= READER_RATIO_FLOOR, (
        f"pinned reads under a live writer run at "
        f"{1 / results['reader_ratio']:.2f}x the unpinned latency "
        f"(allowed <= 1.20x)"
    )
