"""E9 — transaction write path: overlay commits vs the eager-copy path.

The PR 4 claim: begin→update→commit for a k-tuple write against an n-tuple
relation is O(k), not O(n).  This bench runs 10-tuple insert transactions
through the real engine (overlay working set, in-place delta-application
commit) against steady states of increasing size, next to a faithful
re-implementation of the pre-overlay write path (full ``Relation.copy`` on
first write, differential maintained beside the copy, wholesale
``Database.install`` on commit — exactly what ``TransactionContext`` did
before the overlay), and reports

* commit latency vs relation size at fixed |Δ| (the overlay curve is flat,
  the eager curve grows linearly),
* sustained throughput in transactions/second at the 100k steady state,
* abort cost (O(1) rollback: drop the overlay).

Gated on a >= 10x floor for the full-transaction ratio at n=100k in both
the un-indexed and hash-indexed configurations (measured ~50-80x); the
numbers are emitted as ``benchmarks/bench_transaction.json`` for the CI
build artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks import report
from repro.algebra import expressions as E
from repro.algebra import statements as S
from repro.algebra.programs import Program, bracket
from repro.engine import (
    Database,
    DatabaseSchema,
    Relation,
    RelationSchema,
    TransactionManager,
)
from repro.engine.types import INT

EXPERIMENT = "E9 / transaction write path"
SIZES = (1_000, 10_000, 100_000)
GATED_SIZE = 100_000
DELTA_SIZE = 10
OVERLAY_ROUNDS = 200
EAGER_ROUNDS = 20
SPEEDUP_FLOOR = 10.0
JSON_PATH = Path(__file__).resolve().parent / "bench_transaction.json"

_FRESH = iter(range(10_000_000, 1 << 60, DELTA_SIZE))


def _database(size: int, indexed: bool) -> Database:
    schema = DatabaseSchema(
        [RelationSchema("fk", [("id", INT), ("ref", INT)])]
    )
    database = Database(schema)
    database.load("fk", [(i, i % 1000) for i in range(size)])
    if indexed:
        database.create_index("fk", ["ref"])
    return database


def _transaction():
    start = next(_FRESH)
    rows = tuple((start + j, j) for j in range(DELTA_SIZE))
    return bracket(Program([S.Insert("fk", E.Literal(rows))]))


def _eager_transaction(database: Database) -> None:
    """The pre-overlay write path, reproduced with surviving primitives."""
    relation = database.relation("fk")
    working = relation.copy()
    plus = Relation(relation.schema)
    start = next(_FRESH)
    for j in range(DELTA_SIZE):
        row = working.schema.validate_tuple((start + j, j))
        if working.insert(row, _validated=True):
            plus.insert(row, _validated=True)
    database.install({"fk": working}, differentials={"fk": (plus, None)})


def _per_txn(fn, rounds: int) -> float:
    started = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - started) / rounds


@pytest.mark.benchmark(group="transaction")
def test_transaction_write_path_speedup(benchmark):
    report.experiment(
        EXPERIMENT,
        f"{DELTA_SIZE}-tuple insert transactions: overlay engine vs "
        "eager-copy write path",
        ["variant", "n", "eager (ms)", "overlay (ms)", "speedup", "txn/s"],
    )

    def run():
        results = {}
        for indexed in (False, True):
            variant = "indexed" if indexed else "un-indexed"
            for size in SIZES:
                database = _database(size, indexed)
                manager = TransactionManager(database)
                # Transactions are prebuilt: statement construction is
                # identical work on both paths and not part of
                # begin→update→commit.
                prebuilt = [_transaction() for _ in range(OVERLAY_ROUNDS + 1)]
                manager.execute(prebuilt.pop())  # warm caches/plans
                transactions = iter(prebuilt)
                overlay = _per_txn(
                    lambda: manager.execute(next(transactions)),
                    OVERLAY_ROUNDS,
                )
                # The write path in isolation: begin (context) → update
                # (insert_rows) → commit, no statement machinery at all.
                batches = iter(
                    [
                        [(next(_FRESH) + j, j) for j in range(DELTA_SIZE)]
                        for _ in range(OVERLAY_ROUNDS)
                    ]
                )

                def write_path():
                    from repro.engine.transaction import TransactionContext

                    context = TransactionContext(database)
                    context.insert_rows("fk", next(batches))
                    context.commit()

                writepath = _per_txn(write_path, OVERLAY_ROUNDS)
                _eager_transaction(database)
                eager = _per_txn(
                    lambda: _eager_transaction(database), EAGER_ROUNDS
                )
                results[(variant, size)] = (eager, overlay, writepath)
        # Abort cost at the large size: rollback drops the overlay, O(1).
        database = _database(GATED_SIZE, indexed=False)
        manager = TransactionManager(database)
        aborting = bracket(
            Program(
                [
                    S.Insert("fk", E.Literal(((next(_FRESH), 0),))),
                    S.Abort("forced"),
                ]
            )
        )
        assert manager.execute(aborting).aborted
        results["abort"] = _per_txn(
            lambda: manager.execute(aborting), OVERLAY_ROUNDS
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    abort_seconds = results.pop("abort")
    payload = {
        "experiment": EXPERIMENT,
        "delta_size": DELTA_SIZE,
        "sizes": list(SIZES),
        "speedup_floor": SPEEDUP_FLOOR,
        "abort_seconds": abort_seconds,
        "variants": {},
    }
    gated = []
    for (variant, size), (eager, overlay, writepath) in results.items():
        speedup = eager / overlay
        write_speedup = eager / writepath
        throughput = 1.0 / overlay
        payload["variants"][f"{variant}@{size}"] = {
            "eager_seconds": eager,
            "overlay_seconds": overlay,
            "writepath_seconds": writepath,
            "speedup": speedup,
            "writepath_speedup": write_speedup,
            "transactions_per_second": throughput,
        }
        if size == GATED_SIZE:
            gated.append(speedup)
        report.record(
            EXPERIMENT,
            variant,
            f"{size:,}",
            f"{eager * 1000:.3f}",
            f"{overlay * 1000:.4f}",
            f"{speedup:.0f}x ({write_speedup:.0f}x bare)",
            f"{throughput:,.0f}",
        )
    report.note(
        EXPERIMENT,
        "overlay commits apply the net delta in place (O(|Δ|)); the eager "
        "path dict-copies the whole touched relation before any work — "
        f"abort costs {abort_seconds * 1e6:.0f} µs (drop the overlay)",
    )
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    assert min(gated) >= SPEEDUP_FLOOR, (
        f"transaction write-path speedup {min(gated):.1f}x at n={GATED_SIZE} "
        f"below the {SPEEDUP_FLOOR}x floor"
    )
