"""E2/E3 — the Section 7 performance experiment.

Paper (Section 7): "Given a test database with a key relation of 5000
tuples and a foreign key relation of 50000 tuples, checking a referential
integrity constraint after the insertion of 5000 new tuples into the
foreign key relation can be completed within 3 seconds on an 8-node POOMA
multiprocessor.  Checking a domain constraint in the same situation takes
less than 1 second."

We reproduce both measurements twice:

* **wall-clock** on the sequential Python engine (the check itself — the
  alarm statement appended by transaction modification — timed in
  isolation, differential form as PRISMA/DB used);
* **simulated 8-node** time from the calibrated POOMA cost model driving
  the actually-executed fragmented check.

Expected shape: referential > domain, referential ≤ 3 s and domain < 1 s in
the simulated-1992 columns, with roughly a 3x gap.
"""

from __future__ import annotations

import pytest

from benchmarks import report
from repro.algebra import parse_predicate
from repro.engine import Session
from repro.engine.transaction import TransactionContext
from repro.parallel import (
    FragmentedDatabase,
    HashFragmentation,
    ParallelEnforcer,
    Strategy,
)
from repro.parallel.fragmentation import FragmentedRelation
from repro.parallel.cost_model import POOMA_1992
from repro.workloads.section7 import (
    BATCH_SIZE,
    FK_SIZE,
    PK_SIZE,
    section7_controller,
    section7_database,
    section7_insert_batch,
    section7_transaction_text,
)

EXPERIMENT = "E2+E3 / Section 7"


def _ensure_experiment():
    report.experiment(
        EXPERIMENT,
        f"Constraint check after inserting {BATCH_SIZE} tuples into a "
        f"{FK_SIZE}-tuple FK relation ({PK_SIZE}-tuple key relation)",
        ["check", "paper (8-node POOMA)", "simulated 8-node", "python 1-node wall-clock"],
    )


def _batch_context(db):
    """A transaction context holding the inserted batch (fk@plus)."""
    context = TransactionContext(db)
    context.insert_rows("fk", section7_insert_batch())
    return context


@pytest.mark.benchmark(group="section7")
def test_referential_check_wall_clock(benchmark, section7_full):
    """E2: the differential referential check (fk@plus antijoin pk)."""
    db = section7_full
    context = _batch_context(db)
    from repro.algebra.parser import parse_expression

    check = parse_expression("antijoin(fk@plus, pk, left.ref = right.key)")

    def run():
        return len(check.evaluate(context))

    violations = benchmark(run)
    assert violations == 0

    simulated = _simulated("referential", db)
    _ensure_experiment()
    report.record(
        EXPERIMENT,
        "referential (E2)",
        "< 3 s",
        f"{simulated:.2f} s",
        f"{report.mean_seconds(benchmark):.4f} s",
    )


@pytest.mark.benchmark(group="section7")
def test_domain_check_wall_clock(benchmark, section7_full):
    """E3: the differential domain check (select over fk@plus)."""
    db = section7_full
    context = _batch_context(db)
    from repro.algebra.parser import parse_expression

    check = parse_expression("select(fk@plus, amount < 0)")

    def run():
        return len(check.evaluate(context))

    violations = benchmark(run)
    assert violations == 0

    simulated = _simulated("domain", db)
    _ensure_experiment()
    report.record(
        EXPERIMENT,
        "domain (E3)",
        "< 1 s",
        f"{simulated:.2f} s",
        f"{report.mean_seconds(benchmark):.4f} s",
    )
    report.note(
        EXPERIMENT,
        "shape check: referential slower than domain, both within the "
        "paper's bounds under the calibrated 1992 cost model",
    )


def _simulated(check: str, db) -> float:
    """Simulated 8-node enforcement time for the Section 7 check."""
    nodes = 8
    fdb = FragmentedDatabase.from_database(
        db,
        {
            "pk": HashFragmentation("key", nodes),
            "fk": HashFragmentation("ref", nodes),
        },
        nodes=nodes,
    )
    enforcer = ParallelEnforcer(fdb, POOMA_1992)
    batch = FragmentedRelation(
        db.relation_schema("fk"), HashFragmentation("ref", nodes)
    )
    batch.load(section7_insert_batch(start_id=FK_SIZE + 100000))
    if check == "referential":
        result = enforcer.referential_check(batch, "ref", "pk", "key", Strategy.LOCAL)
    else:
        result = enforcer.domain_check(batch, parse_predicate("amount < 0"))
    return result.simulated_seconds


@pytest.mark.benchmark(group="section7")
def test_full_transaction_with_modification(benchmark, section7_full):
    """End-to-end: modify + execute the whole 5000-insert transaction."""
    db = section7_full
    controller = section7_controller()
    session = Session(db, controller)
    transaction = session.transaction(
        section7_transaction_text(section7_insert_batch(start_id=900000))
    )
    snapshot = db.snapshot()

    def run():
        db.restore(snapshot)
        return session.execute(transaction)

    result = benchmark(run)
    assert result.committed
    _ensure_experiment()
    report.record(
        EXPERIMENT,
        "full txn (modify+execute, both rules)",
        "n/a",
        "n/a",
        f"{report.mean_seconds(benchmark):.4f} s",
    )


@pytest.mark.benchmark(group="section7")
def test_violation_detection_aborts(benchmark, section7_full):
    """The abort path: a batch with dangling references must be rejected."""
    db = section7_full
    controller = section7_controller()
    session = Session(db, controller)
    bad_batch = section7_insert_batch(
        batch_size=1000, start_id=990000, violations=10
    )
    transaction = session.transaction(section7_transaction_text(bad_batch))
    snapshot = db.snapshot()

    def run():
        db.restore(snapshot)
        return session.execute(transaction)

    result = benchmark(run)
    assert result.aborted
