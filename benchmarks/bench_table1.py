"""E1 — Table 1: translation of typical constraint constructs.

Regenerates the paper's Table 1 row by row: each CL construct family is
translated and printed next to the paper's algebra form; the benchmark
times the full seven-row translation (rule-definition-time cost, §6.2).
"""

from __future__ import annotations

import pytest

from benchmarks import report
from repro.algebra.pretty import render_mathy_statement
from repro.calculus.parser import parse_constraint
from repro.core.translation import table1_form
from repro.engine import DatabaseSchema, RelationSchema
from repro.engine.types import INT

SCHEMA = DatabaseSchema(
    [
        RelationSchema("R", [("i", INT), ("a", INT)]),
        RelationSchema("S", [("j", INT), ("b", INT)]),
    ]
)

# (paper row, CL construct, the paper's published translation)
TABLE1_ROWS = [
    (
        "1",
        "(forall x)(x in R => c(x))",
        "(forall x in R)(x.a > 0)",
        "alarm(σ[¬c'](R))",
    ),
    (
        "2",
        "(forall x)(x in R => (exists y)(y in S and x.i = y.j))",
        "(forall x in R)(exists y in S)(x.i = y.j)",
        "alarm(R ⊳[i=j] S)",
    ),
    (
        "3",
        "(forall x)(x in R => (forall y)(y in S => x.i != y.j))",
        "(forall x in R)(forall y in S)(x.i != y.j)",
        "alarm(R ⋉[i=j] S)",
    ),
    (
        "4",
        "(forall x,y)((x in R and y in S and c1(x,y)) => c2(x,y))",
        "(forall x, y)((x in R and y in S and x.i = y.j) => x.a <= y.b)",
        "alarm(σ[¬c2'](R ⋈[c1'] S))",
    ),
    (
        "5",
        "(exists x)(x in R and c(x))",
        "(exists x in R)(x.a > 10)",
        "alarm(σ[cnt=0](CNT(σ[c'](R))))",
    ),
    (
        "6",
        "c(AGGR(R, i))",
        "SUM(R, a) <= 100",
        "alarm(σ[¬c'](AGGR(R, i)))",
    ),
    (
        "7",
        "c(CNT(R))",
        "CNT(R) <= 1000",
        "alarm(σ[¬c'](CNT(R)))",
    ),
]


def translate_all():
    produced = []
    for row_id, family, instance, paper_form in TABLE1_ROWS:
        statement = table1_form(parse_constraint(instance), SCHEMA)
        assert statement is not None, f"row {row_id} failed to translate"
        produced.append((row_id, family, paper_form, statement))
    return produced


@pytest.mark.benchmark(group="table1")
def test_table1_regeneration(benchmark):
    produced = benchmark(translate_all)
    report.experiment(
        "E1 / Table 1",
        "Translation of typical constraint constructs (paper §5.2.2)",
        ["row", "CL construct family", "paper translation", "our translation"],
    )
    for row_id, family, paper_form, statement in produced:
        report.record(
            "E1 / Table 1",
            row_id,
            family,
            paper_form,
            render_mathy_statement(statement),
        )
    report.note(
        "E1 / Table 1",
        "all seven construct families translate to the paper's forms "
        "(verbatim shapes asserted in tests/core/test_table1.py)",
    )


@pytest.mark.benchmark(group="table1")
def test_translation_throughput(benchmark):
    """Rule-definition-time translation cost for a single constraint."""
    constraint = parse_constraint(
        "(forall x in R)(exists y in S)(x.i = y.j)"
    )
    from repro.core.translation import trans_c

    benchmark(lambda: trans_c(constraint, SCHEMA))


@pytest.mark.benchmark(group="table1")
def test_table1_checks_planned_vs_naive():
    """Evaluate every Table 1 check over 2x5k-tuple relations with both
    backends: the compiled plans must agree with the naive interpreter and
    be at least as fast in aggregate."""
    import random
    import time

    from repro.algebra import planner
    from repro.algebra.evaluation import StandaloneContext
    from repro.engine import Database

    rng = random.Random(1993)
    db = Database(SCHEMA)
    # 2x5k keeps the naive nested-loop row (row 4: semijoin with residual,
    # 25M predicate evaluations) around a couple of seconds.
    db.load("R", [(rng.randrange(2500), rng.randrange(100)) for _ in range(5_000)])
    db.load("S", [(rng.randrange(2500), rng.randrange(100)) for _ in range(5_000)])
    db.create_index("R", ["i"])
    db.create_index("S", ["j"])
    context = StandaloneContext({"R": db.relation("R"), "S": db.relation("S")})

    experiment = "E1b / Table 1 evaluation"
    report.experiment(
        experiment,
        "Evaluating each translated Table 1 check over 2x5k tuples, "
        "naive tree-walk vs compiled physical plan (R.i / S.j indexed)",
        ["row", "naive (ms)", "planned (ms)", "speedup"],
    )
    from repro.core.translation import trans_c

    naive_total = planned_total = 0.0
    for row_id, _family, instance, _paper in TABLE1_ROWS:
        # trans_c, not table1_form: the verbatim Table 1 shapes are for
        # display (row 4's theta-join form is not directly evaluable).
        program = trans_c(parse_constraint(instance), SCHEMA, name=f"row{row_id}")
        expression = program.statements[0].expr
        plan = planner.get_plan(expression)
        plan.execute(context)  # warm lazy binds and index builds
        started = time.perf_counter()
        naive_result = expression.evaluate(context)
        naive = time.perf_counter() - started
        started = time.perf_counter()
        planned_result = plan.execute(context)
        planned = time.perf_counter() - started
        assert naive_result == planned_result
        naive_total += naive
        planned_total += planned
        report.record(
            experiment,
            row_id,
            f"{naive * 1000:.2f}",
            f"{planned * 1000:.2f}",
            f"{naive / planned:.1f}x",
        )
    report.note(
        experiment,
        f"aggregate speedup {naive_total / planned_total:.1f}x over the "
        "seven construct families",
    )
    assert planned_total <= naive_total
