"""E6 — differential vs. full-state constraint evaluation (paper §5.2.1).

The optimization the paper cites from [18, 5, 7]: after ``INS(R)``, check
only the inserted tuples (``R@plus``) instead of all of ``R``.  This bench
sweeps the base-relation size with a fixed insert batch and measures the
enforcement part of the transaction under both regimes.

Expected shape: full-state checking grows linearly with the base size while
differential checking stays flat; the ratio at 100k tuples is orders of
magnitude.
"""

from __future__ import annotations

import time

import pytest

from benchmarks import report
from repro.core.subsystem import IntegrityController
from repro.engine import Session
from repro.workloads.section7 import (
    SECTION7_DOMAIN,
    SECTION7_REFERENTIAL,
    section7_database,
    section7_insert_batch,
    section7_transaction_text,
)

EXPERIMENT = "E6 / differential"
BASE_SIZES = (1000, 10_000, 100_000)
BATCH = 500


def run_once(fk_size: int, differential: bool) -> float:
    db = section7_database(pk_size=1000, fk_size=fk_size)
    controller = IntegrityController(db.schema, differential=differential)
    controller.add_rule(SECTION7_REFERENTIAL)
    controller.add_rule(SECTION7_DOMAIN)
    session = Session(db, controller)
    batch = section7_insert_batch(
        batch_size=BATCH, pk_size=1000, start_id=fk_size + 10
    )
    transaction = session.transaction(section7_transaction_text(batch))
    modified = controller.modify_transaction(transaction)
    started = time.perf_counter()
    result = session.manager.execute(modified, modify=False)
    elapsed = time.perf_counter() - started
    assert result.committed
    return elapsed


@pytest.mark.benchmark(group="differential")
def test_differential_vs_full_sweep(benchmark):
    report.experiment(
        EXPERIMENT,
        f"Execute a {BATCH}-row insert transaction incl. checks, "
        "full-state vs differential (R@plus) enforcement",
        ["fk base size", "full (ms)", "differential (ms)", "full/diff"],
    )

    def sweep():
        rows = []
        for size in BASE_SIZES:
            full = run_once(size, differential=False)
            diff = run_once(size, differential=True)
            rows.append((size, full, diff))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, full, diff in rows:
        report.record(
            EXPERIMENT,
            size,
            f"{full * 1000:.1f}",
            f"{diff * 1000:.1f}",
            f"{full / diff:.1f}x",
        )
    report.note(
        EXPERIMENT,
        "paper shape: differential cost is independent of the base size; "
        "full-state cost grows with it",
    )
    # The advantage must grow with base size.
    small_ratio = rows[0][1] / rows[0][2]
    large_ratio = rows[-1][1] / rows[-1][2]
    assert large_ratio > small_ratio


@pytest.mark.benchmark(group="differential")
def test_differential_enforcement_100k(benchmark):
    """Headline number: differential insert batch against a 100k base."""
    db = section7_database(pk_size=1000, fk_size=100_000)
    controller = IntegrityController(db.schema, differential=True)
    controller.add_rule(SECTION7_REFERENTIAL)
    controller.add_rule(SECTION7_DOMAIN)
    session = Session(db, controller)
    batch = section7_insert_batch(batch_size=BATCH, pk_size=1000, start_id=200_000)
    transaction = session.transaction(section7_transaction_text(batch))
    modified = controller.modify_transaction(transaction)
    snapshot = db.snapshot()

    def run():
        db.restore(snapshot)
        return session.manager.execute(modified, modify=False)

    result = benchmark(run)
    assert result.committed


@pytest.mark.benchmark(group="differential")
def test_full_enforcement_100k(benchmark):
    """Counterpart: full-state enforcement of the same transaction."""
    db = section7_database(pk_size=1000, fk_size=100_000)
    controller = IntegrityController(db.schema, differential=False)
    controller.add_rule(SECTION7_REFERENTIAL)
    controller.add_rule(SECTION7_DOMAIN)
    session = Session(db, controller)
    batch = section7_insert_batch(batch_size=BATCH, pk_size=1000, start_id=200_000)
    transaction = session.transaction(section7_transaction_text(batch))
    modified = controller.modify_transaction(transaction)
    snapshot = db.snapshot()

    def run():
        db.restore(snapshot)
        return session.manager.execute(modified, modify=False)

    result = benchmark(run)
    assert result.committed
