"""E6 — differential vs. full-state constraint evaluation (paper §5.2.1).

The optimization the paper cites from [18, 5, 7]: after ``INS(R)``, check
only the inserted tuples (``R@plus``) instead of all of ``R``.  This bench
sweeps the base-relation size with a fixed insert batch and measures the
enforcement part of the transaction under both regimes.

Expected shape: full-state checking grows linearly with the base size while
differential checking stays flat; the ratio at 100k tuples is orders of
magnitude.
"""

from __future__ import annotations

import time

import pytest

from benchmarks import report
from repro.core.subsystem import IntegrityController
from repro.engine import Session
from repro.workloads.section7 import (
    SECTION7_DOMAIN,
    SECTION7_REFERENTIAL,
    section7_database,
    section7_insert_batch,
    section7_transaction_text,
)

EXPERIMENT = "E6 / differential"
EXPERIMENT_PLANNED = "E6b / planned vs naive"
BASE_SIZES = (1000, 10_000, 100_000)
BATCH = 500


def run_once(fk_size: int, differential: bool, engine: str = "planned") -> float:
    db = section7_database(pk_size=1000, fk_size=fk_size)
    controller = IntegrityController(
        db.schema, differential=differential, engine=engine
    )
    controller.add_rule(SECTION7_REFERENTIAL)
    controller.add_rule(SECTION7_DOMAIN)
    session = Session(db, controller, engine=engine)
    batch = section7_insert_batch(
        batch_size=BATCH, pk_size=1000, start_id=fk_size + 10
    )
    transaction = session.transaction(section7_transaction_text(batch))
    modified = controller.modify_transaction(transaction)
    started = time.perf_counter()
    result = session.manager.execute(modified, modify=False)
    elapsed = time.perf_counter() - started
    assert result.committed
    return elapsed


@pytest.mark.benchmark(group="differential")
def test_differential_vs_full_sweep(benchmark):
    report.experiment(
        EXPERIMENT,
        f"Execute a {BATCH}-row insert transaction incl. checks, "
        "full-state vs differential (R@plus) enforcement",
        ["fk base size", "full (ms)", "differential (ms)", "full/diff"],
    )

    def sweep():
        rows = []
        for size in BASE_SIZES:
            full = run_once(size, differential=False)
            diff = run_once(size, differential=True)
            rows.append((size, full, diff))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, full, diff in rows:
        report.record(
            EXPERIMENT,
            size,
            f"{full * 1000:.1f}",
            f"{diff * 1000:.1f}",
            f"{full / diff:.1f}x",
        )
    report.note(
        EXPERIMENT,
        "paper shape: differential cost is independent of the base size; "
        "full-state cost grows with it",
    )
    # The advantage must grow with base size.
    small_ratio = rows[0][1] / rows[0][2]
    large_ratio = rows[-1][1] / rows[-1][2]
    assert large_ratio > small_ratio


@pytest.mark.benchmark(group="differential")
def test_planned_vs_naive_transaction_sweep(benchmark):
    """The engine toggle on the full transaction path (copy-on-write,
    inserts, enforcement, commit) — full-state checking, where the
    evaluation backend dominates."""
    report.experiment(
        EXPERIMENT_PLANNED,
        f"Execute a {BATCH}-row insert transaction with full-state checks, "
        "naive interpreter vs compiled physical plans",
        ["fk base size", "naive (ms)", "planned (ms)", "naive/planned"],
    )

    def sweep():
        rows = []
        for size in BASE_SIZES:
            # Best-of-3: the CI smoke run executes this body exactly once,
            # and the ~2.4x margin at the top of the sweep is too small to
            # gate on a single noisy sample per backend.
            naive = min(
                run_once(size, differential=False, engine="naive")
                for _ in range(3)
            )
            planned = min(
                run_once(size, differential=False, engine="planned")
                for _ in range(3)
            )
            rows.append((size, naive, planned))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, naive, planned in rows:
        report.record(
            EXPERIMENT_PLANNED,
            size,
            f"{naive * 1000:.1f}",
            f"{planned * 1000:.1f}",
            f"{naive / planned:.1f}x",
        )
    # The planned backend must win at the top of the sweep.
    assert rows[-1][1] > rows[-1][2]


@pytest.mark.benchmark(group="differential")
def test_indexed_referential_check_sweep():
    """Headline tentpole number: the referential check itself (the algebra
    antijoin the rule translates to), naive tree-walk vs compiled plan over
    persistent hash indexes.  The planned check probes per *distinct* key
    of the fk.ref index instead of per row, so it is orders of magnitude
    faster; the acceptance floor is 10x at the 100k sweep point.
    """
    from repro.engine.session import DatabaseView
    from repro.algebra import planner

    experiment = "E6c / indexed semi-join"
    report.experiment(
        experiment,
        "Evaluate the translated referential check (fk antijoin pk), "
        "naive vs planned with hash indexes on fk.ref / pk.key",
        ["fk base size", "naive (ms)", "indexed plan (ms)", "speedup"],
    )
    speedups = {}
    for size in BASE_SIZES:
        db = section7_database(pk_size=1000, fk_size=size)
        controller = IntegrityController(db.schema)
        controller.add_rule(SECTION7_REFERENTIAL)
        check = controller.store.get("fk_ref").program.statements[0].expr
        controller.install_indexes(db)
        view = DatabaseView(db)
        plan = planner.get_plan(check)
        plan.execute(view)  # warm: build side caches, lazy binds
        rounds = 5
        started = time.perf_counter()
        for _ in range(rounds):
            naive_result = check.evaluate(view)
        naive = (time.perf_counter() - started) / rounds
        started = time.perf_counter()
        for _ in range(rounds):
            planned_result = plan.execute(view)
        planned = (time.perf_counter() - started) / rounds
        assert naive_result == planned_result
        speedups[size] = naive / planned
        report.record(
            experiment,
            size,
            f"{naive * 1000:.2f}",
            f"{planned * 1000:.3f}",
            f"{naive / planned:.0f}x",
        )
    report.note(
        experiment,
        "indexed plans probe per distinct fk.ref key; naive probes per row "
        "and rebuilds the pk hash per evaluation",
    )
    assert speedups[100_000] >= 10, (
        f"indexed semi-join speedup {speedups[100_000]:.1f}x below the 10x floor"
    )


@pytest.mark.benchmark(group="differential")
def test_differential_enforcement_100k(benchmark):
    """Headline number: differential insert batch against a 100k base."""
    db = section7_database(pk_size=1000, fk_size=100_000)
    controller = IntegrityController(db.schema, differential=True)
    controller.add_rule(SECTION7_REFERENTIAL)
    controller.add_rule(SECTION7_DOMAIN)
    session = Session(db, controller)
    batch = section7_insert_batch(batch_size=BATCH, pk_size=1000, start_id=200_000)
    transaction = session.transaction(section7_transaction_text(batch))
    modified = controller.modify_transaction(transaction)
    snapshot = db.snapshot()

    def run():
        db.restore(snapshot)
        return session.manager.execute(modified, modify=False)

    result = benchmark(run)
    assert result.committed


@pytest.mark.benchmark(group="differential")
def test_full_enforcement_100k(benchmark):
    """Counterpart: full-state enforcement of the same transaction."""
    db = section7_database(pk_size=1000, fk_size=100_000)
    controller = IntegrityController(db.schema, differential=False)
    controller.add_rule(SECTION7_REFERENTIAL)
    controller.add_rule(SECTION7_DOMAIN)
    session = Session(db, controller)
    batch = section7_insert_batch(batch_size=BATCH, pk_size=1000, start_id=200_000)
    transaction = session.transaction(section7_transaction_text(batch))
    modified = controller.modify_transaction(transaction)
    snapshot = db.snapshot()

    def run():
        db.restore(snapshot)
        return session.manager.execute(modified, modify=False)

    result = benchmark(run)
    assert result.committed
