"""E8 — the paper's worked Example 5.1, end to end.

Times the three phases of the paper's own example on the beer database:
modification (ModT), execution of the modified transaction (including the
appended domain alarm and referential compensation), and the combined
session path.
"""

from __future__ import annotations

import pytest

from benchmarks import report
from repro.algebra.parser import parse_transaction
from repro.engine import Session
from repro.workloads.beer import (
    EXAMPLE_51_TRANSACTION,
    beer_controller,
    beer_database,
)

EXPERIMENT = "E8 / Example 5.1"


@pytest.mark.benchmark(group="example51")
def test_modification_only(benchmark):
    controller = beer_controller()
    transaction = parse_transaction(EXAMPLE_51_TRANSACTION)
    modified = benchmark(lambda: controller.modify_transaction(transaction))
    assert len(modified.statements) == 4


@pytest.mark.benchmark(group="example51")
def test_execute_modified(benchmark):
    db = beer_database(beers=1000, breweries=50)
    controller = beer_controller()
    session = Session(db, controller)
    transaction = controller.modify_transaction(
        parse_transaction(EXAMPLE_51_TRANSACTION)
    )
    snapshot = db.snapshot()

    def run():
        db.restore(snapshot)
        return session.manager.execute(transaction, modify=False)

    result = benchmark(run)
    assert result.committed


@pytest.mark.benchmark(group="example51")
def test_full_session_path(benchmark):
    db = beer_database(beers=1000, breweries=50)
    controller = beer_controller()
    session = Session(db, controller)
    snapshot = db.snapshot()
    transaction = parse_transaction(EXAMPLE_51_TRANSACTION)

    def run():
        db.restore(snapshot)
        return session.execute(transaction)

    result = benchmark(run)
    assert result.committed

    report.experiment(
        EXPERIMENT,
        "The paper's worked example on a 1000-beer database",
        ["phase", "mean time"],
    )
    report.record(EXPERIMENT, "modify + execute", f"{report.mean_seconds(benchmark) * 1000:.3f} ms")
    report.note(
        EXPERIMENT,
        "the modified transaction inserts the beer, checks the domain "
        "alarm, and compensates the unknown brewery — Section 5.4",
    )
