"""Benchmark harness configuration.

Renders the collected paper-style experiment tables after the run, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures both
pytest-benchmark's timing table and the reproduced evaluation artifacts.
"""

from __future__ import annotations

import pytest

from benchmarks import report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    rendered = report.render_all()
    if rendered:
        terminalreporter.ensure_newline()
        terminalreporter.section("reproduced paper artifacts", sep="=")
        terminalreporter.write_line(rendered)


@pytest.fixture(scope="session")
def section7_full():
    """The full-scale Section 7 database, built once per session."""
    from repro.workloads.section7 import section7_database

    return section7_database()
