"""E10 — durability cost: commit throughput under sync policies + recovery.

The PR 9 claim: layering the durable hash-chained commit log under the
engine costs little when fsyncs are batched.  This bench drives the real
write path (``TransactionContext`` begin→insert→commit) against

* the bare in-memory engine (no durable log),
* ``sync="none"`` (OS-buffered appends, fsync only on close/rotation),
* ``sync="interval"`` (group commit: appends buffered, fsync on a timer),
* ``sync="commit"`` (fsync inside every commit — the full-durability tax),

and then times crash recovery (checkpoint + full replay through the live
delta path) over the log the run produced.

Gated on group commit retaining >= 50% of the bare in-memory commit
throughput (i.e. <= 2x overhead); the numbers are emitted as
``benchmarks/bench_durability.json`` for the CI build artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks import report
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.recovery import recover
from repro.engine.transaction import TransactionContext
from repro.engine.types import INT
from repro.engine.wal import WriteAheadLog

EXPERIMENT = "E10 / durable commit log"
STEADY_STATE = 10_000
COMMITS = 100
WINDOWS = 3  # best-of windows: one noisy fs stall must not fail the gate
DELTA_SIZE = 50
RETAINED_FLOOR = 0.5  # group commit keeps >= half the in-memory throughput
POLICIES = ("none", "interval", "commit")
JSON_PATH = Path(__file__).resolve().parent / "bench_durability.json"

_FRESH = iter(range(10_000_000, 1 << 60, DELTA_SIZE))


def _database() -> Database:
    schema = DatabaseSchema(
        [RelationSchema("fk", [("id", INT), ("ref", INT)])]
    )
    database = Database(schema)
    database.load("fk", [(i, i % 1000) for i in range(STEADY_STATE)])
    return database


def _commit_once(database: Database) -> None:
    context = TransactionContext(database)
    start = next(_FRESH)
    context.insert_rows(
        "fk", [(start + j, j) for j in range(DELTA_SIZE)]
    )
    context.commit()


def _throughput(database: Database, commits: int) -> float:
    _commit_once(database)  # warm caches/plans outside the timed windows
    best = 0.0
    for _ in range(WINDOWS):
        started = time.perf_counter()
        for _ in range(commits):
            _commit_once(database)
        best = max(best, commits / (time.perf_counter() - started))
    return best


@pytest.mark.benchmark(group="durability")
def test_durability_tax_and_recovery(benchmark, tmp_path):
    report.experiment(
        EXPERIMENT,
        f"{DELTA_SIZE}-tuple commit transactions with the durable log "
        "attached, by sync policy",
        ["policy", "commit/s", "vs memory", "fsync per commit"],
    )

    def run():
        results = {"memory": _throughput(_database(), COMMITS)}
        for policy in POLICIES:
            database = _database()
            database.attach_wal(
                WriteAheadLog(tmp_path / policy, sync=policy)
            )
            results[policy] = _throughput(database, COMMITS)
            database.detach_wal()
        # Crash recovery over the fully-synced run: checkpoint + replay
        # of every record through the live apply_deltas path.
        started = time.perf_counter()
        recovered, recovery_report = recover(
            tmp_path / "commit", attach=False
        )
        results["recovery"] = (
            time.perf_counter() - started,
            recovery_report.replayed,
            len(recovered.relation("fk")),
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    recovery_seconds, replayed, rows = results.pop("recovery")
    total = WINDOWS * COMMITS + 1  # the warm-up commit is durable too
    assert replayed == total
    assert rows == STEADY_STATE + total * DELTA_SIZE
    memory = results["memory"]
    retained = {
        policy: results[policy] / memory for policy in POLICIES
    }
    payload = {
        "experiment": EXPERIMENT,
        "commits": WINDOWS * COMMITS,
        "window_commits": COMMITS,
        "delta_size": DELTA_SIZE,
        "group_commit_floor": RETAINED_FLOOR,
        "throughput": results,
        "retained": retained,
        "recovery": {
            "replayed": replayed,
            "seconds": recovery_seconds,
            "per_record_us": recovery_seconds / replayed * 1e6,
        },
    }
    fsyncs = {"none": "no", "interval": "timer", "commit": "yes"}
    report.record(
        EXPERIMENT, "memory (no log)", f"{memory:,.0f}", "1.00x", "—"
    )
    for policy in POLICIES:
        report.record(
            EXPERIMENT,
            f"sync={policy}",
            f"{results[policy]:,.0f}",
            f"{retained[policy]:.2f}x",
            fsyncs[policy],
        )
    report.note(
        EXPERIMENT,
        "the durability tax is per-commit serialization (pickle + "
        "columnar encode + sha256) amortized over |Δ| rows; recovery "
        f"replayed {replayed} record(s) in {recovery_seconds * 1000:.1f} "
        f"ms ({recovery_seconds / replayed * 1e6:.0f} µs/record); gate: "
        f"group commit (sync=interval) retains >= {RETAINED_FLOOR:.0%} "
        "of the in-memory commit throughput",
    )
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    assert retained["interval"] >= RETAINED_FLOOR, (
        f"group commit retained only {retained['interval']:.2f}x of the "
        f"in-memory commit throughput (floor {RETAINED_FLOOR}x)"
    )
