"""E7 — unified audits: naive model checker vs physical-plan evaluation.

PR 1 planned only pure-alarm integrity programs; compensating-action rules,
``Assign``+``Alarm`` program shapes, and translation fallbacks audited
through the calculus model checker at row-at-a-time speed.  This bench
measures ``violated_constraints`` on the 100k-tuple Section 7 foreign-key
workload with exactly those rule forms registered, naive vs planned, and
gates on the >= 10x floor the unified evaluation path must clear.

The key relation is kept small (50 tuples): the naive model checker's
referential check walks the key relation per foreign-key tuple, so a large
key relation would put the baseline's single measured round into minutes
without changing the comparison's meaning.
"""

from __future__ import annotations

import time

import pytest

from benchmarks import report
from repro.algebra import expressions as E
from repro.algebra.programs import Program
from repro.algebra.statements import Alarm, Assign
from repro.core.programs import IntegrityProgram
from repro.core.subsystem import IntegrityController
from repro.workloads.section7 import (
    SECTION7_DOMAIN,
    SECTION7_REFERENTIAL,
    section7_database,
)

EXPERIMENT = "E7 / unified audit"
PK_SIZE = 50
FK_SIZE = 100_000
PLANNED_ROUNDS = 5
SPEEDUP_FLOOR = 10.0


def _controller(db) -> IntegrityController:
    """Referential as a *compensating* rule, domain as aborting, plus an
    ``Assign``+``Alarm`` variant of the domain program — the three shapes
    the unified audit path newly routes through plans."""
    controller = IntegrityController(db.schema)
    condition = SECTION7_REFERENTIAL.split("IF NOT", 1)[1].split("THEN", 1)[0]
    controller.add_constraint(
        "fk_ref_compensating",
        condition.strip(),
        response="delete(fk, select(fk, amount < 0))",
    )
    controller.add_rule(SECTION7_DOMAIN)
    rule = controller.add_constraint(
        "fk_domain_assigned", "(forall x)(x in fk => x.amount <= 1000000)"
    )
    stored = controller.store.get("fk_domain_assigned")
    alarm = stored.program.statements[0]
    controller.store.remove("fk_domain_assigned")
    controller.store.add(
        IntegrityProgram(
            "fk_domain_assigned",
            rule.triggers,
            Program(
                [
                    Assign("audit_viol", alarm.expr),
                    Alarm(E.RelationRef("audit_viol"), message=alarm.message),
                ]
            ),
        )
    )
    return controller


@pytest.mark.benchmark(group="audit")
def test_unified_audit_speedup(benchmark):
    report.experiment(
        EXPERIMENT,
        f"violated_constraints on pk={PK_SIZE}/fk={FK_SIZE:,} with "
        "compensating, aborting, and assign+alarm rules: "
        "naive model checker vs unified planner audits",
        ["variant", "naive (ms)", "planned (ms)", "speedup"],
    )

    def run():
        db = section7_database(pk_size=PK_SIZE, fk_size=FK_SIZE)
        controller = _controller(db)
        results = {}
        for variant, prepare in (("un-indexed", None), ("indexed", "install")):
            if prepare:
                controller.install_indexes(db)
            started = time.perf_counter()
            planned_verdict = None
            for _ in range(PLANNED_ROUNDS):
                planned_verdict = controller.violated_constraints(
                    db, engine="planned"
                )
            planned = (time.perf_counter() - started) / PLANNED_ROUNDS
            results[variant] = (planned, planned_verdict)
        # One naive round: the model checker is the multi-second baseline.
        started = time.perf_counter()
        naive_verdict = controller.violated_constraints(db, engine="naive")
        naive = time.perf_counter() - started
        assert naive_verdict == results["un-indexed"][1]
        assert naive_verdict == results["indexed"][1]
        return naive, results

    naive, results = benchmark.pedantic(run, rounds=1, iterations=1)
    speedups = {}
    for variant, (planned, _) in results.items():
        speedups[variant] = naive / planned
        report.record(
            EXPERIMENT,
            variant,
            f"{naive * 1000:.0f}",
            f"{planned * 1000:.2f}",
            f"{speedups[variant]:.0f}x",
        )
    report.note(
        EXPERIMENT,
        "all three rule shapes audit through compiled plans; the naive "
        "model checker survives as the test oracle only",
    )
    assert min(speedups.values()) >= SPEEDUP_FLOOR, (
        f"unified audit speedup {min(speedups.values()):.1f}x below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
