"""E10 — cost-based join ordering: multi-join constraint, as-written vs reordered.

A star-shaped multi-join check over the r/s/t schema: ``(r ⋈ s) ⋈ t`` as
written joins the two large relations first and filters by the small,
selective relation last; the greedy reorder
(:func:`repro.algebra.planner.reorder_chains`) joins ``t`` first, so the
expensive join probes a pre-shrunk input.  The planned backend applies the
rewrite automatically whenever the evaluation context exposes a database —
this bench measures the as-written plan against the integrated path.
"""

from __future__ import annotations

import time

import pytest

from benchmarks import report
from repro.algebra import expressions as E
from repro.algebra import planner
from repro.algebra import predicates as P
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.session import DatabaseView
from repro.engine.types import INT

EXPERIMENT = "E10 / join ordering"
R_SIZE = 5_000
S_SIZE = 10_000
T_SIZE = 20
ROUNDS = 5
IMPROVEMENT_FLOOR = 2.0


def _database() -> Database:
    database = Database(
        DatabaseSchema(
            [
                RelationSchema("r", [("a", INT), ("b", INT)]),
                RelationSchema("s", [("c", INT), ("d", INT)]),
                RelationSchema("t", [("e", INT), ("f", INT)]),
            ]
        )
    )
    # r ⋈ s on a=c produces R_SIZE · S_SIZE/500 ≈ 100k intermediate rows;
    # t matches only 20 of r's distinct b values, so joining t first
    # shrinks the expensive join's probe side from 5 000 rows to 20.
    database.load("r", [(i % 500, i) for i in range(R_SIZE)])
    database.load("s", [(i % 500, i) for i in range(S_SIZE)])
    database.load("t", [(i, i) for i in range(T_SIZE)])
    return database


def _chain() -> E.Expression:
    eq = lambda l, r: P.Comparison(  # noqa: E731
        "=", P.ColRef(l, "left"), P.ColRef(r, "right")
    )
    return E.Join(
        E.Join(E.RelationRef("r"), E.RelationRef("s"), eq("a", "c")),
        E.RelationRef("t"),
        eq("b", "e"),
    )


def _time(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.benchmark(group="joinorder")
def test_join_ordering_speeds_up_multi_join(benchmark):
    report.experiment(
        EXPERIMENT,
        f"star chain r[{R_SIZE:,}] ⋈ s[{S_SIZE:,}] ⋈ t[{T_SIZE}]: "
        "as-written plan vs greedy reorder",
        ["variant", "ms", "speedup"],
    )
    database = _database()
    view = DatabaseView(database)
    chain = _chain()
    as_written = planner.get_plan(chain)
    baseline_result = as_written.execute(view)

    def run():
        unordered = _time(lambda: as_written.execute(view))
        reordered = _time(lambda: planner.evaluate(chain, view))
        return unordered, reordered

    unordered, reordered = benchmark.pedantic(run, rounds=1, iterations=1)
    assert planner.evaluate(chain, view) == baseline_result
    speedup = unordered / reordered
    report.record(EXPERIMENT, "as written", f"{unordered * 1000:.2f}", "1x")
    report.record(
        EXPERIMENT, "reordered", f"{reordered * 1000:.2f}", f"{speedup:.1f}x"
    )
    report.note(
        EXPERIMENT,
        "the greedy reorder joins the small selective relation first, so "
        "the large join probes a pre-shrunk input (restoring projection "
        "included in the measured time)",
    )
    assert speedup >= IMPROVEMENT_FLOOR, (
        f"join reordering speedup {speedup:.2f}x below the "
        f"{IMPROVEMENT_FLOOR}x floor"
    )
