"""E10 — columnar batch execution vs the row-at-a-time operator loops.

PRs 1-6 removed the asymptotic waste from enforcement; what remained was
the constant factor of per-tuple Python interpretation inside the
physical operators.  This benchmark runs the *same compiled plans* three
times — row-at-a-time, whole-column kernels per operator, and fused
pipeline regions — over identical data and asserts both the verdict
parity and the speedups the issue gates on:

* an operator ladder (large-scan selection, computed projection, hash
  join, select-project-join composite) at 100k rows, reported row vs
  batch vs fused, so fusion's own win over per-operator batching is
  visible in the artifact;
* the **select-project-join chain** gated at >= 2x fused-over-row (the
  boundary materialization cost fusion exists to remove);
* the **audit-shaped violation query** ``π[a](r ⊳ σ[d<1000](s))`` — the
  antijoin against qualified targets that referential integrity rules
  compile to (violators = rows with no valid target) — gated at >= 2x
  on the per-operator batch path (the PR 7 gate, unchanged);
* the wire format: a 100k-row broadcast through the real
  :class:`~repro.parallel.procpool.ProcessFragmentPool` must ship at
  least 1.5x fewer bytes with columnar pickling than the per-row form.

Measured numbers are emitted as ``benchmarks/bench_columnar.json`` for
the CI build artifact; ``python -m benchmarks.report --strict`` turns
any gate miss into a non-zero exit.
"""

from __future__ import annotations

import json
import pickle
import random
import time
from pathlib import Path

import pytest

from benchmarks import report
from repro.algebra import columnar, planner
from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra.evaluation import StandaloneContext
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.types import INT

EXPERIMENT = "E10 / columnar batch execution"
ROWS_R = 100_000
ROWS_S = 50_000
ROUNDS = 4
#: The audit-shaped plan must run >= this much faster on the
#: per-operator batch path; the single-operator ladder rows are
#: informational.
COMPOSITE_SPEEDUP_FLOOR = 2.0
#: The select-project-join chain must run >= this much faster fused
#: (one kernel per region, tuples built only at the boundary) than
#: row-at-a-time.
CHAIN_SPEEDUP_FLOOR = 2.0
CHAIN_PLAN = "select-project-join"
#: The 100k-row broadcast must pickle >= this much smaller column-wise.
WIRE_RATIO_FLOOR = 1.5
BROADCAST_NODES = 4
JSON_PATH = Path(__file__).resolve().parent / "bench_columnar.json"


def rs_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("r", [("a", INT), ("b", INT)]),
            RelationSchema("s", [("c", INT), ("d", INT)]),
        ]
    )


def database(seed: int = 1993) -> Database:
    rng = random.Random(seed)
    db = Database(rs_schema())
    # ~1/6 of r's keys dangle entirely; s's d-attribute qualifies 1/4 of
    # the targets, so the gated violation query has real work on both
    # sides of the antijoin.
    db.load("r", [(i, rng.randrange(ROWS_S * 6 // 5)) for i in range(ROWS_R)])
    db.load("s", [(j, rng.randrange(4000)) for j in range(ROWS_S)])
    return db


def _context(db: Database) -> StandaloneContext:
    return StandaloneContext(
        {"r": db.relation("r"), "s": db.relation("s")}, engine="planned"
    )


def _join_on_b_eq_c():
    return E.Join(
        E.RelationRef("r"),
        E.RelationRef("s"),
        P.Comparison("=", P.ColRef(2, "left"), P.ColRef(1, "right")),
    )


PLANS = {
    # σ[b < 25000](r): one predicate kernel over a 100k-row scan.
    "select 100k": E.Select(
        E.RelationRef("r"), P.Comparison("<", P.ColRef(2), P.Const(ROWS_S // 2))
    ),
    # π[a+b, b](r): a computed projection — scalar kernel + row assembly.
    "project 100k": E.Project(
        E.RelationRef("r"),
        (
            E.ProjectItem(P.Arith("+", P.ColRef(1), P.ColRef(2))),
            E.ProjectItem(P.ColRef(2)),
        ),
    ),
    # π[a,b](r ⋈ s): hash join probe + batch pair assembly.
    "join 100k x 50k": E.Project(
        _join_on_b_eq_c(),
        (E.ProjectItem(P.ColRef(1)), E.ProjectItem(P.ColRef(2))),
    ),
    # π[a,b,d](σ[d<1000](r ⋈ s)): the full select-project-join composite.
    "select-project-join": E.Project(
        E.Select(_join_on_b_eq_c(), P.Comparison("<", P.ColRef(4), P.Const(1000))),
        (
            E.ProjectItem(P.ColRef(1)),
            E.ProjectItem(P.ColRef(2)),
            E.ProjectItem(P.ColRef(4)),
        ),
    ),
    # The gated audit shape: the violation query a referential rule
    # compiles to — r-rows with no *qualified* target in s.
    "audit plan (gated)": E.Project(
        E.AntiJoin(
            E.RelationRef("r"),
            E.Select(
                E.RelationRef("s"),
                P.Comparison("<", P.ColRef(2), P.Const(1000)),
            ),
            P.Comparison("=", P.ColRef(2, "left"), P.ColRef(1, "right")),
        ),
        (E.ProjectItem(P.ColRef(1)),),
    ),
}


def _timed(plan, context) -> tuple:
    """(best seconds, result) over ROUNDS executions of a compiled plan."""
    best = None
    result = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        result = plan.execute(context)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None or elapsed < best else best
    return best, result


#: (batch policy, fusion policy) per execution mode.  "row" is the
#: differential oracle; "batch" runs whole-column kernels but still
#: materializes a relation at every operator boundary; "fused" compiles
#: eligible scan/join→select→project chains into one kernel.
MODES = {
    "row": ("never", "never"),
    "batch": ("always", "never"),
    "fused": ("always", "always"),
}


@pytest.mark.benchmark(group="columnar")
def test_batch_operator_ladder(benchmark):
    report.experiment(
        EXPERIMENT,
        f"the same compiled plans over r({ROWS_R:,}) / s({ROWS_S:,}), "
        "row-at-a-time vs whole-column kernels vs fused pipelines",
        ["plan", "row (ms)", "batch (ms)", "fused (ms)", "batch", "fused"],
    )

    def run():
        db = database()
        context = _context(db)
        measured = {}
        for name, expression in PLANS.items():
            plan = planner.get_plan(expression)
            timings = {}
            results = {}
            prev_batch = columnar.batch_policy()
            prev_fusion = columnar.fusion_policy()
            try:
                for mode, (batch, fusion) in MODES.items():
                    columnar.set_batch_policy(batch)
                    columnar.set_fusion_policy(fusion)
                    timings[mode], results[mode] = _timed(plan, context)
            finally:
                columnar.set_batch_policy(prev_batch)
                columnar.set_fusion_policy(prev_fusion)
            assert results["batch"] == results["row"], (
                f"batch parity broken on {name!r}"
            )
            assert results["fused"] == results["row"], (
                f"fused parity broken on {name!r}"
            )
            measured[name] = (timings, len(results["row"]))
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    ladder = {}
    for name, (timings, cardinality) in measured.items():
        speedup = timings["row"] / timings["batch"]
        fused_speedup = timings["row"] / timings["fused"]
        ladder[name] = {
            "row_seconds": timings["row"],
            "batch_seconds": timings["batch"],
            "fused_seconds": timings["fused"],
            "output_rows": cardinality,
            "speedup": speedup,
            "fused_speedup": fused_speedup,
            "fused_over_batch": timings["batch"] / timings["fused"],
        }
        report.record(
            EXPERIMENT,
            name,
            f"{timings['row'] * 1000:.2f}",
            f"{timings['batch'] * 1000:.2f}",
            f"{timings['fused'] * 1000:.2f}",
            f"{speedup:.2f}x",
            f"{fused_speedup:.2f}x",
        )
    report.note(
        EXPERIMENT,
        "identical physical plans; the batch path swaps the operator inner "
        "loops for whole-column kernels and the fused path additionally "
        "skips relation materialization between region operators, so "
        "three-way verdict parity is asserted on every plan before any "
        "timing is reported",
    )
    composite = ladder["audit plan (gated)"]["speedup"]
    chain = ladder[CHAIN_PLAN]["fused_speedup"]
    _merge_json(
        {
            "experiment": EXPERIMENT,
            "rows_r": ROWS_R,
            "rows_s": ROWS_S,
            "composite_speedup_floor": COMPOSITE_SPEEDUP_FLOOR,
            "chain_speedup_floor": CHAIN_SPEEDUP_FLOOR,
            "ladder": ladder,
            "composite_speedup": composite,
            "chain_speedup": chain,
        }
    )
    assert composite >= COMPOSITE_SPEEDUP_FLOOR, (
        f"audit-shaped plan batched at {composite:.2f}x, below the "
        f"{COMPOSITE_SPEEDUP_FLOOR}x floor"
    )
    assert chain >= CHAIN_SPEEDUP_FLOOR, (
        f"select-project-join fused at {chain:.2f}x over row, below the "
        f"{CHAIN_SPEEDUP_FLOOR}x floor"
    )


@pytest.mark.benchmark(group="columnar")
def test_broadcast_bytes_shipped(benchmark):
    """A 100k-row broadcast ships >= 1.5x fewer bytes column-wise."""
    from repro.parallel.procpool import ProcessFragmentPool

    def run():
        db = database()
        relation = db.relation("r")
        row_blob = pickle.dumps(relation, protocol=pickle.HIGHEST_PROTOCOL)
        row_bytes = len(row_blob) * BROADCAST_NODES
        with ProcessFragmentPool(BROADCAST_NODES) as pool:
            columnar_bytes = pool.broadcast_bind("r_bcast", relation)
        return row_bytes, columnar_bytes

    row_bytes, columnar_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = row_bytes / columnar_bytes
    report.record(
        EXPERIMENT,
        f"broadcast {ROWS_R // 1000}k rows x {BROADCAST_NODES} nodes",
        f"{row_bytes / 1e6:.2f} MB (rows)",
        f"{columnar_bytes / 1e6:.2f} MB (columns)",
        f"{ratio:.2f}x",
    )
    _merge_json(
        {
            "broadcast_nodes": BROADCAST_NODES,
            "broadcast_row_bytes": row_bytes,
            "broadcast_columnar_bytes": columnar_bytes,
            "wire_ratio": ratio,
            "wire_ratio_floor": WIRE_RATIO_FLOOR,
        }
    )
    assert ratio >= WIRE_RATIO_FLOOR, (
        f"columnar broadcast only {ratio:.2f}x smaller, below the "
        f"{WIRE_RATIO_FLOOR}x floor"
    )


def _merge_json(payload: dict) -> None:
    """Update bench_columnar.json in place (both tests feed one file)."""
    existing = {}
    if JSON_PATH.exists():
        try:
            existing = json.loads(JSON_PATH.read_text())
        except ValueError:
            existing = {}
    existing.update(payload)
    JSON_PATH.write_text(json.dumps(existing, indent=2) + "\n")
