"""E5 — static vs. dynamic rule translation (paper Section 6.2).

Alg 5.1-5.3 optimize and translate integrity rules on *every* transaction
modification; Section 6.2 moves translation to rule-definition time and
stores integrity programs.  This bench measures ModT cost under both
regimes while sweeping the number of registered rules.

Expected shape: static beats dynamic, and the gap grows with the rule count
(dynamic pays per-rule translation for every selected rule on every
transaction).
"""

from __future__ import annotations

import pytest

from benchmarks import report
from repro.algebra.parser import parse_transaction
from repro.calculus.parser import parse_constraint
from repro.core.modification import DynamicSelector, StaticSelector, mod_t
from repro.core.programs import IntegrityProgramStore, get_int_p
from repro.core.rules import IntegrityRule
from repro.engine import DatabaseSchema, RelationSchema
from repro.engine.types import INT

EXPERIMENT = "E5 / static vs dynamic"
RULE_COUNTS = (1, 4, 16, 64)


def build_schema(relations: int = 4) -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema(f"t{index}", [("a", INT), ("b", INT)])
            for index in range(relations)
        ]
    )


def build_rules(schema: DatabaseSchema, count: int):
    relations = list(schema.relation_names)
    rules = []
    for index in range(count):
        relation = relations[index % len(relations)]
        other = relations[(index + 1) % len(relations)]
        if index % 2 == 0:
            condition = parse_constraint(
                f"(forall x in {relation})(x.a > {index % 7})"
            )
        else:
            condition = parse_constraint(
                f"(forall x in {relation})(exists y in {other})(x.a = y.a)"
            )
        rules.append(IntegrityRule(condition, name=f"rule_{index}"))
    return rules


TXN = "begin insert(t0, (1, 2)); delete(t1, (3, 4)); update(t2, a = 0, b := 1); end"


def timed_mod_t(selector, transaction, repeats=20):
    import time

    started = time.perf_counter()
    for _ in range(repeats):
        mod_t(transaction, selector)
    return (time.perf_counter() - started) / repeats


@pytest.mark.benchmark(group="static-translation")
def test_static_vs_dynamic_sweep(benchmark):
    schema = build_schema()
    transaction = parse_transaction(TXN)
    report.experiment(
        EXPERIMENT,
        "ModT cost per transaction: compiled store (Alg 6.2) vs per-call "
        "translation (Algs 5.1-5.3)",
        ["rules", "static ModT (ms)", "dynamic ModT (ms)", "dynamic/static"],
    )

    def sweep():
        rows = []
        for count in RULE_COUNTS:
            rules = build_rules(schema, count)
            store = IntegrityProgramStore()
            for rule in rules:
                store.add(get_int_p(rule, schema))
            static_time = timed_mod_t(StaticSelector(store), transaction)
            dynamic_time = timed_mod_t(
                DynamicSelector(rules, schema), transaction
            )
            rows.append((count, static_time, dynamic_time))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for count, static_time, dynamic_time in rows:
        report.record(
            EXPERIMENT,
            count,
            f"{static_time * 1000:.3f}",
            f"{dynamic_time * 1000:.3f}",
            f"{dynamic_time / static_time:.1f}x",
        )
    report.note(
        EXPERIMENT,
        "paper shape: definition-time translation wins; the gap grows "
        "with the number of triggered rules",
    )
    # The largest rule set must show a clear win for the static store.
    count, static_time, dynamic_time = rows[-1]
    assert dynamic_time > static_time


@pytest.mark.benchmark(group="static-translation")
def test_static_mod_t(benchmark):
    """Headline number: static ModT on a 16-rule catalog."""
    schema = build_schema()
    rules = build_rules(schema, 16)
    store = IntegrityProgramStore()
    for rule in rules:
        store.add(get_int_p(rule, schema))
    selector = StaticSelector(store)
    transaction = parse_transaction(TXN)
    benchmark(lambda: mod_t(transaction, selector))


@pytest.mark.benchmark(group="static-translation")
def test_dynamic_mod_t(benchmark):
    """Headline number: dynamic ModT on the same 16-rule catalog."""
    schema = build_schema()
    rules = build_rules(schema, 16)
    selector = DynamicSelector(rules, schema)
    transaction = parse_transaction(TXN)
    benchmark(lambda: mod_t(transaction, selector))


@pytest.mark.benchmark(group="static-translation")
def test_rule_compilation_cost(benchmark):
    """GetIntP (Alg 6.1): the one-off definition-time cost being amortized."""
    schema = build_schema()
    rule = build_rules(schema, 2)[1]  # a referential rule
    benchmark(lambda: get_int_p(rule, schema, differential=True))
