"""E8 — incremental audits: delta plans vs full-plan re-evaluation.

The delta-plan layer's payoff claim: enforcement touches only what the
transaction changed.  This bench commits a small transaction (100 new
foreign-key tuples, 20 deleted key-relation tuples' worth of churn) against
a large steady state (100k foreign keys / 1k keys), then audits the result
two ways:

* **full** — ``violated_constraints``: re-evaluate every rule's compiled
  plan against the whole post state;
* **delta** — ``violated_constraints_incremental``: run only the matched
  triggers' differential programs against the committed net delta
  (O(|Δ|) work; vacuous triggers cost nothing).

Gated on the >= 10x floor from the delta-plan issue, in both the un-indexed
and hash-indexed configurations, and the verdicts must agree.  The measured
numbers are additionally emitted as ``benchmarks/bench_incremental.json``
for the CI build artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks import report
from repro.core.subsystem import IntegrityController
from repro.engine import Session
from repro.workloads.section7 import (
    section7_controller,
    section7_database,
    section7_insert_batch,
    section7_transaction_text,
)

EXPERIMENT = "E8 / incremental audit"
PK_SIZE = 1000
FK_SIZE = 100_000
DELTA_SIZE = 100
FULL_ROUNDS = 5
DELTA_ROUNDS = 50
SPEEDUP_FLOOR = 10.0
JSON_PATH = Path(__file__).resolve().parent / "bench_incremental.json"


def _committed_delta(db) -> "object":
    """Commit the 100-tuple insert batch without integrity modification and
    return the TransactionResult carrying the net differentials."""
    rows = section7_insert_batch(
        batch_size=DELTA_SIZE, pk_size=PK_SIZE, start_id=FK_SIZE
    )
    result = Session(db).execute(section7_transaction_text(rows))
    assert result.committed
    return result


def _time(fn, rounds: int) -> float:
    started = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - started) / rounds


@pytest.mark.benchmark(group="incremental")
def test_incremental_audit_speedup(benchmark):
    report.experiment(
        EXPERIMENT,
        f"{DELTA_SIZE}-tuple delta against pk={PK_SIZE}/fk={FK_SIZE:,}: "
        "full-plan re-evaluation vs per-trigger delta plans",
        ["variant", "full (ms)", "delta (ms)", "speedup"],
    )

    def run():
        results = {}
        for variant in ("un-indexed", "indexed"):
            db = section7_database(pk_size=PK_SIZE, fk_size=FK_SIZE)
            controller: IntegrityController = section7_controller()
            if variant == "indexed":
                controller.install_indexes(db)
            result = _committed_delta(db)
            full_verdict = controller.violated_constraints(db)
            delta_verdict = controller.violated_constraints_incremental(
                db, result
            )
            assert full_verdict == delta_verdict == []
            full = _time(
                lambda: controller.violated_constraints(db), FULL_ROUNDS
            )
            delta = _time(
                lambda: controller.violated_constraints_incremental(db, result),
                DELTA_ROUNDS,
            )
            results[variant] = (full, delta)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    payload = {
        "experiment": EXPERIMENT,
        "pk_size": PK_SIZE,
        "fk_size": FK_SIZE,
        "delta_size": DELTA_SIZE,
        "speedup_floor": SPEEDUP_FLOOR,
        "variants": {},
    }
    speedups = {}
    for variant, (full, delta) in results.items():
        speedups[variant] = full / delta
        payload["variants"][variant] = {
            "full_seconds": full,
            "delta_seconds": delta,
            "speedup": speedups[variant],
        }
        report.record(
            EXPERIMENT,
            variant,
            f"{full * 1000:.2f}",
            f"{delta * 1000:.4f}",
            f"{speedups[variant]:.0f}x",
        )
    report.note(
        EXPERIMENT,
        "delta audits run the matched triggers' differential programs "
        "against the committed net delta; full audits re-evaluate every "
        "compiled plan over the whole state",
    )
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    assert min(speedups.values()) >= SPEEDUP_FLOOR, (
        f"incremental audit speedup {min(speedups.values()):.1f}x below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
