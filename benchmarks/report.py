"""Shared report collector for the benchmark harness.

Benchmarks register paper-style result rows here; the conftest's
``pytest_terminal_summary`` hook renders every experiment as an aligned
table at the end of the run, so ``pytest benchmarks/ --benchmark-only``
reproduces the paper's evaluation artifacts in one pass (alongside
pytest-benchmark's own timing table).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Sequence

_REGISTRY: "OrderedDict[str, dict]" = OrderedDict()


def mean_seconds(benchmark) -> float:
    """Mean time of a pytest-benchmark fixture run.

    Tolerates ``--benchmark-disable`` (the CI smoke mode), where the
    fixture's ``stats`` attribute is None because nothing was timed.
    """
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return float("nan")
    return stats["mean"]


def experiment(identifier: str, title: str, columns: Sequence[str]) -> None:
    """Declare an experiment (id, human title, column headers)."""
    if identifier not in _REGISTRY:
        _REGISTRY[identifier] = {
            "title": title,
            "columns": list(columns),
            "rows": [],
        }


def record(identifier: str, *values) -> None:
    """Append one result row to an experiment."""
    _REGISTRY[identifier]["rows"].append([_fmt(value) for value in values])


def note(identifier: str, text: str) -> None:
    """Attach a free-text note (expected shape, paper reference)."""
    _REGISTRY[identifier].setdefault("notes", []).append(text)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_all() -> str:
    """Render every recorded experiment as aligned text tables."""
    blocks: List[str] = []
    for identifier, data in _REGISTRY.items():
        if not data["rows"]:
            continue
        blocks.append(_render_one(identifier, data))
    return "\n\n".join(blocks)


def _render_one(identifier: str, data: dict) -> str:
    header = [data["columns"]]
    rows = data["rows"]
    widths = [
        max(len(row[i]) for row in header + rows)
        for i in range(len(data["columns"]))
    ]

    def line(row):
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))

    separator = "  ".join("-" * width for width in widths)
    parts = [f"== {identifier}: {data['title']} ==", line(data["columns"]), separator]
    parts.extend(line(row) for row in rows)
    for text in data.get("notes", []):
        parts.append(f"   note: {text}")
    return "\n".join(parts)


def reset() -> None:
    _REGISTRY.clear()
