"""Shared report collector for the benchmark harness.

Benchmarks register paper-style result rows here; the conftest's
``pytest_terminal_summary`` hook renders every experiment as an aligned
table at the end of the run, so ``pytest benchmarks/ --benchmark-only``
reproduces the paper's evaluation artifacts in one pass (alongside
pytest-benchmark's own timing table).

The gated benchmarks additionally emit ``bench_*.json`` artifacts (the
files CI uploads); ``python -m benchmarks.report`` folds every artifact
present on disk — incremental audit, transaction write path, the async
pipeline with its executor ladder, and the columnar batch/wire numbers —
into one gate-status summary table.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Sequence

_REGISTRY: "OrderedDict[str, dict]" = OrderedDict()


def mean_seconds(benchmark) -> float:
    """Mean time of a pytest-benchmark fixture run.

    Tolerates ``--benchmark-disable`` (the CI smoke mode), where the
    fixture's ``stats`` attribute is None because nothing was timed.
    """
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return float("nan")
    return stats["mean"]


def experiment(identifier: str, title: str, columns: Sequence[str]) -> None:
    """Declare an experiment (id, human title, column headers)."""
    if identifier not in _REGISTRY:
        _REGISTRY[identifier] = {
            "title": title,
            "columns": list(columns),
            "rows": [],
        }


def record(identifier: str, *values) -> None:
    """Append one result row to an experiment."""
    _REGISTRY[identifier]["rows"].append([_fmt(value) for value in values])


def note(identifier: str, text: str) -> None:
    """Attach a free-text note (expected shape, paper reference)."""
    _REGISTRY[identifier].setdefault("notes", []).append(text)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_all() -> str:
    """Render every recorded experiment as aligned text tables."""
    blocks: List[str] = []
    for identifier, data in _REGISTRY.items():
        if not data["rows"]:
            continue
        blocks.append(_render_one(identifier, data))
    return "\n\n".join(blocks)


def _render_one(identifier: str, data: dict) -> str:
    header = [data["columns"]]
    # Rows may carry fewer cells than the header (e.g. a wire-bytes row
    # inside a timing experiment); pad so alignment never fails.
    arity = len(data["columns"])
    rows = [row + [""] * (arity - len(row)) for row in data["rows"]]
    widths = [
        max(len(row[i]) for row in header + rows)
        for i in range(len(data["columns"]))
    ]

    def line(row):
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))

    separator = "  ".join("-" * width for width in widths)
    parts = [f"== {identifier}: {data['title']} ==", line(data["columns"]), separator]
    parts.extend(line(row) for row in rows)
    for text in data.get("notes", []):
        parts.append(f"   note: {text}")
    return "\n".join(parts)


def reset() -> None:
    _REGISTRY.clear()


# -- JSON artifact summary ------------------------------------------------------

_ARTIFACTS = (
    "bench_incremental.json",
    "bench_transaction.json",
    "bench_async_audit.json",
    "bench_columnar.json",
    "bench_durability.json",
    "bench_mvcc.json",
)


def _artifact_rows(name: str, data: dict) -> List[list]:
    """Flatten one artifact into (source, dimension, measured, floor) rows."""
    rows: List[list] = []
    floor = data.get("speedup_floor")
    # The transaction write-path bench reports a size ladder but gates
    # only its largest size; smaller rows are informational.
    sizes = data.get("sizes")
    gated_suffix = f"@{max(sizes)}" if sizes else None
    for variant, stats in data.get("variants", {}).items():
        gated = gated_suffix is None or variant.endswith(gated_suffix)
        rows.append([name, variant, stats.get("speedup"), floor if gated else None])
    if "pipeline_seconds" in data:  # async pipeline drain
        rows.append([name, "pipeline vs sequential", data.get("speedup"), floor])
    ladder = data.get("executor_ladder")
    if ladder:
        dimension = (
            f"process vs thread ({ladder.get('workers')} workers, "
            f"{ladder.get('cpu_count')} cores)"
        )
        rows.append(
            [
                name,
                dimension,
                ladder.get("process_vs_thread"),
                ladder.get("process_speedup_floor") if ladder.get("gated") else None,
            ]
        )
    for plan, stats in data.get("ladder", {}).items():  # columnar operators
        gated = plan == "audit plan (gated)"
        rows.append(
            [
                name,
                f"batch vs row: {plan}",
                stats.get("speedup"),
                data.get("composite_speedup_floor") if gated else None,
            ]
        )
        if "fused_speedup" in stats:
            chain_gated = plan == "select-project-join"
            rows.append(
                [
                    name,
                    f"fused vs row: {plan}",
                    stats.get("fused_speedup"),
                    data.get("chain_speedup_floor") if chain_gated else None,
                ]
            )
        if "fused_over_batch" in stats:
            rows.append(
                [name, f"fused vs batch: {plan}", stats.get("fused_over_batch"), None]
            )
    for policy, ratio in data.get("retained", {}).items():  # durable log
        gated = policy == "interval"  # group commit carries the floor
        rows.append(
            [
                name,
                f"sync={policy} retained commit throughput",
                ratio,
                data.get("group_commit_floor") if gated else None,
            ]
        )
    if "wire_ratio" in data:
        rows.append(
            [
                name,
                "columnar vs row broadcast bytes",
                data.get("wire_ratio"),
                data.get("wire_ratio_floor"),
            ]
        )
    snapshot = data.get("snapshot")  # epoch MVCC pins
    if snapshot:
        rows.append(
            [
                name,
                f"epoch pin vs eager snapshot @n={snapshot.get('n'):,}",
                snapshot.get("speedup"),
                data.get("snapshot_speedup_floor"),
            ]
        )
        reader = data.get("reader", {})
        rows.append(
            [
                name,
                "pinned query under writer vs quiet live",
                reader.get("ratio"),
                data.get("reader_ratio_floor"),
            ]
        )
        reclamation = data.get("reclamation", {})
        rows.append(
            [name, "commit with rolling pin vs bare", reclamation.get("overhead"), None]
        )
    return rows


def _gate_table(directory: Path | str | None = None) -> List[List[str]]:
    """Rendered gate rows for every ``bench_*.json`` present on disk."""
    base = Path(directory) if directory is not None else Path(__file__).parent
    rows: List[List[str]] = []
    for filename in _ARTIFACTS:
        path = base / filename
        if not path.exists():
            continue
        try:
            data = json.loads(path.read_text())
        except ValueError:
            continue
        for source, dimension, measured, floor in _artifact_rows(
            path.stem, data
        ):
            if measured is None:
                continue
            if floor is None:
                status = "—"
            else:
                status = "pass" if measured >= floor else "FAIL"
            rows.append(
                [
                    source,
                    dimension,
                    f"{measured:.2f}x",
                    f">={floor:g}x" if floor is not None else "—",
                    status,
                ]
            )
    return rows


def summarize_artifacts(directory: Path | str | None = None) -> str:
    """One gate-status table over every ``bench_*.json`` present on disk."""
    rows = _gate_table(directory)
    if not rows:
        return "no benchmark artifacts found"
    data = {
        "title": "gated dimensions across all JSON artifacts",
        "columns": ["artifact", "dimension", "measured", "floor", "gate"],
        "rows": rows,
    }
    return _render_one("benchmark summary", data)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: print the gate table, optionally enforce it.

    ``--strict`` exits non-zero when any gated dimension is below its
    floor (or when no artifacts exist at all), so CI can end a benchmark
    job with one authoritative pass/fail over every emitted artifact.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.report",
        description="Summarize bench_*.json gate status.",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any gate failed or no artifacts were found",
    )
    parser.add_argument(
        "--directory",
        default=None,
        help="directory holding bench_*.json artifacts (default: benchmarks/)",
    )
    options = parser.parse_args(argv)
    rows = _gate_table(options.directory)
    print(summarize_artifacts(options.directory))
    if not options.strict:
        return 0
    if not rows:
        print("strict mode: no artifacts found")
        return 1
    failed = [row for row in rows if row[-1] == "FAIL"]
    if failed:
        print(f"strict mode: {len(failed)} gate(s) below floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
