"""E7 — the cost of the ModT fixpoint itself (paper Alg 5.1).

Transaction modification is recursive: appended compensating programs may
trigger further rules.  This bench builds compensation *chains* of
increasing depth (rule i repairs relation i+1, triggering rule i+1) and
measures modification cost per chain depth.

Expected shape: rounds equal the chain depth; cost grows linearly with it
(each round is one pass over the rule store).
"""

from __future__ import annotations

import time

import pytest

from benchmarks import report
from repro.algebra.parser import parse_program, parse_transaction
from repro.calculus.parser import parse_constraint
from repro.core.modification import ModificationStats, StaticSelector, mod_t
from repro.core.programs import IntegrityProgramStore, get_int_p
from repro.core.rules import IntegrityRule
from repro.engine import DatabaseSchema, RelationSchema
from repro.engine.types import INT

EXPERIMENT = "E7 / ModT fixpoint"
DEPTHS = (1, 2, 4, 8)


def chain_schema(depth: int) -> DatabaseSchema:
    return DatabaseSchema(
        [RelationSchema(f"c{index}", [("x", INT)]) for index in range(depth + 1)]
    )


def chain_rules(schema: DatabaseSchema, depth: int):
    """rule_i: every c_i tuple must exist in c_{i+1}; repair by copying."""
    rules = []
    for index in range(depth):
        source, target = f"c{index}", f"c{index + 1}"
        condition = parse_constraint(
            f"(forall x in {source})(exists y in {target})(x.x = y.x)"
        )
        action = parse_program(f"insert({target}, diff({source}, {target}))")
        rules.append(IntegrityRule(condition, action=action, name=f"chain_{index}"))
    return rules


def build_selector(depth: int):
    schema = chain_schema(depth)
    store = IntegrityProgramStore()
    for rule in chain_rules(schema, depth):
        store.add(get_int_p(rule, schema))
    return StaticSelector(store)


@pytest.mark.benchmark(group="modification")
def test_chain_depth_sweep(benchmark):
    report.experiment(
        EXPERIMENT,
        "ModT cost vs compensation-chain depth (rule i repairs into "
        "relation i+1)",
        ["chain depth", "rounds", "statements appended", "ModT (ms)"],
    )
    transaction = parse_transaction("begin insert(c0, (1,)); end")

    def sweep():
        rows = []
        for depth in DEPTHS:
            selector = build_selector(depth)
            stats = ModificationStats()
            mod_t(transaction, selector, stats=stats)
            started = time.perf_counter()
            for _ in range(50):
                mod_t(transaction, selector)
            elapsed = (time.perf_counter() - started) / 50
            rows.append((depth, stats.rounds, stats.statements_appended, elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for depth, rounds, appended, elapsed in rows:
        report.record(
            EXPERIMENT, depth, rounds, appended, f"{elapsed * 1000:.3f}"
        )
    report.note(
        EXPERIMENT,
        "rounds track the triggering-graph depth exactly; cost is linear "
        "in the number of appended programs",
    )
    for depth, rounds, appended, _ in rows:
        assert rounds == depth
        assert appended == depth


@pytest.mark.benchmark(group="modification")
def test_mod_t_chain_depth_8(benchmark):
    """Headline number: modification through an 8-deep triggering chain."""
    selector = build_selector(8)
    transaction = parse_transaction("begin insert(c0, (1,)); end")
    benchmark(lambda: mod_t(transaction, selector))


@pytest.mark.benchmark(group="modification")
def test_trigger_generation_cost(benchmark):
    """Alg 5.7 over a deeply nested condition."""
    from repro.core.trigger_generation import generate_triggers

    condition = parse_constraint(
        "(forall a in c0)(exists b in c1)"
        "(a.x = b.x and (forall c in c2)(exists d in c3)"
        "(c.x != d.x or b.x = d.x))"
    )
    benchmark(lambda: generate_triggers(condition))


@pytest.mark.benchmark(group="modification")
def test_triggering_graph_validation_cost(benchmark):
    """Section 6.1 graph construction + cycle check for a 64-rule catalog."""
    depth = 64
    schema = chain_schema(depth)
    rules = chain_rules(schema, depth)
    from repro.core.triggering_graph import TriggeringGraph

    def build_and_validate():
        graph = TriggeringGraph(rules)
        graph.validate()
        return graph

    graph = benchmark(build_and_validate)
    assert graph.is_acyclic
