"""E10 (supplementary) — enforcement architecture comparison.

Three ways to enforce the same two rules on the same insert transaction:

1. **modification + differential** — the paper's architecture: ModT appends
   per-update-type checks over ``R@plus`` (§5.2.1 + §6.2);
2. **modification + full-state** — ModT appends checks over the whole
   relation (Alg 5.1 without OptC's differential step); this is also
   exactly what a well-implemented execute-then-audit would cost, since
   the same algebra runs on the same post-state;
3. **naive post-hoc audit** — execute, then re-evaluate the declarative
   constraints directly (model checking, no algebraic translation), roll
   back on violation.  This is the strawman the paper's system-oriented
   related work improves on, and it shows *why* translation matters.

The differential advantage (1 vs 2) grows with the base size; the
translation advantage (2 vs 3) is orders of magnitude because the direct
evaluator cannot use hash joins.
"""

from __future__ import annotations

import time

import pytest

from benchmarks import report
from repro.core.subsystem import IntegrityController
from repro.engine import Session
from repro.workloads.section7 import (
    SECTION7_DOMAIN,
    SECTION7_REFERENTIAL,
    section7_database,
    section7_insert_batch,
    section7_transaction_text,
)

EXPERIMENT = "E10 / architecture"
BASE_SIZES = (5_000, 50_000)
BATCH = 500
NAIVE_BASE = 5_000  # the naive audit is quadratic; keep it feasible


def build(fk_size: int, differential: bool):
    db = section7_database(pk_size=1000, fk_size=fk_size)
    controller = IntegrityController(db.schema, differential=differential)
    controller.add_rule(SECTION7_REFERENTIAL)
    controller.add_rule(SECTION7_DOMAIN)
    batch = section7_insert_batch(
        batch_size=BATCH, pk_size=1000, start_id=fk_size + 10
    )
    return db, controller, section7_transaction_text(batch)


def modification_path(fk_size: int, differential: bool) -> float:
    db, controller, text = build(fk_size, differential)
    session = Session(db, controller)
    transaction = controller.modify_transaction(session.transaction(text))
    snapshot = db.snapshot()
    timings = []
    for _ in range(3):  # min-of-3: single executions are noisy at small sizes
        db.restore(snapshot)
        started = time.perf_counter()
        result = session.manager.execute(transaction, modify=False)
        timings.append(time.perf_counter() - started)
        assert result.committed
    return min(timings)


def naive_audit_path(fk_size: int) -> float:
    db, controller, text = build(fk_size, differential=False)
    session = Session(db)  # raw execution
    transaction = session.transaction(text)
    snapshot = db.snapshot()
    started = time.perf_counter()
    result = session.execute(transaction)
    assert result.committed
    # Direct declarative re-evaluation — the naive model checker, no
    # algebraic translation (the strawman this experiment is about; the
    # planned engine would itself be a translated check).
    violated = controller.violated_constraints(db, engine="naive")
    if violated:  # pragma: no cover - the batch is valid
        db.restore(snapshot)
    return time.perf_counter() - started


@pytest.mark.benchmark(group="architecture")
def test_architecture_comparison(benchmark):
    report.experiment(
        EXPERIMENT,
        f"{BATCH}-row insert under three enforcement architectures",
        [
            "fk base size",
            "ModT + differential (ms)",
            "ModT full-state (ms)",
            "naive direct audit (ms)",
        ],
    )

    def sweep():
        rows = []
        for size in BASE_SIZES:
            differential = modification_path(size, differential=True)
            full_state = modification_path(size, differential=False)
            naive = naive_audit_path(size) if size <= NAIVE_BASE else None
            rows.append((size, differential, full_state, naive))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, differential, full_state, naive in rows:
        report.record(
            EXPERIMENT,
            size,
            f"{differential * 1000:.1f}",
            f"{full_state * 1000:.1f}",
            f"{naive * 1000:.0f}" if naive is not None else "(skipped: quadratic)",
        )
    report.note(
        EXPERIMENT,
        "differential beats full-state, and *any* translated check beats "
        "direct re-evaluation — the two halves of the paper's design",
    )
    # At small bases differential and full-state are within noise of each
    # other; the architectural ordering is asserted where the effect is
    # larger than measurement jitter.
    largest = rows[-1]
    assert largest[1] < largest[2]
    for size, differential, full_state, naive in rows:
        if naive is not None:
            assert full_state < naive
