"""Test subpackage (unique module names for pytest collection)."""
