"""The IntegrityController facade."""

import pytest

from repro.core.subsystem import IntegrityController
from repro.core.triggers import DEL, INS
from repro.engine import Session
from repro.errors import (
    AnalysisError,
    RuleError,
    UnknownRelationError,
)
from repro.workloads.beer import BEER_RULE_DOMAIN, BEER_RULE_REFERENTIAL


class TestRuleManagement:
    def test_add_rule_from_text(self, schema):
        controller = IntegrityController(schema)
        rule = controller.add_rule(BEER_RULE_DOMAIN)
        assert rule.name == "R1"
        assert "R1" in controller.store
        assert controller.rule("R1") is rule

    def test_add_constraint_default_abort(self, schema):
        controller = IntegrityController(schema)
        rule = controller.add_constraint(
            "alc", "(forall x in beer)(x.alcohol >= 0)"
        )
        assert rule.is_aborting
        assert rule.triggers == {(INS, "beer")}

    def test_add_constraint_with_program_response(self, schema):
        controller = IntegrityController(schema)
        rule = controller.add_constraint(
            "alc",
            "(forall x in beer)(x.alcohol >= 0)",
            response="delete(beer, where alcohol < 0)",
        )
        assert rule.is_compensating

    def test_duplicate_name_rejected(self, schema):
        controller = IntegrityController(schema)
        controller.add_constraint("alc", "(forall x in beer)(x.alcohol >= 0)")
        with pytest.raises(RuleError):
            controller.add_constraint("alc", "(forall x in beer)(x.alcohol >= 0)")

    def test_remove_rule(self, schema):
        controller = IntegrityController(schema)
        controller.add_constraint("alc", "(forall x in beer)(x.alcohol >= 0)")
        controller.remove_rule("alc")
        assert controller.rules == []
        assert "alc" not in controller.store
        with pytest.raises(RuleError):
            controller.rule("alc")

    def test_unknown_mode_rejected(self, schema):
        with pytest.raises(ValueError):
            IntegrityController(schema, mode="lazy")


class TestSchemaValidation:
    def test_unknown_relation_rejected(self, schema):
        controller = IntegrityController(schema)
        with pytest.raises(UnknownRelationError):
            controller.add_constraint("bad", "(forall x in ghost)(x.a > 0)")

    def test_unknown_attribute_rejected(self, schema):
        controller = IntegrityController(schema)
        with pytest.raises(AnalysisError):
            controller.add_constraint("bad", "(forall x in beer)(x.proof >= 0)")

    def test_position_out_of_range_rejected(self, schema):
        controller = IntegrityController(schema)
        with pytest.raises(AnalysisError):
            controller.add_constraint("bad", "(forall x in beer)(x.9 >= 0)")

    def test_aggregate_attribute_checked(self, schema):
        controller = IntegrityController(schema)
        with pytest.raises(AnalysisError):
            controller.add_constraint("bad", "SUM(beer, proof) >= 0")

    def test_auxiliary_relations_resolve_to_base(self, schema):
        controller = IntegrityController(schema)
        controller.add_constraint(
            "aux", "(forall x in beer@old)(x.alcohol >= 0)",
            triggers=[("INS", "beer")],
        )

    def test_action_reading_unknown_relation_rejected(self, schema):
        controller = IntegrityController(schema)
        with pytest.raises(UnknownRelationError):
            controller.add_constraint(
                "bad",
                "(forall x in beer)(x.alcohol >= 0)",
                response="insert(beer, ghost)",
            )

    def test_action_may_read_own_temporaries(self, schema):
        controller = IntegrityController(schema)
        controller.add_constraint(
            "ok",
            "(forall x in beer)(x.alcohol >= 0)",
            response="t := select(beer, alcohol < 0); delete(beer, t)",
        )


class TestEnforcementModes:
    @pytest.mark.parametrize("mode", ["static", "dynamic"])
    def test_both_modes_enforce(self, db, schema, mode):
        controller = IntegrityController(schema, mode=mode)
        controller.add_rule(BEER_RULE_DOMAIN)
        session = Session(db, controller)
        result = session.execute(
            'begin insert(beer, ("bad", "ale", "heineken", -1.0)); end'
        )
        assert result.aborted
        assert controller.last_stats is not None
        assert controller.modifications == 1

    def test_static_and_dynamic_produce_same_transaction(self, schema):
        from repro.algebra.parser import parse_transaction

        static = IntegrityController(schema, mode="static", differential=False)
        dynamic = IntegrityController(schema, mode="dynamic", differential=False)
        for controller in (static, dynamic):
            controller.add_rule(BEER_RULE_DOMAIN)
            controller.add_rule(BEER_RULE_REFERENTIAL)
        txn_text = 'begin insert(beer, ("b", "ale", "heineken", 4.0)); end'
        static_result = static.modify_transaction(parse_transaction(txn_text))
        dynamic_result = dynamic.modify_transaction(parse_transaction(txn_text))
        assert static_result.statements == dynamic_result.statements

    def test_modify_program_inspection(self, schema):
        from repro.algebra.parser import parse_program

        controller = IntegrityController(schema)
        controller.add_rule(BEER_RULE_DOMAIN)
        program = parse_program('insert(beer, ("b", "ale", "h", 4.0))')
        modified = controller.modify_program(program)
        assert len(modified) == 2


class TestDirectChecking:
    def test_violated_constraints_empty_on_consistent_db(self, db, schema):
        controller = IntegrityController(schema)
        controller.add_rule(BEER_RULE_DOMAIN)
        controller.add_rule(BEER_RULE_REFERENTIAL)
        assert controller.violated_constraints(db) == []

    def test_violated_constraints_reports_names(self, db, schema):
        controller = IntegrityController(schema)
        controller.add_rule(BEER_RULE_DOMAIN)
        controller.add_rule(BEER_RULE_REFERENTIAL)
        db.load("beer", [("rogue", "ale", "nowhere", -2.0)])
        assert controller.violated_constraints(db) == ["R1", "R2"]

    def test_validate_rules_returns_graph(self, schema):
        controller = IntegrityController(schema)
        controller.add_rule(BEER_RULE_DOMAIN)
        graph = controller.validate_rules()
        assert graph.is_acyclic


class TestPlannedEnforcement:
    """The physical-plan backend of the controller (engine switch)."""

    def test_rules_precompile_plans_at_definition_time(self, schema):
        from repro.algebra import planner

        planner.clear_plan_cache()
        controller = IntegrityController(schema)
        controller.add_rule(BEER_RULE_DOMAIN)
        controller.add_rule(BEER_RULE_REFERENTIAL)
        assert planner.plan_cache_info()["size"] > 0

    def test_planned_and_naive_audits_agree(self, db, schema):
        controller = IntegrityController(schema)
        controller.add_rule(BEER_RULE_DOMAIN)
        controller.add_rule(BEER_RULE_REFERENTIAL)
        db.load("beer", [("rogue", "ale", "nowhere", -2.0)])
        planned = controller.violated_constraints(db, engine="planned")
        naive = controller.violated_constraints(db, engine="naive")
        assert planned == naive == ["R1", "R2"]

    def test_install_indexes_creates_referential_indexes(self, db, schema):
        controller = IntegrityController(schema)
        # An aborting referential rule translates to an antijoin, whose
        # probe/build sides both produce index hints.  (The compensating
        # BEER_RULE_REFERENTIAL uses a diff of projections — no joins, so
        # legitimately no hints.)
        controller.add_rule(
            """
            RULE fk_abort
            IF NOT (forall x)(x in beer =>
                   (exists y)(y in brewery and x.brewery = y.name))
            THEN abort
            """
        )
        installed = controller.install_indexes(db)
        assert ("beer", ("brewery",)) in installed
        assert ("brewery", ("name",)) in installed
        assert db.relation("beer").built_index((2,)) is not None
        # Audits keep working (and now run off the indexes).
        assert controller.violated_constraints(db) == []

    def test_naive_engine_controller_enforces_identically(self, db, schema):
        from repro.engine import Session

        naive = IntegrityController(schema, engine="naive")
        naive.add_rule(BEER_RULE_DOMAIN)
        session = Session(db, naive, engine="naive")
        result = session.execute(
            'begin insert(beer, ("bad", "ale", "heineken", -1.0)); end'
        )
        assert result.aborted
