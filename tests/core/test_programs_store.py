"""Integrity programs and the compiled store (Def 6.3, Algs 6.1-6.2)."""

import pytest

from repro.algebra.parser import parse_program
from repro.algebra.programs import Program
from repro.calculus.parser import parse_constraint
from repro.core.programs import IntegrityProgram, IntegrityProgramStore, get_int_p
from repro.core.rules import IntegrityRule
from repro.core.triggers import DEL, INS


@pytest.fixture
def domain_rule():
    return IntegrityRule(parse_constraint("(forall x in r)(x.a > 0)"), name="dom")


@pytest.fixture
def fk_rule():
    return IntegrityRule(
        parse_constraint("(forall x in r)(exists y in s)(x.a = y.c)"), name="fk"
    )


class TestGetIntP:
    def test_compiles_triggers_and_program(self, rs_pair, domain_rule):
        compiled = get_int_p(domain_rule, rs_pair)
        assert compiled.name == "dom"
        assert compiled.triggers == {(INS, "r")}
        assert len(compiled.program) == 1

    def test_differential_variants_attached(self, rs_pair, fk_rule):
        compiled = get_int_p(fk_rule, rs_pair, differential=True)
        assert compiled.differentials is not None
        assert set(compiled.differentials) == {(INS, "r"), (DEL, "s")}

    def test_without_optimization(self, rs_pair, domain_rule):
        compiled = get_int_p(domain_rule, rs_pair, optimize=False)
        assert compiled.differentials is None
        assert len(compiled.program) == 1


class TestActionFor:
    def test_full_program_without_differentials(self, rs_pair, domain_rule):
        compiled = get_int_p(domain_rule, rs_pair)
        assert compiled.action_for({(INS, "r")}) is compiled.program

    def test_differential_selects_matched_variant(self, rs_pair, fk_rule):
        compiled = get_int_p(fk_rule, rs_pair, differential=True)
        ins_only = compiled.action_for({(INS, "r")})
        assert ins_only == compiled.differentials[(INS, "r")]

    def test_differential_union_of_variants(self, rs_pair, fk_rule):
        compiled = get_int_p(fk_rule, rs_pair, differential=True)
        both = compiled.action_for({(INS, "r"), (DEL, "s")})
        assert len(both) == 2

    def test_unexpected_trigger_falls_back_to_full(self, rs_pair, fk_rule):
        compiled = get_int_p(fk_rule, rs_pair, differential=True)
        assert compiled.action_for({(DEL, "r")}) is compiled.program


class TestStore:
    def test_add_get_remove(self, rs_pair, domain_rule):
        store = IntegrityProgramStore()
        compiled = get_int_p(domain_rule, rs_pair)
        store.add(compiled)
        assert "dom" in store
        assert store.get("dom") is compiled
        assert len(store) == 1
        store.remove("dom")
        assert "dom" not in store and len(store) == 0

    def test_duplicate_name_rejected(self, rs_pair, domain_rule):
        store = IntegrityProgramStore()
        store.add(get_int_p(domain_rule, rs_pair))
        with pytest.raises(KeyError):
            store.add(get_int_p(domain_rule, rs_pair))

    def test_sel_ps_matches_on_intersection(self, rs_pair, domain_rule, fk_rule):
        store = IntegrityProgramStore()
        store.add(get_int_p(domain_rule, rs_pair))
        store.add(get_int_p(fk_rule, rs_pair))
        matched = store.sel_ps(parse_program("insert(r, (1, 2))"))
        assert [program.name for program in matched] == ["dom", "fk"]
        matched = store.sel_ps(parse_program("delete(s, (1, 2))"))
        assert [program.name for program in matched] == ["fk"]
        assert store.sel_ps(parse_program("delete(r, (1, 2))")) == []

    def test_trig_p_concatenates_in_insertion_order(self, rs_pair, domain_rule, fk_rule):
        store = IntegrityProgramStore()
        store.add(get_int_p(domain_rule, rs_pair))
        store.add(get_int_p(fk_rule, rs_pair))
        combined = store.trig_p(parse_program("insert(r, (1, 2))"))
        assert len(combined) == 2

    def test_trig_p_empty_for_non_triggering_program(self, rs_pair, domain_rule):
        store = IntegrityProgramStore()
        store.add(get_int_p(domain_rule, rs_pair))
        quiet = Program(
            parse_program("insert(r, (1, 2))").statements, non_triggering=True
        )
        assert store.trig_p(quiet).is_empty

    def test_trig_p_skips_vacuous_differentials(self, rs_pair):
        rule = IntegrityRule(
            parse_constraint("(forall x in r)(x.a > 0)"),
            triggers=[("INS", "r"), ("DEL", "r")],
            name="dom2",
        )
        store = IntegrityProgramStore()
        store.add(get_int_p(rule, rs_pair, differential=True))
        # A pure delete cannot violate the domain constraint: nothing added.
        assert store.trig_p(parse_program("delete(r, (1, 2))")).is_empty

    def test_non_triggering_program_flag_stored(self, rs_pair):
        program = Program(
            parse_program("insert(r, (1, 2))").statements, non_triggering=True
        )
        compiled = IntegrityProgram("quiet", frozenset({(INS, "s")}), program)
        assert compiled.non_triggering
