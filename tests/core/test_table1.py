"""Table 1 regeneration: the seven construct families, verbatim shapes.

The paper's Table 1 ("Translation of typical constraint constructs") maps
CL constructs to aborting algebra programs.  These tests pin our translator
to those exact shapes on the beer schema, row by row.
"""

import pytest

from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra.pretty import render_mathy_statement
from repro.algebra.statements import Alarm
from repro.calculus.parser import parse_constraint
from repro.core.translation import table1_form, trans_c
from repro.engine import DatabaseSchema, RelationSchema
from repro.engine.types import INT


@pytest.fixture
def rs():
    return DatabaseSchema(
        [
            RelationSchema("r", [("i", INT), ("a", INT)]),
            RelationSchema("s", [("j", INT), ("b", INT)]),
        ]
    )


class TestRow1Domain:
    """(forall x)(x in R => c(x))  ->  alarm(sigma_not_c(R))"""

    def test_shape(self, rs):
        statement = table1_form(parse_constraint("(forall x in r)(x.a > 0)"), rs)
        assert statement == Alarm(
            E.Select(E.RelationRef("r"), P.Comparison("<=", P.ColRef("a"), P.Const(0)))
        )

    def test_rendering(self, rs):
        statement = table1_form(parse_constraint("(forall x in r)(x.a > 0)"), rs)
        assert render_mathy_statement(statement) == "alarm(σ[a≤0](r))"


class TestRow2Referential:
    """(forall x)(x in R => (exists y)(y in S and x.i = y.j))
    ->  alarm(R antijoin_{i=j} S)"""

    TEXT = "(forall x in r)(exists y in s)(x.i = y.j)"

    def test_shape(self, rs):
        statement = table1_form(parse_constraint(self.TEXT), rs)
        assert statement == Alarm(
            E.AntiJoin(
                E.RelationRef("r"),
                E.RelationRef("s"),
                P.Comparison("=", P.ColRef("i", "left"), P.ColRef("j", "right")),
            )
        )

    def test_rendering(self, rs):
        statement = table1_form(parse_constraint(self.TEXT), rs)
        assert render_mathy_statement(statement) == "alarm((r ⊳[x.i=y.j] s))"


class TestRow3Exclusion:
    """(forall x)(x in R => (forall y)(y in S => x.i != y.j))
    ->  alarm(R semijoin_{i=j} S)"""

    TEXT = "(forall x in r)(forall y in s)(x.i != y.j)"

    def test_shape(self, rs):
        statement = table1_form(parse_constraint(self.TEXT), rs)
        assert statement == Alarm(
            E.SemiJoin(
                E.RelationRef("r"),
                E.RelationRef("s"),
                P.Comparison("=", P.ColRef("i", "left"), P.ColRef("j", "right")),
            )
        )

    def test_rendering(self, rs):
        statement = table1_form(parse_constraint(self.TEXT), rs)
        assert render_mathy_statement(statement) == "alarm((r ⋉[x.i=y.j] s))"


class TestRow4TwoVariableUniversal:
    """(forall x,y)((x in R and y in S and c1(x,y)) => c2(x,y))
    ->  alarm(sigma_not_c2(R join_c1 S))"""

    TEXT = (
        "(forall x, y)((x in r and y in s and x.i = y.j) => x.a <= y.b)"
    )

    def test_shape(self, rs):
        statement = table1_form(parse_constraint(self.TEXT), rs)
        assert statement == Alarm(
            E.Select(
                E.Join(
                    E.RelationRef("r"),
                    E.RelationRef("s"),
                    P.Comparison("=", P.ColRef("i", "left"), P.ColRef("j", "right")),
                ),
                P.Comparison(">", P.ColRef("a", "left"), P.ColRef("b", "right")),
            )
        )

    def test_rendering(self, rs):
        statement = table1_form(parse_constraint(self.TEXT), rs)
        assert (
            render_mathy_statement(statement)
            == "alarm(σ[x.a>y.b]((r ⋈[x.i=y.j] s)))"
        )

    def test_general_translator_equivalent_semijoin_form(self, rs):
        # trans_c produces the semijoin form; both are alarm-equivalent.
        program = trans_c(parse_constraint(self.TEXT), rs)
        assert isinstance(program.statements[0].expr, E.SemiJoin)


class TestRow5Existential:
    """(exists x)(x in R and c(x))
    ->  alarm(sigma_{cnt=0}(CNT(sigma_c(R))))"""

    TEXT = "(exists x in r)(x.a > 10)"

    def test_shape(self, rs):
        statement = table1_form(parse_constraint(self.TEXT), rs)
        assert statement == Alarm(
            E.Select(
                E.Count(
                    E.Select(
                        E.RelationRef("r"),
                        P.Comparison(">", P.ColRef("a"), P.Const(10)),
                    )
                ),
                P.Comparison("=", P.ColRef(1), P.Const(0)),
            )
        )

    def test_rendering(self, rs):
        statement = table1_form(parse_constraint(self.TEXT), rs)
        assert (
            render_mathy_statement(statement)
            == "alarm(σ[1=0](CNT(σ[a>10](r))))"
        )


class TestRow6Aggregate:
    """c(AGGR(R, i))  ->  alarm(sigma_not_c(AGGR(R, i)))"""

    def test_shape(self, rs):
        statement = table1_form(parse_constraint("SUM(r, a) <= 100"), rs)
        assert statement == Alarm(
            E.Select(
                E.Aggregate(E.RelationRef("r"), "SUM", "a"),
                P.Comparison(">", P.ColRef(1), P.Const(100)),
            )
        )

    @pytest.mark.parametrize("func", ["SUM", "AVG", "MIN", "MAX"])
    def test_all_aggregate_functions(self, rs, func):
        statement = table1_form(parse_constraint(f"{func}(r, a) >= 0"), rs)
        assert isinstance(statement.expr.input, E.Aggregate)
        assert statement.expr.input.func == func


class TestRow7Count:
    """c(CNT(R))  ->  alarm(sigma_not_c(CNT(R)))"""

    def test_shape(self, rs):
        statement = table1_form(parse_constraint("CNT(r) <= 1000"), rs)
        assert statement == Alarm(
            E.Select(
                E.Count(E.RelationRef("r")),
                P.Comparison(">", P.ColRef(1), P.Const(1000)),
            )
        )

    def test_rendering(self, rs):
        statement = table1_form(parse_constraint("CNT(r) <= 1000"), rs)
        assert render_mathy_statement(statement) == "alarm(σ[1>1000](CNT(r)))"


class TestNonMatching:
    def test_unmatched_construct_returns_none_or_general(self, rs):
        # A constraint outside all seven families still translates via the
        # general path (or returns None if untranslatable).
        statement = table1_form(
            parse_constraint("(forall x in r)(x.a <= CNT(s))"), rs
        )
        assert statement is not None
