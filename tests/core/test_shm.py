"""Shared-memory transport: descriptors, refcounting, executor leak checks."""

import time

import pytest

from repro.core import shm
from repro.core.shm import ShmTransport


def make_transport(**kwargs):
    kwargs.setdefault("min_bytes", 1)
    return ShmTransport(**kwargs)


class TestShipAndLoad:
    def test_small_blobs_stay_on_the_pipe(self):
        transport = ShmTransport(min_bytes=1 << 20)
        descriptor = transport.ship(b"tiny", readers=3)
        assert descriptor == ("pipe", b"tiny")
        assert transport.live_segments() == ()
        assert transport.bytes_shipped == 0
        blob, ack = shm.load(descriptor)
        assert (blob, ack) == (b"tiny", None)

    def test_disabled_transport_always_pipes(self):
        transport = ShmTransport(min_bytes=1, enabled=False)
        assert transport.ship(b"x" * 1000, readers=2)[0] == "pipe"

    @pytest.mark.skipif(not shm.SHM_AVAILABLE, reason="no shared memory")
    def test_large_blobs_go_through_a_segment(self):
        transport = make_transport()
        payload = b"y" * 4096
        descriptor = transport.ship(payload, readers=1)
        try:
            assert descriptor[0] == "shm" and descriptor[2] == len(payload)
            assert transport.bytes_shipped == len(payload)
            assert transport.live_segments() == (descriptor[1],)
            blob, ack = shm.load(descriptor)
            assert blob == payload and ack == descriptor[1]
        finally:
            transport.release_all()


@pytest.mark.skipif(not shm.SHM_AVAILABLE, reason="no shared memory")
class TestRefcounting:
    def test_segment_unlinks_after_last_ack(self):
        transport = make_transport()
        descriptor = transport.ship(b"z" * 100, readers=2)
        name = descriptor[1]
        transport.ack(name)
        assert transport.live_segments() == (name,)
        transport.ack(name)
        assert transport.live_segments() == ()
        # Attaching a drained segment must fail: it is gone, not leaked.
        with pytest.raises(FileNotFoundError):
            shm._attach(name)

    def test_reship_extends_lifetime(self):
        transport = make_transport()
        descriptor = transport.ship(b"w" * 100, readers=1)
        assert transport.reship(descriptor, readers=1) == descriptor
        transport.ack(descriptor[1])
        assert transport.live_segments() == (descriptor[1],)
        transport.ack(descriptor[1])
        assert transport.live_segments() == ()

    def test_reship_after_drain_signals_reshipment_needed(self):
        transport = make_transport()
        descriptor = transport.ship(b"v" * 100, readers=1)
        transport.ack(descriptor[1])
        assert transport.reship(descriptor) is None

    def test_reship_passes_pipe_descriptors_through(self):
        transport = make_transport()
        assert transport.reship(("pipe", b"k")) == ("pipe", b"k")

    def test_stale_ack_is_ignored(self):
        transport = make_transport()
        transport.ack("no-such-segment")  # must not raise

    def test_release_all_force_unlinks(self):
        transport = make_transport()
        first = transport.ship(b"a" * 100, readers=5)
        second = transport.ship(b"b" * 100, readers=5)
        transport.release_all()
        assert transport.live_segments() == ()
        for descriptor in (first, second):
            with pytest.raises(FileNotFoundError):
                shm._attach(descriptor[1])


@pytest.mark.skipif(not shm.SHM_AVAILABLE, reason="no shared memory")
class TestExecutorIntegration:
    """End-to-end: the process executor drains every segment it ships."""

    def _fixture(self):
        from repro.core.subsystem import IntegrityController
        from repro.engine import Database, DatabaseSchema, RelationSchema
        from repro.engine.types import INT

        db_schema = DatabaseSchema(
            [
                RelationSchema("fk", [("id", INT), ("ref", INT)]),
                RelationSchema("pk", [("key", INT)]),
            ]
        )
        database = Database(db_schema)
        database.load("pk", [(k,) for k in range(10)])
        database.load("fk", [(i, i % 10) for i in range(20)])
        controller = IntegrityController(db_schema)
        controller.add_constraint(
            "fk_ref",
            "(forall x)(x in fk => (exists y)(y in pk and x.ref = y.key))",
        )
        controller.add_constraint(
            "fk_id", "(forall x)(x in fk => x.id >= 0)"
        )
        return database, controller

    def test_no_segment_survives_a_drained_pool(self):
        from repro.core.procpool import ProcessAuditExecutor
        from repro.engine import Session

        database, controller = self._fixture()
        result = Session(database).execute("begin insert(fk, (100, 3)); end")
        assert result.committed
        records, _ = database.commit_log.since(0)
        pool = ProcessAuditExecutor(
            controller, database, workers=2, shm_min_bytes=1
        )
        try:
            pool.replicate(records)
            tasks = controller.audit_tasks(database, result)
            futures = [
                pool.submit(task, (records[-1].sequence,)) for task in tasks
            ]
            outcomes = [future.result() for future in futures]
            assert [outcome.failed for outcome in outcomes] == [False, False]
            assert pool._transport.bytes_shipped > 0
            # Replication fanned out to both workers; tasks each shipped
            # once more.  Every segment must drain as acks come back.
            deadline = time.monotonic() + 10.0
            while pool._transport.live_segments():
                assert time.monotonic() < deadline, (
                    f"leaked segments: {pool._transport.live_segments()}"
                )
                pool.reap_acks()
                time.sleep(0.01)
        finally:
            pool.shutdown()
        assert pool._transport.live_segments() == ()

    def test_verdicts_identical_with_and_without_shm(self):
        from repro.core.procpool import ProcessAuditExecutor
        from repro.engine import Session

        verdicts = {}
        for min_bytes in (1, 1 << 30):  # everything-shm vs everything-pipe
            database, controller = self._fixture()
            result = Session(database).execute(
                "begin insert(fk, (7, 55)); end"
            )
            assert result.committed
            records, _ = database.commit_log.since(0)
            pool = ProcessAuditExecutor(
                controller, database, workers=1, shm_min_bytes=min_bytes
            )
            try:
                pool.replicate(records)
                tasks = controller.audit_tasks(database, result)
                outcomes = [
                    pool.submit(task, (records[-1].sequence,)).result()
                    for task in tasks
                ]
                verdicts[min_bytes] = sorted(
                    (o.rule, o.violated, o.failed) for o in outcomes
                )
            finally:
                pool.shutdown()
        assert verdicts[1] == verdicts[1 << 30]
        # (7, 55) references a missing pk key: the referential rule fires.
        assert ("fk_ref", True, False) in verdicts[1]
