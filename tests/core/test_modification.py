"""ModT / ModP: the transaction modification fixpoint (Algs 5.1-5.3, 6.2)."""

import pytest

from repro.algebra.parser import parse_program, parse_transaction
from repro.algebra.programs import Program
from repro.algebra.statements import Alarm
from repro.calculus.parser import parse_constraint
from repro.core.modification import (
    DynamicSelector,
    ModificationStats,
    StaticSelector,
    mod_p,
    mod_t,
)
from repro.core.programs import IntegrityProgramStore, get_int_p
from repro.core.rules import IntegrityRule
from repro.core.translation import CheckConstraint
from repro.engine import DatabaseSchema, RelationSchema
from repro.engine.types import INT
from repro.errors import IntegrityError


@pytest.fixture
def abc_schema():
    return DatabaseSchema(
        [
            RelationSchema("a", [("x", INT)]),
            RelationSchema("b", [("x", INT)]),
            RelationSchema("c", [("x", INT)]),
        ]
    )


def make_store(rules, schema, differential=False):
    store = IntegrityProgramStore()
    for rule in rules:
        store.add(get_int_p(rule, schema, differential=differential))
    return store


class TestFixpoint:
    def test_no_rules_returns_same_program(self, abc_schema):
        program = parse_program("insert(a, (1,))")
        selector = StaticSelector(make_store([], abc_schema))
        assert mod_p(program, selector) is program

    def test_no_matching_triggers_returns_same(self, abc_schema):
        rule = IntegrityRule(parse_constraint("(forall x in b)(x.x > 0)"), name="rb")
        selector = StaticSelector(make_store([rule], abc_schema))
        program = parse_program("insert(a, (1,))")
        assert mod_p(program, selector) is program

    def test_aborting_rule_appended_once(self, abc_schema):
        rule = IntegrityRule(parse_constraint("(forall x in a)(x.x > 0)"), name="ra")
        selector = StaticSelector(make_store([rule], abc_schema))
        program = parse_program("insert(a, (1,))")
        stats = ModificationStats()
        modified = mod_p(program, selector, stats=stats)
        assert len(modified) == 2
        assert isinstance(modified.statements[1], Alarm)
        assert stats.rounds == 1
        assert stats.selected_rule_names == ["ra"]

    def test_read_only_transaction_unmodified(self, abc_schema):
        rule = IntegrityRule(parse_constraint("(forall x in a)(x.x > 0)"), name="ra")
        selector = StaticSelector(make_store([rule], abc_schema))
        txn = parse_transaction("begin t := select(a, x > 0); end")
        assert mod_t(txn, selector) is txn

    def test_mod_t_renames(self, abc_schema):
        rule = IntegrityRule(parse_constraint("(forall x in a)(x.x > 0)"), name="ra")
        selector = StaticSelector(make_store([rule], abc_schema))
        txn = parse_transaction("begin insert(a, (1,)); end")
        modified = mod_t(txn, selector)
        assert modified is not txn
        assert modified.name.endswith("+ic")


class TestCascades:
    def chain_rules(self):
        """A compensating chain: updates to a repair into b, b into c."""
        rule_ab = IntegrityRule(
            parse_constraint("(forall x in a)(exists y in b)(x.x = y.x)"),
            action=parse_program("insert(b, diff(a, b))"),
            name="ab",
        )
        rule_bc = IntegrityRule(
            parse_constraint("(forall x in b)(exists y in c)(x.x = y.x)"),
            action=parse_program("insert(c, diff(b, c))"),
            name="bc",
        )
        return [rule_ab, rule_bc]

    def test_transitive_triggering(self, abc_schema):
        selector = StaticSelector(make_store(self.chain_rules(), abc_schema))
        program = parse_program("insert(a, (1,))")
        stats = ModificationStats()
        modified = mod_p(program, selector, stats=stats)
        # Round 1 appends ab's repair (insert into b); round 2 appends bc's
        # repair (insert into c); round 3 finds nothing new.
        assert stats.rounds == 2
        assert stats.selected_rule_names == ["ab", "bc"]
        assert len(modified) == 3

    def test_rule_reselected_across_rounds(self, abc_schema):
        # bc's action inserts into c; a second rule on c aborts -> the
        # alarm is appended after bc's repair.
        rules = self.chain_rules() + [
            IntegrityRule(parse_constraint("(forall x in c)(x.x > 0)"), name="cc")
        ]
        selector = StaticSelector(make_store(rules, abc_schema))
        program = parse_program("insert(a, (1,))")
        stats = ModificationStats()
        modified = mod_p(program, selector, stats=stats)
        assert stats.selected_rule_names == ["ab", "bc", "cc"]
        assert len(modified) == 4


class TestCycleGuard:
    def cyclic_rules(self):
        # Rule pushes tuples from a to b, rule2 pushes them back: a cycle.
        rule_ab = IntegrityRule(
            parse_constraint("(forall x in a)(exists y in b)(x.x = y.x)"),
            action=parse_program("insert(b, diff(a, b))"),
            name="ab",
        )
        rule_ba = IntegrityRule(
            parse_constraint("(forall x in b)(exists y in a)(x.x = y.x)"),
            action=parse_program("insert(a, diff(b, a))"),
            name="ba",
        )
        return [rule_ab, rule_ba]

    def test_cycle_hits_round_limit(self, abc_schema):
        selector = StaticSelector(make_store(self.cyclic_rules(), abc_schema))
        program = parse_program("insert(a, (1,))")
        with pytest.raises(IntegrityError, match="fixpoint"):
            mod_p(program, selector, max_rounds=10)

    def test_non_triggering_breaks_cycle(self, abc_schema):
        rule_ab, rule_ba = self.cyclic_rules()
        quiet_ba = IntegrityRule(
            rule_ba.condition,
            action=Program(rule_ba.action_program().statements, non_triggering=True),
            name="ba_quiet",
        )
        selector = StaticSelector(make_store([rule_ab, quiet_ba], abc_schema))
        program = parse_program("insert(a, (1,))")
        modified = mod_p(program, selector)
        # ab repairs b, quiet_ba repairs a without re-triggering ab.
        assert len(modified) == 3


class TestSelectors:
    def rule(self):
        return IntegrityRule(parse_constraint("(forall x in a)(x.x > 0)"), name="ra")

    def test_static_and_dynamic_agree(self, abc_schema):
        rule = self.rule()
        static = StaticSelector(make_store([rule], abc_schema))
        dynamic = DynamicSelector([rule], abc_schema)
        program = parse_program("insert(a, (1,))")
        assert mod_p(program, static) == mod_p(program, dynamic)

    def test_dynamic_without_optimization(self, abc_schema):
        rule = self.rule()
        dynamic = DynamicSelector([rule], abc_schema, optimize=False)
        program = parse_program("insert(a, (1,))")
        modified = mod_p(program, dynamic)
        assert len(modified) == 2

    def test_idempotent_for_aborting_rules(self, abc_schema):
        rule = self.rule()
        selector = StaticSelector(make_store([rule], abc_schema))
        program = parse_program("insert(a, (1,))")
        once = mod_p(program, selector)
        twice = mod_p(once, selector)
        # Alarm statements carry no update triggers, so a second
        # modification pass appends the same alarm again only for the
        # original insert; the fixpoint was already reached.
        assert twice == once + Program([once.statements[1]])

    def test_differential_store_appends_specialized_program(self, abc_schema):
        rule = self.rule()
        store = make_store([rule], abc_schema, differential=True)
        program = parse_program("insert(a, (1,))")
        modified = mod_p(program, StaticSelector(store))
        alarm = modified.statements[1]
        from repro.algebra import expressions as E

        assert alarm.expr.input == E.Delta("a", "plus")
