"""OptC simplification and differential program specialization."""

import pytest

from repro.algebra import expressions as E
from repro.algebra.statements import Alarm
from repro.calculus import ast as C
from repro.calculus.parser import parse_constraint
from repro.core.optimization import (
    differential_programs,
    opt_c,
    opt_r,
    vacuous_triggers,
)
from repro.core.rules import IntegrityRule
from repro.core.translation import trans_c, trans_r
from repro.core.triggers import DEL, INS


class TestOptC:
    def test_double_negation(self):
        formula = parse_constraint("not not CNT(r) <= 10")
        assert opt_c(formula) == parse_constraint("CNT(r) <= 10")

    def test_and_true_elimination(self):
        formula = parse_constraint("(forall x in r)(1 = 1 and x.a > 0)")
        optimized = opt_c(formula)
        assert optimized == parse_constraint("(forall x in r)(x.a > 0)")

    def test_or_false_elimination(self):
        formula = parse_constraint("(forall x in r)(1 = 2 or x.a > 0)")
        assert opt_c(formula) == parse_constraint("(forall x in r)(x.a > 0)")

    def test_true_antecedent_elimination(self):
        formula = parse_constraint("(forall x in r)(1 = 1 => x.a > 0)")
        # The guard implication stays; the inner one simplifies.
        assert opt_c(formula) == parse_constraint("(forall x in r)(x.a > 0)")

    def test_false_consequent_becomes_negation(self):
        formula = parse_constraint("CNT(r) > 0 => 1 = 2")
        assert opt_c(formula) == C.Not(parse_constraint("CNT(r) > 0"))

    def test_opt_r_preserves_triggers_and_action(self):
        rule = IntegrityRule(
            parse_constraint("(forall x in r)(not not x.a > 0)"), name="t"
        )
        optimized = opt_r(rule)
        assert optimized.triggers == rule.triggers
        assert optimized.name == rule.name
        assert optimized.is_aborting
        assert optimized.condition == parse_constraint("(forall x in r)(x.a > 0)")


class TestDifferentialDomain:
    def test_domain_rule_specializes_to_plus(self, rs_pair):
        rule = IntegrityRule(parse_constraint("(forall x in r)(x.a > 0)"), name="d")
        program = trans_r(rule, rs_pair)
        variants = differential_programs(rule, program)
        assert variants is not None
        ins_program = variants[(INS, "r")]
        alarm = ins_program.statements[0]
        assert isinstance(alarm, Alarm)
        assert alarm.expr.input == E.Delta("r", "plus")
        assert alarm.expr.input.name == "r@plus"

    def test_domain_rule_del_variant_vacuous(self, rs_pair):
        rule = IntegrityRule(
            parse_constraint("(forall x in r)(x.a > 0)"),
            triggers=[("INS", "r"), ("DEL", "r")],
            name="d2",
        )
        program = trans_r(rule, rs_pair)
        variants = differential_programs(rule, program)
        assert variants[(DEL, "r")].is_empty
        assert vacuous_triggers(rule, program) == [(DEL, "r")]


class TestDifferentialReferential:
    @pytest.fixture
    def rule_and_program(self, rs_pair):
        rule = IntegrityRule(
            parse_constraint("(forall x in r)(exists y in s)(x.a = y.c)"),
            name="fk",
        )
        return rule, trans_r(rule, rs_pair)

    def test_triggers(self, rule_and_program):
        rule, _ = rule_and_program
        assert rule.triggers == {(INS, "r"), (DEL, "s")}

    def test_ins_referer_probes_plus(self, rule_and_program):
        rule, program = rule_and_program
        variants = differential_programs(rule, program)
        alarm = variants[(INS, "r")].statements[0]
        assert isinstance(alarm.expr, E.AntiJoin)
        assert alarm.expr.left == E.Delta("r", "plus")
        assert alarm.expr.right == E.RelationRef("s")

    def test_del_target_checks_affected_referers(self, rule_and_program):
        rule, program = rule_and_program
        variants = differential_programs(rule, program)
        alarm = variants[(DEL, "s")].statements[0]
        expr = alarm.expr
        assert isinstance(expr, E.AntiJoin)
        assert isinstance(expr.left, E.SemiJoin)
        assert expr.left.right == E.Delta("s", "minus")
        assert expr.right == E.RelationRef("s")


class TestDifferentialExclusion:
    def test_exclusion_specializes_both_inserts(self, rs_pair):
        rule = IntegrityRule(
            parse_constraint("(forall x in r)(forall y in s)(x.a != y.c)"),
            name="ex",
        )
        program = trans_r(rule, rs_pair)
        variants = differential_programs(rule, program)
        assert variants is not None
        left = variants[(INS, "r")].statements[0].expr
        assert left.left == E.Delta("r", "plus")
        right = variants[(INS, "s")].statements[0].expr
        assert right.right == E.Delta("s", "plus")


class TestUnsupportedShapes:
    def test_compensating_rules_not_specialized(self, rs_pair):
        from repro.algebra.parser import parse_program

        rule = IntegrityRule(
            parse_constraint("(forall x in r)(x.a > 0)"),
            action=parse_program("delete(r, where a <= 0)"),
            name="comp",
        )
        assert differential_programs(rule, rule.action_program()) is None

    def test_aggregate_rules_not_specialized(self, rs_pair):
        rule = IntegrityRule(parse_constraint("CNT(r) <= 10"), name="agg")
        program = trans_r(rule, rs_pair)
        assert differential_programs(rule, program) is None
        assert vacuous_triggers(rule, program) == []

    def test_multi_statement_program_not_specialized(self, rs_pair):
        from repro.algebra.parser import parse_program

        rule = IntegrityRule(parse_constraint("(forall x in r)(x.a > 0)"), name="m")
        assert (
            differential_programs(rule, parse_program("abort; abort")) is None
        )
