"""Automatic trigger-set generation (paper Alg 5.7)."""

import pytest

from repro.calculus.parser import parse_constraint
from repro.core.trigger_generation import generate_triggers
from repro.core.triggers import DEL, INS


def triggers_of(text):
    return generate_triggers(parse_constraint(text))


class TestPaperExamples:
    def test_domain_rule_r1(self):
        # Example 4.2: WHEN INS(beer)
        assert triggers_of("(forall x)(x in beer => x.alcohol >= 0)") == {
            (INS, "beer")
        }

    def test_referential_rule_r2(self):
        # Example 4.2: WHEN INS(beer), DEL(brewery)
        assert triggers_of(
            "(forall x)(x in beer => "
            "(exists y)(y in brewery and x.brewery = y.name))"
        ) == {(INS, "beer"), (DEL, "brewery")}


class TestPolarity:
    def test_universal_membership_gives_ins(self):
        assert triggers_of("(forall x in r)(x.a > 0)") == {(INS, "r")}

    def test_existential_membership_gives_del(self):
        assert triggers_of("(exists x in r)(x.a > 0)") == {(DEL, "r")}

    def test_negated_universal_flips(self):
        # not (forall x in r)(c) behaves existentially for x.
        assert triggers_of("not (forall x in r)(x.a > 0)") == {(DEL, "r")}

    def test_negated_existential_flips(self):
        assert triggers_of("not (exists x in r)(x.a < 0)") == {(INS, "r")}

    def test_double_negation_restores(self):
        assert triggers_of("not not (forall x in r)(x.a > 0)") == {(INS, "r")}

    def test_exclusion_constraint_two_inserts(self):
        # (forall x in r)(forall y in s)(x.a != y.c): both inserts can violate.
        assert triggers_of(
            "(forall x in r)(forall y in s)(x.a != y.c)"
        ) == {(INS, "r"), (INS, "s")}

    def test_implication_antecedent_negated_context(self):
        # x in r sits in the antecedent: GenTrigN applies, x universal -> INS.
        assert triggers_of("(forall x)(x in r => x in s)") == {
            (INS, "r"),
            (DEL, "s"),
        }

    def test_conjunction_and_disjunction_union(self):
        assert triggers_of(
            "(forall x in r)(x.a > 0) and (exists y in s)(y.c = 1)"
        ) == {(INS, "r"), (DEL, "s")}
        assert triggers_of(
            "(forall x in r)(x.a > 0) or (exists y in s)(y.c = 1)"
        ) == {(INS, "r"), (DEL, "s")}


class TestAggregateTerms:
    def test_aggregate_triggers_both_kinds(self):
        assert triggers_of("SUM(emp, salary) <= 100") == {
            (INS, "emp"),
            (DEL, "emp"),
        }

    def test_cnt_triggers_both_kinds(self):
        assert triggers_of("CNT(r) < 10") == {(INS, "r"), (DEL, "r")}

    def test_mlt_triggers_both_kinds(self):
        assert triggers_of("MLT(r) < 10") == {(INS, "r"), (DEL, "r")}

    def test_aggregates_inside_arithmetic(self):
        assert triggers_of("SUM(r, 1) + CNT(s) <= 100") == {
            (INS, "r"),
            (DEL, "r"),
            (INS, "s"),
            (DEL, "s"),
        }

    def test_aggregate_in_quantified_body(self):
        assert triggers_of("(forall x in r)(x.a <= CNT(s))") == {
            (INS, "r"),
            (INS, "s"),
            (DEL, "s"),
        }


class TestTransitionConstraints:
    def test_old_state_is_its_own_relation(self):
        found = triggers_of(
            "(forall x in emp)(forall o in emp@old)"
            "(x.id != o.id or x.salary >= o.salary)"
        )
        # Both emp and emp@old memberships act universally -> INS triggers;
        # emp@old can never receive inserts at runtime, which is harmless.
        assert (INS, "emp") in found

    def test_tuple_equality_contributes_nothing(self):
        assert triggers_of("(forall x in r)(exists y in r)(x = y)") == {
            (INS, "r"),
            (DEL, "r"),
        }
