"""Triggering graphs: cycles and suppression (Section 6.1)."""

import pytest

from repro.algebra.parser import parse_program
from repro.algebra.programs import Program
from repro.calculus.parser import parse_constraint
from repro.core.rules import IntegrityRule
from repro.core.triggering_graph import TriggeringGraph
from repro.errors import TriggerCycleError


def compensating(name, condition, action):
    return IntegrityRule(
        parse_constraint(condition), action=parse_program(action), name=name
    )


def aborting(name, condition):
    return IntegrityRule(parse_constraint(condition), name=name)


@pytest.fixture
def chain():
    return [
        compensating(
            "ab", "(forall x in a)(exists y in b)(x.x = y.x)", "insert(b, diff(a, b))"
        ),
        compensating(
            "bc", "(forall x in b)(exists y in c)(x.x = y.x)", "insert(c, diff(b, c))"
        ),
        aborting("cc", "(forall x in c)(x.x > 0)"),
    ]


@pytest.fixture
def cycle():
    return [
        compensating(
            "ab", "(forall x in a)(exists y in b)(x.x = y.x)", "insert(b, diff(a, b))"
        ),
        compensating(
            "ba", "(forall x in b)(exists y in a)(x.x = y.x)", "insert(a, diff(b, a))"
        ),
    ]


class TestGraphStructure:
    def test_aborting_rules_have_no_out_edges(self, chain):
        graph = TriggeringGraph(chain)
        assert graph.successors("cc") == ()

    def test_chain_edges(self, chain):
        graph = TriggeringGraph(chain)
        assert set(graph.edges) == {("ab", "bc"), ("bc", "cc")}
        assert graph.vertices == ("ab", "bc", "cc")

    def test_acyclic_chain(self, chain):
        graph = TriggeringGraph(chain)
        assert graph.is_acyclic
        assert graph.cycles() == []
        graph.validate()  # no raise
        assert graph.triggering_depth() == 2

    def test_self_loop_detected(self):
        # A rule whose repair updates its own triggering relation.
        rule = compensating(
            "self", "(forall x in a)(x.x > 0)", "delete(a, where x <= 0); insert(a, {(1,)})"
        )
        graph = TriggeringGraph([rule])
        assert not graph.is_acyclic
        assert graph.cycles() == [["self"]]


class TestCycles:
    def test_two_cycle_detected(self, cycle):
        graph = TriggeringGraph(cycle)
        assert not graph.is_acyclic
        assert sorted(sorted(c) for c in graph.cycles()) == [["ab", "ba"]]

    def test_validate_raises_with_cycle_description(self, cycle):
        graph = TriggeringGraph(cycle)
        with pytest.raises(TriggerCycleError) as excinfo:
            graph.validate()
        assert "ab" in str(excinfo.value) and "ba" in str(excinfo.value)

    def test_triggering_depth_raises_on_cycle(self, cycle):
        with pytest.raises(TriggerCycleError):
            TriggeringGraph(cycle).triggering_depth()

    def test_non_triggering_action_removes_edges(self, cycle):
        ab, ba = cycle
        quiet_ba = IntegrityRule(
            ba.condition,
            action=Program(ba.action_program().statements, non_triggering=True),
            name="ba",
        )
        graph = TriggeringGraph([ab, quiet_ba])
        assert graph.is_acyclic
        assert set(graph.edges) == {("ab", "ba")}

    def test_suggest_non_triggering(self, cycle):
        graph = TriggeringGraph(cycle)
        suggestions = graph.suggest_non_triggering()
        assert len(suggestions) == 1
        assert suggestions[0] in ("ab", "ba")

    def test_suggest_empty_for_acyclic(self, chain):
        assert TriggeringGraph(chain).suggest_non_triggering() == []

    def test_repr_mentions_cyclicity(self, cycle, chain):
        assert "CYCLIC" in repr(TriggeringGraph(cycle))
        assert "acyclic" in repr(TriggeringGraph(chain))
