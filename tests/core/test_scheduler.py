"""The audit scheduler: draining, fan-out, poison tasks, session modes."""

import pytest

from repro.core.scheduler import AuditScheduler, RuleAuditTask
from repro.core.subsystem import IntegrityController
from repro.engine import Database, DatabaseSchema, RelationSchema, Session
from repro.engine.commitlog import CommitLog
from repro.engine.types import INT


def schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("fk", [("id", INT), ("ref", INT)]),
            RelationSchema("pk", [("key", INT)]),
        ]
    )


RULES = {
    "fk_ref": "(forall x)(x in fk => (exists y)(y in pk and x.ref = y.key))",
    "fk_id": "(forall x)(x in fk => x.id >= 0)",
}


@pytest.fixture
def db():
    database = Database(schema())
    database.load("pk", [(k,) for k in range(10)])
    database.load("fk", [(i, i % 10) for i in range(20)])
    return database


@pytest.fixture
def controller():
    built = IntegrityController(schema())
    for name, condition in RULES.items():
        built.add_constraint(name, condition)
    return built


def _commit(db, text):
    result = Session(db).execute(text)
    assert result.committed
    return result


class TestAuditTasks:
    def test_one_task_per_affected_rule(self, db, controller):
        result = _commit(db, "begin insert(fk, (100, 3)); end")
        tasks = controller.audit_tasks(db, result)
        assert {task.rule_name for task in tasks} == set(RULES)
        assert all(task.kind == "delta" for task in tasks)

    def test_unaffected_rules_produce_no_task(self, db, controller):
        # Inserting a *target* is vacuous for the referential rule and
        # untriggering for the id rule.
        result = _commit(db, "begin insert(pk, (77,)); end")
        assert controller.audit_tasks(db, result) == []

    def test_task_verdicts_match_inline(self, db, controller):
        result = _commit(db, "begin insert(fk, (-5, 55)); end")
        inline = set(controller.violated_constraints_incremental(db, result))
        verdicts = {
            task.rule_name: task.run() for task in controller.audit_tasks(db, result)
        }
        assert {name for name, (violated, _) in verdicts.items() if violated} == inline
        violated, sample = verdicts["fk_ref"]
        assert violated and sample == ((-5, 55),)


class TestScheduler:
    def test_sync_drain_per_commit(self, db, controller):
        scheduler = controller.audit_scheduler(db)
        _commit(db, "begin insert(fk, (100, 3)); end")
        _commit(db, "begin insert(fk, (101, 55)); end")
        outcomes = scheduler.drain(coalesce=False)
        assert [(o.rule, o.sequences, o.violated) for o in outcomes] == [
            ("fk_ref", (0,), False),
            ("fk_id", (0,), False),
            ("fk_ref", (1,), True),
            ("fk_id", (1,), False),
        ]
        assert outcomes[2].violations == ((101, 55),)
        assert scheduler.pending() == 0

    def test_coalesced_drain_merges_commits(self, db, controller):
        scheduler = controller.audit_scheduler(db)
        _commit(db, "begin insert(fk, (101, 55)); end")
        _commit(db, "begin delete(fk, (101, 55)); end")
        outcomes = scheduler.drain(coalesce=True)
        # The dangling insert was retracted by the second commit: the
        # coalesced net delta is empty, so there is nothing to audit.
        assert outcomes == []

    def test_async_drain_and_wait_are_deterministic(self, db, controller):
        scheduler = AuditScheduler(
            controller, db, workers=4, dispatch_overhead=0.0
        )
        _commit(db, "begin insert(fk, (100, 3)); end")
        scheduler.drain(asynchronous=True, coalesce=False)
        outcomes = scheduler.wait()
        assert [(o.rule, o.violated) for o in outcomes] == [
            ("fk_ref", False),
            ("fk_id", False),
        ]
        assert all(o.mode == "worker" for o in outcomes)
        assert scheduler.fanned_out == 2
        scheduler.close()

    def test_inline_policy_keeps_cheap_audits_off_the_pool(self, db, controller):
        scheduler = AuditScheduler(
            controller, db, workers=4, dispatch_overhead=1e9
        )
        _commit(db, "begin insert(fk, (100, 3)); end")
        scheduler.drain(asynchronous=True)
        outcomes = scheduler.wait()
        assert all(o.mode == "inline" for o in outcomes)
        assert scheduler.fanned_out == 0
        scheduler.close()

    def test_poison_task_surfaces_as_failure(self, db, controller):
        scheduler = controller.audit_scheduler(db)
        result = _commit(db, "begin insert(fk, (100, 3)); end")

        class _Boom(RuleAuditTask):
            def run(self):
                raise RuntimeError("worker exploded")

        task = controller.audit_tasks(db, result)[0]
        poison = _Boom(
            task.controller,
            task.rule,
            task.program,
            task.database,
            task.differentials,
            task.engine,
        )
        from repro.core.scheduler import _execute

        outcome = _execute(poison, (0,), "worker")
        assert outcome.failed
        assert outcome.violated is None
        assert "RuntimeError: worker exploded" in outcome.error

    def test_truncation_gap_reaches_async_wait(self, controller):
        database = Database(schema())
        database.load("pk", [(k,) for k in range(10)])
        database.commit_log = CommitLog(capacity=1)
        scheduler = controller.audit_scheduler(database)
        _commit(database, "begin insert(fk, (1, 1)); end")
        _commit(database, "begin insert(fk, (2, 2)); end")
        scheduler.drain(asynchronous=True)
        outcomes = scheduler.wait()
        # Eviction must not become a silent drop on the async path: the
        # gap outcome travels through wait() like every other verdict.
        assert outcomes[0].failed and outcomes[0].mode == "gap"
        assert {o.rule for o in outcomes[1:]} == set(RULES)
        scheduler.close()

    def test_truncation_gap_reported(self, controller):
        database = Database(schema())
        database.load("pk", [(k,) for k in range(10)])
        database.commit_log = CommitLog(capacity=1)
        scheduler = controller.audit_scheduler(database)
        _commit(database, "begin insert(fk, (1, 1)); end")
        _commit(database, "begin insert(fk, (2, 2)); end")
        outcomes = scheduler.drain()
        gap = outcomes[0]
        assert gap.failed and gap.rule is None
        assert "evicted" in gap.error
        # The retained commit is still audited.
        assert {o.rule for o in outcomes[1:]} == set(RULES)

    def test_scheduler_is_cached_per_database(self, db, controller):
        assert controller.audit_scheduler(db) is controller.audit_scheduler(db)

    def test_history_records_everything(self, db, controller):
        scheduler = controller.audit_scheduler(db)
        _commit(db, "begin insert(fk, (100, 3)); end")
        scheduler.drain()
        _commit(db, "begin insert(fk, (101, 4)); end")
        scheduler.drain(asynchronous=True)
        scheduler.wait()
        assert len(scheduler.history) == 4


class TestSessionCommit:
    def test_sync_commit_attaches_verdicts(self, db, controller):
        session = Session(db, controller)
        result = session.commit("begin insert(fk, (101, 55)); end")
        assert result.committed
        assert [(o.rule, o.violated) for o in result.audit] == [
            ("fk_ref", True),
            ("fk_id", False),
        ]

    def test_deferred_commits_audit_on_drain(self, db, controller):
        session = Session(db, controller)
        first = session.commit("begin insert(fk, (100, 3)); end", audit="deferred")
        assert first.audit is None
        session.commit("begin insert(fk, (101, 55)); end", audit="deferred")
        outcomes = session.drain_audits(coalesce=False)
        assert [(o.rule, o.violated) for o in outcomes] == [
            ("fk_ref", False),
            ("fk_id", False),
            ("fk_ref", True),
            ("fk_id", False),
        ]

    def test_sync_commit_excludes_backlog_verdicts(self, db, controller):
        session = Session(db, controller)
        session.commit("begin insert(fk, (101, 55)); end", audit="deferred")
        result = session.commit("begin insert(fk, (100, 3)); end", audit="sync")
        # The drain audited the deferred backlog too, but only this
        # commit's verdicts attach to this result.
        assert [(o.rule, o.sequences, o.violated) for o in result.audit] == [
            ("fk_ref", (1,), False),
            ("fk_id", (1,), False),
        ]
        history = session.audit_scheduler().history
        assert ("fk_ref", (0,), True) in [
            (o.rule, o.sequences, o.violated) for o in history
        ]

    def test_async_commit_waits_for_verdicts(self, db, controller):
        session = Session(db, controller)
        session.commit("begin insert(fk, (101, 55)); end", audit="async")
        outcomes = session.wait_for_audits()
        assert ("fk_ref", True) in [(o.rule, o.violated) for o in outcomes]

    def test_commit_skips_modification_by_default(self, db, controller):
        session = Session(db, controller)
        result = session.commit("begin insert(fk, (101, 55)); end")
        # The dangling insert *committed* (optimistic pipeline) and the
        # audit flagged it — execute() would have aborted it instead.
        assert result.committed
        assert (101, 55) in db.relation("fk")
        aborted = session.execute("begin insert(fk, (102, 56)); end")
        assert aborted.aborted

    def test_modify_true_restores_preventive_enforcement(self, db, controller):
        session = Session(db, controller)
        result = session.commit(
            "begin insert(fk, (101, 55)); end", audit="sync", modify=True
        )
        assert result.aborted
        assert result.audit is None

    def test_invalid_audit_mode_rejected(self, db, controller):
        session = Session(db, controller)
        with pytest.raises(ValueError, match="audit must be one of"):
            session.commit("begin insert(fk, (1, 1)); end", audit="bogus")
