"""The audit scheduler: draining, fan-out, poison tasks, session modes."""

import pytest

from repro.core.scheduler import AuditScheduler, RuleAuditTask
from repro.core.subsystem import IntegrityController
from repro.engine import Database, DatabaseSchema, RelationSchema, Session
from repro.engine.commitlog import CommitLog
from repro.engine.types import INT


def schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("fk", [("id", INT), ("ref", INT)]),
            RelationSchema("pk", [("key", INT)]),
        ]
    )


RULES = {
    "fk_ref": "(forall x)(x in fk => (exists y)(y in pk and x.ref = y.key))",
    "fk_id": "(forall x)(x in fk => x.id >= 0)",
}


@pytest.fixture
def db():
    database = Database(schema())
    database.load("pk", [(k,) for k in range(10)])
    database.load("fk", [(i, i % 10) for i in range(20)])
    return database


@pytest.fixture
def controller():
    built = IntegrityController(schema())
    for name, condition in RULES.items():
        built.add_constraint(name, condition)
    return built


def _commit(db, text):
    result = Session(db).execute(text)
    assert result.committed
    return result


class TestAuditTasks:
    def test_one_task_per_affected_rule(self, db, controller):
        result = _commit(db, "begin insert(fk, (100, 3)); end")
        tasks = controller.audit_tasks(db, result)
        assert {task.rule_name for task in tasks} == set(RULES)
        assert all(task.kind == "delta" for task in tasks)

    def test_unaffected_rules_produce_no_task(self, db, controller):
        # Inserting a *target* is vacuous for the referential rule and
        # untriggering for the id rule.
        result = _commit(db, "begin insert(pk, (77,)); end")
        assert controller.audit_tasks(db, result) == []

    def test_task_verdicts_match_inline(self, db, controller):
        result = _commit(db, "begin insert(fk, (-5, 55)); end")
        inline = set(controller.violated_constraints_incremental(db, result))
        verdicts = {
            task.rule_name: task.run() for task in controller.audit_tasks(db, result)
        }
        assert {name for name, (violated, _) in verdicts.items() if violated} == inline
        violated, sample = verdicts["fk_ref"]
        assert violated and sample == ((-5, 55),)


class TestScheduler:
    def test_sync_drain_per_commit(self, db, controller):
        scheduler = controller.audit_scheduler(db)
        _commit(db, "begin insert(fk, (100, 3)); end")
        _commit(db, "begin insert(fk, (101, 55)); end")
        outcomes = scheduler.drain(coalesce=False)
        assert [(o.rule, o.sequences, o.violated) for o in outcomes] == [
            ("fk_ref", (0,), False),
            ("fk_id", (0,), False),
            ("fk_ref", (1,), True),
            ("fk_id", (1,), False),
        ]
        assert outcomes[2].violations == ((101, 55),)
        assert scheduler.pending() == 0

    def test_coalesced_drain_merges_commits(self, db, controller):
        scheduler = controller.audit_scheduler(db)
        _commit(db, "begin insert(fk, (101, 55)); end")
        _commit(db, "begin delete(fk, (101, 55)); end")
        outcomes = scheduler.drain(coalesce=True)
        # The dangling insert was retracted by the second commit: the
        # coalesced net delta is empty, so there is nothing to audit.
        assert outcomes == []

    def test_async_drain_and_wait_are_deterministic(self, db, controller):
        scheduler = AuditScheduler(
            controller, db, workers=4, dispatch_overhead=0.0
        )
        _commit(db, "begin insert(fk, (100, 3)); end")
        scheduler.drain(asynchronous=True, coalesce=False)
        outcomes = scheduler.wait()
        assert [(o.rule, o.violated) for o in outcomes] == [
            ("fk_ref", False),
            ("fk_id", False),
        ]
        assert all(o.mode == "async" for o in outcomes)
        assert all(o.executor == "thread" for o in outcomes)
        assert scheduler.fanned_out == 2
        scheduler.close()

    def test_inline_policy_keeps_cheap_audits_off_the_pool(self, db, controller):
        scheduler = AuditScheduler(
            controller, db, workers=4, dispatch_overhead=1e9
        )
        _commit(db, "begin insert(fk, (100, 3)); end")
        scheduler.drain(asynchronous=True)
        outcomes = scheduler.wait()
        assert all(o.mode == "async" for o in outcomes)
        assert all(o.executor == "inline" for o in outcomes)
        assert scheduler.fanned_out == 0
        scheduler.close()

    def test_poison_task_surfaces_as_failure(self, db, controller):
        scheduler = controller.audit_scheduler(db)
        result = _commit(db, "begin insert(fk, (100, 3)); end")

        class _Boom(RuleAuditTask):
            def run(self):
                raise RuntimeError("worker exploded")

        task = controller.audit_tasks(db, result)[0]
        poison = _Boom(
            task.controller,
            task.rule,
            task.program,
            task.database,
            task.differentials,
            task.engine,
        )
        from repro.core.scheduler import _execute

        outcome = _execute(poison, (0,), "async", "thread")
        assert outcome.failed
        assert outcome.violated is None
        assert outcome.mode == "async" and outcome.executor == "thread"
        assert "RuntimeError: worker exploded" in outcome.error

    def test_truncation_gap_reaches_async_wait(self, controller):
        database = Database(schema())
        database.load("pk", [(k,) for k in range(10)])
        database.commit_log = CommitLog(capacity=1)
        scheduler = controller.audit_scheduler(database)
        _commit(database, "begin insert(fk, (1, 1)); end")
        _commit(database, "begin insert(fk, (2, 2)); end")
        scheduler.drain(asynchronous=True)
        outcomes = scheduler.wait()
        # Eviction must not become a silent drop on the async path: the
        # gap outcome travels through wait() like every other verdict.
        assert outcomes[0].failed and outcomes[0].mode == "gap"
        assert outcomes[0].executor is None
        assert {o.rule for o in outcomes[1:]} == set(RULES)
        scheduler.close()

    def test_truncation_gap_reported(self, controller):
        database = Database(schema())
        database.load("pk", [(k,) for k in range(10)])
        database.commit_log = CommitLog(capacity=1)
        scheduler = controller.audit_scheduler(database)
        _commit(database, "begin insert(fk, (1, 1)); end")
        _commit(database, "begin insert(fk, (2, 2)); end")
        outcomes = scheduler.drain()
        gap = outcomes[0]
        assert gap.failed and gap.rule is None
        assert "evicted" in gap.error
        # The retained commit is still audited.
        assert {o.rule for o in outcomes[1:]} == set(RULES)

    def test_scheduler_is_cached_per_database(self, db, controller):
        assert controller.audit_scheduler(db) is controller.audit_scheduler(db)

    def test_history_records_everything(self, db, controller):
        scheduler = controller.audit_scheduler(db)
        _commit(db, "begin insert(fk, (100, 3)); end")
        scheduler.drain()
        _commit(db, "begin insert(fk, (101, 4)); end")
        scheduler.drain(asynchronous=True)
        scheduler.wait()
        assert len(scheduler.history) == 4


class TestExecutors:
    @pytest.mark.parametrize("executor", ["inline", "thread", "process"])
    def test_async_drain_verdicts_identical_across_executors(
        self, db, controller, executor
    ):
        with AuditScheduler(
            controller,
            db,
            workers=2,
            dispatch_overhead=0.0,
            executor=executor,
        ) as scheduler:
            _commit(db, "begin insert(fk, (100, 3)); end")
            _commit(db, "begin insert(fk, (101, 55)); end")
            scheduler.drain(asynchronous=True, coalesce=False)
            outcomes = scheduler.wait()
            assert [(o.rule, o.sequences, o.violated, o.violations) for o in outcomes] == [
                ("fk_ref", (0,), False, ()),
                ("fk_id", (0,), False, ()),
                ("fk_ref", (1,), True, ((101, 55),)),
                ("fk_id", (1,), False, ()),
            ]
            assert {o.executor for o in outcomes} == {executor}
            assert {o.mode for o in outcomes} == {"async"}

    def test_unknown_executor_rejected(self, db, controller):
        with pytest.raises(ValueError, match="unknown executor"):
            AuditScheduler(controller, db, executor="gpu")

    def test_process_replicas_track_later_commits(self, db, controller):
        # The pool snapshots the database at creation; commits recorded
        # afterwards must reach the worker replicas through the commit-log
        # stream before their audit tasks run.
        with AuditScheduler(
            controller,
            db,
            workers=2,
            dispatch_overhead=0.0,
            executor="process",
        ) as scheduler:
            scheduler.start()
            # Commit a new pk target, then a fk row referencing it: the
            # second audit is only clean if the replica applied the first.
            _commit(db, "begin insert(pk, (77,)); end")
            scheduler.drain(asynchronous=True, coalesce=False)
            _commit(db, "begin insert(fk, (200, 77)); end")
            scheduler.drain(asynchronous=True, coalesce=False)
            outcomes = scheduler.wait()
            assert [(o.rule, o.violated) for o in outcomes] == [
                ("fk_ref", False),
                ("fk_id", False),
            ]

    def test_process_gap_triggers_replica_resync(self, controller):
        database = Database(schema())
        database.load("pk", [(k,) for k in range(10)])
        database.commit_log = CommitLog(capacity=1)
        with AuditScheduler(
            controller,
            database,
            workers=2,
            dispatch_overhead=0.0,
            executor="process",
        ) as scheduler:
            scheduler.start()
            # Two commits, capacity-1 log: the first is evicted before the
            # drain, so replicas cannot replay it — they must resync.
            _commit(database, "begin insert(pk, (55,)); end")
            _commit(database, "begin insert(fk, (1, 55)); end")
            scheduler.drain(asynchronous=True, coalesce=False)
            outcomes = scheduler.wait()
            assert outcomes[0].mode == "gap" and outcomes[0].executor is None
            # Audited on the resynced replica: (1, 55) finds target 55.
            assert [(o.rule, o.violated) for o in outcomes[1:]] == [
                ("fk_ref", False),
                ("fk_id", False),
            ]

    def test_poison_task_surfaces_from_process_worker(self, db, controller):
        # A rule name the worker's rebuilt controller doesn't know poisons
        # the task remotely; the failure must come back as an outcome, not
        # hang or vanish.
        from repro.core.procpool import ProcessAuditExecutor

        result = _commit(db, "begin insert(fk, (100, 3)); end")

        class Poison:
            rule_name = "no_such_rule"
            engine = None
            differentials = result.differentials

        pool = ProcessAuditExecutor(controller, db, workers=1)
        try:
            outcome = pool.submit(Poison(), (0,)).result()
            assert outcome.failed
            assert outcome.executor == "process"
            assert outcome.rule == "no_such_rule"
        finally:
            pool.shutdown()

    def test_context_manager_closes_executors(self, db, controller):
        with AuditScheduler(
            controller, db, workers=2, dispatch_overhead=0.0
        ) as scheduler:
            _commit(db, "begin insert(fk, (100, 3)); end")
            scheduler.drain(asynchronous=True)
            assert scheduler._thread_pool is not None
        # __exit__ drained in-flight tasks into history and shut the pool.
        assert scheduler._thread_pool is None
        assert len(scheduler.history) == 2
        assert not scheduler._outstanding

    def test_close_drains_in_flight_tasks(self, db, controller):
        scheduler = AuditScheduler(
            controller, db, workers=2, dispatch_overhead=0.0, executor="process"
        )
        _commit(db, "begin insert(fk, (101, 55)); end")
        scheduler.drain(asynchronous=True)
        scheduler.close()  # no wait() first: close must collect, not drop
        assert scheduler._process_pool is None
        assert ("fk_ref", True) in [
            (o.rule, o.violated) for o in scheduler.history
        ]

    def test_close_schedulers_closes_every_cached_pool(self, db, controller):
        scheduler = controller.audit_scheduler(db, dispatch_overhead=0.0)
        _commit(db, "begin insert(fk, (100, 3)); end")
        scheduler.drain(asynchronous=True)
        controller.close_schedulers()
        assert scheduler._thread_pool is None
        assert not scheduler._outstanding


class TestEwmaCorrection:
    def test_measured_seconds_update_corrections(self, db, controller):
        with AuditScheduler(
            controller, db, workers=2, dispatch_overhead=0.0
        ) as scheduler:
            _commit(db, "begin insert(fk, (100, 3)); end")
            scheduler.drain(asynchronous=True, coalesce=False)
            scheduler.wait()
            corrections = scheduler.audit_time_corrections
            # Every priced, executed rule now has an observed/predicted
            # ratio on file.
            assert set(corrections) == set(RULES)
            assert all(ratio > 0.0 for ratio in corrections.values())

    def test_correction_steers_dispatch(self, db, controller):
        scheduler = AuditScheduler(
            controller, db, workers=2, dispatch_overhead=1e-3
        )
        _commit(db, "begin insert(fk, (100, 3)); end")
        # A history claiming audits run vastly slower than predicted flips
        # the cheap tasks over the dispatch threshold...
        scheduler._corrections = {name: 1e12 for name in RULES}
        scheduler.drain(asynchronous=True, coalesce=False)
        scheduler.wait()
        assert scheduler.fanned_out == len(RULES)
        # ...and a vastly-faster-than-predicted history keeps them inline.
        _commit(db, "begin insert(fk, (101, 3)); end")
        scheduler._corrections = {name: 1e-12 for name in RULES}
        scheduler.drain(asynchronous=True, coalesce=False)
        scheduler.wait()
        assert scheduler.fanned_out == len(RULES)  # unchanged
        scheduler.close()

    def test_ewma_smooths_successive_ratios(self, db, controller):
        from repro.core.scheduler import AuditOutcome

        scheduler = AuditScheduler(controller, db)
        for seconds in (4.0, 2.0):
            scheduler._record(
                AuditOutcome(
                    "fk_ref",
                    (0,),
                    False,
                    mode="async",
                    executor="thread",
                    seconds=seconds,
                    predicted=1.0,
                )
            )
        # First observation seeds the EWMA (4.0); the second folds in at
        # alpha=0.5: 0.5*2.0 + 0.5*4.0.
        assert scheduler.audit_time_corrections["fk_ref"] == pytest.approx(3.0)


class TestSessionCommit:
    def test_sync_commit_attaches_verdicts(self, db, controller):
        session = Session(db, controller)
        result = session.commit("begin insert(fk, (101, 55)); end")
        assert result.committed
        assert [(o.rule, o.violated) for o in result.audit] == [
            ("fk_ref", True),
            ("fk_id", False),
        ]

    def test_deferred_commits_audit_on_drain(self, db, controller):
        session = Session(db, controller)
        first = session.commit("begin insert(fk, (100, 3)); end", audit="deferred")
        assert first.audit is None
        session.commit("begin insert(fk, (101, 55)); end", audit="deferred")
        outcomes = session.drain_audits(coalesce=False)
        assert [(o.rule, o.violated) for o in outcomes] == [
            ("fk_ref", False),
            ("fk_id", False),
            ("fk_ref", True),
            ("fk_id", False),
        ]

    def test_sync_commit_excludes_backlog_verdicts(self, db, controller):
        session = Session(db, controller)
        session.commit("begin insert(fk, (101, 55)); end", audit="deferred")
        result = session.commit("begin insert(fk, (100, 3)); end", audit="sync")
        # The drain audited the deferred backlog too, but only this
        # commit's verdicts attach to this result.
        assert [(o.rule, o.sequences, o.violated) for o in result.audit] == [
            ("fk_ref", (1,), False),
            ("fk_id", (1,), False),
        ]
        history = session.audit_scheduler().history
        assert ("fk_ref", (0,), True) in [
            (o.rule, o.sequences, o.violated) for o in history
        ]

    def test_async_commit_waits_for_verdicts(self, db, controller):
        session = Session(db, controller)
        session.commit("begin insert(fk, (101, 55)); end", audit="async")
        outcomes = session.wait_for_audits()
        assert ("fk_ref", True) in [(o.rule, o.violated) for o in outcomes]

    def test_commit_skips_modification_by_default(self, db, controller):
        session = Session(db, controller)
        result = session.commit("begin insert(fk, (101, 55)); end")
        # The dangling insert *committed* (optimistic pipeline) and the
        # audit flagged it — execute() would have aborted it instead.
        assert result.committed
        assert (101, 55) in db.relation("fk")
        aborted = session.execute("begin insert(fk, (102, 56)); end")
        assert aborted.aborted

    def test_modify_true_restores_preventive_enforcement(self, db, controller):
        session = Session(db, controller)
        result = session.commit(
            "begin insert(fk, (101, 55)); end", audit="sync", modify=True
        )
        assert result.aborted
        assert result.audit is None

    def test_invalid_audit_mode_rejected(self, db, controller):
        session = Session(db, controller)
        with pytest.raises(ValueError, match="audit must be one of"):
            session.commit("begin insert(fk, (1, 1)); end", audit="bogus")
