"""Translation edge cases beyond the Table 1 families."""

import pytest

from repro.algebra import expressions as E
from repro.algebra.evaluation import StandaloneContext
from repro.algebra.statements import Alarm
from repro.calculus.evaluation import evaluate_constraint
from repro.calculus.parser import parse_constraint
from repro.core.translation import (
    CheckConstraint,
    static_schema,
    trans_c,
)
from repro.engine import DatabaseSchema, Relation, RelationSchema
from repro.engine.types import INT
from repro.errors import TranslationError


@pytest.fixture
def rs(rs_pair):
    return rs_pair


@pytest.fixture
def ctx(rs):
    return StandaloneContext(
        {
            "r": Relation(rs.relation("r"), [(1, 10), (2, 20), (3, 30)]),
            "s": Relation(rs.relation("s"), [(1, 100), (2, 200)]),
        }
    )


def verdicts_agree(text, rs, ctx):
    program = trans_c(parse_constraint(text), rs)
    statement = program.statements[0]
    direct = evaluate_constraint(parse_constraint(text), ctx)
    if isinstance(statement, Alarm):
        fired = len(statement.expr.evaluate(ctx)) > 0
    else:
        from repro.errors import TransactionAborted

        try:
            statement.execute(ctx)
            fired = False
        except TransactionAborted:
            fired = True
    assert fired == (not direct)
    return statement


class TestGlobalConjuncts:
    def test_variable_free_aggregate_inside_universal(self, rs, ctx):
        # SUM(r,b)=60 and CNT(s)=2 here; the atom is variable-free.
        statement = verdicts_agree(
            "(forall x in r)(SUM(r, b) <= 100 or x.a > 99)", rs, ctx
        )
        assert isinstance(statement, Alarm)

    def test_both_sides_aggregates(self, rs, ctx):
        verdicts_agree("(forall x in r)(SUM(r, b) >= CNT(s))", rs, ctx)

    def test_constant_only_comparison(self, rs, ctx):
        verdicts_agree("(forall x in r)(1 <= 2 and x.a >= 1)", rs, ctx)

    def test_aggregate_on_left_of_comparison(self, rs, ctx):
        verdicts_agree("(forall x in r)(CNT(s) <= x.b)", rs, ctx)


class TestDisjunctiveAnchors:
    def test_disjunctive_range_translates_to_union(self, rs):
        # Violations of (forall x)((x in r or x in s) => c) distribute over
        # the disjunctive range: σ_{¬c}(r) ∪ σ_{¬c}(s).  (This used to be a
        # fallback; the relational-disjunction distribution translates it.)
        # Note x.a resolves on neither branch being mistyped: 'a' is an
        # attribute of r only, so the well-typedness guard rejects the
        # x.a-form and keeps the fallback — exercised below with x.1.
        program = trans_c(
            parse_constraint("(forall x)((x in r or x in s) => x.1 > 0)"),
            rs,
        )
        alarm = program.statements[0]
        assert isinstance(alarm.expr, E.Union)

    def test_disjunctive_range_with_unresolvable_attr_falls_back(self, rs):
        # 'a' exists on r but not on s: per-relation typing still needs the
        # honest fallback.
        program = trans_c(
            parse_constraint("(forall x)((x in r or x in s) => x.a > 0)"),
            rs,
        )
        assert isinstance(program.statements[0], CheckConstraint)

    def test_fallback_verdict_still_correct(self, rs, ctx):
        # Positional attributes: a variable ranging over two relations has
        # no single schema for name resolution (per-relation typing).
        verdicts_agree(
            "(forall x)((x in r or x in s) => x.1 + x.2 > 0)", rs, ctx
        )


class TestTransitionConstraintTranslation:
    def test_old_state_translates_to_auxiliary_scan(self, rs, ctx):
        program = trans_c(
            parse_constraint(
                "(forall x in r)(forall o in r@old)"
                "(x.a != o.a or x.b >= o.b)"
            ),
            rs,
        )
        alarm = program.statements[0]
        assert isinstance(alarm, Alarm)
        relations = alarm.expr.relations()
        assert "r@old" in relations

    def test_differential_relations_in_conditions(self, rs):
        program = trans_c(
            parse_constraint("(forall x in r@plus)(x.a > 0)"), rs
        )
        alarm = program.statements[0]
        assert alarm.expr == E.Select(
            E.RelationRef("r@plus"),
            __import__("repro.algebra.predicates", fromlist=["Comparison"]).Comparison(
                "<=",
                __import__("repro.algebra.predicates", fromlist=["ColRef"]).ColRef("a"),
                __import__("repro.algebra.predicates", fromlist=["Const"]).Const(0),
            ),
        )


class TestStaticSchema:
    def test_relation_ref(self, rs):
        assert static_schema(E.RelationRef("r"), rs).arity == 2

    def test_auxiliary_resolves_to_base(self, rs):
        assert static_schema(E.RelationRef("r@plus"), rs).arity == 2

    def test_set_operations_take_left(self, rs):
        expr = E.Union(E.RelationRef("r"), E.RelationRef("r"))
        assert static_schema(expr, rs).arity == 2

    def test_join_concatenates(self, rs):
        from repro.algebra import predicates as P

        expr = E.Join(E.RelationRef("r"), E.RelationRef("s"), P.TRUE)
        assert static_schema(expr, rs).arity == 4

    def test_aggregates_single_column(self, rs):
        assert static_schema(E.Count(E.RelationRef("r")), rs).arity == 1

    def test_unknown_shape_rejected(self, rs):
        with pytest.raises(TranslationError):
            static_schema(E.Literal(((1,),)), rs)


class TestNestedQuantifierChains:
    CASES = [
        # Triple chain with adjacent linking only.
        "(forall x in r)(exists y in s)(exists z in s)"
        "(x.a = y.c and y.d = z.d)",
        # Negated inner existential with linking.
        "(forall x in r)(not (exists y in s)(x.a = y.c and y.d > 150))",
        # Mixed polarity chain.
        "(forall x in r)(exists y in s)(x.a = y.c and "
        "(forall z in s)(z.c != 99))",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_chains_translate_and_agree(self, text, rs, ctx):
        statement = verdicts_agree(text, rs, ctx)
        assert isinstance(statement, Alarm)
