"""TransC / CalcToAlg: translated programs agree with direct evaluation."""

import pytest

from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra.evaluation import StandaloneContext
from repro.algebra.statements import Alarm
from repro.calculus.evaluation import evaluate_constraint
from repro.calculus.parser import parse_constraint
from repro.core.translation import (
    CheckConstraint,
    calc_to_alg,
    nnf,
    trans_c,
    trans_r,
)
from repro.engine import DatabaseSchema, Relation, RelationSchema
from repro.engine.types import INT
from repro.errors import TranslationError


@pytest.fixture
def rs(rs_pair):
    return rs_pair


@pytest.fixture
def ctx(rs):
    return StandaloneContext(
        {
            "r": Relation(rs.relation("r"), [(1, 10), (2, 20), (3, 30)]),
            "s": Relation(rs.relation("s"), [(1, 100), (2, 200)]),
        }
    )


def translated_verdict(text, schema, ctx) -> bool:
    """True when the translated program does NOT fire its alarm."""
    program = trans_c(parse_constraint(text), schema, allow_fallback=False)
    assert len(program.statements) == 1
    statement = program.statements[0]
    assert isinstance(statement, Alarm)
    return len(statement.expr.evaluate(ctx)) == 0


def agree(text, schema, ctx):
    direct = evaluate_constraint(parse_constraint(text), ctx)
    translated = translated_verdict(text, schema, ctx)
    assert direct == translated, f"disagreement on {text!r}"
    return direct


CONSTRAINTS = [
    # Table 1 family 1: domain
    "(forall x in r)(x.a > 0)",
    "(forall x in r)(x.a > 1)",
    "(forall x in r)(x.a >= 1 and x.b <= 30)",
    "(forall x in r)(x.a = 1 or x.b > 15)",
    # family 2: referential
    "(forall x in r)(exists y in s)(x.a = y.c)",
    "(forall x in r)(exists y in s)(x.a = y.c and y.d > 0)",
    # family 3: exclusion
    "(forall x in r)(forall y in s)(x.a != y.c)",
    "(forall x in r)(forall y in s)(x.b != y.d)",
    # family 4: two-variable universal with join condition
    "(forall x, y)((x in r and y in s and x.a = y.c) => x.b < y.d)",
    # family 5: existential
    "(exists x in r)(x.b = 20)",
    "(exists x in r)(x.b = 999)",
    # families 6-7: aggregates
    "CNT(r) <= 1000",
    "CNT(r) = 3",
    "CNT(r) > 5",
    "SUM(r, b) = 60",
    "AVG(r, b) >= 25",
    "MIN(r, a) = 1 and MAX(r, a) = 3",
    "SUM(r, b) + CNT(s) <= 100",
    # mixtures
    "(forall x in r)(x.b <= SUM(r, b))",
    "(forall x in r)(x.a <= CNT(s))",
    "(exists x in r)(x.b >= AVG(r, b))",
    # set-operation shapes
    "(forall x)(x in r => x.a > 0)",
    "(forall x in r)(not x.a = 99)",
    # nested quantifiers
    "(forall x in r)(exists y in s)(exists z in s)(x.a = y.c and y.c = z.c)",
    # tuple equality
    "(forall x in r)(exists y in r)(x = y)",
    "(forall x in r)(forall y in s)(not x = y)",
]


class TestAgreementWithOracle:
    @pytest.mark.parametrize("text", CONSTRAINTS)
    def test_translation_agrees(self, text, rs, ctx):
        agree(text, rs, ctx)

    def test_agreement_on_many_databases(self, rs):
        import random

        rng = random.Random(42)
        for trial in range(25):
            r_rows = [
                (rng.randint(0, 4), rng.randint(0, 40)) for _ in range(rng.randint(0, 6))
            ]
            s_rows = [
                (rng.randint(0, 4), rng.randint(0, 400)) for _ in range(rng.randint(0, 6))
            ]
            ctx = StandaloneContext(
                {
                    "r": Relation(rs.relation("r"), r_rows),
                    "s": Relation(rs.relation("s"), s_rows),
                }
            )
            for text in CONSTRAINTS:
                agree(text, rs, ctx)


class TestTranslationShapes:
    def test_domain_becomes_select(self, rs):
        program = trans_c(parse_constraint("(forall x in r)(x.a > 0)"), rs)
        alarm = program.statements[0]
        assert isinstance(alarm.expr, E.Select)
        assert alarm.expr.input == E.RelationRef("r")
        # Violation predicate is the *negated* condition: a <= 0.
        assert alarm.expr.predicate == P.Comparison("<=", P.ColRef("a"), P.Const(0))

    def test_referential_becomes_antijoin(self, rs):
        program = trans_c(
            parse_constraint("(forall x in r)(exists y in s)(x.a = y.c)"), rs
        )
        alarm = program.statements[0]
        assert isinstance(alarm.expr, E.AntiJoin)
        assert alarm.expr.left == E.RelationRef("r")
        assert alarm.expr.right == E.RelationRef("s")

    def test_exclusion_becomes_semijoin(self, rs):
        program = trans_c(
            parse_constraint("(forall x in r)(forall y in s)(x.a != y.c)"), rs
        )
        alarm = program.statements[0]
        assert isinstance(alarm.expr, E.SemiJoin)

    def test_existential_becomes_count_guard(self, rs):
        program = trans_c(parse_constraint("(exists x in r)(x.b = 20)"), rs)
        alarm = program.statements[0]
        assert isinstance(alarm.expr, E.Select)
        assert isinstance(alarm.expr.input, E.Count)
        assert alarm.expr.predicate == P.Comparison("=", P.ColRef(1), P.Const(0))

    def test_aggregate_becomes_selected_aggregate(self, rs):
        program = trans_c(parse_constraint("CNT(r) <= 1000"), rs)
        alarm = program.statements[0]
        assert isinstance(alarm.expr, E.Select)
        assert isinstance(alarm.expr.input, E.Count)
        assert alarm.expr.predicate == P.Comparison(">", P.ColRef(1), P.Const(1000))

    def test_negated_membership_becomes_difference(self, rs):
        expr = calc_to_alg(
            "x",
            nnf(parse_constraint("x in r and not x in s")),
            DatabaseSchema(
                [
                    RelationSchema("r", [("a", INT)]),
                    RelationSchema("s", [("a", INT)]),
                ]
            ),
        )
        assert isinstance(expr, E.Difference)

    def test_double_membership_becomes_intersection(self):
        schema = DatabaseSchema(
            [RelationSchema("r", [("a", INT)]), RelationSchema("s", [("a", INT)])]
        )
        expr = calc_to_alg("x", nnf(parse_constraint("x in r and x in s")), schema)
        assert isinstance(expr, E.Intersection)

    def test_disjunctive_anchor_becomes_union(self):
        schema = DatabaseSchema(
            [RelationSchema("r", [("a", INT)]), RelationSchema("s", [("a", INT)])]
        )
        expr = calc_to_alg(
            "x", nnf(parse_constraint("x in r or x in s")), schema
        )
        assert isinstance(expr, E.Union)

    def test_alarm_carries_rule_name(self, rs):
        program = trans_c(parse_constraint("(forall x in r)(x.a > 0)"), rs, name="my_rule")
        assert program.statements[0].message == "my_rule"


# A constraint outside the guarded fragment: the innermost existential
# links all *three* variables at once, so no semijoin chain covers it.
UNTRANSLATABLE = (
    "(forall x in r)(not (exists y in s)"
    "(x.a = y.c and (exists z in s)(z.c = x.a and z.d = y.d)))"
)


class TestFallback:
    def test_untranslatable_falls_back_to_check(self, rs):
        program = trans_c(parse_constraint(UNTRANSLATABLE), rs, allow_fallback=True)
        assert isinstance(program.statements[0], CheckConstraint)

    def test_fallback_can_be_forbidden(self, rs):
        with pytest.raises(TranslationError):
            trans_c(parse_constraint(UNTRANSLATABLE), rs, allow_fallback=False)

    def test_fallback_statement_evaluates(self, rs, ctx):
        program = trans_c(parse_constraint(UNTRANSLATABLE), rs)
        statement = program.statements[0]
        direct = evaluate_constraint(parse_constraint(UNTRANSLATABLE), ctx)
        from repro.errors import TransactionAborted

        if direct:
            statement.execute(ctx)
        else:
            with pytest.raises(TransactionAborted):
                statement.execute(ctx)

    def test_hoistable_negated_existential_translates(self, rs, ctx):
        # ¬∃y(α(x) ∧ β(y)) is only conjunctive after miniscoping pulls the
        # x-only part out of the *positive* violation form — which exists
        # here: the violation of this constraint is x∈r ∧ x.a>0 ∧ ∃y(...).
        text = "(forall x in r)(not (exists y in s)(x.a > 0 and y.c = 1))"
        agree(text, rs, ctx)


class TestTransR:
    def test_aborting_rule_translates_condition(self, rs):
        from repro.core.rules import IntegrityRule

        rule = IntegrityRule(parse_constraint("(forall x in r)(x.a > 0)"), name="t")
        program = trans_r(rule, rs)
        assert isinstance(program.statements[0], Alarm)

    def test_compensating_rule_returns_action(self, rs):
        from repro.algebra.parser import parse_program
        from repro.core.rules import IntegrityRule

        action = parse_program("delete(r, where a <= 0)")
        rule = IntegrityRule(
            parse_constraint("(forall x in r)(x.a > 0)"), action=action, name="t2"
        )
        assert trans_r(rule, rs) == action
