"""Integrity rules (Def 4.7) and the paper's accessor functions."""

import pytest

from repro.algebra.parser import parse_program
from repro.calculus.parser import parse_constraint
from repro.core.rules import (
    ABORT_ACTION,
    IntegrityRule,
    action_of,
    condition_of,
    triggers_of,
)
from repro.core.triggers import DEL, INS
from repro.errors import AnalysisError, RuleError, UnsafeFormulaError


DOMAIN = "(forall x in beer)(x.alcohol >= 0)"


class TestConstruction:
    def test_default_action_aborts(self):
        rule = IntegrityRule(parse_constraint(DOMAIN))
        assert rule.is_aborting and not rule.is_compensating
        assert rule.action is ABORT_ACTION
        assert rule.action_program().is_empty

    def test_triggers_auto_generated(self):
        rule = IntegrityRule(parse_constraint(DOMAIN))
        assert rule.triggers == {(INS, "beer")}
        assert rule.triggers_generated

    def test_explicit_triggers(self):
        rule = IntegrityRule(
            parse_constraint(DOMAIN), triggers=[("INS", "beer"), ("DEL", "beer")]
        )
        assert rule.triggers == {(INS, "beer"), (DEL, "beer")}
        assert not rule.triggers_generated

    def test_compensating_action(self):
        action = parse_program("delete(beer, where alcohol < 0)")
        rule = IntegrityRule(parse_constraint(DOMAIN), action=action)
        assert rule.is_compensating
        assert rule.action_program() is action

    def test_non_triggering_flag_applied_to_action(self):
        action = parse_program("delete(beer, where alcohol < 0)")
        rule = IntegrityRule(
            parse_constraint(DOMAIN), action=action, non_triggering=True
        )
        assert rule.action_program().non_triggering

    def test_names_unique_by_default(self):
        first = IntegrityRule(parse_constraint(DOMAIN))
        second = IntegrityRule(parse_constraint(DOMAIN))
        assert first.name != second.name

    def test_explicit_name(self):
        rule = IntegrityRule(parse_constraint(DOMAIN), name="R1")
        assert rule.name == "R1"
        assert "R1" in repr(rule)


class TestValidation:
    def test_open_condition_rejected(self):
        with pytest.raises(AnalysisError):
            IntegrityRule(parse_constraint("x.a > 0"))

    def test_unsafe_condition_rejected(self):
        with pytest.raises(UnsafeFormulaError):
            IntegrityRule(parse_constraint("(forall x)(x.a > 0)"))

    def test_bad_action_type_rejected(self):
        with pytest.raises(RuleError):
            IntegrityRule(parse_constraint(DOMAIN), action="delete stuff")

    def test_invalid_trigger_kind_rejected(self):
        with pytest.raises(RuleError):
            IntegrityRule(parse_constraint(DOMAIN), triggers=[("UPD", "beer")])


class TestAccessors:
    def test_paper_accessors(self):
        condition = parse_constraint(DOMAIN)
        rule = IntegrityRule(condition, name="R1")
        assert triggers_of(rule) == rule.triggers
        assert condition_of(rule) is condition
        assert action_of(rule) is ABORT_ACTION
