"""Worker-death recovery and durable-log integration of the audit pipeline."""

import pytest

from repro.core.procpool import ProcessAuditExecutor
from repro.core.subsystem import IntegrityController
from repro.engine import Database, DatabaseSchema, RelationSchema, Session
from repro.engine.commitlog import CommitLog
from repro.engine.types import INT
from repro.engine.wal import WriteAheadLog


def schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("fk", [("id", INT), ("ref", INT)]),
            RelationSchema("pk", [("key", INT)]),
        ]
    )


RULES = {
    "fk_ref": "(forall x)(x in fk => (exists y)(y in pk and x.ref = y.key))",
    "fk_id": "(forall x)(x in fk => x.id >= 0)",
}


@pytest.fixture
def db():
    database = Database(schema())
    database.load("pk", [(k,) for k in range(10)])
    database.load("fk", [(i, i % 10) for i in range(20)])
    return database


@pytest.fixture
def controller():
    built = IntegrityController(schema())
    for name, condition in RULES.items():
        built.add_constraint(name, condition)
    return built


def _commit(db, text):
    result = Session(db).execute(text)
    assert result.committed
    return result


def _kill(pool, worker):
    process = pool._processes[worker]
    process.terminate()
    process.join(timeout=5.0)
    assert not process.is_alive()


class TestWorkerRestart:
    def test_killed_worker_restarts_and_task_retries_once(self, db, controller):
        pool = ProcessAuditExecutor(controller, db, workers=2)
        try:
            result = _commit(db, "begin insert(fk, (100, 55)); end")
            pool.replicate(db.commit_log.since(0)[0])
            _kill(pool, 0)  # round-robin will hand the next task to it
            [task] = [
                t
                for t in controller.audit_tasks(db, result)
                if t.rule_name == "fk_ref"
            ]
            future = pool.submit(task, (0,))
            outcome = future.result()
            assert outcome.error is None
            assert outcome.violated is True  # ref 55 dangles
            assert outcome.violations == ((100, 55),)
            assert pool.restarts == 1
        finally:
            pool.shutdown()

    def test_second_death_surfaces_as_error(self, db, controller, monkeypatch):
        pool = ProcessAuditExecutor(controller, db, workers=2)
        try:
            original_spawn = ProcessAuditExecutor._spawn

            def spawn_dead_on_arrival(self, index, payload):
                original_spawn(self, index, payload)
                self._processes[index].terminate()
                self._processes[index].join(timeout=5.0)

            result = _commit(db, "begin insert(fk, (100, 3)); end")
            pool.replicate(db.commit_log.since(0)[0])
            _kill(pool, 0)
            # Every respawn dies immediately: the single retry is spent,
            # then the task must fail loudly instead of looping forever.
            monkeypatch.setattr(
                ProcessAuditExecutor, "_spawn", spawn_dead_on_arrival
            )
            [task] = [
                t
                for t in controller.audit_tasks(db, result)
                if t.rule_name == "fk_ref"
            ]
            outcome = pool.submit(task, (0,)).result()
            assert outcome.error is not None
            assert "died" in outcome.error
            assert pool.restarts >= 1
        finally:
            monkeypatch.undo()
            pool.shutdown()

    def test_scheduler_survives_worker_death_end_to_end(self, db, controller):
        scheduler = controller.audit_scheduler(
            db, workers=2, dispatch_overhead=0.0, executor="process"
        )
        scheduler.start()
        try:
            _kill(scheduler._process_pool, 0)
            _commit(db, "begin insert(fk, (100, 55)); end")
            scheduler.drain(asynchronous=True, coalesce=False)
            outcomes = scheduler.wait()
            assert [(o.rule, o.violated, o.error) for o in outcomes] == [
                ("fk_ref", True, None),
                ("fk_id", False, None),
            ]
            assert scheduler._process_pool.restarts == 1
        finally:
            scheduler.close()

    def test_restarted_worker_rejoins_replication_stream(self, db, controller):
        pool = ProcessAuditExecutor(controller, db, workers=1)
        try:
            _kill(pool, 0)
            first = _commit(db, "begin insert(fk, (100, 3)); end")
            pool.replicate(db.commit_log.since(0)[0])
            outcome = pool.submit(
                controller.audit_tasks(db, first)[0], (0,)
            ).result()
            assert outcome.error is None and pool.restarts == 1
            # The respawned worker was seeded *after* commit #0; the next
            # broadcast repeats nothing it already holds (idempotent by
            # sequence), and later commits replicate normally.
            second = _commit(db, "begin insert(fk, (101, 5)); end")
            pool.replicate(db.commit_log.since(0)[0])
            [task] = [
                t
                for t in controller.audit_tasks(db, second)
                if t.rule_name == "fk_ref"
            ]
            outcome = pool.submit(task, (1,)).result()
            assert outcome.error is None
            assert outcome.violated is False
        finally:
            pool.shutdown()


class TestDurableLogIntegration:
    def test_drain_advances_audit_watermark(self, db, controller, tmp_path):
        db.attach_wal(WriteAheadLog(tmp_path))
        scheduler = controller.audit_scheduler(db)
        _commit(db, "begin insert(fk, (100, 3)); end")
        _commit(db, "begin insert(fk, (101, 4)); end")
        scheduler.drain()
        assert db.wal.consumers["audit-scheduler"] == 2
        scheduler.close()
        assert "audit-scheduler" not in db.wal.consumers
        db.detach_wal()

    def test_gap_resyncs_replicas_from_log(self, db, controller, tmp_path, monkeypatch):
        db.attach_wal(WriteAheadLog(tmp_path))
        db.commit_log = CommitLog(capacity=2)
        used_log = {}
        original = ProcessAuditExecutor._resync_from_log

        def spy(self, database):
            used_log["value"] = original(self, database)
            return used_log["value"]

        monkeypatch.setattr(ProcessAuditExecutor, "_resync_from_log", spy)
        scheduler = controller.audit_scheduler(
            db, workers=2, dispatch_overhead=0.0, executor="process"
        )
        scheduler.start()
        try:
            assert db.wal.consumers["process-replicas"] == 0
            for i in range(4):  # overflow the bounded in-memory log
                _commit(db, f"begin insert(fk, (20{i}, {i})); end")
            _commit(db, "begin insert(fk, (300, 55)); end")  # dangling ref
            scheduler.drain(asynchronous=True, coalesce=False)
            outcomes = scheduler.wait()
            # The gap is surfaced, the replicas caught up *from the log*,
            # and the post-gap audits are correct against replica state.
            assert outcomes[0].mode == "gap"
            assert used_log["value"] is True
            verdicts = {
                (o.rule, o.sequences): o.violated
                for o in outcomes
                if o.rule is not None
            }
            assert verdicts[("fk_ref", (4,))] is True
            assert all(o.error is None for o in outcomes[1:])
            assert db.wal.consumers["process-replicas"] == 5
        finally:
            scheduler.close()
            db.detach_wal()
