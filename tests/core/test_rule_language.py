"""The RL rule language parser (Def 4.7)."""

import pytest

from repro.core.rule_language import parse_rule, parse_rules
from repro.core.triggers import DEL, INS
from repro.errors import ParseError
from repro.workloads.beer import BEER_RULE_DOMAIN, BEER_RULE_REFERENTIAL


class TestPaperRules:
    def test_rule_r1(self):
        rule = parse_rule(BEER_RULE_DOMAIN)
        assert rule.name == "R1"
        assert rule.triggers == {(INS, "beer")}
        assert rule.is_aborting

    def test_rule_r2(self):
        rule = parse_rule(BEER_RULE_REFERENTIAL)
        assert rule.name == "R2"
        assert rule.triggers == {(INS, "beer"), (DEL, "brewery")}
        assert rule.is_compensating
        assert len(rule.action_program()) == 2


class TestClauses:
    def test_when_optional_triggers_generated(self):
        rule = parse_rule(
            "IF NOT (forall x in beer)(x.alcohol >= 0) THEN abort"
        )
        assert rule.triggers == {(INS, "beer")}
        assert rule.triggers_generated

    def test_then_optional_defaults_to_abort(self):
        rule = parse_rule("IF NOT (forall x in beer)(x.alcohol >= 0)")
        assert rule.is_aborting

    def test_rule_name_optional(self):
        rule = parse_rule(
            "IF NOT CNT(beer) <= 10 THEN abort", name="capacity"
        )
        assert rule.name == "capacity"

    def test_rule_header_overrides_argument_name(self):
        rule = parse_rule("RULE header IF NOT CNT(beer) <= 10")
        assert rule.name == "header"

    def test_nontriggering_marker(self):
        rule = parse_rule(
            """
            IF NOT (forall x in beer)(x.alcohol >= 0)
            THEN NONTRIGGERING delete(beer, where alcohol < 0)
            """
        )
        assert rule.is_compensating
        assert rule.action_program().non_triggering

    def test_case_insensitive_keywords(self):
        rule = parse_rule(
            "rule r when ins(beer) if not CNT(beer) <= 10 then abort"
        )
        assert rule.name == "r"
        assert rule.triggers == {(INS, "beer")}

    def test_multiline_compensating_program(self):
        rule = parse_rule(
            """
            RULE fixup
            IF NOT (forall x in beer)(x.alcohol >= 0)
            THEN t := select(beer, alcohol < 0);
                 delete(beer, t)
            """
        )
        assert len(rule.action_program()) == 2


class TestErrors:
    def test_missing_if(self):
        with pytest.raises(ParseError):
            parse_rule("WHEN INS(beer) THEN abort")

    def test_missing_not(self):
        with pytest.raises(ParseError):
            parse_rule("IF CNT(beer) <= 10 THEN abort")

    def test_bad_trigger_kind(self):
        with pytest.raises(ParseError):
            parse_rule("WHEN UPD(beer) IF NOT CNT(beer) <= 10")

    def test_empty_then(self):
        with pytest.raises(ParseError):
            parse_rule("IF NOT CNT(beer) <= 10 THEN")

    def test_trigger_missing_parens(self):
        with pytest.raises(ParseError):
            parse_rule("WHEN INS beer IF NOT CNT(beer) <= 10")


class TestParseRules:
    def test_multiple_rules_split_on_headers(self):
        rules = parse_rules(BEER_RULE_DOMAIN + "\n" + BEER_RULE_REFERENTIAL)
        assert [rule.name for rule in rules] == ["R1", "R2"]

    def test_single_headerless_rule(self):
        rules = parse_rules("IF NOT CNT(beer) <= 10 THEN abort")
        assert len(rules) == 1
