"""Incremental (delta-plan) audits: violated_constraints_incremental."""

import pytest

from repro.core.subsystem import IntegrityController
from repro.engine import Database, DatabaseSchema, RelationSchema, Session
from repro.engine.types import INT


@pytest.fixture
def schema():
    return DatabaseSchema(
        [
            RelationSchema("fk", [("id", INT), ("ref", INT), ("amount", INT)]),
            RelationSchema("pk", [("key", INT)]),
        ]
    )


@pytest.fixture
def db(schema):
    database = Database(schema)
    database.load("pk", [(k,) for k in range(5)])
    database.load("fk", [(i, i % 5, i * 10) for i in range(10)])
    return database


@pytest.fixture
def controller(schema):
    controller = IntegrityController(schema)
    controller.add_constraint(
        "fk_ref",
        "(forall x)(x in fk => (exists y)(y in pk and x.ref = y.key))",
    )
    controller.add_constraint(
        "fk_domain", "(forall x)(x in fk => x.amount >= 0)"
    )
    return controller


def _run_unmodified(db, text):
    """Execute a transaction with no integrity modification (so violating
    states can actually be produced for the audit to find)."""
    session = Session(db)
    result = session.execute(text)
    assert result.committed
    return result


class TestIncrementalAudit:
    def test_clean_delta_reports_nothing(self, db, controller):
        result = _run_unmodified(db, "begin insert(fk, (100, 3, 5)); end")
        assert controller.violated_constraints_incremental(db, result) == []
        assert controller.violated_constraints(db) == []

    def test_dangling_insert_detected(self, db, controller):
        result = _run_unmodified(db, "begin insert(fk, (100, 99, 5)); end")
        assert controller.violated_constraints_incremental(db, result) == [
            "fk_ref"
        ]
        assert controller.violated_constraints(db) == ["fk_ref"]

    def test_deleted_target_detected(self, db, controller):
        result = _run_unmodified(db, "begin delete(pk, {(3,)}); end")
        assert controller.violated_constraints_incremental(db, result) == [
            "fk_ref"
        ]

    def test_domain_violation_detected(self, db, controller):
        result = _run_unmodified(db, "begin insert(fk, (100, 3, -5)); end")
        assert controller.violated_constraints_incremental(db, result) == [
            "fk_domain"
        ]

    def test_empty_delta_is_free(self, db, controller):
        assert controller.violated_constraints_incremental(db, {}) == []

    def test_vacuous_triggers_skipped(self, db, controller):
        # Deleting a referer cannot violate either rule: both variants are
        # vacuous, so the audit runs no plan at all.
        result = _run_unmodified(db, "begin delete(fk, {(0, 0, 0)}); end")
        assert controller.violated_constraints_incremental(db, result) == []

    def test_accepts_raw_differentials_mapping(self, db, controller):
        result = _run_unmodified(db, "begin insert(fk, (100, 99, 5)); end")
        verdict = controller.violated_constraints_incremental(
            db, result.differentials
        )
        assert verdict == ["fk_ref"]

    def test_compensating_rule_falls_back_to_full_check(self, schema, db):
        controller = IntegrityController(schema)
        controller.add_constraint(
            "fk_ref_comp",
            "(forall x)(x in fk => (exists y)(y in pk and x.ref = y.key))",
            response="delete(fk, select(fk, amount < 0))",
        )
        result = _run_unmodified(db, "begin insert(fk, (100, 99, 5)); end")
        assert controller.violated_constraints_incremental(db, result) == [
            "fk_ref_comp"
        ]

    def test_conjunctive_fallback_rule_incrementalizes(self, schema, db):
        # A top-level conjunction translates to a CheckConstraint fallback;
        # its compiled form decomposes into two planned conjuncts, which the
        # differential layer now specializes per trigger.
        controller = IntegrityController(schema)
        controller.add_constraint(
            "both",
            "(forall x)(x in fk => x.amount >= 0) and "
            "(forall x)(x in fk => (exists y)(y in pk and x.ref = y.key))",
        )
        stored = controller.store.get("both")
        assert stored.differentials is not None
        # INS(fk) specializes both conjuncts to delta plans.
        ins_fk = stored.differentials[("INS", "fk")]
        assert len(ins_fk.statements) == 2
        assert all("fk@plus" in s.expr.relations() for s in ins_fk.statements)
        # DEL(pk) only affects the referential conjunct.
        del_pk = stored.differentials[("DEL", "pk")]
        assert len(del_pk.statements) == 1
        result = _run_unmodified(db, "begin insert(fk, (100, 99, -5)); end")
        assert controller.violated_constraints_incremental(db, result) == [
            "both"
        ]

    def test_matches_full_audit_after_mixed_transaction(self, db, controller):
        result = _run_unmodified(
            db,
            "begin insert(fk, (100, 2, 5)); delete(pk, {(4,)}); end",
        )
        incremental = controller.violated_constraints_incremental(db, result)
        full = controller.violated_constraints(db)
        assert incremental == full == ["fk_ref"]
