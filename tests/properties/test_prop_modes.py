"""Mode-parity properties: static vs dynamic selectors, view consistency."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.modification import DynamicSelector, StaticSelector, mod_t
from repro.core.programs import IntegrityProgramStore, get_int_p
from repro.core.rules import IntegrityRule
from repro.engine import Session

from tests.properties import strategies as strat


@given(
    constraints=st.lists(strat.constraints(), min_size=1, max_size=4),
    txn=strat.transactions(),
)
@settings(max_examples=150, deadline=None)
def test_static_and_dynamic_modification_identical(constraints, txn):
    """Alg 6.2 is an implementation of Alg 5.1-5.3, not a new semantics:
    the produced transactions must be statement-for-statement equal
    (without differential specialization, which static mode adds)."""
    schema = strat.rs_schema()
    rules = [
        IntegrityRule(constraint, name=f"rule_{index}")
        for index, constraint in enumerate(constraints)
    ]
    store = IntegrityProgramStore()
    for rule in rules:
        store.add(get_int_p(rule, schema, differential=False))
    static = mod_t(txn, StaticSelector(store))
    dynamic = mod_t(txn, DynamicSelector(rules, schema))
    assert static.statements == dynamic.statements


@given(
    db=strat.databases(),
    constraint=strat.abortable_constraints(),
    txn=strat.transactions(),
)
@settings(max_examples=100, deadline=None)
def test_modification_is_deterministic(db, constraint, txn):
    from repro.core.subsystem import IntegrityController

    controller = IntegrityController(db.schema)
    controller.add_rule(IntegrityRule(constraint, name="only"))
    first = controller.modify_transaction(txn)
    second = controller.modify_transaction(txn)
    assert first.statements == second.statements


@given(db=strat.databases(), txn=strat.transactions())
@settings(max_examples=150, deadline=None)
def test_views_stay_consistent_under_random_transactions(db, txn):
    """View maintenance via ModT keeps stored views equal to their
    defining expressions after every committed transaction."""
    from repro.core.subsystem import IntegrityController
    from repro.views import ViewManager

    controller = IntegrityController(db.schema)
    manager = ViewManager(db, controller)
    manager.define_view("big_r", "select(r, a >= 3)")
    manager.define_view("r_keys", "project(r, [a])", mode="recompute")
    session = Session(db, controller)
    result = session.execute(txn)
    assert result.committed  # no integrity rules: only view maintenance
    assert manager.verify_view("big_r")
    assert manager.verify_view("r_keys")


@given(db=strat.databases(), txn=strat.transactions())
@settings(max_examples=100, deadline=None)
def test_correct_transaction_predicate_matches_outcome(db, txn):
    """Def 3.5 classification agrees with modified execution for aborting
    state rules on consistent databases."""
    import copy

    from repro.calculus.parser import parse_constraint
    from repro.core.subsystem import IntegrityController
    from repro.engine.session import DatabaseView
    from repro.calculus.evaluation import evaluate_constraint

    constraint = parse_constraint("(forall x in r)(x.a <= 4)")
    assume(evaluate_constraint(constraint, DatabaseView(db)))
    controller = IntegrityController(db.schema)
    controller.add_rule(IntegrityRule(constraint, name="cap"))

    classified_correct = controller.is_correct_transaction(db, txn)

    runtime_db = copy.deepcopy(db)
    session = Session(runtime_db, controller)
    result = session.execute(txn)
    assert result.committed == classified_correct
