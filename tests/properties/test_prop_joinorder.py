"""Property: cost-based chain reordering never changes results.

For random join and semijoin/antijoin chains over a three-relation schema,
the expression :func:`repro.algebra.planner.reorder_chains` produces must
evaluate to exactly the same relation (contents *and* column order) as the
original, in set and bag mode, with and without hash indexes, under both
backends.  The planned backend applies reordering automatically whenever
the evaluation context exposes a database, so the plain planned-vs-naive
comparison exercises the integrated path too.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import expressions as E
from repro.algebra import planner
from repro.algebra import predicates as P
from repro.algebra.statistics import RuntimeStatistics
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.session import DatabaseView
from repro.engine.types import INT

_SETTINGS = settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

VALUES = st.integers(min_value=0, max_value=4)
ROWS = st.lists(st.tuples(VALUES, VALUES), max_size=10)

#: attribute names per relation — globally unique, as the join-chain
#: rewrite requires (it bails out otherwise, which is also correct).
ATTRS = {"r": ("a", "b"), "s": ("c", "d"), "t": ("e", "f")}


def _schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema(name, [(attrs[0], INT), (attrs[1], INT)])
            for name, attrs in ATTRS.items()
        ]
    )


def _database(rows_r, rows_s, rows_t, bag: bool, indexed: bool) -> Database:
    database = Database(_schema(), bag=bag)
    database.load("r", rows_r)
    database.load("s", rows_s)
    database.load("t", rows_t)
    if indexed:
        database.create_index("s", ["c"])
        database.create_index("t", ["e"])
    return database


@st.composite
def _eq(draw, left_rel: str, right_rel: str) -> P.Predicate:
    left = draw(st.sampled_from(ATTRS[left_rel]))
    right = draw(st.sampled_from(ATTRS[right_rel]))
    return P.Comparison(
        "=", P.ColRef(left, "left"), P.ColRef(right, "right")
    )


@st.composite
def join_chains(draw) -> E.Expression:
    """A left-deep 3-input equi-join chain, linear or star shaped."""
    p1 = draw(_eq("r", "s"))
    # p2 joins the (r ⋈ s) prefix with t from either prefix relation.
    anchor = draw(st.sampled_from(["r", "s"]))
    p2 = draw(_eq(anchor, "t"))
    extra = draw(st.booleans())
    if extra:  # a second conjunct on the outer join, possibly cross-input
        p2 = P.And(p2, draw(_eq(draw(st.sampled_from(["r", "s"])), "t")))
    return E.Join(
        E.Join(E.RelationRef("r"), E.RelationRef("s"), p1),
        E.RelationRef("t"),
        p2,
    )


@st.composite
def semi_chains(draw) -> E.Expression:
    """A chain of 2-3 semijoins/antijoins over r, with varied predicates."""
    node: E.Expression = E.RelationRef("r")
    count = draw(st.integers(min_value=2, max_value=3))
    for _ in range(count):
        right = draw(st.sampled_from(["s", "t"]))
        ctor = draw(st.sampled_from([E.SemiJoin, E.AntiJoin]))
        predicate: P.Predicate = draw(_eq("r", right))
        if draw(st.booleans()):  # non-equi residuals are chain-safe too
            predicate = P.And(
                predicate,
                P.Comparison(
                    draw(st.sampled_from(["<", "<=", "!="])),
                    P.ColRef(draw(st.sampled_from(ATTRS["r"])), "left"),
                    P.Const(draw(VALUES)),
                ),
            )
        node = ctor(node, E.RelationRef(right), predicate)
    return node


def _assert_reorder_preserves(expression, database):
    view = DatabaseView(database)
    stats = RuntimeStatistics.capture(database)
    reordered = planner.reorder_chains(
        expression, stats, database.schema
    )
    baseline = expression.evaluate(view)
    for candidate in (
        reordered.evaluate(view),  # naive backend on the rewritten tree
        planner.evaluate(expression, view, engine="planned"),  # integrated
        planner.get_plan(reordered).execute(view),
    ):
        assert candidate == baseline, (
            f"reordering changed the result\n  original:  {expression}\n"
            f"  reordered: {reordered}\n"
            f"  baseline:  {baseline.sorted_rows()}\n"
            f"  candidate: {candidate.sorted_rows()}"
        )
    # Column order is part of the contract (the restoring projection).
    assert [a.name for a in reordered.evaluate(view).schema.attributes] == [
        a.name for a in baseline.schema.attributes
    ]


@given(
    rows_r=ROWS,
    rows_s=ROWS,
    rows_t=ROWS,
    chain=join_chains(),
    bag=st.booleans(),
    indexed=st.booleans(),
)
@_SETTINGS
def test_join_chain_reordering_preserves_results(
    rows_r, rows_s, rows_t, chain, bag, indexed
):
    database = _database(rows_r, rows_s, rows_t, bag, indexed)
    _assert_reorder_preserves(chain, database)


@given(
    rows_r=ROWS,
    rows_s=ROWS,
    rows_t=ROWS,
    chain=semi_chains(),
    bag=st.booleans(),
    indexed=st.booleans(),
)
@_SETTINGS
def test_semi_chain_reordering_preserves_results(
    rows_r, rows_s, rows_t, chain, bag, indexed
):
    database = _database(rows_r, rows_s, rows_t, bag, indexed)
    _assert_reorder_preserves(chain, database)


def test_reordering_prefers_the_small_build_side():
    """Deterministic sanity check: a star chain joins the tiny relation
    first, and the rewrite reports its decision through the plan shape."""
    database = _database(
        [(i % 5, i % 3) for i in range(40)],
        [(i % 5, i % 7) for i in range(200)],
        [(i % 3, 0) for i in range(3)],
        bag=False,
        indexed=False,
    )
    eq = lambda l, r: P.Comparison(  # noqa: E731
        "=", P.ColRef(l, "left"), P.ColRef(r, "right")
    )
    chain = E.Join(
        E.Join(E.RelationRef("r"), E.RelationRef("s"), eq("a", "c")),
        E.RelationRef("t"),
        eq("b", "e"),
    )
    stats = RuntimeStatistics.capture(database)
    reordered = planner.reorder_chains(chain, stats, database.schema)
    listing = planner.get_plan(reordered).explain()
    # t (3 tuples) is joined before s (200 tuples).
    assert listing.index("scan(t)") < listing.index("scan(s)")
    view = DatabaseView(database)
    assert reordered.evaluate(view) == chain.evaluate(view)


def test_positional_predicates_disable_join_reordering_only():
    """Positional column references make name-based re-splitting unsound
    for join chains (the rewrite must bail) but are fine in semi chains."""
    database = _database([(1, 2)], [(1, 3)], [(2, 4)], False, False)
    join_chain = E.Join(
        E.Join(
            E.RelationRef("r"),
            E.RelationRef("s"),
            P.Comparison("=", P.ColRef(1, "left"), P.ColRef(1, "right")),
        ),
        E.RelationRef("t"),
        P.Comparison("=", P.ColRef(2, "left"), P.ColRef(1, "right")),
    )
    stats = RuntimeStatistics.capture(database)
    assert (
        planner.reorder_chains(join_chain, stats, database.schema)
        == join_chain
    )
    semi_chain = E.SemiJoin(
        E.SemiJoin(
            E.RelationRef("r"),
            E.RelationRef("s"),
            P.Comparison("=", P.ColRef(1, "left"), P.ColRef(1, "right")),
        ),
        E.RelationRef("t"),
        P.Comparison("=", P.ColRef(2, "left"), P.ColRef(1, "right")),
    )
    view = DatabaseView(database)
    reordered = planner.reorder_chains(semi_chain, stats, database.schema)
    assert reordered.evaluate(view) == semi_chain.evaluate(view)
