"""Set/bag algebra invariants on Relation, checked against Python sets."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import expressions as E
from repro.algebra.evaluation import StandaloneContext
from repro.engine import Relation, RelationSchema
from repro.engine.types import INT

SCHEMA_A = RelationSchema("a", [("x", INT), ("y", INT)])
SCHEMA_B = RelationSchema("b", [("x", INT), ("y", INT)])

ROWS = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=10
)


def make_ctx(rows_a, rows_b):
    return StandaloneContext(
        {
            "a": Relation(SCHEMA_A, rows_a),
            "b": Relation(SCHEMA_B, rows_b),
        }
    )


@given(rows_a=ROWS, rows_b=ROWS)
@settings(max_examples=200, deadline=None)
def test_set_operators_match_python_sets(rows_a, rows_b):
    ctx = make_ctx(rows_a, rows_b)
    set_a, set_b = set(rows_a), set(rows_b)
    union = E.Union(E.RelationRef("a"), E.RelationRef("b")).evaluate(ctx)
    assert union.to_set() == frozenset(set_a | set_b)
    difference = E.Difference(E.RelationRef("a"), E.RelationRef("b")).evaluate(ctx)
    assert difference.to_set() == frozenset(set_a - set_b)
    intersection = E.Intersection(E.RelationRef("a"), E.RelationRef("b")).evaluate(ctx)
    assert intersection.to_set() == frozenset(set_a & set_b)


@given(rows_a=ROWS, rows_b=ROWS)
@settings(max_examples=200, deadline=None)
def test_semijoin_antijoin_partition_left(rows_a, rows_b):
    from repro.algebra import predicates as P

    ctx = make_ctx(rows_a, rows_b)
    predicate = P.Comparison("=", P.ColRef("x", "left"), P.ColRef("x", "right"))
    semi = E.SemiJoin(E.RelationRef("a"), E.RelationRef("b"), predicate).evaluate(ctx)
    anti = E.AntiJoin(E.RelationRef("a"), E.RelationRef("b"), predicate).evaluate(ctx)
    assert semi.to_set() | anti.to_set() == frozenset(set(rows_a))
    assert semi.to_set() & anti.to_set() == frozenset()
    keys_b = {row[0] for row in rows_b}
    assert semi.to_set() == frozenset(row for row in rows_a if row[0] in keys_b)


@given(rows_a=ROWS, rows_b=ROWS)
@settings(max_examples=200, deadline=None)
def test_join_matches_nested_loop_semantics(rows_a, rows_b):
    from repro.algebra import predicates as P

    ctx = make_ctx(rows_a, rows_b)
    predicate = P.Comparison("=", P.ColRef("x", "left"), P.ColRef("x", "right"))
    joined = E.Join(E.RelationRef("a"), E.RelationRef("b"), predicate).evaluate(ctx)
    expected = {
        la + lb
        for la in set(rows_a)
        for lb in set(rows_b)
        if la[0] == lb[0]
    }
    assert joined.to_set() == frozenset(expected)


@given(rows=ROWS)
@settings(max_examples=200, deadline=None)
def test_bag_multiplicities_match_counter(rows):
    bag = Relation(SCHEMA_A, rows, bag=True)
    counter = Counter(tuple(row) for row in rows)
    assert len(bag) == sum(counter.values())
    assert bag.distinct_count() == len(counter)
    for row, count in counter.items():
        assert bag.multiplicity(row) == count


@given(rows=ROWS, victims=ROWS)
@settings(max_examples=200, deadline=None)
def test_insert_delete_inverse_on_sets(rows, victims):
    relation = Relation(SCHEMA_A, rows)
    reference = set(rows)
    for row in victims:
        inserted = relation.insert(row)
        assert inserted == (row not in reference)
        reference.add(row)
    for row in victims:
        deleted = relation.delete(row)
        assert deleted == (row in reference)
        reference.discard(row)
    assert relation.to_set() == frozenset(reference)
