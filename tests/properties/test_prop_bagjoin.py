"""Property: bag-mode join semantics — the pinned specification.

Decision (ROADMAP follow-up from PR 1): both backends implement
**build-over-distinct-rows** joins in bag mode — the hash build side
contributes each distinct right row once, and result multiplicities come
from the probe side (plus bucket fan-out over *distinct* right rows).
Semijoin/antijoin/intersection keep the left side's multiplicities
unchanged; membership on the right is at the distinct level.

This is a deliberate deviation from multiplicity-correct bag joins
(|l ⋈ r| multiplicities multiplying): integrity checking only ever tests
emptiness and distinct violating tuples, persistent hash indexes hold
distinct rows (so the distinct-level convention lets plans reuse them), and
the convention makes set mode a special case of bag mode.  What matters is
that *every* backend implements the same convention — asserted here on
duplicate-heavy inputs, which maximize the observable difference between
the conventions.  The planned backend is additionally pinned in all
three execution modes (row, per-operator batch, fused), because the
counts-aware batch pair kernel is exactly where a multiplicity-correct
implementation would silently diverge from the convention.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import columnar, planner
from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra.evaluation import StandaloneContext
from repro.engine import Relation

from . import strategies as S

_SETTINGS = settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Tiny value domain + explicit multiplicities: nearly every row is a
# duplicate and nearly every key collides.
_SMALL = st.integers(min_value=0, max_value=2)
_DUP_ROWS = st.lists(
    st.tuples(st.tuples(_SMALL, _SMALL), st.integers(min_value=1, max_value=4)),
    max_size=6,
)


def _bag_relation(schema, weighted_rows) -> Relation:
    relation = Relation(schema, bag=True)
    for row, multiplicity in weighted_rows:
        for _ in range(multiplicity):
            relation.insert(row)
    return relation


@given(
    weighted_r=_DUP_ROWS,
    weighted_s=_DUP_ROWS,
    op=st.sampled_from(["join", "semijoin", "antijoin", "intersection"]),
    residual=st.booleans(),
    indexed=st.booleans(),
)
@_SETTINGS
def test_bag_join_convention_agrees_on_duplicate_heavy_inputs(
    weighted_r, weighted_s, op, residual, indexed
):
    schema = S.rs_schema()
    r = _bag_relation(schema.relation("r"), weighted_r)
    s = _bag_relation(schema.relation("s"), weighted_s)
    if indexed:
        r.declare_index((0,))
        r.index_on((0,))
        s.declare_index((0,))
        s.index_on((0,))
    predicate = P.Comparison("=", P.ColRef(1, "left"), P.ColRef(1, "right"))
    if residual:
        predicate = P.And(
            predicate,
            P.Comparison("<=", P.ColRef(2, "left"), P.ColRef(2, "right")),
        )
    if op == "join":
        expression: E.Expression = E.Join(
            E.RelationRef("r"), E.RelationRef("s"), predicate
        )
    elif op == "semijoin":
        expression = E.SemiJoin(E.RelationRef("r"), E.RelationRef("s"), predicate)
    elif op == "antijoin":
        expression = E.AntiJoin(E.RelationRef("r"), E.RelationRef("s"), predicate)
    else:
        expression = E.Intersection(E.RelationRef("r"), E.RelationRef("s"))
    context = StandaloneContext({"r": r, "s": s})
    naive = expression.evaluate(context)
    plan = planner.get_plan(expression)
    previous_batch = columnar.batch_policy()
    previous_fusion = columnar.fusion_policy()
    try:
        for mode, batch, fusion in (
            ("row", "never", "never"),
            ("batch", "always", "never"),
            ("fused", "always", "always"),
        ):
            columnar.set_batch_policy(batch)
            columnar.set_fusion_policy(fusion)
            planned = plan.execute(context)
            assert naive == planned, (
                f"bag convention divergence on {op} "
                f"(residual={residual}, mode={mode}):\n"
                f"  naive:   {naive.sorted_rows()}\n"
                f"  planned: {planned.sorted_rows()}"
            )
            # The convention itself: every distinct matching pair appears
            # exactly probe-side-multiplicity times, independent of right
            # multiplicities.
            if op == "join":
                for row in planned.rows():
                    left_part = row[: schema.relation("r").arity]
                    assert planned.multiplicity(row) == r.multiplicity(left_part)
    finally:
        columnar.set_batch_policy(previous_batch)
        columnar.set_fusion_policy(previous_fusion)
