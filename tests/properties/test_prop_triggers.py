"""Soundness of trigger-set generation (Alg 5.7).

The property that makes the whole subsystem safe: if executing an update
statement turns a satisfied constraint into a violated one, then that
statement's elementary update type **must** be in the generated trigger
set — otherwise ModT would not append the check and the violation would
slip through.

We test it directly: random constraint, random consistent database, random
single-update statement; whenever the constraint flips to violated, the
statement's triggers intersect ``generate_triggers(condition)``.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algebra import expressions as E
from repro.algebra import statements as S
from repro.algebra.programs import Program, bracket
from repro.calculus.evaluation import evaluate_constraint
from repro.core.trigger_generation import generate_triggers
from repro.engine import Session
from repro.engine.session import DatabaseView

from tests.properties import strategies as strat


@st.composite
def single_update_statements(draw):
    relation = draw(st.sampled_from(["r", "s"]))
    rows = tuple(
        draw(
            st.lists(
                st.tuples(strat.VALUES, strat.VALUES), min_size=1, max_size=3
            )
        )
    )
    if draw(st.booleans()):
        return S.Insert(relation, E.Literal(rows))
    return S.Delete(relation, E.Literal(rows))


@given(
    db=strat.databases(),
    constraint=strat.constraints(),
    statement=single_update_statements(),
)
@settings(max_examples=400, deadline=None)
def test_violating_updates_are_always_triggered(db, constraint, statement):
    view = DatabaseView(db)
    assume(evaluate_constraint(constraint, view))

    session = Session(db)  # no integrity control: raw execution
    result = session.execute(bracket(Program([statement])))
    assert result.committed

    still_satisfied = evaluate_constraint(constraint, view)
    if not still_satisfied:
        triggers = generate_triggers(constraint)
        performed = statement.update_triggers()
        assert triggers & performed, (
            f"constraint became violated by {statement!r} but the generated "
            f"trigger set {sorted(triggers)} does not cover it"
        )


@given(constraint=strat.constraints())
@settings(max_examples=200, deadline=None)
def test_generated_triggers_mention_only_constraint_relations(constraint):
    from repro.calculus.analysis import relation_names

    triggers = generate_triggers(constraint)
    mentioned = relation_names(constraint)
    for _, relation in triggers:
        assert relation in mentioned


@given(constraint=strat.constraints())
@settings(max_examples=200, deadline=None)
def test_generated_triggers_nonempty_for_table1_families(constraint):
    assert generate_triggers(constraint)


@given(constraint=strat.constraints())
@settings(max_examples=200, deadline=None)
def test_double_negation_invariance(constraint):
    from repro.calculus import ast as C

    assert generate_triggers(C.Not(C.Not(constraint))) == generate_triggers(
        constraint
    )
