"""Property: the plan-backed audit path agrees with the naive model checker.

The unified evaluation stack routes every constraint form through compiled
physical plans — single translatable sentences, boolean combinations that
only the decomposing compiler handles, compensating-action rule audits, and
``Assign``+``Alarm`` integrity-program shapes.  On every generated database
(set and bag mode, with and without hash indexes) the verdict must equal
the naive model checker's, which survives precisely as this oracle.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import expressions as E
from repro.algebra.programs import Program
from repro.algebra.statements import Alarm, Assign
from repro.calculus import ast as C
from repro.calculus.evaluation import evaluate_constraint
from repro.calculus.planned import compile_constraint
from repro.core.programs import IntegrityProgram
from repro.core.subsystem import IntegrityController
from repro.engine import Database
from repro.engine.session import DatabaseView

from . import strategies as S

_SETTINGS = settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _database(rows_r, rows_s, bag: bool, indexed: bool) -> Database:
    database = Database(S.rs_schema(), bag=bag)
    database.load("r", rows_r)
    database.load("s", rows_s)
    if indexed:
        database.create_index("r", ["a"])
        database.create_index("r", ["b"])
        database.create_index("s", ["c"])
        database.create_index("s", ["d"])
    return database


@st.composite
def boolean_combinations(draw) -> C.Formula:
    """not/and/or/=> combinations of Table 1 family constraints.

    Top-level connectives are exactly what the monolithic translator
    rejects, driving the decomposing compiler and its residue handling.
    """
    first = draw(S.constraints())
    shape = draw(st.integers(min_value=0, max_value=3))
    if shape == 0:
        return C.Not(first)
    second = draw(S.constraints())
    if shape == 1:
        return C.And(first, second)
    if shape == 2:
        return C.Or(first, second)
    return C.Implies(first, second)


@given(
    formula=st.one_of(S.constraints(), boolean_combinations()),
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    bag=st.booleans(),
    indexed=st.booleans(),
)
@_SETTINGS
def test_planned_constraint_verdict_matches_oracle(
    formula, rows_r, rows_s, bag, indexed
):
    database = _database(rows_r, rows_s, bag, indexed)
    view = DatabaseView(database)
    compiled = compile_constraint(formula, database.schema)
    assert compiled.satisfied(view) == evaluate_constraint(
        formula, view, validate=False
    ), f"verdict divergence on {formula!r} ({compiled!r})"


@given(
    condition=S.abortable_constraints(),
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    bag=st.booleans(),
    indexed=st.booleans(),
    compensating=st.booleans(),
)
@_SETTINGS
def test_audit_verdicts_match_between_engines(
    condition, rows_r, rows_s, bag, indexed, compensating
):
    """violated_constraints: planned == naive for aborting *and*
    compensating rules (the compensating path is the one PR 1 left on the
    model checker)."""
    database = _database(rows_r, rows_s, bag, indexed)
    controller = IntegrityController(database.schema)
    response = "delete(r, select(r, a < 0))" if compensating else None
    try:
        controller.add_constraint("prop", condition, response=response)
    except Exception:
        # Conditions whose trigger generation or schema checks reject them
        # are outside this property's scope.
        return
    planned = controller.violated_constraints(database, engine="planned")
    naive = controller.violated_constraints(database, engine="naive")
    assert planned == naive, (
        f"audit divergence on {condition!r}: planned={planned} naive={naive}"
    )


@given(
    condition=S.abortable_constraints(),
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    bag=st.booleans(),
)
@_SETTINGS
def test_assign_alarm_program_shape_audits_through_plans(
    condition, rows_r, rows_s, bag
):
    """An ``Assign``+``Alarm`` integrity program (the alarm reading a
    temporary) must audit identically to the rule's condition."""
    database = _database(rows_r, rows_s, bag, indexed=False)
    controller = IntegrityController(database.schema)
    try:
        rule = controller.add_constraint("prop", condition)
    except Exception:
        return
    stored = controller.store.get("prop")
    statements = stored.program.statements
    if len(statements) != 1 or not isinstance(statements[0], Alarm):
        return  # translation fell back; covered by the other properties
    rewritten = Program(
        [
            Assign("prop_viol", statements[0].expr),
            Alarm(E.RelationRef("prop_viol"), message="prop"),
        ]
    )
    controller.store.remove("prop")
    controller.store.add(IntegrityProgram("prop", rule.triggers, rewritten))
    planned = controller.violated_constraints(database, engine="planned")
    naive = controller.violated_constraints(database, engine="naive")
    assert planned == naive, (
        f"assign+alarm divergence on {condition!r}: "
        f"planned={planned} naive={naive}"
    )
