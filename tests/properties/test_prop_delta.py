"""Property: delta-plan enforcement agrees with full-plan re-evaluation.

For random transactions over the workload schema, the per-trigger delta
programs produced by the general rewrite must reach the same verdict —
violated / not violated, *and* the same violating-tuple sets for alarm
rules — as re-evaluating the full plans against the post state, in set and
bag mode, with and without hash indexes.  The premise is per-rule pre-state
correctness (paper Def 3.5): rules already violated before the transaction
are outside the differential contract and are skipped.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import planner
from repro.algebra.statements import Alarm
from repro.core.subsystem import IntegrityController
from repro.engine import Database, Session
from repro.engine.session import DatabaseView, DeltaView

from . import strategies as S

_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

RULES = {
    "domain_r": "(forall x)(x in r => x.a >= 0 or x.b > 2)",
    "ref_rs": "(forall x)(x in r => (exists y)(y in s and x.a = y.c))",
    "excl_rs": "(forall x in r)(forall y in s)(x.b != y.d or x.a != y.c)",
    "conj": "(forall x)(x in r => x.b <= 9) and "
    "(forall x)(x in s => x.d <= 9)",
}


def _database(rows_r, rows_s, bag: bool, indexed: bool) -> Database:
    database = Database(S.rs_schema(), bag=bag)
    database.load("r", rows_r)
    database.load("s", rows_s)
    if indexed:
        database.create_index("r", ["a"])
        database.create_index("s", ["c"])
    return database


def _controller() -> IntegrityController:
    controller = IntegrityController(S.rs_schema())
    for name, text in RULES.items():
        controller.add_constraint(name, text)
    return controller


@given(
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    txn=S.transactions(),
    bag=st.booleans(),
    indexed=st.booleans(),
)
@_SETTINGS
def test_incremental_audit_agrees_with_full_audit(
    rows_r, rows_s, txn, bag, indexed
):
    database = _database(rows_r, rows_s, bag, indexed)
    controller = _controller()
    pre_violated = set(controller.violated_constraints(database))
    result = Session(database).execute(txn)
    if not result.committed:
        return
    full = set(controller.violated_constraints(database))
    incremental = set(
        controller.violated_constraints_incremental(database, result)
    )
    for name in RULES:
        if name in pre_violated:
            continue  # Def 3.5 premise broken for this rule: no contract
        assert (name in incremental) == (name in full), (
            f"verdict divergence on {name}: "
            f"incremental={sorted(incremental)} full={sorted(full)} "
            f"(pre={sorted(pre_violated)})"
        )


@given(
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    txn=S.transactions(),
    bag=st.booleans(),
    indexed=st.booleans(),
    engine=st.sampled_from(["planned", "naive"]),
)
@_SETTINGS
def test_delta_violating_tuples_match_full_plan(
    rows_r, rows_s, txn, bag, indexed, engine
):
    """For single-alarm rules with a correct pre-state, the union of the
    matched triggers' delta programs computes exactly the full violation
    set — on both evaluation backends."""
    database = _database(rows_r, rows_s, bag, indexed)
    controller = _controller()
    pre_violated = set(controller.violated_constraints(database))
    result = Session(database).execute(txn)
    if not result.committed:
        return
    view = DeltaView(database, result.differentials, engine=engine)
    full_view = DatabaseView(database, engine=engine)
    performed = view.performed_triggers()
    for stored in controller.store:
        if stored.name in pre_violated or stored.differentials is None:
            continue
        statements = stored.program.statements
        if len(statements) != 1 or not isinstance(statements[0], Alarm):
            continue
        full_rows = planner.evaluate(
            statements[0].expr, full_view, engine=engine
        ).to_set()
        matched = stored.triggers & performed
        delta_rows: set = set()
        for statement in stored.action_for(matched):
            delta_rows |= set(
                planner.evaluate(statement.expr, view, engine=engine).to_set()
            )
        assert delta_rows == full_rows, (
            f"violating-tuple divergence on {stored.name} ({engine}): "
            f"delta={sorted(delta_rows)} full={sorted(full_rows)}"
        )
