"""Property: deferred and async audits agree with inline incremental audits.

For random transaction streams over the workload schema, draining the
commit log — per commit, or coalesced across consecutive commits — through
the :class:`~repro.core.scheduler.AuditScheduler` must produce the same
verdicts and violating-tuple sets as calling
``violated_constraints_incremental`` inline after each commit, across
commit interleavings (drain position varies), in set and bag mode, with
and without hash indexes, and regardless of whether tasks run on the
draining thread or the worker pool.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.scheduler import AuditScheduler
from repro.core.subsystem import IntegrityController
from repro.engine import Database, Session
from repro.engine.commitlog import coalesce_differentials

from . import strategies as S

_SETTINGS = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

RULES = {
    "domain_r": "(forall x)(x in r => x.a >= 0 or x.b > 2)",
    "ref_rs": "(forall x)(x in r => (exists y)(y in s and x.a = y.c))",
    "excl_rs": "(forall x in r)(forall y in s)(x.b != y.d or x.a != y.c)",
    "conj": "(forall x)(x in r => x.b <= 9) and "
    "(forall x)(x in s => x.d <= 9)",
}

TXN_STREAMS = st.lists(S.transactions(), min_size=1, max_size=4)


def _database(rows_r, rows_s, bag: bool, indexed: bool) -> Database:
    database = Database(S.rs_schema(), bag=bag)
    database.load("r", rows_r)
    database.load("s", rows_s)
    if indexed:
        database.create_index("r", ["a"])
        database.create_index("s", ["c"])
    return database


def _controller() -> IntegrityController:
    controller = IntegrityController(S.rs_schema())
    for name, text in RULES.items():
        controller.add_constraint(name, text)
    return controller


def _outcome_key(outcomes):
    """Per (sequence-span, rule): (violated, violating tuple set)."""
    return {
        (outcome.sequences, outcome.rule): (
            outcome.violated,
            frozenset(outcome.violations),
        )
        for outcome in outcomes
    }


@given(
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    txns=TXN_STREAMS,
    bag=st.booleans(),
    indexed=st.booleans(),
    asynchronous=st.booleans(),
)
@_SETTINGS
def test_per_commit_drain_agrees_with_inline(
    rows_r, rows_s, txns, bag, indexed, asynchronous
):
    """Un-coalesced drains must reproduce the inline per-commit audit
    exactly — verdicts and violating-tuple samples — whether the tasks ran
    inline, on the pool (dispatch_overhead=0 forces fan-out), or mixed."""
    database = _database(rows_r, rows_s, bag, indexed)
    controller = _controller()
    session = Session(database)
    scheduler = AuditScheduler(
        controller,
        database,
        workers=3,
        dispatch_overhead=0.0 if asynchronous else 1e9,
    )
    inline_expected = {}
    committed = []
    for txn in txns:
        result = session.execute(txn)
        if not result.committed:
            continue
        sequence = database.commit_log.next_sequence - 1
        committed.append(sequence)
        tasks = controller.audit_tasks(database, result)
        inline_names = set(
            controller.violated_constraints_incremental(database, result)
        )
        for task in tasks:
            violated, sample = task.run()
            assert violated == (task.rule_name in inline_names)
            inline_expected[((sequence,), task.rule_name)] = (
                violated,
                frozenset(sample),
            )
        # Interleaving: drain after every commit so each audit runs
        # against exactly the state the inline audit saw.
        if asynchronous:
            scheduler.drain(asynchronous=True, coalesce=False)
            outcomes = scheduler.wait()
        else:
            outcomes = scheduler.drain(coalesce=False)
        for key, value in _outcome_key(outcomes).items():
            assert inline_expected[key] == value, (
                f"pipeline outcome diverges at {key}: "
                f"{value} != {inline_expected[key]}"
            )
    scheduler.close()
    assert not scheduler.pending()


@given(
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    txns=TXN_STREAMS,
    bag=st.booleans(),
    indexed=st.booleans(),
)
@_SETTINGS
def test_coalesced_drain_equals_inline_audit_of_composed_delta(
    rows_r, rows_s, txns, bag, indexed
):
    """A coalesced drain over N commits must agree with the inline
    incremental audit of the *composed* net delta: coalescing is delta
    composition, not a different enforcement semantics."""
    database = _database(rows_r, rows_s, bag, indexed)
    controller = _controller()
    session = Session(database)
    start = database.commit_log.next_sequence
    for txn in txns:
        session.execute(txn)
    records, lost = database.commit_log.since(start)
    assert lost == 0
    composed = coalesce_differentials(records, database)
    inline = set(
        controller.violated_constraints_incremental(database, composed)
    )
    scheduler = AuditScheduler(
        controller, database, workers=3, start_sequence=start
    )
    outcomes = scheduler.drain(coalesce=True)
    scheduler.close()
    assert {o.rule for o in outcomes if o.violated} == inline
    assert not any(o.failed for o in outcomes)


_PROCESS_SETTINGS = settings(
    max_examples=6,  # a pool per example: keep the fleet small
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    txns=TXN_STREAMS,
    bag=st.booleans(),
)
@_SETTINGS
def test_commit_record_pickle_round_trip_replays_identically(
    rows_r, rows_s, txns, bag
):
    """Commit records survive pickling: a replica bootstrapped from a
    pickled snapshot and fed pickled records converges to the coordinator
    state — the exact path the process executor's replication takes."""
    import pickle
    from collections import Counter

    database = _database(rows_r, rows_s, bag, indexed=False)
    replica = pickle.loads(pickle.dumps(database, pickle.HIGHEST_PROTOCOL))
    session = Session(database)
    start = database.commit_log.next_sequence
    for txn in txns:
        session.execute(txn)
    records, lost = database.commit_log.since(start)
    assert lost == 0
    for record in records:
        clone = pickle.loads(pickle.dumps(record, pickle.HIGHEST_PROTOCOL))
        assert clone.sequence == record.sequence
        assert set(clone.differentials) == set(record.differentials)
        for base, (plus, minus) in record.differentials.items():
            clone_plus, clone_minus = clone.differentials[base]
            for side, clone_side in ((plus, clone_plus), (minus, clone_minus)):
                if side is None:
                    assert clone_side is None
                else:
                    assert Counter(clone_side.rows()) == Counter(side.rows())
        replica.apply_deltas(clone.differentials, record=False)
    for name in ("r", "s"):
        assert Counter(replica.relation(name).rows()) == Counter(
            database.relation(name).rows()
        )


@given(
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    txns=TXN_STREAMS,
    bag=st.booleans(),
)
@_SETTINGS
def test_controller_spec_rebuild_preserves_verdicts(rows_r, rows_s, txns, bag):
    """A controller rebuilt from its pickled :class:`ControllerSpec` — the
    worker-process bootstrap path — audits every committed delta exactly
    like the original."""
    import pickle

    from repro.core.procpool import ControllerSpec

    database = _database(rows_r, rows_s, bag, indexed=False)
    controller = _controller()
    spec = pickle.loads(
        pickle.dumps(ControllerSpec(controller), pickle.HIGHEST_PROTOCOL)
    )
    rebuilt = spec.build()
    assert [r.name for r in rebuilt.rules] == [
        r.name for r in controller.rules
    ]
    session = Session(database)
    for txn in txns:
        result = session.execute(txn)
        if not result.committed:
            continue
        assert set(
            rebuilt.violated_constraints_incremental(database, result)
        ) == set(controller.violated_constraints_incremental(database, result))


@given(
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    txns=TXN_STREAMS,
    bag=st.booleans(),
    start_method=st.sampled_from(["fork", "spawn"]),
)
@_PROCESS_SETTINGS
def test_process_executor_agrees_with_inline(
    rows_r, rows_s, txns, bag, start_method
):
    """Process-pool verdicts (under fork AND spawn — the payloads always
    ship explicitly pickled, never fork-inherited) equal the inline
    per-commit incremental audit."""
    import multiprocessing

    if start_method not in multiprocessing.get_all_start_methods():
        return  # platform without fork: the spawn draw still runs
    database = _database(rows_r, rows_s, bag, indexed=False)
    controller = _controller()
    session = Session(database)
    with AuditScheduler(
        controller,
        database,
        workers=2,
        dispatch_overhead=0.0,
        executor="process",
        start_method=start_method,
    ) as scheduler:
        for txn in txns:
            result = session.execute(txn)
            if not result.committed:
                continue
            inline = set(
                controller.violated_constraints_incremental(database, result)
            )
            scheduler.drain(asynchronous=True, coalesce=False)
            outcomes = scheduler.wait()
            assert not any(o.failed for o in outcomes)
            assert all(o.executor == "process" for o in outcomes)
            assert {o.rule for o in outcomes if o.violated} == inline


@given(
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    txns=TXN_STREAMS,
    bag=st.booleans(),
)
@_SETTINGS
def test_session_commit_sync_equals_incremental(rows_r, rows_s, txns, bag):
    """``Session.commit(audit="sync")`` verdicts equal what inline
    ``violated_constraints_incremental`` reports for the same commit."""
    database = _database(rows_r, rows_s, bag, indexed=False)
    controller = _controller()
    session = Session(database, controller)
    for txn in txns:
        result = session.commit(txn, audit="sync")
        if not result.committed:
            continue
        inline = set(
            controller.violated_constraints_incremental(database, result)
        )
        assert {o.rule for o in result.audit if o.violated} == inline
        assert not any(o.failed for o in result.audit)


@given(
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    txns=TXN_STREAMS,
    bag=st.booleans(),
    indexed=st.booleans(),
    asynchronous=st.booleans(),
)
@_SETTINGS
def test_deferred_audits_pin_their_commit_epochs(
    rows_r, rows_s, txns, bag, indexed, asynchronous
):
    """Audits drained strictly AFTER every commit landed still report the
    verdict each commit had at commit time: the pinned epoch span (pre/post
    snapshots) makes thread-pool and inline async audits strict per-commit,
    never audits of whatever state the worker happened to observe."""
    database = _database(rows_r, rows_s, bag, indexed)
    controller = _controller()
    session = Session(database)
    scheduler = AuditScheduler(
        controller,
        database,
        workers=3,
        dispatch_overhead=0.0 if asynchronous else 1e9,
    )
    expected = {}
    for txn in txns:
        result = session.execute(txn)
        if not result.committed:
            continue
        sequence = database.commit_log.next_sequence - 1
        inline_names = set(
            controller.violated_constraints_incremental(database, result)
        )
        for rule in controller.rules:
            expected[((sequence,), rule.name)] = rule.name in inline_names
    # Every commit has landed; the database is at its final state.  A
    # non-pinned audit of commit k would now see commits k+1.. too.
    if asynchronous:
        scheduler.drain(asynchronous=True, coalesce=False)
        outcomes = scheduler.wait()
    else:
        outcomes = scheduler.drain(coalesce=False)
    scheduler.close()
    assert not any(o.failed for o in outcomes)
    for outcome in outcomes:
        assert outcome.violated == expected[(outcome.sequences, outcome.rule)], (
            f"{outcome.rule} over {outcome.sequences}: deferred verdict "
            f"{outcome.violated} diverges from the commit-time verdict"
        )


@given(
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    txns=TXN_STREAMS,
    bag=st.booleans(),
)
@_SETTINGS
def test_async_thread_verdicts_equal_sync_verdicts(rows_r, rows_s, txns, bag):
    """``audit="async"`` on the thread pool produces exactly the verdicts
    ``audit="sync"`` produces for the same transaction stream — the thread
    arm of the consistency table is no longer weaker than sync."""
    sync_db = _database(rows_r, rows_s, bag, indexed=False)
    async_db = _database(rows_r, rows_s, bag, indexed=False)
    sync_session = Session(sync_db, _controller())
    async_controller = _controller()
    async_session = Session(async_db, async_controller)
    # First creation fixes the options: force thread-pool fan-out.
    async_controller.audit_scheduler(async_db, workers=3, dispatch_overhead=0.0)
    sync_verdicts = {}
    for txn in txns:
        sync_result = sync_session.commit(txn, audit="sync")
        async_result = async_session.commit(txn, audit="async")
        assert sync_result.committed == async_result.committed
        if sync_result.committed:
            sync_verdicts.update(
                {(o.sequences, o.rule): o.violated for o in sync_result.audit}
            )
    outcomes = async_session.wait_for_audits()
    async_verdicts = {
        (o.sequences, o.rule): o.violated for o in outcomes
    }
    for key, violated in sync_verdicts.items():
        assert async_verdicts[key] == violated, (
            f"{key}: async verdict {async_verdicts[key]} != sync {violated}"
        )
