"""Property: batch and fused execution are result-equivalent to row execution.

For random algebra expressions and random database states, running the
*same* physical plan in all three execution modes — row-at-a-time (the
differential oracle), per-operator whole-column kernels, and fused
pipeline regions — must produce the exact same relation — tuples *and*
multiplicities — in set mode and bag mode, with and without hash
indexes, over plain and overlay inputs, and over NULL-bearing columns.
When one mode raises, every mode must raise.  Each mode starts from a
freshly loaded database, and the index usage ledgers
(:class:`~repro.engine.indexes.IndexUsage`) must end identical: the
batch and fused paths may not silently change which regimes touch which
indexes how often.

Also: :class:`~repro.algebra.columnar.ColumnBatch` and columnar-backed
relations (:class:`~repro.engine.relation.ColumnarRelation`) must
survive a pickle round-trip (the wire format of both process
executors), including across fork- and spawn-started child processes.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import columnar, planner
from repro.algebra.evaluation import StandaloneContext
from repro.engine import Database, DatabaseSchema, Relation, RelationSchema
from repro.engine.overlay import OverlayRelation
from repro.engine.relation import ColumnarRelation
from repro.engine.schema import Attribute
from repro.engine.types import ANY, INT, NULL
from repro.errors import ReproError

from . import strategies as S

_SETTINGS = settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MAYBE_NULL = st.one_of(S.VALUES, st.just(NULL))
NULL_ROWS = st.lists(st.tuples(MAYBE_NULL, MAYBE_NULL), max_size=8)


def _database(rows_r, rows_s, bag: bool) -> Database:
    database = Database(S.rs_schema(), bag=bag)
    database.load("r", rows_r)
    database.load("s", rows_s)
    return database


def _nullable_rs_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema(
                "r",
                [Attribute("a", INT, nullable=True), Attribute("b", INT, nullable=True)],
            ),
            RelationSchema(
                "s",
                [Attribute("c", INT, nullable=True), Attribute("d", INT, nullable=True)],
            ),
        ]
    )


def _run(fn):
    try:
        return fn(), None
    except ReproError as error:
        return None, error


#: (mode, batch policy, fusion policy) — row is the differential oracle.
_MODES = (
    ("row", "never", "never"),
    ("batch", "always", "never"),
    ("fused", "always", "always"),
)


def _usage_snapshot(relations) -> dict:
    """Every index's full usage ledger, keyed by (relation, positions)."""
    snapshot = {}
    for name, relation in relations.items():
        indexes = getattr(relation, "indexes", None)
        if indexes is None:
            continue
        for index in indexes:
            snapshot[(name, index.positions)] = (
                index.usage.uses,
                index.usage.keys,
                index.usage.by_kind,
                index.built,
            )
    return snapshot


def _assert_policies_agree(expression, make_relations):
    """Execute the planned backend in every mode over fresh inputs.

    ``make_relations`` builds an identical relation dict per call, so
    each mode starts from the same state (index builds during one run
    cannot leak into the next) and the usage ledgers are comparable.
    """
    plan = planner.get_plan(expression)
    outcomes = {}
    previous_batch = columnar.batch_policy()
    previous_fusion = columnar.fusion_policy()
    try:
        for mode, batch, fusion in _MODES:
            columnar.set_batch_policy(batch)
            columnar.set_fusion_policy(fusion)
            relations = make_relations()
            context = StandaloneContext(relations, engine="planned")
            result, error = _run(lambda: plan.execute(context))
            outcomes[mode] = (result, error, _usage_snapshot(relations))
    finally:
        columnar.set_batch_policy(previous_batch)
        columnar.set_fusion_policy(previous_fusion)
    row_result, row_error, row_usage = outcomes["row"]
    for mode in ("batch", "fused"):
        result, error, usage = outcomes[mode]
        if row_error is not None or error is not None:
            assert row_error is not None and error is not None, (
                f"error divergence on {expression!r}: "
                f"row={row_error!r} {mode}={error!r}"
            )
            continue
        assert result == row_result, (
            f"result divergence on {expression!r}:\n"
            f"  row:   {row_result.sorted_rows()}\n"
            f"  {mode}: {result.sorted_rows()}"
        )
        assert len(result) == len(row_result)
        assert usage == row_usage, (
            f"index usage divergence on {expression!r}:\n"
            f"  row:   {row_usage}\n"
            f"  {mode}: {usage}"
        )


@given(
    expression=S.algebra_queries(),
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    bag=st.booleans(),
)
@_SETTINGS
def test_batch_equals_row(expression, rows_r, rows_s, bag):
    def make_relations():
        database = _database(rows_r, rows_s, bag)
        return {"r": database.relation("r"), "s": database.relation("s")}

    _assert_policies_agree(expression, make_relations)


@given(
    expression=S.algebra_queries(),
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    bag=st.booleans(),
)
@_SETTINGS
def test_batch_equals_row_with_indexes(expression, rows_r, rows_s, bag):
    """Same property with hash indexes installed on every column.

    Indexed regimes (bucket-lookup selection, distinct-key semijoin
    probing) must stay byte-identical regardless of the batch and fusion
    policies — including the usage ledgers the index advisor reads.
    """

    def make_relations():
        database = _database(rows_r, rows_s, bag)
        database.create_index("r", ["a"])
        database.create_index("s", ["d"])
        return {"r": database.relation("r"), "s": database.relation("s")}

    _assert_policies_agree(expression, make_relations)


@given(
    expression=S.algebra_queries(),
    rows_r=S.ROWS_R,
    extra_r=st.lists(st.tuples(S.VALUES, S.VALUES), max_size=4),
    gone_r=st.lists(st.tuples(S.VALUES, S.VALUES), max_size=4),
    rows_s=S.ROWS_S,
    bag=st.booleans(),
)
@_SETTINGS
def test_batch_equals_row_over_overlays(
    expression, rows_r, extra_r, gone_r, rows_s, bag
):
    """Same property when ``r`` is an uncommitted transaction overlay."""

    def make_relations():
        database = _database(rows_r, rows_s, bag)
        base = database.relation("r")
        plus = Relation(base.schema, bag=bag)
        minus = Relation(base.schema, bag=bag)
        for row in extra_r:
            if row not in base:
                plus.insert(row)
        for row in gone_r:
            if row in base and row not in plus:
                minus.insert(row)
        overlay = OverlayRelation(base, plus, minus)
        return {"r": overlay, "s": database.relation("s")}

    _assert_policies_agree(expression, make_relations)


@given(
    expression=S.algebra_queries(),
    rows_r=NULL_ROWS,
    rows_s=NULL_ROWS,
    bag=st.booleans(),
)
@_SETTINGS
def test_batch_equals_row_with_nulls(expression, rows_r, rows_s, bag):
    """Same property over nullable columns with NULL-bearing rows.

    Exercises the kernels' three-valued-logic branches: NULL propagation
    through arithmetic, unknown comparison outcomes, and the Kleene
    connectives' short-circuit row subsets.
    """

    def make_relations():
        database = Database(_nullable_rs_schema(), bag=bag)
        database.load("r", rows_r)
        database.load("s", rows_s)
        return {"r": database.relation("r"), "s": database.relation("s")}

    _assert_policies_agree(expression, make_relations)


# -- fusion-shaped chains --------------------------------------------------------


@st.composite
def chain_queries(draw):
    """Region-shaped expressions: select/project stages over scan or join.

    These are exactly the shapes the planner's ``fuse_pipelines`` pass
    targets, so drawing them directly (instead of waiting for
    ``algebra_queries`` to stumble onto one) keeps the fused kernel under
    constant pressure — including bag-mode joins through the counts-aware
    pair kernel, indexed semijoin regimes, and multi-stage stacks.
    """
    from repro.algebra import expressions as E
    from repro.algebra import predicates as P

    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        expression: E.Expression = E.RelationRef(draw(st.sampled_from(["r", "s"])))
        arity = 2
    elif kind == 1:
        expression = E.Join(
            E.RelationRef("r"), E.RelationRef("s"), draw(S.join_predicates())
        )
        arity = 4
    else:
        ctor = E.SemiJoin if kind == 2 else E.AntiJoin
        expression = ctor(
            E.RelationRef("r"), E.RelationRef("s"), draw(S.join_predicates())
        )
        arity = 2
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        if draw(st.booleans()):
            expression = E.Select(expression, draw(S.unary_predicates()))
        else:
            items = tuple(
                E.ProjectItem(
                    P.ColRef(draw(st.integers(min_value=1, max_value=arity)))
                )
                for _ in range(2)
            )
            expression = E.Project(expression, items)
            arity = 2
    return expression


@given(
    expression=chain_queries(),
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    bag=st.booleans(),
    indexed=st.booleans(),
)
@_SETTINGS
def test_fused_equals_row_on_chains(expression, rows_r, rows_s, bag, indexed):
    """Fused regions agree with both unfused paths on fusion-shaped plans."""

    def make_relations():
        database = _database(rows_r, rows_s, bag)
        if indexed:
            database.create_index("r", ["b"])
            database.create_index("s", ["c"])
        return {"r": database.relation("r"), "s": database.relation("s")}

    _assert_policies_agree(expression, make_relations)


@given(
    expression=chain_queries(),
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    bag=st.booleans(),
)
@_SETTINGS
def test_fused_equals_row_over_columnar_relations(expression, rows_r, rows_s, bag):
    """Same property when the inputs are columnar-backed relations.

    This is the state process workers see after a lazy wire decode: the
    scan's ``column_batch()`` starts straight from the shipped columns.
    """

    def make_relations():
        database = _database(rows_r, rows_s, bag)
        return {
            name: ColumnarRelation(
                columnar.ColumnBatch.from_relation(database.relation(name))
            )
            for name in ("r", "s")
        }

    _assert_policies_agree(expression, make_relations)


# -- wire-format round-trips ---------------------------------------------------

MIXED_VALUES = st.one_of(
    st.integers(min_value=-(1 << 40), max_value=1 << 40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=6),
    st.booleans(),
    st.just(NULL),
)


def _mixed_relation(rows, counts, bag: bool) -> Relation:
    schema = RelationSchema(
        "m",
        [Attribute("a", ANY, nullable=True), Attribute("b", ANY, nullable=True)],
    )
    relation = Relation(schema, bag=bag)
    for row, count in zip(rows, counts):
        for _ in range(count if bag else 1):
            relation.insert(row)
    return relation


@given(
    rows=st.lists(st.tuples(MIXED_VALUES, MIXED_VALUES), max_size=10, unique=True),
    counts=st.lists(st.integers(min_value=1, max_value=3), min_size=10, max_size=10),
    bag=st.booleans(),
)
@_SETTINGS
def test_column_batch_pickle_round_trip(rows, counts, bag):
    relation = _mixed_relation(rows, counts, bag)
    relation.declare_index((0,))
    batch = columnar.ColumnBatch.from_relation(relation)
    revived = pickle.loads(pickle.dumps(batch)).to_relation()
    assert revived == relation
    assert len(revived) == len(relation)
    # Values must round-trip with exact types (bool stays bool, int stays
    # int), not merely dict-key-equal ones.
    assert {
        tuple(map(type, row)) for row in revived.rows()
    } == {tuple(map(type, row)) for row in relation.rows()}
    assert tuple(revived.indexes.specs()) == ((0,),)


@given(
    rows=st.lists(st.tuples(MIXED_VALUES, MIXED_VALUES), max_size=10, unique=True),
    counts=st.lists(st.integers(min_value=1, max_value=3), min_size=10, max_size=10),
    bag=st.booleans(),
)
@_SETTINGS
def test_columnar_relation_pickle_round_trip(rows, counts, bag):
    """Columnar-backed relations re-ship as columns and stay lazy."""
    relation = _mixed_relation(rows, counts, bag)
    relation.declare_index((1,))
    backed = ColumnarRelation(columnar.ColumnBatch.from_relation(relation))
    revived = pickle.loads(pickle.dumps(backed))
    assert isinstance(revived, ColumnarRelation)
    # Equality materializes the row dict; check the lazy surfaces first.
    assert len(revived) == len(relation)
    assert revived.distinct_count() == relation.distinct_count()
    assert revived == relation
    assert tuple(revived.indexes.specs()) == ((1,),)
    # Mutation after revival behaves like a plain relation.
    revived.insert((0, "fresh"))
    assert revived.multiplicity((0, "fresh")) == relation.multiplicity((0, "fresh")) + 1


def _echo_batch(blob, queue):
    batch = pickle.loads(blob)
    queue.put(pickle.dumps(batch))


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_column_batch_pickle_across_start_methods(start_method):
    """The wire format survives both process start methods end to end."""
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} unavailable on this platform")
    relation = _mixed_relation(
        [(1, "x"), (2.5, NULL), (True, -300), (1 << 50, 0)], [2, 1, 3, 1], True
    )
    batch = columnar.ColumnBatch.from_relation(relation)
    context = multiprocessing.get_context(start_method)
    queue = context.Queue()
    worker = context.Process(
        target=_echo_batch, args=(pickle.dumps(batch), queue)
    )
    worker.start()
    try:
        echoed = pickle.loads(queue.get(timeout=30))
    finally:
        worker.join(timeout=10)
    assert echoed.to_relation() == relation


def _echo_relation(blob, queue):
    relation = pickle.loads(blob)
    # Touch the lazy surfaces, then re-ship: the worker-side round trip
    # the process executors perform on every fragment install.
    queue.put((len(relation), pickle.dumps(relation)))


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_columnar_relation_pickle_across_start_methods(start_method):
    """Columnar-backed relations survive both process start methods."""
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} unavailable on this platform")
    relation = _mixed_relation(
        [(1, "x"), (2.5, NULL), (True, -300), (1 << 50, 0)], [2, 1, 3, 1], True
    )
    relation.declare_index((0,))
    backed = ColumnarRelation(columnar.ColumnBatch.from_relation(relation))
    context = multiprocessing.get_context(start_method)
    queue = context.Queue()
    worker = context.Process(
        target=_echo_relation, args=(pickle.dumps(backed), queue)
    )
    worker.start()
    try:
        cardinality, blob = queue.get(timeout=30)
    finally:
        worker.join(timeout=10)
    assert cardinality == len(relation)
    echoed = pickle.loads(blob)
    assert isinstance(echoed, ColumnarRelation)
    assert echoed == relation
    assert tuple(echoed.indexes.specs()) == ((0,),)
