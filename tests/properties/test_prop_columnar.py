"""Property: batch execution is result-equivalent to row execution.

For random algebra expressions and random database states, running the
*same* physical plan with the batch policy forced on must produce the
exact same relation — tuples *and* multiplicities — as with batching
forced off, in set mode and bag mode, with and without hash indexes, over
plain and overlay inputs, and over NULL-bearing columns.  When one path
raises, the other must raise too.

Also: :class:`~repro.algebra.columnar.ColumnBatch` must survive a pickle
round-trip (the wire format of both process executors), including across
fork- and spawn-started child processes.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import columnar, planner
from repro.algebra.evaluation import StandaloneContext
from repro.engine import Database, DatabaseSchema, Relation, RelationSchema
from repro.engine.overlay import OverlayRelation
from repro.engine.schema import Attribute
from repro.engine.types import ANY, INT, NULL
from repro.errors import ReproError

from . import strategies as S

_SETTINGS = settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MAYBE_NULL = st.one_of(S.VALUES, st.just(NULL))
NULL_ROWS = st.lists(st.tuples(MAYBE_NULL, MAYBE_NULL), max_size=8)


def _database(rows_r, rows_s, bag: bool) -> Database:
    database = Database(S.rs_schema(), bag=bag)
    database.load("r", rows_r)
    database.load("s", rows_s)
    return database


def _nullable_rs_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema(
                "r",
                [Attribute("a", INT, nullable=True), Attribute("b", INT, nullable=True)],
            ),
            RelationSchema(
                "s",
                [Attribute("c", INT, nullable=True), Attribute("d", INT, nullable=True)],
            ),
        ]
    )


def _run(fn):
    try:
        return fn(), None
    except ReproError as error:
        return None, error


def _assert_policies_agree(expression, relations):
    """Execute the planned backend twice: batching off, then forced on."""
    plan = planner.get_plan(expression)
    context = StandaloneContext(relations, engine="planned")
    previous = columnar.set_batch_policy("never")
    try:
        row_result, row_error = _run(lambda: plan.execute(context))
        columnar.set_batch_policy("always")
        batch_result, batch_error = _run(lambda: plan.execute(context))
    finally:
        columnar.set_batch_policy(previous)
    if row_error is not None or batch_error is not None:
        assert row_error is not None and batch_error is not None, (
            f"error divergence on {expression!r}: "
            f"row={row_error!r} batch={batch_error!r}"
        )
        return
    assert row_result == batch_result, (
        f"result divergence on {expression!r}:\n"
        f"  row:   {row_result.sorted_rows()}\n"
        f"  batch: {batch_result.sorted_rows()}"
    )
    assert len(row_result) == len(batch_result)


@given(
    expression=S.algebra_queries(),
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    bag=st.booleans(),
)
@_SETTINGS
def test_batch_equals_row(expression, rows_r, rows_s, bag):
    database = _database(rows_r, rows_s, bag)
    _assert_policies_agree(
        expression,
        {"r": database.relation("r"), "s": database.relation("s")},
    )


@given(
    expression=S.algebra_queries(),
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    bag=st.booleans(),
)
@_SETTINGS
def test_batch_equals_row_with_indexes(expression, rows_r, rows_s, bag):
    """Same property with hash indexes installed on every column.

    Indexed regimes (bucket-lookup selection, distinct-key semijoin
    probing) must stay byte-identical regardless of the batch policy.
    """
    database = _database(rows_r, rows_s, bag)
    database.create_index("r", ["a"])
    database.create_index("s", ["d"])
    _assert_policies_agree(
        expression,
        {"r": database.relation("r"), "s": database.relation("s")},
    )


@given(
    expression=S.algebra_queries(),
    rows_r=S.ROWS_R,
    extra_r=st.lists(st.tuples(S.VALUES, S.VALUES), max_size=4),
    gone_r=st.lists(st.tuples(S.VALUES, S.VALUES), max_size=4),
    rows_s=S.ROWS_S,
    bag=st.booleans(),
)
@_SETTINGS
def test_batch_equals_row_over_overlays(
    expression, rows_r, extra_r, gone_r, rows_s, bag
):
    """Same property when ``r`` is an uncommitted transaction overlay."""
    database = _database(rows_r, rows_s, bag)
    base = database.relation("r")
    plus = Relation(base.schema, bag=bag)
    minus = Relation(base.schema, bag=bag)
    for row in extra_r:
        if row not in base:
            plus.insert(row)
    for row in gone_r:
        if row in base and row not in plus:
            minus.insert(row)
    overlay = OverlayRelation(base, plus, minus)
    _assert_policies_agree(
        expression, {"r": overlay, "s": database.relation("s")}
    )


@given(
    expression=S.algebra_queries(),
    rows_r=NULL_ROWS,
    rows_s=NULL_ROWS,
    bag=st.booleans(),
)
@_SETTINGS
def test_batch_equals_row_with_nulls(expression, rows_r, rows_s, bag):
    """Same property over nullable columns with NULL-bearing rows.

    Exercises the kernels' three-valued-logic branches: NULL propagation
    through arithmetic, unknown comparison outcomes, and the Kleene
    connectives' short-circuit row subsets.
    """
    database = Database(_nullable_rs_schema(), bag=bag)
    database.load("r", rows_r)
    database.load("s", rows_s)
    _assert_policies_agree(
        expression,
        {"r": database.relation("r"), "s": database.relation("s")},
    )


# -- wire-format round-trips ---------------------------------------------------

MIXED_VALUES = st.one_of(
    st.integers(min_value=-(1 << 40), max_value=1 << 40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=6),
    st.booleans(),
    st.just(NULL),
)


def _mixed_relation(rows, counts, bag: bool) -> Relation:
    schema = RelationSchema(
        "m",
        [Attribute("a", ANY, nullable=True), Attribute("b", ANY, nullable=True)],
    )
    relation = Relation(schema, bag=bag)
    for row, count in zip(rows, counts):
        for _ in range(count if bag else 1):
            relation.insert(row)
    return relation


@given(
    rows=st.lists(st.tuples(MIXED_VALUES, MIXED_VALUES), max_size=10, unique=True),
    counts=st.lists(st.integers(min_value=1, max_value=3), min_size=10, max_size=10),
    bag=st.booleans(),
)
@_SETTINGS
def test_column_batch_pickle_round_trip(rows, counts, bag):
    relation = _mixed_relation(rows, counts, bag)
    relation.declare_index((0,))
    batch = columnar.ColumnBatch.from_relation(relation)
    revived = pickle.loads(pickle.dumps(batch)).to_relation()
    assert revived == relation
    assert len(revived) == len(relation)
    # Values must round-trip with exact types (bool stays bool, int stays
    # int), not merely dict-key-equal ones.
    assert {
        tuple(map(type, row)) for row in revived.rows()
    } == {tuple(map(type, row)) for row in relation.rows()}
    assert tuple(revived.indexes.specs()) == ((0,),)


def _echo_batch(blob, queue):
    batch = pickle.loads(blob)
    queue.put(pickle.dumps(batch))


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_column_batch_pickle_across_start_methods(start_method):
    """The wire format survives both process start methods end to end."""
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} unavailable on this platform")
    relation = _mixed_relation(
        [(1, "x"), (2.5, NULL), (True, -300), (1 << 50, 0)], [2, 1, 3, 1], True
    )
    batch = columnar.ColumnBatch.from_relation(relation)
    context = multiprocessing.get_context(start_method)
    queue = context.Queue()
    worker = context.Process(
        target=_echo_batch, args=(pickle.dumps(batch), queue)
    )
    worker.start()
    try:
        echoed = pickle.loads(queue.get(timeout=30))
    finally:
        worker.join(timeout=10)
    assert echoed.to_relation() == relation
