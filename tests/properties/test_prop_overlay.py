"""Property: overlay transactions are observationally equivalent to the
eager-copy semantics they replaced.

The PR 4 write path carries all transaction-local state in the
``(base, Δ⁺, Δ⁻)`` overlay and commits by applying the net delta in place.
This suite pins the old copy-on-write behaviour as the reference: an
``EagerContext`` reimplements the pre-overlay ``TransactionContext``
verbatim (full ``Relation.copy`` on first write, differential maintenance
beside the copy, wholesale ``Database.install`` on commit) and random
transactions are executed against both, comparing every observable at every
step — mid-transaction reads of base and auxiliary relations, expression
evaluations under both backends, index-probe answers, committed database
states, integrity verdicts, and abort/rollback — in set and bag mode, with
and without hash indexes.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import expressions as E
from repro.algebra import planner
from repro.algebra import predicates as P
from repro.engine import Database, OverlayRelation
from repro.engine.transaction import TransactionContext

from . import strategies as S

_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class EagerContext(TransactionContext):
    """The pre-overlay transaction context, kept verbatim as the oracle."""

    def _working_copy(self, base: str):
        relation = self.working.get(base)
        if relation is None:
            relation = self.database.relation(base).copy()
            self.working[base] = relation
        return relation

    def insert_rows(self, base, rows):
        target = self._working_copy(base)
        plus = self._differential(self._plus, base)
        minus = self._differential(self._minus, base)
        changed = 0
        for row in rows:
            row = target.schema.validate_tuple(tuple(row))
            if target.insert(row, _validated=True):
                changed += 1
                if not minus.delete(row):
                    plus.insert(row, _validated=True)
        self.tuples_inserted += changed
        return changed

    def delete_rows(self, base, rows):
        target = self._working_copy(base)
        plus = self._differential(self._plus, base)
        minus = self._differential(self._minus, base)
        changed = 0
        for row in list(rows):
            row = tuple(row)
            if target.delete(row):
                changed += 1
                if not plus.delete(row):
                    minus.insert(row, _validated=True)
        self.tuples_deleted += changed
        return changed

    def commit(self):
        differentials = {
            base: (self._plus.get(base), self._minus.get(base))
            for base in self.working
        }
        self.database.install(self.working, differentials=differentials)


def _database(rows_r, rows_s, bag: bool, indexed: bool) -> Database:
    database = Database(S.rs_schema(), bag=bag)
    database.load("r", rows_r)
    database.load("s", rows_s)
    if indexed:
        database.create_index("r", ["a"])
        database.create_index("s", ["c"])
    return database


def _contents(relation) -> dict:
    return dict(relation.items())


def _assert_same_relation(mine, reference, what: str) -> None:
    assert _contents(mine) == _contents(reference), (
        f"{what}: overlay {sorted(_contents(mine).items(), key=repr)} != "
        f"eager {sorted(_contents(reference).items(), key=repr)}"
    )
    assert len(mine) == len(reference), what
    assert mine.distinct_count() == reference.distinct_count(), what
    assert bool(mine) == bool(reference), what


_PROBES = (
    E.RelationRef("r"),
    E.RelationRef("r@plus"),
    E.RelationRef("r@minus"),
    E.RelationRef("r@old"),
    E.RelationRef("s"),
    E.Select(
        E.RelationRef("r"),
        P.Comparison("=", P.ColRef("a"), P.Const(1)),
    ),
    E.SemiJoin(
        E.RelationRef("r"),
        E.RelationRef("s"),
        P.Comparison("=", P.ColRef("a", "left"), P.ColRef("c", "right")),
    ),
    E.AntiJoin(
        E.RelationRef("r"),
        E.RelationRef("s"),
        P.Comparison("=", P.ColRef("a", "left"), P.ColRef("c", "right")),
    ),
    E.Union(E.RelationRef("r"), E.RelationRef("s")),
    E.Difference(E.RelationRef("r"), E.RelationRef("r@minus")),
)


def _assert_observationally_equal(overlay_ctx, eager_ctx, engine: str) -> None:
    for name in ("r", "s", "r@plus", "r@minus", "r@old", "s@plus"):
        _assert_same_relation(
            overlay_ctx.resolve(name), eager_ctx.resolve(name), f"resolve({name})"
        )
    # Point reads over the value domain.
    for row in [(a, b) for a in range(-1, 7) for b in range(-1, 7)]:
        mine = overlay_ctx.resolve("r")
        reference = eager_ctx.resolve("r")
        assert (row in mine) == (row in reference), f"membership {row}"
        assert mine.multiplicity(row) == reference.multiplicity(row), row
    # Expression evaluation over both contexts, selected backend.
    for probe in _PROBES:
        mine = planner.evaluate(probe, overlay_ctx, engine=engine)
        reference = planner.evaluate(probe, eager_ctx, engine=engine)
        assert mine == reference, f"probe {probe}"
        assert mine.sorted_rows() == reference.sorted_rows(), f"probe {probe}"
    assert (
        overlay_ctx.net_differentials().keys()
        == eager_ctx.net_differentials().keys()
    )
    for base, (plus, minus) in overlay_ctx.net_differentials().items():
        ref_plus, ref_minus = eager_ctx.net_differentials()[base]
        for mine, reference in ((plus, ref_plus), (minus, ref_minus)):
            mine_rows = {} if mine is None else _contents(mine)
            ref_rows = {} if reference is None else _contents(reference)
            assert mine_rows == ref_rows, base
    assert overlay_ctx.performed_triggers() == eager_ctx.performed_triggers()


def _assert_index_probes_agree(overlay_ctx, indexed: bool) -> None:
    """Overlay index-probe answers must match a brute-force scan."""
    if not indexed:
        return
    overlay = overlay_ctx._working_copy("r")
    assert isinstance(overlay, OverlayRelation)
    index = overlay.built_index((0,))
    assert index is not None
    for key in range(-1, 7):
        expected = sorted(
            (row for row in overlay.rows() if row[0] == key), key=repr
        )
        assert sorted(index.lookup(key), key=repr) == expected, key
        bucket = index.buckets.get(key)
        assert sorted(bucket or (), key=repr) == expected, key
        assert (key in index.buckets) == bool(expected), key
    assert sorted(index.buckets) == sorted(
        {row[0] for row in overlay.rows()}
    )


@given(
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    txn=S.transactions(),
    bag=st.booleans(),
    indexed=st.booleans(),
    engine=st.sampled_from(["naive", "planned"]),
)
@_SETTINGS
def test_overlay_transactions_match_eager_copy_semantics(
    rows_r, rows_s, txn, bag, indexed, engine
):
    overlay_db = _database(rows_r, rows_s, bag, indexed)
    eager_db = _database(rows_r, rows_s, bag, indexed)
    overlay_ctx = TransactionContext(overlay_db, engine=engine)
    eager_ctx = EagerContext(eager_db, engine=engine)
    for statement in txn.statements:
        statement.execute(overlay_ctx)
        statement.execute(eager_ctx)
        _assert_observationally_equal(overlay_ctx, eager_ctx, engine)
    _assert_index_probes_agree(overlay_ctx, indexed)
    overlay_ctx.commit()
    eager_ctx.commit()
    for name in ("r", "s"):
        _assert_same_relation(
            overlay_db.relation(name),
            eager_db.relation(name),
            f"committed {name}",
        )
        if indexed:
            # In-place application must leave the maintained index exactly
            # where a from-scratch build would land.
            index = overlay_db.relation(name).built_index((0,))
            assert index is not None
            assert sorted(index.buckets) == sorted(
                {row[0] for row in overlay_db.relation(name).rows()}
            )
    assert overlay_db.logical_time == eager_db.logical_time


@given(
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    txn=S.transactions(),
    bag=st.booleans(),
    indexed=st.booleans(),
)
@_SETTINGS
def test_overlay_rollback_restores_the_pre_state(
    rows_r, rows_s, txn, bag, indexed
):
    database = _database(rows_r, rows_s, bag, indexed)
    before = {name: _contents(database.relation(name)) for name in ("r", "s")}
    time_before = database.logical_time
    context = TransactionContext(database)
    for statement in txn.statements:
        statement.execute(context)
    context.rollback()
    for name in ("r", "s"):
        assert _contents(database.relation(name)) == before[name], name
    assert database.logical_time == time_before
    assert context.net_differentials() == {}


@given(
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    txn=S.transactions(),
    bag=st.booleans(),
)
@_SETTINGS
def test_aborting_transactions_leave_no_trace(rows_r, rows_s, txn, bag):
    from repro.algebra.programs import Program, bracket
    from repro.algebra.statements import Abort
    from repro.engine import Session

    database = _database(rows_r, rows_s, bag, indexed=False)
    before = {name: _contents(database.relation(name)) for name in ("r", "s")}
    aborting = bracket(Program(list(txn.statements) + [Abort("forced")]))
    result = Session(database).execute(aborting)
    assert result.aborted
    for name in ("r", "s"):
        assert _contents(database.relation(name)) == before[name], name
    assert database.logical_time == 0


@given(
    database=S.databases(),
    txns=st.lists(S.transactions(), min_size=1, max_size=5),
    bag=st.booleans(),
    release_early=st.booleans(),
)
@_SETTINGS
def test_pinned_epoch_reads_equal_eager_copy_oracle(
    database, txns, bag, release_early
):
    """Epoch-pinned snapshot reads are observationally identical to an
    eager deep copy taken at the same instant, no matter how many commits
    land between the pin and the read — the O(Δ) reconstruction never
    drifts from the O(n) oracle it replaced."""
    from collections import Counter

    from repro.engine import Database, Session

    if bag:  # rebuild the drawn database in bag mode
        rebuilt = Database(S.rs_schema(), bag=True)
        for name in ("r", "s"):
            rebuilt.load(name, list(database.relation(name).rows()))
        database = rebuilt
    session = Session(database)
    oracle = []  # (pin, {name: eager copy at pin time})

    def take_pin():
        pin = database.epochs.pin()
        copies = {
            name: database.relation(name).copy() for name in ("r", "s")
        }
        oracle.append((pin, copies))

    def check_all():
        for pin, copies in oracle:
            for name in ("r", "s"):
                snapshot = pin.relation(name)
                assert Counter(snapshot.rows()) == Counter(
                    copies[name].rows()
                ), f"pinned {name} diverged from the eager copy"
                assert snapshot.sorted_rows() == copies[name].sorted_rows()
                assert len(snapshot) == len(copies[name])

    take_pin()
    for index, txn in enumerate(txns):
        session.execute(txn)
        take_pin()
        check_all()
        if release_early and len(oracle) > 2:
            pin, _ = oracle.pop(0)  # reclamation must not disturb the rest
            pin.release()
            check_all()
    for pin, _ in oracle:
        pin.release()
