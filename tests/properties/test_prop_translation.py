"""Property: the translated algebra agrees with the direct evaluator.

For every constraint in the Table 1 families and every small database, the
aborting program produced by ``trans_c`` fires its alarm exactly when the
direct CL evaluator reports a violation.  This is the central correctness
property of Section 5.2.2.
"""

from hypothesis import given, settings

from repro.algebra.statements import Alarm
from repro.calculus.evaluation import evaluate_constraint
from repro.core.translation import trans_c
from repro.engine.session import DatabaseView
from repro.errors import TransactionAborted

from tests.properties import strategies as strat


def alarm_fires(program, view) -> bool:
    statement = program.statements[0]
    if isinstance(statement, Alarm):
        return len(statement.expr.evaluate(view)) > 0
    try:
        statement.execute(view)
        return False
    except TransactionAborted:
        return True


@given(db=strat.databases(), constraint=strat.constraints())
@settings(max_examples=300, deadline=None)
def test_translation_agrees_with_oracle(db, constraint):
    view = DatabaseView(db)
    direct = evaluate_constraint(constraint, view)
    program = trans_c(constraint, db.schema)
    assert alarm_fires(program, view) == (not direct)


@given(db=strat.databases(), constraint=strat.constraints())
@settings(max_examples=150, deadline=None)
def test_optimized_condition_agrees(db, constraint):
    from repro.core.optimization import opt_c

    view = DatabaseView(db)
    assert evaluate_constraint(constraint, view) == evaluate_constraint(
        opt_c(constraint), view
    )


@given(db=strat.databases(), constraint=strat.constraints())
@settings(max_examples=150, deadline=None)
def test_optimized_program_agrees(db, constraint):
    from repro.algebra.optimizer import optimize_program

    view = DatabaseView(db)
    program = trans_c(constraint, db.schema)
    optimized = optimize_program(program)
    assert alarm_fires(program, view) == alarm_fires(optimized, view)


@given(constraint=strat.constraints())
@settings(max_examples=200, deadline=None)
def test_constraint_render_parse_round_trip(constraint):
    from repro.calculus.parser import parse_constraint
    from repro.calculus.pretty import render_constraint

    assert parse_constraint(render_constraint(constraint)) == constraint
    assert parse_constraint(render_constraint(constraint, symbols=True)) == constraint
