"""Property: the algebra optimizer preserves semantics on random plans."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra.evaluation import StandaloneContext
from repro.algebra.optimizer import optimize_expression, simplify_predicate
from repro.engine import Relation

from tests.properties import strategies as strat

_ATTRS = ("a", "b")


@st.composite
def predicates(draw, depth: int = 2) -> P.Predicate:
    """Random predicates over the r(a, b) schema."""
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            return P.TruePred()
        if kind == 1:
            return P.FalsePred()
        left: P.ScalarExpr = P.ColRef(draw(st.sampled_from(_ATTRS)))
        if draw(st.booleans()):
            right: P.ScalarExpr = P.Const(draw(strat.VALUES))
        else:
            right = P.ColRef(draw(st.sampled_from(_ATTRS)))
        op = draw(st.sampled_from(["<", "<=", "=", "!=", ">=", ">"]))
        return P.Comparison(op, left, right)
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return P.Not(draw(predicates(depth=depth - 1)))
    ctor = P.And if kind == 1 else P.Or
    return ctor(
        draw(predicates(depth=depth - 1)), draw(predicates(depth=depth - 1))
    )


@st.composite
def r_shaped_expressions(draw, depth: int = 3) -> E.Expression:
    """Random read-only expressions whose output schema matches r(a, b)."""
    if depth == 0:
        return E.RelationRef("r")
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return E.RelationRef("r")
    if kind == 1:
        return E.Select(
            draw(r_shaped_expressions(depth=depth - 1)), draw(predicates())
        )
    if kind in (2, 3):
        ctor = {2: E.Union, 3: E.Difference}[kind]
        return ctor(
            draw(r_shaped_expressions(depth=depth - 1)),
            draw(r_shaped_expressions(depth=depth - 1)),
        )
    if kind == 4:
        return E.Intersection(
            draw(r_shaped_expressions(depth=depth - 1)),
            draw(r_shaped_expressions(depth=depth - 1)),
        )
    link = P.Comparison(
        "=",
        P.ColRef(draw(st.sampled_from(_ATTRS)), "left"),
        P.ColRef(draw(st.sampled_from(("c", "d"))), "right"),
    )
    ctor = draw(st.sampled_from([E.SemiJoin, E.AntiJoin]))
    return ctor(
        draw(r_shaped_expressions(depth=depth - 1)), E.RelationRef("s"), link
    )


@given(db=strat.databases(), expr=r_shaped_expressions())
@settings(max_examples=300, deadline=None)
def test_optimizer_preserves_semantics(db, expr):
    from repro.engine.session import DatabaseView

    view = DatabaseView(db)
    original = expr.evaluate(view)
    optimized = optimize_expression(expr).evaluate(view)
    assert original.to_set() == optimized.to_set()


@given(db=strat.databases(), predicate=predicates(depth=3))
@settings(max_examples=300, deadline=None)
def test_predicate_simplification_preserves_semantics(db, predicate):
    relation = db.relation("r")
    original = P.compile_predicate(predicate, relation.schema)
    simplified = P.compile_predicate(
        simplify_predicate(predicate), relation.schema
    )
    for row in relation.rows():
        assert original(row) == simplified(row)


@given(db=strat.databases(), predicate=predicates(depth=3))
@settings(max_examples=300, deadline=None)
def test_negate_is_logical_complement(db, predicate):
    relation = db.relation("r")
    positive = P.compile_predicate(predicate, relation.schema)
    negative = P.compile_predicate(P.negate(predicate), relation.schema)
    for row in relation.rows():
        value, complement = positive(row), negative(row)
        # NULL-free data: values are crisp booleans.
        assert value in (True, False)
        assert complement == (not value)


@given(expr=r_shaped_expressions())
@settings(max_examples=200, deadline=None)
def test_optimizer_idempotent(expr):
    once = optimize_expression(expr)
    twice = optimize_expression(once)
    assert once == twice


@given(expr=r_shaped_expressions())
@settings(max_examples=200, deadline=None)
def test_expression_render_parse_round_trip(expr):
    from repro.algebra.parser import parse_expression
    from repro.algebra.pretty import render_expression

    assert parse_expression(render_expression(expr)) == expr
