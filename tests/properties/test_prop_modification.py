"""Properties of the modification fixpoint itself.

The paper's headline guarantee (Section 5.1): executing a *modified*
transaction can never leave the database in a state violating the rules —
either the transaction commits and the post-state is correct, or it aborts
and the pre-state is kept (atomicity).  We also check the equivalence with
the check-after-execute baseline and the soundness of the differential
optimization.
"""

from hypothesis import assume, given, settings

from repro.core.modification import ModificationStats, StaticSelector, mod_t
from repro.core.programs import IntegrityProgramStore, get_int_p
from repro.core.rules import IntegrityRule
from repro.engine import Session
from repro.engine.session import DatabaseView

from tests.properties import strategies as strat


def build_controller(db, constraints, differential):
    from repro.core.subsystem import IntegrityController

    controller = IntegrityController(db.schema, differential=differential)
    for index, constraint in enumerate(constraints):
        controller.add_rule(IntegrityRule(constraint, name=f"rule_{index}"))
    return controller


def consistent(db, constraints) -> bool:
    from repro.calculus.evaluation import evaluate_constraint

    view = DatabaseView(db)
    return all(evaluate_constraint(c, view, validate=False) for c in constraints)


@given(
    db=strat.databases(),
    constraints=strat.abortable_constraints(),
    txn=strat.transactions(),
)
@settings(max_examples=200, deadline=None)
def test_committed_modified_transactions_preserve_consistency(
    db, constraints, txn
):
    constraints = [constraints]
    assume(consistent(db, constraints))
    controller = build_controller(db, constraints, differential=False)
    session = Session(db, controller)
    result = session.execute(txn)
    if result.committed:
        assert consistent(db, constraints)


@given(
    db=strat.databases(),
    constraint=strat.abortable_constraints(),
    txn=strat.transactions(),
)
@settings(max_examples=200, deadline=None)
def test_abort_preserves_pre_state(db, constraint, txn):
    constraints = [constraint]
    assume(consistent(db, constraints))
    before = db.snapshot()
    controller = build_controller(db, constraints, differential=False)
    session = Session(db, controller)
    result = session.execute(txn)
    if result.aborted:
        for name, relation in before.items():
            assert db.relation(name).to_set() == relation.to_set()


@given(
    db=strat.databases(),
    constraint=strat.abortable_constraints(),
    txn=strat.transactions(),
)
@settings(max_examples=200, deadline=None)
def test_modified_execution_equals_check_after_execute(db, constraint, txn):
    """For aborting state rules, the modified transaction commits exactly
    when executing unmodified and auditing afterwards finds no violation."""
    constraints = [constraint]
    assume(consistent(db, constraints))

    import copy

    baseline_db = copy.deepcopy(db)
    controller = build_controller(db, constraints, differential=False)
    session = Session(db, controller)
    verdict_modified = session.execute(txn).committed

    baseline_session = Session(baseline_db)
    baseline_session.execute(txn)
    verdict_baseline = consistent(baseline_db, constraints)

    assert verdict_modified == verdict_baseline


@given(
    db=strat.databases(),
    constraint=strat.abortable_constraints(),
    txn=strat.transactions(),
)
@settings(max_examples=200, deadline=None)
def test_differential_and_full_enforcement_agree(db, constraint, txn):
    """Soundness of §5.2.1: differential checks give the same verdict as
    full-state checks, given a consistent pre-state (Def 3.5)."""
    constraints = [constraint]
    assume(consistent(db, constraints))

    import copy

    db_full = copy.deepcopy(db)
    db_diff = copy.deepcopy(db)
    full = Session(db_full, build_controller(db_full, constraints, differential=False))
    diff = Session(db_diff, build_controller(db_diff, constraints, differential=True))

    verdict_full = full.execute(txn).committed
    verdict_diff = diff.execute(txn).committed
    assert verdict_full == verdict_diff
    if verdict_full:
        for name in db_full.relation_names:
            assert db_full.relation(name).to_set() == db_diff.relation(name).to_set()


@given(db=strat.databases(), constraint=strat.abortable_constraints())
@settings(max_examples=100, deadline=None)
def test_modification_of_readonly_transaction_is_identity(db, constraint):
    from repro.algebra.parser import parse_transaction

    store = IntegrityProgramStore()
    rule = IntegrityRule(constraint, name="only")
    store.add(get_int_p(rule, db.schema))
    txn = parse_transaction("begin t := select(r, a > 0); end")
    assert mod_t(txn, StaticSelector(store)) is txn


@given(
    db=strat.databases(),
    constraint=strat.abortable_constraints(),
    txn=strat.transactions(),
)
@settings(max_examples=100, deadline=None)
def test_modification_statistics_consistent(db, constraint, txn):
    store = IntegrityProgramStore()
    rule = IntegrityRule(constraint, name="only")
    store.add(get_int_p(rule, db.schema))
    stats = ModificationStats()
    modified = mod_t(txn, StaticSelector(store), stats=stats)
    assert len(modified.statements) == len(txn.statements) + stats.statements_appended
    assert stats.rules_selected == len(stats.selected_rule_names)
