"""Property: the planned backend is result-equivalent to the naive one.

For random algebra expressions and random database states, compiling to a
physical plan and executing it must produce the exact same relation —
tuples *and* multiplicities — as the reference tree-walk interpreter, in
set mode and in bag mode, with and without hash indexes installed.  When a
backend raises, the other must raise the same error class.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import planner
from repro.algebra.evaluation import StandaloneContext
from repro.engine import Database
from repro.errors import ReproError

from . import strategies as S

_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _database(rows_r, rows_s, bag: bool) -> Database:
    database = Database(S.rs_schema(), bag=bag)
    database.load("r", rows_r)
    database.load("s", rows_s)
    return database


def _run(fn):
    try:
        return fn(), None
    except ReproError as error:
        return None, error


def _assert_backends_agree(expression, database):
    relations = {
        "r": database.relation("r"),
        "s": database.relation("s"),
    }
    naive_ctx = StandaloneContext(relations, engine="naive")
    planned_ctx = StandaloneContext(relations, engine="planned")
    naive_result, naive_error = _run(lambda: expression.evaluate(naive_ctx))
    planned_result, planned_error = _run(
        lambda: planner.get_plan(expression).execute(planned_ctx)
    )
    if naive_error is not None or planned_error is not None:
        # Ill-typed expressions must fail on both backends, but not
        # necessarily with the same error class: the planner optimizes
        # before lowering, and e.g. a selection pushed through a ragged
        # union hits an unknown-attribute error before the union's arity
        # check.  Transactions treat every ReproError identically (runtime
        # abort), so class-level equality would be stricter than the
        # observable semantics.
        assert naive_error is not None and planned_error is not None, (
            f"error divergence: naive={naive_error!r} planned={planned_error!r}"
        )
        return
    assert naive_result == planned_result, (
        f"result divergence on {expression!r}:\n"
        f"  naive:   {naive_result.sorted_rows()}\n"
        f"  planned: {planned_result.sorted_rows()}"
    )
    assert len(naive_result) == len(planned_result)


@given(
    expression=S.algebra_queries(),
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    bag=st.booleans(),
)
@_SETTINGS
def test_planned_equals_naive(expression, rows_r, rows_s, bag):
    _assert_backends_agree(expression, _database(rows_r, rows_s, bag))


@given(
    expression=S.algebra_queries(),
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    bag=st.booleans(),
)
@_SETTINGS
def test_planned_equals_naive_with_indexes(expression, rows_r, rows_s, bag):
    """Same property with persistent hash indexes on every single column.

    This drives the index-accelerated paths: bucket-lookup equality
    selection, pre-built build sides, and distinct-key semi/antijoin
    probing.
    """
    database = _database(rows_r, rows_s, bag)
    database.create_index("r", ["a"])
    database.create_index("r", ["b"])
    database.create_index("s", ["c"])
    database.create_index("s", ["d"])
    database.create_index("r", ["a", "b"])
    _assert_backends_agree(expression, database)


@given(
    expression=S.algebra_queries(),
    rows_r=S.ROWS_R,
    rows_s=S.ROWS_S,
    deltas=st.lists(
        st.tuples(
            st.sampled_from(["r", "s"]),
            st.booleans(),  # insert (True) or delete
            st.tuples(S.VALUES, S.VALUES),
        ),
        max_size=6,
    ),
    bag=st.booleans(),
)
@_SETTINGS
def test_planned_equals_naive_after_index_maintenance(
    expression, rows_r, rows_s, deltas, bag
):
    """Indexes stay consistent under interleaved inserts and deletes."""
    database = _database(rows_r, rows_s, bag)
    database.create_index("r", ["a"])
    database.create_index("s", ["c"])
    for name, is_insert, row in deltas:
        relation = database.relation(name)
        if is_insert:
            relation.insert(row)
        else:
            relation.delete(row)
    _assert_backends_agree(expression, database)
