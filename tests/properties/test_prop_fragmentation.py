"""Fragmentation transparency and parallel-enforcement equivalence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import predicates as P
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.types import INT
from repro.parallel import (
    FragmentedDatabase,
    HashFragmentation,
    ParallelEnforcer,
    RangeFragmentation,
    RoundRobinFragmentation,
    Strategy,
)

SCHEMA = DatabaseSchema(
    [
        RelationSchema("fk", [("id", INT), ("ref", INT)]),
        RelationSchema("pk", [("key", INT)]),
    ]
)

FK_ROWS = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 8)), max_size=25, unique=True
)
PK_ROWS = st.lists(st.tuples(st.integers(0, 8)), max_size=9, unique=True)
NODES = st.integers(min_value=1, max_value=6)


def build(fk_rows, pk_rows, nodes, scheme_kind="hash"):
    database = Database(SCHEMA)
    database.load("fk", fk_rows)
    database.load("pk", pk_rows)
    if scheme_kind == "hash":
        schemes = {
            "fk": HashFragmentation("ref", nodes),
            "pk": HashFragmentation("key", nodes),
        }
    else:
        schemes = {
            "fk": RoundRobinFragmentation(nodes),
            "pk": HashFragmentation("key", nodes),
        }
    fragmented = FragmentedDatabase.from_database(database, schemes, nodes)
    return database, fragmented


@given(fk_rows=FK_ROWS, pk_rows=PK_ROWS, nodes=NODES)
@settings(max_examples=150, deadline=None)
def test_fragmentation_transparency(fk_rows, pk_rows, nodes):
    database, fragmented = build(fk_rows, pk_rows, nodes)
    for name in ("fk", "pk"):
        merged = fragmented.relation(name).merged()
        assert merged.to_set() == database.relation(name).to_set()
        assert fragmented.relation(name).cardinality() == len(
            database.relation(name)
        )


@given(fk_rows=FK_ROWS, pk_rows=PK_ROWS, nodes=NODES)
@settings(max_examples=100, deadline=None)
def test_every_row_in_its_designated_fragment(fk_rows, pk_rows, nodes):
    _, fragmented = build(fk_rows, pk_rows, nodes)
    relation = fragmented.relation("fk")
    for index, fragment in enumerate(relation.fragments):
        for row in fragment.rows():
            assert relation.scheme.fragment_of(row, relation.schema) == index


def sequential_violations(database):
    keys = {row[0] for row in database.relation("pk").rows()}
    return {row for row in database.relation("fk").rows() if row[1] not in keys}


@given(fk_rows=FK_ROWS, pk_rows=PK_ROWS, nodes=NODES)
@settings(max_examples=100, deadline=None)
def test_local_strategy_equals_sequential(fk_rows, pk_rows, nodes):
    database, fragmented = build(fk_rows, pk_rows, nodes)
    enforcer = ParallelEnforcer(fragmented)
    report = enforcer.referential_check("fk", "ref", "pk", "key", Strategy.LOCAL)
    assert report.violations == len(sequential_violations(database))


@given(
    fk_rows=FK_ROWS,
    pk_rows=PK_ROWS,
    nodes=NODES,
    strategy=st.sampled_from([Strategy.BROADCAST, Strategy.REPARTITION]),
)
@settings(max_examples=100, deadline=None)
def test_data_movement_strategies_equal_sequential(
    fk_rows, pk_rows, nodes, strategy
):
    database, fragmented = build(fk_rows, pk_rows, nodes, scheme_kind="roundrobin")
    enforcer = ParallelEnforcer(fragmented)
    report = enforcer.referential_check("fk", "ref", "pk", "key", strategy)
    assert report.violations == len(sequential_violations(database))


@given(fk_rows=FK_ROWS, nodes=NODES)
@settings(max_examples=100, deadline=None)
def test_domain_check_equals_sequential(fk_rows, nodes):
    database, fragmented = build(fk_rows, [], nodes)
    enforcer = ParallelEnforcer(fragmented)
    predicate = P.Comparison("<", P.ColRef("ref"), P.Const(3))
    report = enforcer.domain_check("fk", predicate)
    expected = sum(1 for row in database.relation("fk").rows() if row[1] < 3)
    assert report.violations == expected


@given(fk_rows=FK_ROWS, pk_rows=PK_ROWS, nodes=NODES)
@settings(max_examples=50, deadline=None)
def test_range_fragmentation_partitions(fk_rows, pk_rows, nodes):
    database = Database(SCHEMA)
    database.load("fk", fk_rows)
    scheme = RangeFragmentation("ref", [2, 5])
    fragmented = FragmentedDatabase(SCHEMA, scheme.fragments)
    fragmented.fragment_relation("fk", scheme, database.relation("fk").rows())
    relation = fragmented.relation("fk")
    for row in relation.fragment(0).rows():
        assert row[1] < 2
    for row in relation.fragment(1).rows():
        assert 2 <= row[1] < 5
    for row in relation.fragment(2).rows():
        assert row[1] >= 5
