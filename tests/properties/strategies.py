"""Hypothesis strategies for relations, databases, constraints, transactions.

Everything is generated over a fixed two-relation integer schema
``r(a, b)`` / ``s(c, d)`` so that constraints, algebra, and data compose.
Values are drawn from a small domain to make collisions (joins, set
operations) likely.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.calculus import ast as C
from repro.engine import Database, DatabaseSchema, Relation, RelationSchema
from repro.engine.types import INT

VALUES = st.integers(min_value=0, max_value=5)
ROWS_R = st.lists(st.tuples(VALUES, VALUES), max_size=8)
ROWS_S = st.lists(st.tuples(VALUES, VALUES), max_size=8)


def rs_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("r", [("a", INT), ("b", INT)]),
            RelationSchema("s", [("c", INT), ("d", INT)]),
        ]
    )


@st.composite
def databases(draw) -> Database:
    """A small random database over the r/s schema."""
    database = Database(rs_schema())
    database.load("r", draw(ROWS_R))
    database.load("s", draw(ROWS_S))
    return database


# -- constraint formulas -----------------------------------------------------

_COMPARE_OPS = st.sampled_from(["<", "<=", "=", "!=", ">=", ">"])
_R_ATTR = st.sampled_from(["a", "b"])
_S_ATTR = st.sampled_from(["c", "d"])
_AGG_FUNCS = st.sampled_from(["SUM", "AVG", "MIN", "MAX"])


@st.composite
def _local_atom(draw, var: str, attrs) -> C.Formula:
    """A comparison over one variable's attributes and small constants."""
    left = C.AttrSel(var, draw(attrs))
    choice = draw(st.integers(min_value=0, max_value=2))
    if choice == 0:
        right: C.Term = C.Const(draw(VALUES))
    elif choice == 1:
        right = C.AttrSel(var, draw(attrs))
    else:
        right = C.ArithTerm("+", C.AttrSel(var, draw(attrs)), C.Const(draw(VALUES)))
    return C.Compare(draw(_COMPARE_OPS), left, right)


@st.composite
def _local_condition(draw, var: str, attrs) -> C.Formula:
    """An and/or/not tree of local atoms (depth <= 2)."""
    first = draw(_local_atom(var, attrs))
    shape = draw(st.integers(min_value=0, max_value=3))
    if shape == 0:
        return first
    second = draw(_local_atom(var, attrs))
    if shape == 1:
        return C.And(first, second)
    if shape == 2:
        return C.Or(first, second)
    return C.Not(first)


@st.composite
def _link_atom(draw) -> C.Formula:
    return C.Compare(
        draw(_COMPARE_OPS),
        C.AttrSel("x", draw(_R_ATTR)),
        C.AttrSel("y", draw(_S_ATTR)),
    )


@st.composite
def domain_constraints(draw) -> C.Formula:
    """(forall x in r)(local(x)) — Table 1 row 1 family."""
    return C.forall_in("x", "r", draw(_local_condition("x", _R_ATTR)))


@st.composite
def referential_constraints(draw) -> C.Formula:
    """(forall x in r)(exists y in s)(link and local(y)) — row 2 family."""
    body: C.Formula = draw(_link_atom())
    if draw(st.booleans()):
        body = C.And(body, draw(_local_atom("y", _S_ATTR)))
    return C.forall_in("x", "r", C.exists_in("y", "s", body))


@st.composite
def exclusion_constraints(draw) -> C.Formula:
    """(forall x in r)(forall y in s)(not link) — row 3 family."""
    return C.forall_in(
        "x", "r", C.forall_in("y", "s", C.Not(draw(_link_atom())))
    )


@st.composite
def existential_constraints(draw) -> C.Formula:
    """(exists x in r)(local(x)) — row 5 family."""
    return C.exists_in("x", "r", draw(_local_condition("x", _R_ATTR)))


@st.composite
def aggregate_constraints(draw) -> C.Formula:
    """c(AGGR(R, i)) / c(CNT(R)) — rows 6-7 family."""
    relation = draw(st.sampled_from(["r", "s"]))
    if draw(st.booleans()):
        attr = draw(_R_ATTR if relation == "r" else _S_ATTR)
        term: C.Term = C.AggTerm(draw(_AGG_FUNCS), relation, attr)
    else:
        term = C.CntTerm(relation)
    bound = draw(st.integers(min_value=0, max_value=30))
    return C.Compare(draw(_COMPARE_OPS), term, C.Const(bound))


def constraints():
    """Any constraint from the five Table 1 families."""
    return st.one_of(
        domain_constraints(),
        referential_constraints(),
        exclusion_constraints(),
        existential_constraints(),
        aggregate_constraints(),
    )


def abortable_constraints():
    """Families whose SUM/AVG/MIN/MAX over empty inputs never go unknown."""
    return st.one_of(
        domain_constraints(),
        referential_constraints(),
        exclusion_constraints(),
        existential_constraints(),
    )


# -- algebra expressions (planner differential testing) -------------------------
#
# Random relation-valued expressions over the r/s schema, built so that every
# non-aggregate node has arity 2 (joins and products are wrapped in a
# projection back to two columns).  This keeps union/difference/intersection
# applicable at any position while still exercising the whole operator set.

_POSITIONS = st.integers(min_value=1, max_value=2)


@st.composite
def _scalar_operands(draw):
    from repro.algebra import predicates as P

    choice = draw(st.integers(min_value=0, max_value=2))
    if choice == 0:
        return P.Const(draw(VALUES))
    if choice == 1:
        return P.ColRef(draw(_POSITIONS))
    return P.Arith("+", P.ColRef(draw(_POSITIONS)), P.Const(draw(VALUES)))


@st.composite
def unary_predicates(draw):
    """A small predicate tree over an arity-2 input (positional refs)."""
    from repro.algebra import predicates as P

    def atom():
        return P.Comparison(
            draw(_COMPARE_OPS), P.ColRef(draw(_POSITIONS)), draw(_scalar_operands())
        )

    first = atom()
    shape = draw(st.integers(min_value=0, max_value=3))
    if shape == 0:
        return first
    second = atom()
    if shape == 1:
        return P.And(first, second)
    if shape == 2:
        return P.Or(first, second)
    return P.Not(first)


@st.composite
def join_predicates(draw):
    """Join predicates: equi (hash path), equi+residual, or non-equi (NL)."""
    from repro.algebra import predicates as P

    left_ref: object = P.ColRef(draw(_POSITIONS), "left")
    if draw(st.booleans()):
        left_ref = P.Arith("+", left_ref, P.Const(draw(VALUES)))
    equality = P.Comparison("=", left_ref, P.ColRef(draw(_POSITIONS), "right"))
    shape = draw(st.integers(min_value=0, max_value=2))
    extra = P.Comparison(
        draw(_COMPARE_OPS),
        P.ColRef(draw(_POSITIONS), "left"),
        P.ColRef(draw(_POSITIONS), "right"),
    )
    if shape == 0:
        return equality
    if shape == 1:
        return P.And(equality, extra)
    return extra


@st.composite
def algebra_expressions(draw, depth: int = 3):
    """A random arity-2 relation-valued expression over r/s."""
    from repro.algebra import expressions as E
    from repro.algebra import predicates as P

    if depth <= 0 or draw(st.integers(min_value=0, max_value=3)) == 0:
        if draw(st.integers(min_value=0, max_value=4)) == 0:
            rows = draw(st.lists(st.tuples(VALUES, VALUES), max_size=4))
            return E.Literal(tuple(rows))
        return E.RelationRef(draw(st.sampled_from(["r", "s"])))

    def sub():
        return draw(algebra_expressions(depth=depth - 1))

    def two_of_four():
        return tuple(
            E.ProjectItem(P.ColRef(draw(st.integers(min_value=1, max_value=4))))
            for _ in range(2)
        )

    kind = draw(st.integers(min_value=0, max_value=7))
    if kind == 0:
        return E.Select(sub(), draw(unary_predicates()))
    if kind == 1:
        # Equality-on-constant selection directly over a base relation —
        # the shape the planner lowers to an index-accelerated lookup.
        predicate: object = P.Comparison(
            "=", P.ColRef(draw(_POSITIONS)), P.Const(draw(VALUES))
        )
        if draw(st.booleans()):
            predicate = P.And(
                predicate,
                P.Comparison(
                    draw(_COMPARE_OPS), P.ColRef(draw(_POSITIONS)), P.Const(draw(VALUES))
                ),
            )
        return E.Select(E.RelationRef(draw(st.sampled_from(["r", "s"]))), predicate)
    if kind == 2:
        items = tuple(E.ProjectItem(P.ColRef(draw(_POSITIONS))) for _ in range(2))
        return E.Project(sub(), items)
    if kind == 3:
        ctor = draw(st.sampled_from([E.Union, E.Difference, E.Intersection]))
        return ctor(sub(), sub())
    if kind == 4:
        joined = E.Join(sub(), sub(), draw(join_predicates()))
        return E.Project(joined, two_of_four())
    if kind == 5:
        ctor = draw(st.sampled_from([E.SemiJoin, E.AntiJoin]))
        return ctor(sub(), sub(), draw(join_predicates()))
    if kind == 6:
        return E.Project(E.Product(sub(), sub()), two_of_four())
    return E.Rename(sub(), draw(st.sampled_from(["t", "u"])))


@st.composite
def algebra_queries(draw):
    """An expression, possibly capped by an aggregate/counting operator."""
    from repro.algebra import expressions as E

    expression = draw(algebra_expressions())
    top = draw(st.integers(min_value=0, max_value=4))
    if top == 0:
        return E.Count(expression)
    if top == 1:
        return E.Multiplicity(expression)
    if top == 2:
        return E.Aggregate(expression, draw(_AGG_FUNCS), draw(_POSITIONS))
    return expression


# -- transactions --------------------------------------------------------------

@st.composite
def transactions(draw):
    """A random multi-update transaction over the r/s schema."""
    from repro.algebra import expressions as E
    from repro.algebra import predicates as P
    from repro.algebra import statements as S
    from repro.algebra.programs import Program, bracket

    statements = []
    count = draw(st.integers(min_value=1, max_value=5))
    for _ in range(count):
        relation = draw(st.sampled_from(["r", "s"]))
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0:
            rows = draw(st.lists(st.tuples(VALUES, VALUES), min_size=1, max_size=3))
            statements.append(S.Insert(relation, E.Literal(tuple(rows))))
        elif kind == 1:
            rows = draw(st.lists(st.tuples(VALUES, VALUES), min_size=1, max_size=3))
            statements.append(S.Delete(relation, E.Literal(tuple(rows))))
        else:
            position = draw(st.integers(min_value=1, max_value=2))
            pivot = draw(VALUES)
            value = draw(VALUES)
            statements.append(
                S.Update(
                    relation,
                    P.Comparison("=", P.ColRef(position), P.Const(pivot)),
                    ((position, P.Const(value)),),
                )
            )
    return bracket(Program(statements))
