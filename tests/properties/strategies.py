"""Hypothesis strategies for relations, databases, constraints, transactions.

Everything is generated over a fixed two-relation integer schema
``r(a, b)`` / ``s(c, d)`` so that constraints, algebra, and data compose.
Values are drawn from a small domain to make collisions (joins, set
operations) likely.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.calculus import ast as C
from repro.engine import Database, DatabaseSchema, Relation, RelationSchema
from repro.engine.types import INT

VALUES = st.integers(min_value=0, max_value=5)
ROWS_R = st.lists(st.tuples(VALUES, VALUES), max_size=8)
ROWS_S = st.lists(st.tuples(VALUES, VALUES), max_size=8)


def rs_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("r", [("a", INT), ("b", INT)]),
            RelationSchema("s", [("c", INT), ("d", INT)]),
        ]
    )


@st.composite
def databases(draw) -> Database:
    """A small random database over the r/s schema."""
    database = Database(rs_schema())
    database.load("r", draw(ROWS_R))
    database.load("s", draw(ROWS_S))
    return database


# -- constraint formulas -----------------------------------------------------

_COMPARE_OPS = st.sampled_from(["<", "<=", "=", "!=", ">=", ">"])
_R_ATTR = st.sampled_from(["a", "b"])
_S_ATTR = st.sampled_from(["c", "d"])
_AGG_FUNCS = st.sampled_from(["SUM", "AVG", "MIN", "MAX"])


@st.composite
def _local_atom(draw, var: str, attrs) -> C.Formula:
    """A comparison over one variable's attributes and small constants."""
    left = C.AttrSel(var, draw(attrs))
    choice = draw(st.integers(min_value=0, max_value=2))
    if choice == 0:
        right: C.Term = C.Const(draw(VALUES))
    elif choice == 1:
        right = C.AttrSel(var, draw(attrs))
    else:
        right = C.ArithTerm("+", C.AttrSel(var, draw(attrs)), C.Const(draw(VALUES)))
    return C.Compare(draw(_COMPARE_OPS), left, right)


@st.composite
def _local_condition(draw, var: str, attrs) -> C.Formula:
    """An and/or/not tree of local atoms (depth <= 2)."""
    first = draw(_local_atom(var, attrs))
    shape = draw(st.integers(min_value=0, max_value=3))
    if shape == 0:
        return first
    second = draw(_local_atom(var, attrs))
    if shape == 1:
        return C.And(first, second)
    if shape == 2:
        return C.Or(first, second)
    return C.Not(first)


@st.composite
def _link_atom(draw) -> C.Formula:
    return C.Compare(
        draw(_COMPARE_OPS),
        C.AttrSel("x", draw(_R_ATTR)),
        C.AttrSel("y", draw(_S_ATTR)),
    )


@st.composite
def domain_constraints(draw) -> C.Formula:
    """(forall x in r)(local(x)) — Table 1 row 1 family."""
    return C.forall_in("x", "r", draw(_local_condition("x", _R_ATTR)))


@st.composite
def referential_constraints(draw) -> C.Formula:
    """(forall x in r)(exists y in s)(link and local(y)) — row 2 family."""
    body: C.Formula = draw(_link_atom())
    if draw(st.booleans()):
        body = C.And(body, draw(_local_atom("y", _S_ATTR)))
    return C.forall_in("x", "r", C.exists_in("y", "s", body))


@st.composite
def exclusion_constraints(draw) -> C.Formula:
    """(forall x in r)(forall y in s)(not link) — row 3 family."""
    return C.forall_in(
        "x", "r", C.forall_in("y", "s", C.Not(draw(_link_atom())))
    )


@st.composite
def existential_constraints(draw) -> C.Formula:
    """(exists x in r)(local(x)) — row 5 family."""
    return C.exists_in("x", "r", draw(_local_condition("x", _R_ATTR)))


@st.composite
def aggregate_constraints(draw) -> C.Formula:
    """c(AGGR(R, i)) / c(CNT(R)) — rows 6-7 family."""
    relation = draw(st.sampled_from(["r", "s"]))
    if draw(st.booleans()):
        attr = draw(_R_ATTR if relation == "r" else _S_ATTR)
        term: C.Term = C.AggTerm(draw(_AGG_FUNCS), relation, attr)
    else:
        term = C.CntTerm(relation)
    bound = draw(st.integers(min_value=0, max_value=30))
    return C.Compare(draw(_COMPARE_OPS), term, C.Const(bound))


def constraints():
    """Any constraint from the five Table 1 families."""
    return st.one_of(
        domain_constraints(),
        referential_constraints(),
        exclusion_constraints(),
        existential_constraints(),
        aggregate_constraints(),
    )


def abortable_constraints():
    """Families whose SUM/AVG/MIN/MAX over empty inputs never go unknown."""
    return st.one_of(
        domain_constraints(),
        referential_constraints(),
        exclusion_constraints(),
        existential_constraints(),
    )


# -- transactions --------------------------------------------------------------

@st.composite
def transactions(draw):
    """A random multi-update transaction over the r/s schema."""
    from repro.algebra import expressions as E
    from repro.algebra import predicates as P
    from repro.algebra import statements as S
    from repro.algebra.programs import Program, bracket

    statements = []
    count = draw(st.integers(min_value=1, max_value=5))
    for _ in range(count):
        relation = draw(st.sampled_from(["r", "s"]))
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0:
            rows = draw(st.lists(st.tuples(VALUES, VALUES), min_size=1, max_size=3))
            statements.append(S.Insert(relation, E.Literal(tuple(rows))))
        elif kind == 1:
            rows = draw(st.lists(st.tuples(VALUES, VALUES), min_size=1, max_size=3))
            statements.append(S.Delete(relation, E.Literal(tuple(rows))))
        else:
            position = draw(st.integers(min_value=1, max_value=2))
            pivot = draw(VALUES)
            value = draw(VALUES)
            statements.append(
                S.Update(
                    relation,
                    P.Comparison("=", P.ColRef(position), P.Const(pivot)),
                    ((position, P.Const(value)),),
                )
            )
    return bracket(Program(statements))
