"""Regression: the Δ⁻ subtraction of projection/union skips the rescan.

The delta rewrites ``Δ⁻π(e) = π(Δ⁻e) − π(e)`` and ``Δ⁻(l ∪ r) =
(Δ⁻l ∪ Δ⁻r) − (l ∪ r)`` are sound but subtract a post-state expression
that is O(|result|) to materialize.  When the candidate Δ⁻ side is empty —
the common case for insert-heavy workloads — the subtraction must be
skipped entirely: the post-state relation is never even resolved, on both
evaluation backends.
"""

import pytest

from repro.algebra import expressions as E
from repro.algebra import planner
from repro.algebra import predicates as P
from repro.algebra.delta import delta_expression
from repro.algebra.statements import DEL
from repro.engine import Relation, RelationSchema
from repro.engine.types import INT

SCHEMA = RelationSchema("r", [("a", INT), ("b", INT)])


class _CountingContext:
    """Standalone resolution context that records every resolve call."""

    def __init__(self, relations, engine):
        self.relations = relations
        self.engine = engine
        self.resolved = []

    def resolve(self, name):
        self.resolved.append(name)
        return self.relations[name]


def _project_minus_delta():
    """Δ⁻ of ``π_a(r)`` with DEL(r) active: π(Δ⁻r) − π(r)."""
    projection = E.Project(
        E.RelationRef("r"), (E.ProjectItem(P.ColRef("a")),)
    )
    rewritten = delta_expression(
        projection, [(DEL, "r")], kind=E.DELTA_MINUS
    )
    assert isinstance(rewritten, E.Difference)
    return rewritten


def _union_minus_delta():
    """Δ⁻ of ``σ_{b<2}(r) ∪ σ_{b>4}(r)`` with DEL(r) active."""
    low = E.Select(E.RelationRef("r"), P.Comparison("<", P.ColRef("b"), P.Const(2)))
    high = E.Select(E.RelationRef("r"), P.Comparison(">", P.ColRef("b"), P.Const(4)))
    rewritten = delta_expression(
        E.Union(low, high), [(DEL, "r")], kind=E.DELTA_MINUS
    )
    assert isinstance(rewritten, E.Difference)
    return rewritten


def _context(minus_rows, engine):
    return _CountingContext(
        {
            "r": Relation(SCHEMA, [(1, 1), (2, 5), (3, 3)]),
            "r@minus": Relation(SCHEMA, minus_rows),
        },
        engine,
    )


@pytest.mark.parametrize("engine", ["planned", "naive"])
@pytest.mark.parametrize(
    "build", [_project_minus_delta, _union_minus_delta], ids=["project", "union"]
)
class TestEmptyMinusSkipsRescan:
    def test_empty_delta_never_resolves_post_state(self, engine, build):
        expression = build()
        context = _context([], engine)
        result = planner.evaluate(expression, context, engine=engine)
        assert len(result) == 0
        assert "r" not in context.resolved, (
            "empty Δ⁻ side must not trigger the post-state subtraction scan"
        )
        assert "r@minus" in context.resolved

    def test_non_empty_delta_still_subtracts(self, engine, build):
        expression = build()
        # Deleting (9, 1): for the projection, a=9 survives nowhere in the
        # post state; for the union, b=1 < 2 would have been in the result.
        context = _context([(9, 1)], engine)
        result = planner.evaluate(expression, context, engine=engine)
        assert len(result) == 1
        assert "r" in context.resolved, (
            "a non-empty Δ⁻ side must be checked against the post state"
        )
