"""Unit tests for the general delta-rewrite transform (algebra.delta)."""

import pytest

from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra.delta import (
    NotIncrementalizable,
    delta_expression,
    old_expression,
)
from repro.algebra.evaluation import StandaloneContext
from repro.algebra.physical import DEFAULT_DELTA_CARDINALITY, DeltaScanOp
from repro.algebra.planner import get_plan
from repro.engine import Relation, RelationSchema
from repro.engine.types import INT
from repro.errors import EvaluationError

INS_R = ("INS", "r")
DEL_R = ("DEL", "r")
INS_S = ("INS", "s")
DEL_S = ("DEL", "s")

LINK = P.Comparison("=", P.ColRef("a", "left"), P.ColRef("c", "right"))
R = E.RelationRef("r")
S = E.RelationRef("s")


class TestDeltaNode:
    def test_name_follows_auxiliary_convention(self):
        assert E.Delta("r", "plus").name == "r@plus"
        assert E.Delta("r", "minus").name == "r@minus"

    def test_invalid_kind_rejected(self):
        with pytest.raises(EvaluationError):
            E.Delta("r", "old")

    def test_auxiliary_base_rejected(self):
        with pytest.raises(EvaluationError):
            E.Delta("r@plus", "plus")

    def test_evaluates_through_name_resolution(self):
        schema = RelationSchema("r", [("a", INT), ("b", INT)])
        ctx = StandaloneContext({"r@plus": Relation(schema, [(1, 2)])})
        assert E.Delta("r", "plus").evaluate(ctx).to_set() == {(1, 2)}

    def test_relations_reports_auxiliary_name(self):
        assert E.Delta("r", "plus").relations() == {"r@plus"}

    def test_lowered_to_delta_scan(self):
        plan = get_plan(E.Select(E.Delta("r", "plus"), P.TRUE))
        # The optimizer strips σ_true, leaving the bare delta scan.
        assert isinstance(plan, DeltaScanOp)

    def test_estimate_prices_from_delta_not_base(self):
        op = DeltaScanOp("r", "plus")
        assert op.estimate({"r": 100000.0}).rows == DEFAULT_DELTA_CARDINALITY
        assert op.estimate({"r": 100000.0, "r@plus": 7.0}).rows == 7.0


class TestTableEquivalents:
    """The eight rows of the old pattern table, from the general rules."""

    def test_domain_insert(self):
        expr = E.Select(R, P.Comparison("<", P.ColRef("a"), P.Const(0)))
        assert delta_expression(expr, [INS_R]) == E.Select(
            E.Delta("r", "plus"), expr.predicate
        )

    def test_domain_delete_vacuous(self):
        expr = E.Select(R, P.Comparison("<", P.ColRef("a"), P.Const(0)))
        assert delta_expression(expr, [DEL_R]) is None

    def test_referential_insert_referer(self):
        expr = E.AntiJoin(R, S, LINK)
        assert delta_expression(expr, [INS_R]) == E.AntiJoin(
            E.Delta("r", "plus"), S, LINK
        )

    def test_referential_delete_target(self):
        expr = E.AntiJoin(R, S, LINK)
        assert delta_expression(expr, [DEL_S]) == E.AntiJoin(
            E.SemiJoin(R, E.Delta("s", "minus"), LINK), S, LINK
        )

    def test_referential_vacuous_triggers(self):
        expr = E.AntiJoin(R, S, LINK)
        assert delta_expression(expr, [DEL_R]) is None
        assert delta_expression(expr, [INS_S]) is None

    def test_exclusion_inserts(self):
        expr = E.SemiJoin(R, S, LINK)
        assert delta_expression(expr, [INS_R]) == E.SemiJoin(
            E.Delta("r", "plus"), S, LINK
        )
        assert delta_expression(expr, [INS_S]) == E.SemiJoin(
            R, E.Delta("s", "plus"), LINK
        )

    def test_exclusion_deletes_vacuous(self):
        expr = E.SemiJoin(R, S, LINK)
        assert delta_expression(expr, [DEL_R]) is None
        assert delta_expression(expr, [DEL_S]) is None


class TestBeyondTheTable:
    """Shapes the old eight-row table could not incrementalize."""

    def test_union_distributes(self):
        pred = P.Comparison("<", P.ColRef(1), P.Const(0))
        expr = E.Union(E.Select(R, pred), E.Select(S, pred))
        assert delta_expression(expr, [INS_R]) == E.Select(
            E.Delta("r", "plus"), pred
        )
        both = delta_expression(expr, [INS_R, INS_S])
        assert both == E.Union(
            E.Select(E.Delta("r", "plus"), pred),
            E.Select(E.Delta("s", "plus"), pred),
        )

    def test_difference_insert_left(self):
        expr = E.Difference(R, S)
        assert delta_expression(expr, [INS_R]) == E.Difference(
            E.Delta("r", "plus"), S
        )

    def test_difference_delete_right_unblocks(self):
        expr = E.Difference(R, S)
        assert delta_expression(expr, [DEL_S]) == E.Intersection(
            R, E.Delta("s", "minus")
        )

    def test_intersection_insert(self):
        expr = E.Intersection(R, S)
        assert delta_expression(expr, [INS_R]) == E.Intersection(
            E.Delta("r", "plus"), S
        )
        assert delta_expression(expr, [DEL_R]) is None

    def test_join_insert_both_sides(self):
        expr = E.Join(R, S, LINK)
        both = delta_expression(expr, [INS_R, INS_S])
        assert both == E.Union(
            E.Join(E.Delta("r", "plus"), S, LINK),
            E.Join(R, E.Delta("s", "plus"), LINK),
        )

    def test_projection_commutes_with_plus(self):
        items = (E.ProjectItem(P.ColRef(1)),)
        expr = E.Project(E.Select(R, P.TRUE), items)
        assert delta_expression(expr, [INS_R]) == E.Project(
            E.Select(E.Delta("r", "plus"), P.TRUE), items
        )

    def test_nested_antijoin_over_select(self):
        # alarm(σ_p(R) ⊳ S): the pattern table required bare refs.
        pred = P.Comparison(">", P.ColRef("a"), P.Const(0))
        expr = E.AntiJoin(E.Select(R, pred), S, LINK)
        assert delta_expression(expr, [INS_R]) == E.AntiJoin(
            E.Select(E.Delta("r", "plus"), pred), S, LINK
        )
        assert delta_expression(expr, [DEL_S]) == E.AntiJoin(
            E.SemiJoin(E.Select(R, pred), E.Delta("s", "minus"), LINK), S, LINK
        )

    def test_self_referential_antijoin(self):
        # employee.manager references employee.id — both sides move.
        expr = E.AntiJoin(R, R, LINK)
        assert delta_expression(expr, [INS_R]) == E.AntiJoin(
            E.Delta("r", "plus"), R, LINK
        )
        assert delta_expression(expr, [DEL_R]) == E.AntiJoin(
            E.SemiJoin(R, E.Delta("r", "minus"), LINK), R, LINK
        )

    def test_unmentioned_relation_vacuous(self):
        # Triggers on relations the check never reads are provably vacuous.
        expr = E.Select(R, P.TRUE)
        assert delta_expression(expr, [("INS", "unrelated")]) is None

    def test_minus_delta_of_semijoin_uses_old_state(self):
        expr = E.SemiJoin(R, S, LINK)
        minus = delta_expression(expr, [DEL_S], kind="minus")
        assert minus == E.AntiJoin(
            E.SemiJoin(R, E.Delta("s", "minus"), LINK), S, LINK
        )
        minus_left = delta_expression(expr, [DEL_R], kind="minus")
        # The untouched right side stays live (old == new for it).
        assert minus_left == E.SemiJoin(E.Delta("r", "minus"), S, LINK)


class TestHonestFailure:
    def test_aggregate_over_changed_input(self):
        expr = E.Select(
            E.Count(R), P.Comparison("=", P.ColRef(1), P.Const(0))
        )
        with pytest.raises(NotIncrementalizable):
            delta_expression(expr, [INS_R])

    def test_aggregate_over_untouched_input_vacuous_elsewhere(self):
        # σ over r semijoined against an aggregate of s: INS(r) keeps the
        # aggregate side untouched, so it incrementalizes.
        agg = E.Aggregate(S, "SUM", "c")
        pred = P.Comparison("<", P.ColRef("a", "left"), P.ColRef(1, "right"))
        expr = E.SemiJoin(R, agg, pred)
        assert delta_expression(expr, [INS_R]) == E.SemiJoin(
            E.Delta("r", "plus"), agg, pred
        )
        with pytest.raises(NotIncrementalizable):
            delta_expression(expr, [INS_S])

    def test_auxiliary_reference_rejected(self):
        expr = E.Difference(R, E.RelationRef("r@old"))
        with pytest.raises(NotIncrementalizable):
            delta_expression(expr, [INS_R])


class TestOldExpression:
    def test_touched_relations_become_old(self):
        expr = E.SemiJoin(R, S, LINK)
        rewritten = old_expression(expr, [INS_R])
        assert rewritten == E.SemiJoin(E.RelationRef("r@old"), S, LINK)

    def test_untouched_expression_is_identity(self):
        expr = E.SemiJoin(R, S, LINK)
        assert old_expression(expr, [("INS", "t")]) is expr
