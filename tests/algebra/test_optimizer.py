"""Algebraic rewrites preserve semantics and simplify shapes."""

import pytest

from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra.evaluation import StandaloneContext
from repro.algebra.optimizer import (
    optimize_expression,
    optimize_program,
    simplify_predicate,
)
from repro.algebra.parser import parse_expression, parse_program
from repro.engine import Relation, RelationSchema
from repro.engine.types import INT


@pytest.fixture
def ctx():
    schema = RelationSchema("r", [("a", INT), ("b", INT)])
    other = RelationSchema("s", [("c", INT)])
    return StandaloneContext(
        {
            "r": Relation(schema, [(1, 10), (2, 20), (3, 30), (4, 40)]),
            "s": Relation(other, [(1,), (3,)]),
        }
    )


class TestSimplifyPredicate:
    def test_double_negation(self):
        atom = P.Comparison("=", P.ColRef("a"), P.Const(1))
        assert simplify_predicate(P.Not(P.Not(atom))) == atom

    def test_not_comparison_folds(self):
        atom = P.Comparison(">=", P.ColRef("a"), P.Const(1))
        assert simplify_predicate(P.Not(atom)) == P.Comparison(
            "<", P.ColRef("a"), P.Const(1)
        )

    def test_and_constants(self):
        atom = P.Comparison("=", P.ColRef("a"), P.Const(1))
        assert simplify_predicate(P.And(P.TRUE, atom)) == atom
        assert simplify_predicate(P.And(atom, P.FALSE)) == P.FALSE

    def test_or_constants(self):
        atom = P.Comparison("=", P.ColRef("a"), P.Const(1))
        assert simplify_predicate(P.Or(P.FALSE, atom)) == atom
        assert simplify_predicate(P.Or(atom, P.TRUE)) == P.TRUE

    def test_not_true(self):
        assert simplify_predicate(P.Not(P.TRUE)) == P.FALSE


class TestOptimizeExpression:
    def test_select_true_removed(self):
        expr = parse_expression("select(r, true)")
        assert optimize_expression(expr) == E.RelationRef("r")

    def test_cascade_fusion(self):
        expr = parse_expression("select(select(r, a > 1), b < 30)")
        optimized = optimize_expression(expr)
        assert isinstance(optimized, E.Select)
        assert isinstance(optimized.input, E.RelationRef)
        assert isinstance(optimized.predicate, P.And)

    def test_select_pushed_through_union(self):
        expr = parse_expression("select(union(r, r), a > 2)")
        optimized = optimize_expression(expr)
        assert isinstance(optimized, E.Union)
        assert isinstance(optimized.left, E.Select)

    def test_select_pushed_through_difference(self):
        expr = parse_expression("select(diff(r, r), a > 2)")
        optimized = optimize_expression(expr)
        assert isinstance(optimized, E.Difference)

    def test_join_predicate_simplified(self):
        expr = E.Join(
            E.RelationRef("r"),
            E.RelationRef("s"),
            P.And(P.TRUE, P.Comparison("=", P.ColRef("a", "left"), P.ColRef("c", "right"))),
        )
        optimized = optimize_expression(expr)
        assert isinstance(optimized.predicate, P.Comparison)

    @pytest.mark.parametrize(
        "text",
        [
            "select(select(r, a > 1), b < 30)",
            "select(union(r, r), a > 2)",
            "select(diff(r, select(r, a = 1)), b >= 20)",
            "select(intersect(r, r), not not a > 2)",
            "project(select(r, true), [a])",
            "cnt(select(select(r, a > 0), a < 4))",
            "sum(select(r, true), b)",
        ],
    )
    def test_semantics_preserved(self, ctx, text):
        expr = parse_expression(text)
        original = expr.evaluate(ctx)
        optimized = optimize_expression(expr).evaluate(ctx)
        assert original.to_set() == optimized.to_set()


class TestOptimizeProgram:
    def test_statements_rewritten(self, ctx):
        program = parse_program(
            "t := select(select(r, a > 0), a < 3); alarm(select(r, true))"
        )
        optimized = optimize_program(program)
        assert isinstance(optimized.statements[0].expr.input, E.RelationRef)
        assert optimized.statements[1].expr == E.RelationRef("r")

    def test_non_triggering_flag_kept(self):
        from repro.algebra.programs import Program

        program = Program(parse_program("insert(r, (1, 2))").statements, non_triggering=True)
        assert optimize_program(program).non_triggering
