"""Fused pipeline regions: formation rules, decline cases, execution."""

from __future__ import annotations

import pytest

from repro.algebra import columnar
from repro.algebra import expressions as E
from repro.algebra import physical as X
from repro.algebra import planner
from repro.algebra import predicates as P
from repro.algebra.evaluation import StandaloneContext, TracingContext
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.types import INT


@pytest.fixture
def db() -> Database:
    schema = DatabaseSchema(
        [
            RelationSchema("r", [("a", INT), ("b", INT)]),
            RelationSchema("s", [("c", INT), ("d", INT)]),
        ]
    )
    database = Database(schema)
    database.load("r", [(i, i % 7) for i in range(40)])
    database.load("s", [(j % 7, j * 2) for j in range(25)])
    return database


@pytest.fixture
def ctx(db) -> StandaloneContext:
    return StandaloneContext(
        {"r": db.relation("r"), "s": db.relation("s")}, engine="planned"
    )


def _join() -> E.Expression:
    return E.Join(
        E.RelationRef("r"),
        E.RelationRef("s"),
        P.Comparison("=", P.ColRef(2, "left"), P.ColRef(1, "right")),
    )


def _select_project_join() -> E.Expression:
    return E.Project(
        E.Select(_join(), P.Comparison("<", P.ColRef(4), P.Const(30))),
        (E.ProjectItem(P.ColRef(1)), E.ProjectItem(P.ColRef(4))),
    )


def _project_select_scan() -> E.Expression:
    return E.Project(
        E.Select(E.RelationRef("r"), P.Comparison("<", P.ColRef(2), P.ColRef(1))),
        (E.ProjectItem(P.ColRef(2)), E.ProjectItem(P.ColRef(1))),
    )


class TestRegionFormation:
    def test_select_project_join_forms_a_region(self):
        plan = planner.compile_expression(_select_project_join())
        assert isinstance(plan, X.FusedPipelineOp)
        assert [stage.op_name for stage in plan.stages] == ["project", "select"]
        assert isinstance(plan.source, X.HashJoinOp)
        assert plan.describe() == "fused[project<-select<-join]"

    def test_single_stage_over_a_join_suffices(self):
        plan = planner.compile_expression(
            E.Project(_join(), (E.ProjectItem(P.ColRef(1)),))
        )
        assert isinstance(plan, X.FusedPipelineOp)
        assert len(plan.stages) == 1
        assert plan.describe() == "fused[project<-join]"

    def test_two_stages_over_a_scan_form_a_region(self):
        plan = planner.compile_expression(_project_select_scan())
        assert isinstance(plan, X.FusedPipelineOp)
        assert isinstance(plan.source, X.ScanOp)
        assert plan.describe() == "fused[project<-select<-scan]"

    def test_single_stage_over_a_scan_declines(self):
        # One batch kernel over a scan already runs without an
        # intermediate; there is no boundary for fusion to remove.
        plan = planner.compile_expression(
            E.Select(E.RelationRef("r"), P.Comparison("<", P.ColRef(2), P.ColRef(1)))
        )
        assert isinstance(plan, X.FilterOp)

    def test_semijoin_sources_fuse_and_antijoin_inherits(self):
        for ctor, tail in ((E.SemiJoin, "semijoin"), (E.AntiJoin, "antijoin")):
            expression = E.Project(
                ctor(
                    E.RelationRef("r"),
                    E.RelationRef("s"),
                    P.Comparison("=", P.ColRef(2, "left"), P.ColRef(1, "right")),
                ),
                (E.ProjectItem(P.ColRef(1)),),
            )
            plan = planner.compile_expression(expression)
            assert isinstance(plan, X.FusedPipelineOp)
            assert plan.describe() == f"fused[project<-{tail}]"

    def test_rename_bounds_a_region(self):
        plan = planner.compile_expression(
            E.Project(
                E.Rename(E.RelationRef("r"), "t"),
                (E.ProjectItem(P.ColRef(1)), E.ProjectItem(P.ColRef(2))),
            )
        )
        assert not isinstance(plan, X.FusedPipelineOp)

    def test_union_bounds_a_region_but_children_still_fuse(self):
        plan = planner.compile_expression(
            E.Union(_select_project_join(), _project_select_scan())
        )
        assert isinstance(plan, X.UnionOp)
        assert isinstance(plan.left, X.FusedPipelineOp)
        assert isinstance(plan.right, X.FusedPipelineOp)

    def test_nested_loop_fallback_declines(self):
        # A non-equi join lowers to a nested loop, which is not a source.
        plan = planner.compile_expression(
            E.Project(
                E.Join(
                    E.RelationRef("r"),
                    E.RelationRef("s"),
                    P.Comparison("<", P.ColRef(1, "left"), P.ColRef(2, "right")),
                ),
                (E.ProjectItem(P.ColRef(1)),),
            )
        )
        assert not isinstance(plan, X.FusedPipelineOp)
        assert isinstance(plan.child, X.NestedLoopJoinOp)

    def test_explain_keeps_the_stage_chain_visible(self):
        text = planner.explain(_select_project_join())
        assert "fused[project<-select<-join]" in text
        for line in ("project[", "select[", "hash_join["):
            assert line in text, text


class TestJoinPushdown:
    """Side analysis of filter stages adjacent to a hash-join source."""

    def _pushdown(self, expression, db):
        plan = planner.compile_expression(expression)
        assert isinstance(plan, X.FusedPipelineOp)
        return plan._join_pushdown(
            db.relation("r").schema, db.relation("s").schema
        )

    def test_right_side_filter_is_pushed(self, db):
        pushed, remaining = self._pushdown(_select_project_join(), db)
        assert [side for side, _ in pushed] == ["right"]
        assert [stage.op_name for stage in remaining] == ["project"]

    def test_left_side_filter_is_pushed(self, db):
        expression = E.Project(
            E.Select(_join(), P.Comparison("<", P.ColRef(1), P.Const(20))),
            (E.ProjectItem(P.ColRef(4)),),
        )
        pushed, remaining = self._pushdown(expression, db)
        assert [side for side, _ in pushed] == ["left"]
        assert [stage.op_name for stage in remaining] == ["project"]

    def test_stacked_side_filters_both_push(self, db):
        expression = E.Project(
            E.Select(
                E.Select(_join(), P.Comparison("<", P.ColRef(4), P.Const(30))),
                P.Comparison("<", P.ColRef(1), P.Const(20)),
            ),
            (E.ProjectItem(P.ColRef(1)),),
        )
        pushed, remaining = self._pushdown(expression, db)
        assert sorted(side for side, _ in pushed) == ["left", "right"]
        assert [stage.op_name for stage in remaining] == ["project"]

    def test_partially_pushable_conjunction_leaves_a_residual(self, db):
        # (d < 30) AND (a < d): the right-side conjunct moves below the
        # pair construction, the mixed one stays as a residual select.
        expression = E.Project(
            E.Select(
                _join(),
                P.And(
                    P.Comparison("<", P.ColRef(4), P.Const(30)),
                    P.Comparison("<", P.ColRef(1), P.ColRef(4)),
                ),
            ),
            (E.ProjectItem(P.ColRef(1)),),
        )
        pushed, remaining = self._pushdown(expression, db)
        assert [side for side, _ in pushed] == ["right"]
        assert [stage.op_name for stage in remaining] == ["project", "select"]

    def test_mixed_side_filter_stays_above_the_join(self, db):
        expression = E.Project(
            E.Select(_join(), P.Comparison("<", P.ColRef(1), P.ColRef(4))),
            (E.ProjectItem(P.ColRef(1)),),
        )
        pushed, remaining = self._pushdown(expression, db)
        assert pushed == ()
        assert [stage.op_name for stage in remaining] == ["project", "select"]

    def test_division_disqualifies_a_filter(self, db):
        # A pushed predicate runs on build/probe rows the join would never
        # have matched; division could raise there where the row path
        # raises nothing, so it must stay above the pair construction.
        expression = E.Project(
            E.Select(
                _join(),
                P.Comparison(
                    "<", P.Arith("/", P.ColRef(4), P.Const(2)), P.Const(10)
                ),
            ),
            (E.ProjectItem(P.ColRef(1)),),
        )
        pushed, remaining = self._pushdown(expression, db)
        assert pushed == ()
        assert [stage.op_name for stage in remaining] == ["project", "select"]

    def test_pushed_execution_matches_row(self, ctx):
        expression = E.Project(
            E.Select(
                E.Select(_join(), P.Comparison("<", P.ColRef(4), P.Const(30))),
                P.Comparison("<", P.ColRef(1), P.Const(20)),
            ),
            (E.ProjectItem(P.ColRef(1)), E.ProjectItem(P.ColRef(4))),
        )
        plan = planner.get_plan(expression)
        previous_batch = columnar.batch_policy()
        previous_fusion = columnar.fusion_policy()
        try:
            columnar.set_batch_policy("never")
            columnar.set_fusion_policy("never")
            row = plan.execute(ctx)
            columnar.set_batch_policy("always")
            columnar.set_fusion_policy("always")
            fused = plan.execute(ctx)
        finally:
            columnar.set_batch_policy(previous_batch)
            columnar.set_fusion_policy(previous_fusion)
        assert fused == row


class TestRegionExecution:
    def test_fused_matches_row_and_batch(self, ctx):
        plan = planner.get_plan(_select_project_join())
        results = {}
        previous_batch = columnar.batch_policy()
        previous_fusion = columnar.fusion_policy()
        try:
            for mode, batch, fusion in (
                ("row", "never", "never"),
                ("batch", "always", "never"),
                ("fused", "always", "always"),
            ):
                columnar.set_batch_policy(batch)
                columnar.set_fusion_policy(fusion)
                results[mode] = plan.execute(ctx)
        finally:
            columnar.set_batch_policy(previous_batch)
            columnar.set_fusion_policy(previous_fusion)
        assert results["fused"] == results["row"]
        assert results["batch"] == results["row"]
        assert len(results["fused"]) == len(results["row"])

    def test_estimate_and_children_delegate_to_the_chain(self):
        plan = planner.compile_expression(_select_project_join())
        assert plan.children() == (plan.root,)
        assert plan.estimate().rows == plan.root.estimate().rows

    def test_delta_sourced_regions_stay_unfused_under_auto(self, db):
        # Differentials are estimated tiny (a handful of rows), far below
        # the batch eligibility floor: under "auto" the region falls back
        # to the row path even though the shape fused at compile time.
        expression = E.Project(
            E.Select(
                E.Delta("r", "plus"), P.Comparison("<", P.ColRef(2), P.ColRef(1))
            ),
            (E.ProjectItem(P.ColRef(1)),),
        )
        plan = planner.compile_expression(expression)
        assert isinstance(plan, X.FusedPipelineOp)
        assert isinstance(plan.source, X.DeltaScanOp)
        assert plan.fuse_eligible is False
        assert X._fuse_mode(plan) is False

    def test_traced_execution_reports_the_source_operators(self, db):
        # A fused region still traces its source operator (the join emits
        # its own trace from the batch path), so observability of the
        # audit pipeline does not regress when fusion is on.
        context = TracingContext(
            StandaloneContext(
                {"r": db.relation("r"), "s": db.relation("s")}, engine="planned"
            )
        )
        previous = columnar.set_fusion_policy("always")
        previous_batch = columnar.set_batch_policy("always")
        try:
            planner.get_plan(_select_project_join()).execute(context)
        finally:
            columnar.set_fusion_policy(previous)
            columnar.set_batch_policy(previous_batch)
        traced = [op for op, _, _ in context.tracer.records]
        assert "join" in traced
