"""Rendering: functional round-trips and the paper-style notation."""

import pytest

from repro.algebra.parser import (
    parse_expression,
    parse_program,
    parse_statement,
    parse_transaction,
)
from repro.algebra.pretty import (
    render_expression,
    render_mathy,
    render_mathy_statement,
    render_program,
    render_statement,
    render_transaction,
)

EXPRESSIONS = [
    "beer",
    "beer@plus",
    "select(beer, alcohol < 0)",
    'select(beer, brewery = "heineken" and alcohol >= 5)',
    "project(beer, [brewery as name, null, null])",
    "diff(project(beer, [brewery]), project(brewery, [name]))",
    "union(a, b)",
    "intersect(a, b)",
    "product(a, b)",
    "join(r, s, left.a = right.c)",
    "semijoin(r, s, left.1 = right.2)",
    "antijoin(r, s, left.a = right.c and left.b > 0)",
    "rename(r, x, [p, q])",
    "sum(r, b)",
    "avg(r, 2)",
    "cnt(select(r, a != 3))",
    "mlt(r)",
    '{ (1, "a"), (2, "b") }',
    "select(r, not a = 1 or isnull(b))",
    "select(r, (a + 1) * 2 > b / 2 - 3)",
]

STATEMENTS = [
    'insert(beer, ("a", "b", "c", 1.5))',
    "insert(t, select(r, a > 0))",
    "delete(t, {(1, 2)})",
    "t := select(r, a > 0)",
    "update(t, a = 1, b := b + 1)",
    "alarm(select(t, a < 0))",
    'alarm(t, "message")',
    "abort",
    'abort "reason"',
]


class TestRoundTrips:
    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_expression_round_trip(self, text):
        expr = parse_expression(text)
        assert parse_expression(render_expression(expr)) == expr

    @pytest.mark.parametrize("text", STATEMENTS)
    def test_statement_round_trip(self, text):
        statement = parse_statement(text)
        assert parse_statement(render_statement(statement)) == statement

    def test_program_round_trip(self):
        program = parse_program(
            "t := diff(a, b); insert(s, t); alarm(select(s, x < 0))"
        )
        assert parse_program(render_program(program)) == program

    def test_transaction_round_trip(self):
        txn = parse_transaction(
            'begin insert(beer, ("a", "b", "c", 1.0)); abort; end'
        )
        rendered = render_transaction(txn)
        assert rendered.startswith("begin")
        reparsed = parse_transaction(rendered)
        assert reparsed.statements == txn.statements

    def test_empty_transaction_render(self):
        assert render_transaction(parse_transaction("begin end")) == "begin\nend"


class TestMathyNotation:
    def test_select_uses_sigma(self):
        expr = parse_expression("select(beer, alcohol < 0)")
        assert render_mathy(expr) == "σ[alcohol<0](beer)"

    def test_antijoin_symbol(self):
        expr = parse_expression("antijoin(r, s, left.i = right.j)")
        assert render_mathy(expr) == "(r ⊳[x.i=y.j] s)"

    def test_semijoin_symbol(self):
        expr = parse_expression("semijoin(r, s, left.i = right.j)")
        assert "⋉" in render_mathy(expr)

    def test_difference_and_projection(self):
        expr = parse_expression("diff(project(beer, [brewery]), project(brewery, [name]))")
        assert render_mathy(expr) == "(π[brewery](beer) − π[name](brewery))"

    def test_alarm_statement(self):
        statement = parse_statement("alarm(select(r, a < 0))")
        assert render_mathy_statement(statement) == "alarm(σ[a<0](r))"

    def test_count(self):
        expr = parse_expression("cnt(r)")
        assert render_mathy(expr) == "CNT(r)"
