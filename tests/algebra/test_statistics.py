"""Runtime statistics: capture, drift, and stats-aware plan estimates."""

from __future__ import annotations

import pytest

from repro.algebra import expressions as E
from repro.algebra import planner
from repro.algebra import predicates as P
from repro.algebra.statistics import RuntimeStatistics
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.types import INT


@pytest.fixture(autouse=True)
def _fresh_planner():
    planner.clear_plan_cache()
    yield
    planner.clear_plan_cache()


def _database(n_r: int = 100, n_s: int = 10) -> Database:
    database = Database(
        DatabaseSchema(
            [
                RelationSchema("r", [("a", INT), ("b", INT)]),
                RelationSchema("s", [("c", INT), ("d", INT)]),
            ]
        )
    )
    database.load("r", [(i % 20, i) for i in range(n_r)])
    database.load("s", [(i, i) for i in range(n_s)])
    return database


def test_capture_reads_cardinalities_and_distinct_keys():
    database = _database()
    database.create_index("r", ["a"])
    stats = RuntimeStatistics.capture(database)
    assert stats.get("r") == 100.0
    assert stats.get("s") == 10.0
    assert stats.distinct_keys("r", ("a",)) == 20
    assert stats.distinct_keys("r", ("b",)) is None
    assert stats.distinct_keys("missing", ("a",)) is None


def test_drift_is_symmetric_and_thresholded():
    old = RuntimeStatistics({"r": 100.0})
    same = RuntimeStatistics({"r": 110.0})
    grown = RuntimeStatistics({"r": 1000.0})
    assert not old.drifted(same)
    assert old.drifted(grown)
    assert grown.drifted(old)


def test_equality_selection_estimate_uses_distinct_keys():
    database = _database()
    database.create_index("r", ["a"])
    expression = E.Select(
        E.RelationRef("r"), P.Comparison("=", P.ColRef("a"), P.Const(3))
    )
    stats_estimate = planner.estimate_expression(
        expression, RuntimeStatistics.capture(database)
    )
    # |r| / V(r, a) = 100 / 20
    assert stats_estimate.rows == pytest.approx(5.0)
    textbook = planner.estimate_expression(expression, {"r": 100})
    assert textbook.rows != stats_estimate.rows


def test_join_estimate_uses_distinct_keys():
    database = _database()
    database.create_index("r", ["a"])
    join = E.Join(
        E.RelationRef("r"),
        E.RelationRef("s"),
        P.Comparison("=", P.ColRef("a", "left"), P.ColRef("c", "right")),
    )
    stats = RuntimeStatistics.capture(database)
    estimate = planner.estimate_expression(join, stats)
    # |r| * |s| / max(V) = 100 * 10 / 20
    assert estimate.rows == pytest.approx(50.0)


def test_index_creation_counts_as_drift():
    # An index appearing (or vanishing) changes what the estimator can
    # know, not just how much data there is: the cache must invalidate.
    database = _database()
    expression = E.Select(
        E.RelationRef("r"), P.Comparison("=", P.ColRef("a"), P.Const(3))
    )
    before = planner.plan_estimate(expression, database)
    database.create_index("r", ["a"])
    after = planner.plan_estimate(expression, database)
    assert after is not before
    assert after.rows == pytest.approx(5.0)  # |r| / V(r, a)


def test_estimate_cache_is_per_database():
    expression = E.Select(
        E.RelationRef("r"), P.Comparison(">", P.ColRef("b"), P.Const(1))
    )
    small = _database(n_r=100)
    large = _database(n_r=160)  # within the drift threshold of `small`
    first = planner.plan_estimate(expression, small)
    second = planner.plan_estimate(expression, large)
    assert second is not first
    assert second.rows > first.rows


def test_plan_estimate_cached_until_drift():
    database = _database()
    expression = E.Select(
        E.RelationRef("r"), P.Comparison(">", P.ColRef("b"), P.Const(1))
    )
    first = planner.plan_estimate(expression, database)
    second = planner.plan_estimate(expression, database)
    assert first is second  # served from the estimate cache
    database.load("r", [(0, i) for i in range(1000)])  # 11x growth
    third = planner.plan_estimate(expression, database)
    assert third is not first
    assert third.rows > first.rows


def test_predict_enforcement_time_accepts_a_database():
    from repro.parallel.cost_model import MODERN_2026, predict_enforcement_time

    database = _database()
    expression = E.SemiJoin(
        E.RelationRef("r"),
        E.RelationRef("s"),
        P.Comparison("=", P.ColRef("a", "left"), P.ColRef("c", "right")),
    )
    seconds = predict_enforcement_time(
        expression, model=MODERN_2026, database=database
    )
    assert seconds > 0


def test_predict_audit_time_prices_program_statements():
    from repro.algebra.parser import parse_program
    from repro.parallel.cost_model import MODERN_2026, predict_audit_time

    database = _database()
    program = parse_program(
        "t := select(r, a > 0); alarm(semijoin(t, s, left.a = right.c))"
    )
    seconds = predict_audit_time(program, model=MODERN_2026, database=database)
    assert seconds > MODERN_2026.startup


def test_predict_audit_time_prices_fallback_sub_plans():
    from repro.calculus.parser import parse_constraint
    from repro.core.translation import CheckConstraint
    from repro.algebra.programs import Program
    from repro.parallel.cost_model import MODERN_2026, predict_audit_time

    database = _database()
    # A conjunction of universals: stored as a CheckConstraint fallback,
    # evaluated through two compiled sub-plans — which must be priced,
    # not treated as free.
    formula = parse_constraint(
        "(forall x)(x in r => x.b >= 0) and "
        "(forall x)(x in r => (exists y)(y in s and x.a = y.c))"
    )
    program = Program([CheckConstraint(formula)])
    seconds = predict_audit_time(program, model=MODERN_2026, database=database)
    assert seconds > MODERN_2026.startup


def test_committed_deltas_feed_delta_scan_pricing():
    from repro.algebra.physical import DEFAULT_DELTA_CARDINALITY
    from repro.engine import Session

    database = _database()
    delta_plus = E.Delta("r", "plus")
    # Cold start: no commits observed yet, the fixed default applies.
    cold = planner.estimate_expression(
        delta_plus, RuntimeStatistics.capture(database)
    )
    assert cold.rows == DEFAULT_DELTA_CARDINALITY
    session = Session(database)
    result = session.execute("begin insert(r, (100, 1)); insert(r, (101, 2)); end")
    assert result.committed
    stats = RuntimeStatistics.capture(database)
    assert stats.get("r@plus") == 2.0
    assert "r@plus" in stats
    warm = planner.estimate_expression(delta_plus, stats)
    assert warm.rows == 2.0
    # The EWMA tracks the observed distribution across commits.
    session.execute("begin insert(r, (102, 1)); end")
    ewma = RuntimeStatistics.capture(database).get("r@plus")
    assert 1.0 < ewma < 2.0


def test_delta_sizes_participate_in_drift():
    old = RuntimeStatistics({"r": 100.0}, delta_sizes={"r@plus": 2.0})
    shifted = RuntimeStatistics({"r": 100.0}, delta_sizes={"r@plus": 1000.0})
    assert old.drifted(shifted)
    close = RuntimeStatistics({"r": 100.0}, delta_sizes={"r@plus": 3.0})
    assert not old.drifted(close)


def test_explicit_deltas_override_observed_sizes():
    from repro.engine import Session
    from repro.parallel.cost_model import MODERN_2026, predict_enforcement_time

    database = _database()
    session = Session(database)
    session.execute("begin insert(r, (100, 1)); end")  # observed |Δ| = 1
    expr = E.SemiJoin(
        E.Delta("r", "plus"),
        E.RelationRef("s"),
        P.Comparison("=", P.ColRef("a", "left"), P.ColRef("c", "right")),
    )
    observed = predict_enforcement_time(expr, model=MODERN_2026, database=database)
    explicit = predict_enforcement_time(
        expr, model=MODERN_2026, database=database, deltas={"r@plus": 50_000}
    )
    assert explicit > observed
