"""The physical planner: lowering, caching, engine switch, estimates."""

from __future__ import annotations

import pytest

from repro.algebra import expressions as E
from repro.algebra import physical as X
from repro.algebra import planner
from repro.algebra import predicates as P
from repro.algebra.evaluation import StandaloneContext, TracingContext, evaluate_expression
from repro.engine import Database, DatabaseSchema, Relation, RelationSchema
from repro.engine.types import INT
from repro.parallel.cost_model import MODERN_2026, predict_enforcement_time


@pytest.fixture
def db() -> Database:
    schema = DatabaseSchema(
        [
            RelationSchema("pk", [("key", INT), ("v", INT)]),
            RelationSchema("fk", [("id", INT), ("ref", INT)]),
        ]
    )
    database = Database(schema)
    database.load("pk", [(k, k * 10) for k in range(10)])
    database.load("fk", [(i, i % 12) for i in range(30)])  # refs 10, 11 dangle
    return database


@pytest.fixture
def ctx(db) -> StandaloneContext:
    return StandaloneContext(
        {"pk": db.relation("pk"), "fk": db.relation("fk")}
    )


REFERENTIAL = E.AntiJoin(
    E.RelationRef("fk"),
    E.RelationRef("pk"),
    P.Comparison("=", P.ColRef("ref", "left"), P.ColRef("key", "right")),
)


class TestLowering:
    def test_equi_antijoin_lowers_to_hash_op(self):
        plan = planner.compile_expression(REFERENTIAL)
        assert isinstance(plan, X.HashAntiJoinOp)
        assert isinstance(plan.left, X.ScanOp)
        assert plan.left_keys.attrs == ("ref",)
        assert plan.right_keys.attrs == ("key",)

    def test_non_equi_join_falls_back_to_nested_loop(self):
        expr = E.Join(
            E.RelationRef("fk"),
            E.RelationRef("pk"),
            P.Comparison("<", P.ColRef("ref", "left"), P.ColRef("key", "right")),
        )
        assert isinstance(planner.compile_expression(expr), X.NestedLoopJoinOp)

    def test_semijoin_with_residual_hashes_by_equality_keys(self):
        expr = E.SemiJoin(
            E.RelationRef("fk"),
            E.RelationRef("pk"),
            P.And(
                P.Comparison("=", P.ColRef("ref", "left"), P.ColRef("key", "right")),
                P.Comparison("<", P.ColRef("id", "left"), P.ColRef("v", "right")),
            ),
        )
        plan = planner.compile_expression(expr)
        assert isinstance(plan, X.HashSemiJoinOp)
        assert "+residual" in plan.describe()

    def test_semijoin_without_equality_uses_nested_loop(self):
        expr = E.SemiJoin(
            E.RelationRef("fk"),
            E.RelationRef("pk"),
            P.Comparison("<", P.ColRef("ref", "left"), P.ColRef("key", "right")),
        )
        assert isinstance(planner.compile_expression(expr), X.NestedLoopSemiOp)

    def test_semijoin_residual_matches_naive(self, ctx):
        expr = E.SemiJoin(
            E.RelationRef("fk"),
            E.RelationRef("pk"),
            P.And(
                P.Comparison("=", P.ColRef("ref", "left"), P.ColRef("key", "right")),
                P.Comparison("<", P.ColRef("id", "left"), P.ColRef("v", "right")),
            ),
        )
        naive = expr.evaluate(ctx)
        planned = planner.get_plan(expr).execute(ctx)
        assert naive == planned

    def test_const_equality_select_lowers_to_index_select(self):
        expr = E.Select(
            E.RelationRef("fk"), P.Comparison("=", P.ColRef("ref"), P.Const(3))
        )
        plan = planner.compile_expression(expr)
        assert isinstance(plan, X.IndexSelectOp)
        assert plan.attrs == ("ref",)
        assert plan.key == 3

    def test_null_equality_stays_in_filter(self):
        from repro.engine.types import NULL

        expr = E.Select(
            E.RelationRef("fk"), P.Comparison("=", P.ColRef("ref"), P.Const(NULL))
        )
        assert isinstance(planner.compile_expression(expr), X.FilterOp)

    def test_explain_renders_tree(self):
        text = planner.explain(REFERENTIAL)
        assert "hash_antijoin" in text
        assert "scan(fk)" in text


class TestExecution:
    def test_planned_matches_naive_referential(self, ctx):
        naive = REFERENTIAL.evaluate(ctx)
        planned = planner.get_plan(REFERENTIAL).execute(ctx)
        assert planned == naive
        assert {row[1] for row in planned} == {10, 11}

    def test_index_select_uses_bucket(self, db, ctx):
        db.create_index("fk", ["ref"])
        expr = E.Select(
            E.RelationRef("fk"), P.Comparison("=", P.ColRef("ref"), P.Const(3))
        )
        planned = planner.get_plan(expr).execute(ctx)
        naive = expr.evaluate(ctx)
        assert planned == naive
        assert all(row[1] == 3 for row in planned)

    def test_antijoin_with_both_sides_indexed(self, db, ctx):
        db.create_index("fk", ["ref"])
        db.create_index("pk", ["key"])
        planned = planner.get_plan(REFERENTIAL).execute(ctx)
        assert {row[1] for row in planned} == {10, 11}

    def test_planned_ops_trace_like_naive(self, ctx):
        tracing = TracingContext(ctx)
        evaluate_expression(REFERENTIAL, tracing, engine="planned")
        summary = tracing.tracer.by_operator()
        assert "antijoin" in summary
        calls, tuples_in, tuples_out = summary["antijoin"]
        assert calls == 1 and tuples_in == 40 and tuples_out == 4


class TestEngineSwitch:
    def test_default_engine_is_planned(self):
        assert planner.get_default_engine() == "planned"

    def test_context_engine_wins_over_default(self, db):
        ctx = StandaloneContext({"fk": db.relation("fk")}, engine="naive")
        assert planner.resolve_engine(ctx) == "naive"

    def test_explicit_engine_wins_over_context(self, db):
        ctx = StandaloneContext({"fk": db.relation("fk")}, engine="naive")
        assert planner.resolve_engine(ctx, "planned") == "planned"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            planner.resolve_engine(None, "quantum")
        with pytest.raises(ValueError):
            planner.set_default_engine("quantum")

    def test_both_engines_produce_equal_results(self, ctx):
        naive = evaluate_expression(REFERENTIAL, ctx, engine="naive")
        planned = evaluate_expression(REFERENTIAL, ctx, engine="planned")
        assert naive == planned


class TestPlanCache:
    def test_structurally_equal_expressions_share_plans(self):
        planner.clear_plan_cache()
        first = planner.get_plan(REFERENTIAL)
        again = planner.get_plan(
            E.AntiJoin(
                E.RelationRef("fk"),
                E.RelationRef("pk"),
                P.Comparison("=", P.ColRef("ref", "left"), P.ColRef("key", "right")),
            )
        )
        assert first is again
        info = planner.plan_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_leaf_expressions_are_not_cached(self):
        planner.clear_plan_cache()
        planner.get_plan(E.RelationRef("fk"))
        planner.get_plan(E.Literal(((1, 2),)))
        assert planner.plan_cache_info()["size"] == 0


class TestEstimates:
    def test_scan_uses_cardinalities(self):
        est = planner.estimate_expression(REFERENTIAL, {"fk": 100_000, "pk": 1000})
        assert est.built == 1000
        assert est.probed == 100_000

    def test_cost_model_prices_plan(self):
        seconds = predict_enforcement_time(
            REFERENTIAL, {"fk": 100_000, "pk": 1000}, model=MODERN_2026, nodes=8
        )
        assert seconds > 0
        # 8 nodes must beat 1 node.
        assert seconds < predict_enforcement_time(
            REFERENTIAL, {"fk": 100_000, "pk": 1000}, model=MODERN_2026, nodes=1
        )

    def test_cost_model_prefers_delta_plan(self):
        from repro.algebra.delta import delta_expression

        cards = {"fk": 100_000, "pk": 1000}
        delta = delta_expression(REFERENTIAL, [("INS", "fk")])
        full_seconds = predict_enforcement_time(
            REFERENTIAL, cards, model=MODERN_2026
        )
        delta_seconds = predict_enforcement_time(
            delta, cards, model=MODERN_2026, deltas={"fk@plus": 100}
        )
        # 100 probes against the same 1000-row build side vs 100k probes:
        # the scheduler's choice is not close.
        assert delta_seconds < full_seconds / 10

    def test_delta_estimate_defaults_without_statistics(self):
        from repro.algebra.delta import delta_expression
        from repro.algebra.physical import DEFAULT_DELTA_CARDINALITY

        delta = delta_expression(REFERENTIAL, [("INS", "fk")])
        est = planner.estimate_expression(delta, {"fk": 100_000, "pk": 1000})
        assert est.probed == DEFAULT_DELTA_CARDINALITY
        assert est.built == 1000

    def test_index_hints_cover_both_antijoin_sides(self):
        hints = planner.index_hints(REFERENTIAL)
        assert ("fk", ("ref",)) in hints
        assert ("pk", ("key",)) in hints

    def test_index_hints_skip_auxiliaries(self):
        expr = E.AntiJoin(
            E.RelationRef("fk@plus"),
            E.RelationRef("pk"),
            P.Comparison("=", P.ColRef("ref", "left"), P.ColRef("key", "right")),
        )
        hints = planner.index_hints(expr)
        assert hints == {("pk", ("key",))}
