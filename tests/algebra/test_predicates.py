"""Scalar expressions, predicates, compilation, three-valued logic."""

import pytest

from repro.algebra import predicates as P
from repro.algebra.predicates import compile_predicate, compile_scalar, negate
from repro.engine.schema import RelationSchema
from repro.engine.types import INT, NULL, STRING
from repro.errors import EvaluationError


@pytest.fixture
def schema():
    return RelationSchema("t", [("a", INT), ("b", INT), ("name", STRING, True)])


ROW = (4, 10, "x")


class TestScalarCompilation:
    def test_const(self, schema):
        assert compile_scalar(P.Const(7), schema)(ROW) == 7

    def test_colref_by_name(self, schema):
        assert compile_scalar(P.ColRef("b"), schema)(ROW) == 10

    def test_colref_by_position(self, schema):
        assert compile_scalar(P.ColRef(1), schema)(ROW) == 4

    def test_arith(self, schema):
        expr = P.Arith("+", P.ColRef("a"), P.Arith("*", P.ColRef("b"), P.Const(2)))
        assert compile_scalar(expr, schema)(ROW) == 24

    def test_division_exact_stays_int(self, schema):
        expr = P.Arith("/", P.ColRef("b"), P.Const(2))
        assert compile_scalar(expr, schema)(ROW) == 5

    def test_division_inexact_is_float(self, schema):
        expr = P.Arith("/", P.ColRef("b"), P.Const(4))
        assert compile_scalar(expr, schema)(ROW) == 2.5

    def test_division_by_zero(self, schema):
        expr = P.Arith("/", P.ColRef("a"), P.Const(0))
        with pytest.raises(EvaluationError):
            compile_scalar(expr, schema)(ROW)

    def test_null_propagates_through_arith(self, schema):
        expr = P.Arith("+", P.Const(NULL), P.Const(1))
        assert compile_scalar(expr, schema)(ROW) is NULL

    def test_right_side_in_binary_context(self, schema):
        other = RelationSchema("s", [("c", INT)])
        fn = compile_scalar(P.ColRef("c", "right"), schema, other)
        assert fn(ROW, (42,)) == 42

    def test_right_side_in_unary_context_fails(self, schema):
        with pytest.raises(EvaluationError):
            compile_scalar(P.ColRef("c", "right"), schema)


class TestPredicateCompilation:
    def test_comparisons(self, schema):
        for op, expected in [
            ("<", True), ("<=", True), ("=", False),
            ("!=", True), (">=", False), (">", False),
        ]:
            predicate = P.Comparison(op, P.ColRef("a"), P.ColRef("b"))
            assert compile_predicate(predicate, schema)(ROW) is expected

    def test_null_comparison_is_unknown(self, schema):
        predicate = P.Comparison("=", P.ColRef("name"), P.Const("x"))
        assert compile_predicate(predicate, schema)((1, 2, NULL)) is None

    def test_is_null(self, schema):
        predicate = P.IsNull(P.ColRef("name"))
        fn = compile_predicate(predicate, schema)
        assert fn((1, 2, NULL)) is True
        assert fn(ROW) is False

    def test_kleene_and(self, schema):
        unknown = P.Comparison("=", P.Const(NULL), P.Const(1))
        false = P.FalsePred()
        true = P.TruePred()
        fn = compile_predicate(P.And(unknown, false), schema)
        assert fn(ROW) is False  # unknown AND false = false
        fn = compile_predicate(P.And(unknown, true), schema)
        assert fn(ROW) is None  # unknown AND true = unknown

    def test_kleene_or(self, schema):
        unknown = P.Comparison("=", P.Const(NULL), P.Const(1))
        fn = compile_predicate(P.Or(unknown, P.TruePred()), schema)
        assert fn(ROW) is True  # unknown OR true = true
        fn = compile_predicate(P.Or(unknown, P.FalsePred()), schema)
        assert fn(ROW) is None

    def test_not_unknown_is_unknown(self, schema):
        unknown = P.Comparison("=", P.Const(NULL), P.Const(1))
        assert compile_predicate(P.Not(unknown), schema)(ROW) is None

    def test_true_false(self, schema):
        assert compile_predicate(P.TRUE, schema)(ROW) is True
        assert compile_predicate(P.FALSE, schema)(ROW) is False


class TestNegate:
    def test_comparison_flips_operator(self):
        predicate = P.Comparison(">=", P.ColRef("a"), P.Const(0))
        assert negate(predicate) == P.Comparison("<", P.ColRef("a"), P.Const(0))

    def test_double_negation(self):
        inner = P.IsNull(P.ColRef("a"))
        assert negate(P.Not(inner)) is inner

    def test_de_morgan(self):
        a = P.Comparison("=", P.ColRef("a"), P.Const(1))
        b = P.Comparison("=", P.ColRef("b"), P.Const(2))
        assert negate(P.And(a, b)) == P.Or(negate(a), negate(b))
        assert negate(P.Or(a, b)) == P.And(negate(a), negate(b))

    def test_constants(self):
        assert negate(P.TRUE) == P.FALSE
        assert negate(P.FALSE) == P.TRUE

    def test_opaque_wrapped_in_not(self):
        predicate = P.IsNull(P.ColRef("a"))
        assert negate(predicate) == P.Not(predicate)


class TestConjoin:
    def test_empty_is_true(self):
        assert P.conjoin() == P.TRUE

    def test_true_elimination(self):
        a = P.Comparison("=", P.ColRef("a"), P.Const(1))
        assert P.conjoin(P.TRUE, a, P.TRUE) == a

    def test_false_dominates(self):
        a = P.Comparison("=", P.ColRef("a"), P.Const(1))
        assert P.conjoin(a, P.FALSE) == P.FALSE

    def test_two_predicates_nest(self):
        a = P.Comparison("=", P.ColRef("a"), P.Const(1))
        b = P.Comparison("=", P.ColRef("b"), P.Const(2))
        assert P.conjoin(a, b) == P.And(a, b)


class TestPredicateColumns:
    def test_collects_all_refs(self):
        predicate = P.And(
            P.Comparison("=", P.ColRef("a", "left"), P.ColRef("c", "right")),
            P.Not(P.IsNull(P.ColRef("b"))),
        )
        assert P.predicate_columns(predicate) == {
            P.ColRef("a", "left"),
            P.ColRef("c", "right"),
            P.ColRef("b"),
        }
