"""ColumnBatch conversion/packing, kernel semantics, batch policy, LRU caches."""

import pickle

import pytest

from repro.algebra import columnar
from repro.algebra import predicates as P
from repro.algebra.columnar import ColumnBatch
from repro.algebra.physical import _SchemaLRU
from repro.engine import Relation, RelationSchema
from repro.engine.schema import Attribute
from repro.engine.types import ANY, INT, NULL
from repro.errors import EvaluationError


def schema(nullable: bool = False) -> RelationSchema:
    return RelationSchema(
        "t",
        [
            Attribute("a", INT, nullable=nullable),
            Attribute("b", INT, nullable=nullable),
        ],
    )


def relation(rows, bag: bool = False, nullable: bool = False) -> Relation:
    built = Relation(schema(nullable), bag=bag)
    for row in rows:
        built.insert(row)
    return built


class TestConversion:
    def test_set_round_trip(self):
        source = relation([(1, 2), (3, 4), (5, 6)])
        batch = ColumnBatch.from_relation(source)
        assert batch.row_count == 3
        assert batch.counts is None
        assert batch.column(0) == [1, 3, 5]
        assert batch.to_relation() == source

    def test_bag_round_trip_keeps_multiplicities(self):
        source = relation([(1, 2), (1, 2), (3, 4)], bag=True)
        batch = ColumnBatch.from_relation(source)
        assert batch.counts == [2, 1]
        assert len(batch) == 3
        revived = batch.to_relation()
        assert revived == source
        assert revived.multiplicity((1, 2)) == 2

    def test_bag_with_unit_counts_drops_vector(self):
        source = relation([(1, 2), (3, 4)], bag=True)
        assert ColumnBatch.from_relation(source).counts is None

    def test_empty_relation(self):
        source = relation([])
        batch = ColumnBatch.from_relation(source)
        assert batch.row_count == 0
        assert len(batch.columns) == 2
        assert batch.to_relation() == source

    def test_declared_indexes_survive(self):
        source = relation([(1, 2), (3, 4)])
        source.declare_index((0,))
        source.declare_index((1,))
        revived = ColumnBatch.from_relation(source).to_relation()
        assert set(revived.indexes.specs()) == {(0,), (1,)}

    def test_relation_column_batch_helper(self):
        source = relation([(7, 8)])
        assert source.column_batch().to_relation() == source


class TestPacking:
    def pack(self, column):
        return columnar._pack_column(column)

    def test_int_columns_use_smallest_typecode(self):
        assert self.pack([1, -2, 127])[1].typecode == "b"
        assert self.pack([1, 1000])[1].typecode == "h"
        assert self.pack([1, 1 << 20])[1].typecode == "i"
        assert self.pack([1, 1 << 40])[1].typecode == "q"

    def test_non_negative_columns_take_unsigned_codes(self):
        assert self.pack([0, 200])[1].typecode == "B"
        assert self.pack([0, 60_000])[1].typecode == "H"
        assert self.pack([0, 1 << 31])[1].typecode == "I"
        assert self.pack([-1, 60_000])[1].typecode == "i"

    def test_bignum_falls_back_to_raw(self):
        assert self.pack([1, 1 << 70])[0] == "raw"

    def test_floats_pack_as_doubles(self):
        kind, arr, nulls = self.pack([1.5, -2.25])
        assert (kind, arr.typecode, nulls) == ("arr", "d", ())

    def test_mixed_int_float_ships_raw(self):
        # Routing ints through a double array would silently turn 1 into
        # 1.0 — same dict key, different division semantics.
        assert self.pack([1, 2.5])[0] == "raw"

    def test_bools_and_strings_ship_raw(self):
        assert self.pack([True, False])[0] == "raw"
        assert self.pack(["x", "y"])[0] == "raw"

    def test_null_positions_restored(self):
        packed = self.pack([5, NULL, 7])
        assert packed[0] == "arr" and packed[2] == (1,)
        assert columnar._unpack_column(packed) == [5, NULL, 7]

    def test_pickle_beats_row_form_on_large_int_relations(self):
        source = relation([(i, i * 2) for i in range(5000)])
        row_blob = pickle.dumps(source, protocol=pickle.HIGHEST_PROTOCOL)
        batch_blob = pickle.dumps(
            ColumnBatch.from_relation(source), protocol=pickle.HIGHEST_PROTOCOL
        )
        assert len(batch_blob) * 1.5 < len(row_blob)
        assert pickle.loads(batch_blob).to_relation() == source


class TestWireHelpers:
    def test_small_relations_skip_encoding(self):
        source = relation([(1, 2)])
        assert columnar.encode_relation(source) is source
        assert columnar.decode_relation(source) is source

    def test_large_relations_encode(self):
        source = relation([(i, i) for i in range(600)])
        encoded = columnar.encode_relation(source)
        assert isinstance(encoded, ColumnBatch)
        assert columnar.decode_relation(encoded) == source

    def test_min_rows_override(self):
        source = relation([(1, 2), (3, 4)])
        assert isinstance(
            columnar.encode_relation(source, min_rows=1), ColumnBatch
        )

    def test_differentials_round_trip_with_none(self):
        plus = relation([(i, i) for i in range(10)])
        encoded = columnar.encode_differentials({"t": (plus, None)}, min_rows=4)
        assert isinstance(encoded["t"][0], ColumnBatch)
        assert encoded["t"][1] is None
        decoded = columnar.decode_differentials(encoded)
        assert decoded["t"] == (plus, None)


class TestBatchPolicy:
    def test_set_returns_previous(self):
        previous = columnar.set_batch_policy("always")
        try:
            assert previous == "auto"
            assert columnar.batch_policy() == "always"
        finally:
            columnar.set_batch_policy(previous)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            columnar.set_batch_policy("sometimes")


class TestKernels:
    def rows(self):
        return [(1, 10), (2, 20), (3, 30)]

    def test_comparison_kernel_matches_row_closure(self):
        predicate = P.Comparison(">", P.ColRef(1), P.Const(1))
        kernel = columnar.compile_predicate_kernel(predicate, schema())
        closure = P.compile_predicate(predicate, schema())
        assert kernel(self.rows()) == [closure(row) for row in self.rows()]

    def test_null_comparison_is_unknown(self):
        predicate = P.Comparison("=", P.ColRef(1), P.Const(2))
        kernel = columnar.compile_predicate_kernel(predicate, schema(True))
        assert kernel([(NULL, 1), (2, 1)]) == [None, True]

    def test_non_nullable_schema_skips_null_branches(self):
        # The fast path never tests for NULL; feeding it one anyway shows
        # which branch compiled (NULL compares unequal via object identity).
        predicate = P.Comparison("=", P.ColRef(1), P.Const(2))
        kernel = columnar.compile_predicate_kernel(predicate, schema(False))
        assert kernel([(2, 1)]) == [True]

    def test_division_by_zero_raised_from_batch(self):
        expr = P.Arith("/", P.ColRef(1), P.ColRef(2))
        kernel = columnar.compile_scalar_kernel(expr, schema())
        with pytest.raises(EvaluationError, match="division by zero"):
            kernel([(1, 0)])

    def test_and_short_circuit_skips_poison_rows(self):
        # Rows failing the left conjunct must never reach the division —
        # exactly the row closures' short-circuit behavior.
        predicate = P.And(
            P.Comparison(">", P.ColRef(2), P.Const(0)),
            P.Comparison("=", P.Arith("/", P.ColRef(1), P.ColRef(2)), P.Const(1)),
        )
        kernel = columnar.compile_predicate_kernel(predicate, schema())
        assert kernel([(5, 0), (2, 2)]) == [False, True]

    def test_exact_integer_division(self):
        expr = P.Arith("/", P.ColRef(1), P.Const(2))
        kernel = columnar.compile_scalar_kernel(expr, schema())
        result = kernel([(4, 0), (5, 0)])
        assert result == [2, 2.5]
        assert type(result[0]) is int

    def test_kleene_or_with_nulls(self):
        predicate = P.Or(
            P.Comparison("=", P.ColRef(1), P.Const(1)),
            P.Comparison("=", P.ColRef(2), P.Const(9)),
        )
        kernel = columnar.compile_predicate_kernel(predicate, schema(True))
        assert kernel([(1, NULL), (NULL, 9), (NULL, 0), (2, 0)]) == [
            True,
            True,
            None,
            False,
        ]

    def test_is_null_kernel(self):
        predicate = P.IsNull(P.ColRef(1))
        nullable = columnar.compile_predicate_kernel(predicate, schema(True))
        assert nullable([(NULL, 1), (2, 1)]) == [True, False]
        fixed = columnar.compile_predicate_kernel(predicate, schema(False))
        assert fixed([(2, 1)]) == [False]


class TestSchemaLRU:
    def test_evicts_oldest_beyond_maxsize(self):
        cache = _SchemaLRU(maxsize=2)
        cache["a"] = 1
        cache["b"] = 2
        cache["c"] = 3
        assert "a" not in cache
        assert set(cache) == {"b", "c"}

    def test_get_refreshes_recency(self):
        cache = _SchemaLRU(maxsize=2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.get("a") == 1
        cache["c"] = 3
        assert "b" not in cache and "a" in cache

    def test_get_default(self):
        cache = _SchemaLRU(maxsize=2)
        assert cache.get("missing") is None
        assert cache.get("missing", 7) == 7
