"""Programs: concatenation, (de)bracketing, non-triggering flag."""

from repro.algebra import expressions as E
from repro.algebra import statements as S
from repro.algebra.parser import parse_program
from repro.algebra.programs import (
    EMPTY_PROGRAM,
    Program,
    bracket,
    concat,
    debracket,
)
from repro.algebra.statements import DEL, INS


def ins(name="r"):
    return S.Insert(name, E.Literal(()))


class TestProgram:
    def test_empty_program(self):
        assert EMPTY_PROGRAM.is_empty
        assert len(EMPTY_PROGRAM) == 0
        assert EMPTY_PROGRAM.update_triggers() == frozenset()

    def test_concat_operator(self):
        left = Program([ins("a")])
        right = Program([ins("b")])
        combined = left + right
        assert len(combined) == 2
        assert combined.update_triggers() == {(INS, "a"), (INS, "b")}

    def test_concat_identity(self):
        program = Program([ins()])
        assert (EMPTY_PROGRAM + program).statements == program.statements
        assert (program + EMPTY_PROGRAM).statements == program.statements

    def test_concat_many(self):
        combined = concat(Program([ins("a")]), Program([ins("b")]), Program([ins("c")]))
        assert len(combined) == 3

    def test_equality(self):
        assert Program([ins()]) == Program([ins()])
        assert Program([ins()]) != Program([ins("other")])
        assert Program([ins()]) != Program([ins()], non_triggering=True)

    def test_hashable(self):
        assert hash(Program([ins()])) == hash(Program([ins()]))


class TestNonTriggering:
    def test_flag_empties_trigger_set(self):
        program = Program([ins()], non_triggering=True)
        assert program.update_triggers() == frozenset()

    def test_get_trig_px_vs_get_trig_p(self):
        from repro.core.triggers import get_trig_p, get_trig_px

        program = Program([ins()], non_triggering=True)
        assert get_trig_p(program) == {(INS, "r")}
        assert get_trig_px(program) == frozenset()

    def test_concat_keeps_flag_only_if_both(self):
        quiet = Program([ins("a")], non_triggering=True)
        loud = Program([ins("b")])
        assert (quiet + quiet).non_triggering
        assert not (quiet + loud).non_triggering


class TestBracketing:
    def test_bracket_then_debracket(self):
        program = parse_program("insert(r, (1,)); delete(s, (2,))")
        txn = bracket(program, name="t1")
        assert txn.name == "t1"
        assert debracket(txn) is program

    def test_debracket_of_sequence_transaction(self):
        from repro.engine.transaction import Transaction

        txn = Transaction([ins()])
        program = debracket(txn)
        assert isinstance(program, Program)
        assert len(program) == 1

    def test_relations_read(self):
        program = parse_program("t := select(r, a > 0); insert(s, t)")
        assert program.relations_read() == {"r", "t"}
