"""Relation-valued expression evaluation."""

import pytest

from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra.evaluation import StandaloneContext, TracingContext
from repro.engine import Relation, RelationSchema
from repro.engine.types import INT, NULL, STRING
from repro.errors import TypeMismatchError


@pytest.fixture
def ctx():
    r_schema = RelationSchema("r", [("a", INT), ("b", INT)])
    s_schema = RelationSchema("s", [("c", INT), ("d", STRING)])
    return StandaloneContext(
        {
            "r": Relation(r_schema, [(1, 10), (2, 20), (3, 30)]),
            "s": Relation(s_schema, [(1, "one"), (2, "two"), (9, "nine")]),
            "empty": Relation(r_schema.renamed("empty")),
        }
    )


def rows(expr, ctx):
    return expr.evaluate(ctx).sorted_rows()


class TestBasicOperators:
    def test_relation_ref(self, ctx):
        assert rows(E.RelationRef("r"), ctx) == [(1, 10), (2, 20), (3, 30)]

    def test_select(self, ctx):
        expr = E.Select(
            E.RelationRef("r"), P.Comparison(">", P.ColRef("b"), P.Const(15))
        )
        assert rows(expr, ctx) == [(2, 20), (3, 30)]

    def test_project_classical(self, ctx):
        expr = E.project_attributes(E.RelationRef("r"), ["a"])
        assert rows(expr, ctx) == [(1,), (2,), (3,)]

    def test_project_deduplicates(self, ctx):
        expr = E.Project(E.RelationRef("r"), (E.ProjectItem(P.Const(1)),))
        assert rows(expr, ctx) == [(1,)]

    def test_project_generalized_with_nulls(self, ctx):
        expr = E.Project(
            E.RelationRef("s"),
            (E.ProjectItem(P.ColRef("c"), "c"), E.ProjectItem(P.Const(NULL))),
        )
        result = expr.evaluate(ctx)
        assert all(row[1] is NULL for row in result)

    def test_project_arith(self, ctx):
        expr = E.Project(
            E.RelationRef("r"),
            (E.ProjectItem(P.Arith("+", P.ColRef("a"), P.ColRef("b")), "total"),),
        )
        assert rows(expr, ctx) == [(11,), (22,), (33,)]

    def test_union(self, ctx):
        expr = E.Union(E.RelationRef("r"), E.RelationRef("empty"))
        assert len(expr.evaluate(ctx)) == 3

    def test_union_deduplicates(self, ctx):
        expr = E.Union(E.RelationRef("r"), E.RelationRef("r"))
        assert len(expr.evaluate(ctx)) == 3

    def test_union_arity_mismatch(self, ctx):
        expr = E.Union(E.RelationRef("r"), E.Project(E.RelationRef("r"), (E.ProjectItem(P.ColRef("a")),)))
        with pytest.raises(TypeMismatchError):
            expr.evaluate(ctx)

    def test_difference(self, ctx):
        expr = E.Difference(
            E.RelationRef("r"),
            E.Select(E.RelationRef("r"), P.Comparison("=", P.ColRef("a"), P.Const(1))),
        )
        assert rows(expr, ctx) == [(2, 20), (3, 30)]

    def test_intersection(self, ctx):
        expr = E.Intersection(
            E.RelationRef("r"),
            E.Select(E.RelationRef("r"), P.Comparison(">", P.ColRef("a"), P.Const(1))),
        )
        assert rows(expr, ctx) == [(2, 20), (3, 30)]

    def test_product(self, ctx):
        expr = E.Product(E.RelationRef("r"), E.RelationRef("s"))
        assert len(expr.evaluate(ctx)) == 9

    def test_inputs_not_mutated(self, ctx):
        base = ctx.resolve("r").to_set()
        E.Select(E.RelationRef("r"), P.FALSE).evaluate(ctx)
        E.Difference(E.RelationRef("r"), E.RelationRef("r")).evaluate(ctx)
        assert ctx.resolve("r").to_set() == base


class TestJoins:
    PRED = P.Comparison("=", P.ColRef("a", "left"), P.ColRef("c", "right"))

    def test_equijoin_uses_hash_path(self, ctx):
        expr = E.Join(E.RelationRef("r"), E.RelationRef("s"), self.PRED)
        assert rows(expr, ctx) == [(1, 10, 1, "one"), (2, 20, 2, "two")]

    def test_theta_join_nested_loop(self, ctx):
        predicate = P.Comparison("<", P.ColRef("a", "left"), P.ColRef("c", "right"))
        expr = E.Join(E.RelationRef("r"), E.RelationRef("s"), predicate)
        result = expr.evaluate(ctx)
        assert (1, 10, 2, "two") in result
        assert (3, 30, 9, "nine") in result
        assert (2, 20, 1, "one") not in result

    def test_join_with_residual(self, ctx):
        predicate = P.And(
            self.PRED,
            P.Comparison(">", P.ColRef("b", "left"), P.Const(15)),
        )
        expr = E.Join(E.RelationRef("r"), E.RelationRef("s"), predicate)
        assert rows(expr, ctx) == [(2, 20, 2, "two")]

    def test_semijoin(self, ctx):
        expr = E.SemiJoin(E.RelationRef("r"), E.RelationRef("s"), self.PRED)
        assert rows(expr, ctx) == [(1, 10), (2, 20)]

    def test_antijoin(self, ctx):
        expr = E.AntiJoin(E.RelationRef("r"), E.RelationRef("s"), self.PRED)
        assert rows(expr, ctx) == [(3, 30)]

    def test_semijoin_true_predicate(self, ctx):
        expr = E.SemiJoin(E.RelationRef("r"), E.RelationRef("s"), P.TRUE)
        assert len(expr.evaluate(ctx)) == 3
        expr = E.SemiJoin(E.RelationRef("r"), E.RelationRef("empty"), P.TRUE)
        assert len(expr.evaluate(ctx)) == 0

    def test_antijoin_true_predicate(self, ctx):
        expr = E.AntiJoin(E.RelationRef("r"), E.RelationRef("empty"), P.TRUE)
        assert len(expr.evaluate(ctx)) == 3

    def test_antijoin_preserves_left_schema(self, ctx):
        expr = E.AntiJoin(E.RelationRef("r"), E.RelationRef("s"), self.PRED)
        assert expr.evaluate(ctx).schema.attribute_names == ("a", "b")


class TestAggregates:
    def test_sum(self, ctx):
        assert rows(E.Aggregate(E.RelationRef("r"), "SUM", "b"), ctx) == [(60,)]

    def test_avg(self, ctx):
        assert rows(E.Aggregate(E.RelationRef("r"), "AVG", "b"), ctx) == [(20,)]

    def test_min_max(self, ctx):
        assert rows(E.Aggregate(E.RelationRef("r"), "MIN", "a"), ctx) == [(1,)]
        assert rows(E.Aggregate(E.RelationRef("r"), "MAX", "a"), ctx) == [(3,)]

    def test_sum_empty_is_zero(self, ctx):
        assert rows(E.Aggregate(E.RelationRef("empty"), "SUM", "a"), ctx) == [(0,)]

    def test_min_empty_is_null(self, ctx):
        result = rows(E.Aggregate(E.RelationRef("empty"), "MIN", "a"), ctx)
        assert result[0][0] is NULL

    def test_count(self, ctx):
        assert rows(E.Count(E.RelationRef("r")), ctx) == [(3,)]
        assert rows(E.Count(E.RelationRef("empty")), ctx) == [(0,)]

    def test_multiplicity_counts_distinct(self, ctx):
        r_schema = RelationSchema("bag", [("a", INT)])
        ctx.bind("bag", Relation(r_schema, [(1,), (1,), (2,)], bag=True))
        assert rows(E.Count(E.RelationRef("bag")), ctx) == [(3,)]
        assert rows(E.Multiplicity(E.RelationRef("bag")), ctx) == [(2,)]

    def test_unknown_aggregate_rejected(self, ctx):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            E.Aggregate(E.RelationRef("r"), "MEDIAN", "a")


class TestRenameAndLiteral:
    def test_rename_relation(self, ctx):
        expr = E.Rename(E.RelationRef("r"), "renamed")
        assert expr.evaluate(ctx).schema.name == "renamed"

    def test_rename_attributes(self, ctx):
        expr = E.Rename(E.RelationRef("r"), "renamed", ("x", "y"))
        assert expr.evaluate(ctx).schema.attribute_names == ("x", "y")

    def test_rename_attribute_count_mismatch(self, ctx):
        expr = E.Rename(E.RelationRef("r"), "renamed", ("x",))
        with pytest.raises(TypeMismatchError):
            expr.evaluate(ctx)

    def test_literal(self, ctx):
        expr = E.Literal(((1, "a"), (2, "b")))
        assert len(expr.evaluate(ctx)) == 2

    def test_literal_ragged_rows_rejected(self):
        with pytest.raises(TypeMismatchError):
            E.Literal(((1, "a"), (2,)))

    def test_relations_collects_all_names(self):
        expr = E.Union(
            E.Select(E.RelationRef("a"), P.TRUE),
            E.SemiJoin(E.RelationRef("b"), E.RelationRef("c@plus"), P.TRUE),
        )
        assert expr.relations() == {"a", "b", "c@plus"}


class TestTracing:
    def test_operator_trace_records(self, ctx):
        tracing = TracingContext(ctx)
        expr = E.Select(E.RelationRef("r"), P.TRUE)
        expr.evaluate(tracing)
        summary = tracing.tracer.by_operator()
        assert "select" in summary
        calls, tuples_in, tuples_out = summary["select"]
        assert calls == 1 and tuples_in == 3 and tuples_out == 3
        assert tracing.tracer.total_tuples_in == 3
