"""Text forms of expressions, statements, programs, transactions."""

import pytest

from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra import statements as S
from repro.algebra.parser import (
    parse_expression,
    parse_predicate,
    parse_program,
    parse_statement,
    parse_transaction,
)
from repro.engine.types import NULL
from repro.errors import ParseError


class TestExpressionParsing:
    def test_relation_ref(self):
        assert parse_expression("beer") == E.RelationRef("beer")

    def test_auxiliary_ref(self):
        assert parse_expression("beer@plus") == E.RelationRef("beer@plus")

    def test_select(self):
        expr = parse_expression("select(beer, alcohol < 0)")
        assert expr == E.Select(
            E.RelationRef("beer"),
            P.Comparison("<", P.ColRef("alcohol"), P.Const(0)),
        )

    def test_project_with_alias_and_null(self):
        expr = parse_expression("project(t, [brewery as name, null, 1 + 2])")
        assert isinstance(expr, E.Project)
        assert expr.items[0].name == "name"
        assert expr.items[1].expr == P.Const(NULL)
        assert expr.items[2].expr == P.Arith("+", P.Const(1), P.Const(2))

    def test_binary_ops(self):
        assert isinstance(parse_expression("union(a, b)"), E.Union)
        assert isinstance(parse_expression("diff(a, b)"), E.Difference)
        assert isinstance(parse_expression("intersect(a, b)"), E.Intersection)
        assert isinstance(parse_expression("product(a, b)"), E.Product)

    def test_joins(self):
        expr = parse_expression("antijoin(r, s, left.a = right.c)")
        assert expr == E.AntiJoin(
            E.RelationRef("r"),
            E.RelationRef("s"),
            P.Comparison("=", P.ColRef("a", "left"), P.ColRef("c", "right")),
        )
        assert isinstance(parse_expression("join(r, s, left.1 = right.1)"), E.Join)
        assert isinstance(parse_expression("semijoin(r, s, true)"), E.SemiJoin)

    def test_aggregates(self):
        assert parse_expression("sum(r, b)") == E.Aggregate(E.RelationRef("r"), "SUM", "b")
        assert parse_expression("cnt(r)") == E.Count(E.RelationRef("r"))
        assert parse_expression("mlt(r)") == E.Multiplicity(E.RelationRef("r"))
        assert parse_expression("avg(r, 2)") == E.Aggregate(E.RelationRef("r"), "AVG", 2)

    def test_rename(self):
        assert parse_expression("rename(r, x)") == E.Rename(E.RelationRef("r"), "x", None)
        assert parse_expression("rename(r, x, [p, q])") == E.Rename(
            E.RelationRef("r"), "x", ("p", "q")
        )

    def test_set_literal(self):
        expr = parse_expression('{ (1, "a"), (2, "b") }')
        assert expr == E.Literal(((1, "a"), (2, "b")))

    def test_empty_set_literal(self):
        assert parse_expression("{}") == E.Literal(())

    def test_negative_number_in_literal(self):
        assert parse_expression("{ (-5, 2.5) }") == E.Literal(((-5, 2.5),))

    def test_reserved_word_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("select")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("beer beer")

    def test_nested(self):
        text = "diff(project(beer, [brewery]), project(brewery, [name]))"
        expr = parse_expression(text)
        assert isinstance(expr, E.Difference)
        assert isinstance(expr.left, E.Project)


class TestPredicateParsing:
    def test_precedence_and_over_or(self):
        predicate = parse_predicate("a = 1 or b = 2 and c = 3")
        assert isinstance(predicate, P.Or)
        assert isinstance(predicate.right, P.And)

    def test_parenthesized_predicate(self):
        predicate = parse_predicate("(a = 1 or b = 2) and c = 3")
        assert isinstance(predicate, P.And)
        assert isinstance(predicate.left, P.Or)

    def test_parenthesized_scalar_comparison(self):
        predicate = parse_predicate("(a + 1) > 2")
        assert predicate == P.Comparison(
            ">", P.Arith("+", P.ColRef("a"), P.Const(1)), P.Const(2)
        )

    def test_not(self):
        predicate = parse_predicate("not a = 1")
        assert isinstance(predicate, P.Not)

    def test_isnull(self):
        assert parse_predicate("isnull(city)") == P.IsNull(P.ColRef("city"))

    def test_diamond_operator(self):
        assert parse_predicate("a <> 1") == P.Comparison("!=", P.ColRef("a"), P.Const(1))

    def test_unicode_operators(self):
        assert parse_predicate("a ≠ 1") == P.Comparison("!=", P.ColRef("a"), P.Const(1))
        assert parse_predicate("a ≥ 1") == P.Comparison(">=", P.ColRef("a"), P.Const(1))

    def test_true_false_literals(self):
        assert parse_predicate("true") == P.TruePred()
        assert parse_predicate("false") == P.FalsePred()

    def test_arith_precedence(self):
        predicate = parse_predicate("a + 2 * 3 = 7")
        assert predicate.left == P.Arith(
            "+", P.ColRef("a"), P.Arith("*", P.Const(2), P.Const(3))
        )

    def test_unary_minus(self):
        assert parse_predicate("a > -5") == P.Comparison(">", P.ColRef("a"), P.Const(-5))
        predicate = parse_predicate("-a < 0")
        assert predicate.left == P.Arith("-", P.Const(0), P.ColRef("a"))


class TestStatementParsing:
    def test_insert_tuple_sugar(self):
        statement = parse_statement('insert(beer, ("a", "b", "c", 1.0))')
        assert statement == S.Insert("beer", E.Literal((("a", "b", "c", 1.0),)))

    def test_insert_expression(self):
        statement = parse_statement("insert(t, select(r, a > 0))")
        assert isinstance(statement.expr, E.Select)

    def test_delete_expression(self):
        statement = parse_statement("delete(t, {(1, 2)})")
        assert statement == S.Delete("t", E.Literal(((1, 2),)))

    def test_delete_where_sugar(self):
        statement = parse_statement("delete(t, where a > 0)")
        assert statement == S.Delete(
            "t", E.Select(E.RelationRef("t"), P.Comparison(">", P.ColRef("a"), P.Const(0)))
        )

    def test_delete_tuple_sugar(self):
        statement = parse_statement("delete(t, (1, 2))")
        assert statement == S.Delete("t", E.Literal(((1, 2),)))

    def test_update(self):
        statement = parse_statement("update(t, a = 1, b := b + 1, c := 0)")
        assert isinstance(statement, S.Update)
        assert statement.assignments[0] == ("b", P.Arith("+", P.ColRef("b"), P.Const(1)))
        assert statement.assignments[1] == ("c", P.Const(0))

    def test_update_without_assignment_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("update(t, a = 1)")

    def test_alarm(self):
        statement = parse_statement("alarm(select(t, a < 0))")
        assert isinstance(statement, S.Alarm)
        assert statement.message is None

    def test_alarm_with_message(self):
        statement = parse_statement('alarm(t, "constraint broken")')
        assert statement.message == "constraint broken"

    def test_abort(self):
        assert parse_statement("abort") == S.Abort(None)
        assert parse_statement('abort "reason"') == S.Abort("reason")

    def test_assignment(self):
        statement = parse_statement("temp := select(r, a > 0)")
        assert isinstance(statement, S.Assign)
        assert statement.name == "temp"

    def test_reserved_assignment_target_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("select := r")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_statement("frobnicate(t)")


class TestProgramAndTransaction:
    def test_program_multiple_statements(self):
        program = parse_program(
            """
            t := select(r, a > 0);
            insert(s, t);
            alarm(select(s, c < 0));
            """
        )
        assert len(program) == 3

    def test_empty_transaction(self):
        txn = parse_transaction("begin end")
        assert len(txn) == 0

    def test_transaction_with_comment(self):
        txn = parse_transaction(
            """
            begin
                # add one default beer
                insert(beer, ("a", "b", "c", 1.0));
            end
            """
        )
        assert len(txn) == 1

    def test_missing_end_rejected(self):
        with pytest.raises(ParseError):
            parse_transaction('begin insert(beer, ("a", "b", "c", 1.0));')

    def test_trailing_semicolon_optional(self):
        assert len(parse_transaction("begin abort end")) == 1
        assert len(parse_transaction("begin abort; end")) == 1
