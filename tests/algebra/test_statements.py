"""Statement execution semantics and trigger derivation (GetTrigS)."""

import pytest

from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra import statements as S
from repro.algebra.statements import DEL, INS, statement_update_triggers
from repro.engine.transaction import TransactionContext
from repro.errors import TransactionAborted


@pytest.fixture
def context(db):
    return TransactionContext(db)


class TestInsertDelete:
    def test_insert_literal(self, context):
        S.Insert("beer", E.Literal((("n", "ale", "heineken", 4.0),))).execute(context)
        assert ("n", "ale", "heineken", 4.0) in context.resolve("beer")

    def test_insert_from_query(self, context):
        # Copy all guinness beers under the heineken brewery.
        statement = S.Insert(
            "beer",
            E.Project(
                E.Select(
                    E.RelationRef("beer"),
                    P.Comparison("=", P.ColRef("brewery"), P.Const("guinness")),
                ),
                (
                    E.ProjectItem(P.Const("clone")),
                    E.ProjectItem(P.ColRef("type")),
                    E.ProjectItem(P.Const("heineken")),
                    E.ProjectItem(P.ColRef("alcohol")),
                ),
            ),
        )
        statement.execute(context)
        assert ("clone", "stout", "heineken", 7.5) in context.resolve("beer")

    def test_insert_self_reference_is_safe(self, context):
        # insert(R, R) must materialize before inserting (no mutation during
        # iteration); with set semantics it is a no-op.
        before = context.resolve("beer").to_set()
        S.Insert("beer", E.RelationRef("beer")).execute(context)
        assert context.resolve("beer").to_set() == before

    def test_delete_expression(self, context):
        statement = S.Delete(
            "beer",
            E.Select(
                E.RelationRef("beer"),
                P.Comparison(">", P.ColRef("alcohol"), P.Const(5.0)),
            ),
        )
        statement.execute(context)
        assert len(context.resolve("beer")) == 1

    def test_triggers(self):
        assert S.Insert("r", E.Literal(())).update_triggers() == {(INS, "r")}
        assert S.Delete("r", E.Literal(())).update_triggers() == {(DEL, "r")}


class TestUpdate:
    def test_update_is_delete_plus_insert(self, context):
        statement = S.Update(
            "beer",
            P.Comparison("=", P.ColRef("brewery"), P.Const("heineken")),
            (("alcohol", P.Arith("+", P.ColRef("alcohol"), P.Const(1.0))),),
        )
        statement.execute(context)
        assert ("pils", "lager", "heineken", 6.0) in context.resolve("beer")
        assert ("pils", "lager", "heineken", 5.0) not in context.resolve("beer")
        # Both differentials populated (Def 4.5: update = DEL + INS).
        assert ("pils", "lager", "heineken", 6.0) in context.resolve("beer@plus")
        assert ("pils", "lager", "heineken", 5.0) in context.resolve("beer@minus")

    def test_update_triggers_both(self):
        statement = S.Update("r", P.TRUE, ((1, P.Const(0)),))
        assert statement.update_triggers() == {(INS, "r"), (DEL, "r")}

    def test_update_by_position(self, context):
        statement = S.Update(
            "beer",
            P.Comparison("=", P.ColRef(1), P.Const("pils")),
            ((4, P.Const(0.0)),),
        )
        statement.execute(context)
        assert ("pils", "lager", "heineken", 0.0) in context.resolve("beer")

    def test_update_no_matches_is_noop(self, context):
        before = context.resolve("beer").to_set()
        S.Update("beer", P.FALSE, (("alcohol", P.Const(0.0)),)).execute(context)
        assert context.resolve("beer").to_set() == before


class TestAlarmAndAbort:
    def test_alarm_quiet_when_empty(self, context):
        S.Alarm(E.Select(E.RelationRef("beer"), P.FALSE)).execute(context)

    def test_alarm_aborts_when_nonempty(self, context):
        with pytest.raises(TransactionAborted) as excinfo:
            S.Alarm(E.RelationRef("beer"), message="all beer is bad").execute(context)
        assert "all beer is bad" in str(excinfo.value)
        assert "3 violating tuple(s)" in str(excinfo.value)

    def test_abort_always_raises(self, context):
        with pytest.raises(TransactionAborted):
            S.Abort().execute(context)
        with pytest.raises(TransactionAborted, match="custom"):
            S.Abort("custom").execute(context)

    def test_alarm_has_no_update_triggers(self):
        assert S.Alarm(E.RelationRef("r")).update_triggers() == frozenset()


class TestAssign:
    def test_assign_binds_temp(self, context):
        S.Assign("strong", E.Select(
            E.RelationRef("beer"),
            P.Comparison(">", P.ColRef("alcohol"), P.Const(7.0)),
        )).execute(context)
        temp = context.resolve("strong")
        assert temp.schema.name == "strong"
        assert len(temp) == 1

    def test_assign_then_read_in_next_statement(self, context):
        S.Assign("t1", E.RelationRef("beer")).execute(context)
        S.Assign("t2", E.Select(E.RelationRef("t1"), P.TRUE)).execute(context)
        assert len(context.resolve("t2")) == 3


class TestProgramTriggers:
    def test_union_over_statements(self):
        statements = [
            S.Insert("r", E.Literal(())),
            S.Delete("s", E.Literal(())),
            S.Update("t", P.TRUE, ((1, P.Const(0)),)),
            S.Alarm(E.RelationRef("r")),
        ]
        assert statement_update_triggers(statements) == {
            (INS, "r"),
            (DEL, "s"),
            (INS, "t"),
            (DEL, "t"),
        }

    def test_relations_read(self):
        statement = S.Insert("r", E.SemiJoin(E.RelationRef("a"), E.RelationRef("b"), P.TRUE))
        assert statement.relations_read() == {"a", "b"}
