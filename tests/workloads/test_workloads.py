"""Workload generators produce consistent, reproducible inputs."""

import pytest

from repro.engine import Session
from repro.workloads.beer import beer_controller, beer_database
from repro.workloads.employees import employees_controller, employees_database
from repro.workloads.generators import (
    random_database,
    random_rows,
    random_transaction,
)
from repro.workloads.section7 import (
    section7_controller,
    section7_database,
    section7_insert_batch,
    section7_transaction_text,
)


class TestBeerWorkload:
    def test_database_is_consistent(self):
        db = beer_database()
        controller = beer_controller()
        assert controller.violated_constraints(db) == []

    def test_reproducible(self):
        first = beer_database(seed=5)
        second = beer_database(seed=5)
        assert first.relation("beer").to_set() == second.relation("beer").to_set()

    def test_sizes(self):
        db = beer_database(beers=15, breweries=3)
        assert len(db.relation("beer")) == 15
        assert len(db.relation("brewery")) == 3


class TestEmployeesWorkload:
    def test_database_is_consistent(self):
        db = employees_database()
        controller = employees_controller(include_spread=True)
        assert controller.violated_constraints(db) == []

    def test_controller_subsets(self):
        controller = employees_controller(
            include_transition=False, include_aggregate=False
        )
        names = [rule.name for rule in controller.rules]
        assert names == ["emp_dept_fk", "emp_salary_domain"]


class TestSection7Workload:
    def test_sizes_match_paper(self):
        db = section7_database(pk_size=100, fk_size=1000)
        assert len(db.relation("pk")) == 100
        assert len(db.relation("fk")) == 1000

    def test_database_is_consistent(self):
        db = section7_database(pk_size=100, fk_size=500)
        controller = section7_controller()
        assert controller.violated_constraints(db) == []

    def test_batch_valid_by_default(self):
        batch = section7_insert_batch(batch_size=50, pk_size=100)
        assert all(0 <= ref < 100 for _, ref, _ in batch)
        assert all(amount >= 0 for _, _, amount in batch)

    def test_batch_with_referential_violations(self):
        batch = section7_insert_batch(
            batch_size=50, pk_size=100, violations=5, violation_kind="referential"
        )
        dangling = [row for row in batch if row[1] >= 100]
        assert len(dangling) == 5

    def test_batch_with_domain_violations(self):
        batch = section7_insert_batch(
            batch_size=50, pk_size=100, violations=5, violation_kind="domain"
        )
        negative = [row for row in batch if row[2] < 0]
        assert len(negative) == 5

    def test_transaction_text_executes(self):
        db = section7_database(pk_size=50, fk_size=100)
        controller = section7_controller()
        session = Session(db, controller)
        batch = section7_insert_batch(batch_size=20, pk_size=50, start_id=100)
        result = session.execute(section7_transaction_text(batch))
        assert result.committed
        assert len(db.relation("fk")) == 120


class TestGenerators:
    def test_random_rows_fit_schema(self):
        from repro.workloads.beer import beer_schema

        schema = beer_schema().relation("beer")
        rows = random_rows(schema, 20, seed=1)
        for row in rows:
            schema.validate_tuple(row)

    def test_random_database_populates_all_relations(self):
        from repro.workloads.employees import employees_schema

        db = random_database(employees_schema(), rows_per_relation=5, seed=2)
        assert len(db.relation("emp")) <= 5 and len(db.relation("emp")) > 0
        assert len(db.relation("dept")) > 0

    def test_random_transaction_executes(self):
        from repro.workloads.employees import employees_schema

        db = random_database(employees_schema(), rows_per_relation=5, seed=3)
        session = Session(db)
        for seed in range(10):
            txn = random_transaction(db, statements=4, seed=seed)
            result = session.execute(txn)
            assert result.committed

    def test_random_transaction_reproducible(self):
        from repro.workloads.employees import employees_schema

        db = random_database(employees_schema(), rows_per_relation=5, seed=3)
        first = random_transaction(db, statements=4, seed=9)
        second = random_transaction(db, statements=4, seed=9)
        assert first.statements == second.statements
