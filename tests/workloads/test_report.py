"""The benchmark report collector (part of the reproduction harness)."""

import pytest

from benchmarks import report


@pytest.fixture(autouse=True)
def clean_registry():
    # The registry is global by design (pytest terminal hook reads it);
    # isolate these tests from benchmark runs and each other.
    saved = dict(report._REGISTRY)
    report.reset()
    yield
    report.reset()
    report._REGISTRY.update(saved)


class TestReport:
    def test_experiment_and_rows(self):
        report.experiment("X1", "A title", ["col_a", "col_b"])
        report.record("X1", 1, "foo")
        report.record("X1", 12345, 0.5)
        rendered = report.render_all()
        assert "== X1: A title ==" in rendered
        assert "col_a" in rendered and "col_b" in rendered
        assert "12,345" in rendered  # thousands separator
        assert "0.500" in rendered  # float formatting

    def test_small_floats_use_scientific(self):
        report.experiment("X2", "t", ["v"])
        report.record("X2", 0.000012)
        assert "1.20e-05" in report.render_all()

    def test_notes_appended(self):
        report.experiment("X3", "t", ["v"])
        report.record("X3", 1)
        report.note("X3", "shape holds")
        assert "note: shape holds" in report.render_all()

    def test_declaring_twice_is_idempotent(self):
        report.experiment("X4", "t", ["v"])
        report.record("X4", 1)
        report.experiment("X4", "different title ignored", ["other"])
        rendered = report.render_all()
        assert "t ==" in rendered
        assert "different title" not in rendered

    def test_empty_experiments_not_rendered(self):
        report.experiment("X5", "empty", ["v"])
        assert report.render_all() == ""

    def test_columns_aligned(self):
        report.experiment("X6", "t", ["first", "x"])
        report.record("X6", "short", 1)
        report.record("X6", "a much longer cell", 2)
        lines = report.render_all().splitlines()
        header = lines[1]
        rows = lines[3:5]
        position = header.index("x")
        for row in rows:
            # The second column starts at the same offset in every row.
            assert row[position - 2 : position] == "  "
