"""Unit tests for the parallel substrate: fragmentation, nodes, cost model,
enforcement strategies."""

import pytest

from repro.algebra import predicates as P
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.types import INT, STRING
from repro.errors import FragmentationError
from repro.parallel import (
    CostModel,
    FragmentedDatabase,
    FragmentedRelation,
    HashFragmentation,
    NodeStats,
    POOMA_1992,
    ParallelEnforcer,
    RangeFragmentation,
    RoundRobinFragmentation,
    Strategy,
)
from repro.parallel.cost_model import MODERN_2026


@pytest.fixture
def schema():
    return DatabaseSchema(
        [
            RelationSchema("fk", [("id", INT), ("ref", INT)]),
            RelationSchema("pk", [("key", INT), ("name", STRING)]),
        ]
    )


@pytest.fixture
def database(schema):
    db = Database(schema)
    db.load("pk", [(k, f"k{k}") for k in range(10)])
    db.load("fk", [(i, i % 10) for i in range(50)] + [(100, 77)])
    return db


@pytest.fixture
def fragmented(database):
    return FragmentedDatabase.from_database(
        database,
        {
            "fk": HashFragmentation("ref", 4),
            "pk": HashFragmentation("key", 4),
        },
        nodes=4,
    )


class TestSchemes:
    def test_hash_deterministic(self, schema):
        scheme = HashFragmentation("ref", 4)
        row = (1, 7)
        index = scheme.fragment_of(row, schema.relation("fk"))
        assert index == scheme.fragment_of(row, schema.relation("fk"))
        assert 0 <= index < 4

    def test_hash_compatibility(self):
        a = HashFragmentation("ref", 4)
        b = HashFragmentation("key", 4)
        assert a.is_compatible_join(b, "ref", "key")
        assert not a.is_compatible_join(b, "id", "key")
        assert not a.is_compatible_join(HashFragmentation("key", 8), "ref", "key")
        assert not a.is_compatible_join(RoundRobinFragmentation(4), "ref", "key")

    def test_range_boundaries_sorted(self):
        with pytest.raises(FragmentationError):
            RangeFragmentation("ref", [5, 2])

    def test_range_assignment(self, schema):
        scheme = RangeFragmentation("ref", [3, 6])
        fk = schema.relation("fk")
        assert scheme.fragment_of((0, 1), fk) == 0
        assert scheme.fragment_of((0, 3), fk) == 1
        assert scheme.fragment_of((0, 9), fk) == 2

    def test_round_robin_balances(self, schema):
        relation = FragmentedRelation(schema.relation("fk"), RoundRobinFragmentation(4))
        relation.load([(i, i) for i in range(40)])
        sizes = [len(fragment) for fragment in relation.fragments]
        assert sizes == [10, 10, 10, 10]
        assert relation.skew() == 1.0

    def test_zero_fragments_rejected(self):
        with pytest.raises(FragmentationError):
            RoundRobinFragmentation(0)


class TestFragmentedDatabase:
    def test_scheme_node_mismatch(self, schema):
        fdb = FragmentedDatabase(schema, nodes=4)
        with pytest.raises(FragmentationError):
            fdb.fragment_relation("fk", HashFragmentation("ref", 2))

    def test_merged_reconstructs(self, database, fragmented):
        assert fragmented.relation("fk").merged().to_set() == database.relation(
            "fk"
        ).to_set()

    def test_broadcast_counts_traffic(self, fragmented):
        stats = {node: NodeStats() for node in range(4)}
        merged = fragmented.broadcast(fragmented.relation("pk"), stats)
        assert len(merged) == 10
        total_sent = sum(s.tuples_sent for s in stats.values())
        assert total_sent == 10 * 3  # each tuple to the 3 other nodes

    def test_repartition_preserves_contents(self, fragmented):
        stats = {node: NodeStats() for node in range(4)}
        result = fragmented.repartition(
            fragmented.relation("fk"), HashFragmentation("id", 4), stats
        )
        assert result.merged().to_set() == fragmented.relation("fk").merged().to_set()

    def test_repartition_same_scheme_ships_nothing(self, fragmented):
        stats = {node: NodeStats() for node in range(4)}
        fragmented.repartition(
            fragmented.relation("fk"), HashFragmentation("ref", 4), stats
        )
        assert sum(s.tuples_sent for s in stats.values()) == 0


class TestCostModel:
    def test_node_time_components(self):
        model = CostModel(
            scan_per_tuple=1.0,
            build_per_tuple=2.0,
            probe_per_tuple=3.0,
            transfer_per_tuple=0.5,
            message_latency=10.0,
        )
        stats = NodeStats(tuples_processed=4, tuples_sent=2, messages_sent=1)
        assert model.node_time(stats) == 4 * 1.0 + 2 * 0.5 + 10.0

    def test_parallel_time_is_makespan(self):
        model = POOMA_1992
        slow = NodeStats(tuples_processed=1000)
        fast = NodeStats(tuples_processed=10)
        makespan = model.parallel_time({0: slow, 1: fast})
        assert makespan == model.startup + model.node_time(slow)

    def test_poma_calibration_anchors(self):
        """The defaults land on Section 7's two published bounds."""
        # Domain check: scan 5000 tuples over 8 nodes -> < 1 second.
        domain = POOMA_1992.startup + (5000 / 8) * POOMA_1992.scan_per_tuple
        assert domain < 1.0
        # Referential: build 5000 keys + probe 5000 inserts over 8 nodes
        # -> within 3 seconds.
        referential = POOMA_1992.startup + (
            (5000 / 8) * POOMA_1992.build_per_tuple
            + (5000 / 8) * POOMA_1992.probe_per_tuple
        )
        assert referential < 3.0
        assert referential > domain

    def test_modern_model_much_faster(self):
        stats = NodeStats(tuples_processed=100000)
        assert MODERN_2026.node_time(stats) < POOMA_1992.node_time(stats) / 1000


class TestEnforcer:
    def test_local_requires_compatibility(self, database):
        fdb = FragmentedDatabase.from_database(
            database,
            {
                "fk": RoundRobinFragmentation(4),
                "pk": HashFragmentation("key", 4),
            },
            nodes=4,
        )
        enforcer = ParallelEnforcer(fdb)
        with pytest.raises(FragmentationError):
            enforcer.referential_check("fk", "ref", "pk", "key", Strategy.LOCAL)

    def test_auto_picks_local_when_compatible(self, fragmented):
        enforcer = ParallelEnforcer(fragmented)
        report = enforcer.referential_check("fk", "ref", "pk", "key")
        assert report.strategy is Strategy.LOCAL
        assert report.violations == 1  # the (100, 77) dangling row
        assert report.sample == [(100, 77)]

    def test_auto_picks_repartition_otherwise(self, database):
        fdb = FragmentedDatabase.from_database(
            database,
            {
                "fk": RoundRobinFragmentation(4),
                "pk": HashFragmentation("key", 4),
            },
            nodes=4,
        )
        enforcer = ParallelEnforcer(fdb)
        report = enforcer.referential_check("fk", "ref", "pk", "key")
        assert report.strategy is Strategy.REPARTITION
        assert report.violations == 1
        assert report.tuples_shipped > 0

    def test_broadcast_ships_target_everywhere(self, fragmented):
        enforcer = ParallelEnforcer(fragmented)
        report = enforcer.referential_check(
            "fk", "ref", "pk", "key", Strategy.BROADCAST
        )
        assert report.violations == 1
        assert report.tuples_shipped == 10 * 3

    def test_local_cheaper_than_broadcast(self, fragmented):
        enforcer = ParallelEnforcer(fragmented)
        local = enforcer.referential_check("fk", "ref", "pk", "key", Strategy.LOCAL)
        broadcast = enforcer.referential_check(
            "fk", "ref", "pk", "key", Strategy.BROADCAST
        )
        assert local.simulated_seconds < broadcast.simulated_seconds

    def test_domain_check(self, fragmented):
        enforcer = ParallelEnforcer(fragmented)
        report = enforcer.domain_check(
            "fk", P.Comparison(">", P.ColRef("ref"), P.Const(50))
        )
        assert report.violations == 1  # ref = 77
        assert report.check == "domain"

    def test_exclusion_check(self, fragmented):
        enforcer = ParallelEnforcer(fragmented)
        report = enforcer.exclusion_check("fk", "ref", "pk", "key")
        # Every fk row except the dangling one matches a pk: 50 violations.
        assert report.violations == 50

    def test_more_nodes_reduce_simulated_time(self, database):
        times = []
        for nodes in (1, 2, 4, 8):
            fdb = FragmentedDatabase.from_database(
                database,
                {
                    "fk": HashFragmentation("ref", nodes),
                    "pk": HashFragmentation("key", nodes),
                },
                nodes=nodes,
            )
            report = ParallelEnforcer(fdb).referential_check(
                "fk", "ref", "pk", "key"
            )
            times.append(report.simulated_seconds)
        assert times == sorted(times, reverse=True)

    def test_report_ok_flag(self, fragmented):
        enforcer = ParallelEnforcer(fragmented)
        clean = enforcer.domain_check("fk", P.Comparison("<", P.ColRef("ref"), P.Const(0)))
        assert clean.ok and clean.violations == 0


class TestCommitPricing:
    def test_commit_time_prices_by_delta_not_relation_size(self, database):
        from repro.parallel.cost_model import predict_commit_time

        small = predict_commit_time({"fk": 10}, model=MODERN_2026)
        # A delta of the same size against an arbitrarily larger relation
        # prices identically: write cost depends only on |Δ|.
        assert small == predict_commit_time(
            {"fk": 10}, model=MODERN_2026, database=database
        )
        assert predict_commit_time({"fk": 1000}, model=MODERN_2026) > small

    def test_commit_time_charges_built_index_maintenance(self, database):
        from repro.parallel.cost_model import predict_commit_time

        bare = predict_commit_time(
            {"fk": 100}, model=MODERN_2026, database=database
        )
        database.create_index("fk", ["ref"])
        indexed = predict_commit_time(
            {"fk": 100}, model=MODERN_2026, database=database
        )
        assert indexed > bare
