"""Translated rule programs enforced on the fragmented system."""

import pytest

from repro.calculus.parser import parse_constraint
from repro.core.optimization import differential_programs
from repro.core.rules import IntegrityRule
from repro.core.translation import trans_r
from repro.core.triggers import INS
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.types import INT
from repro.errors import FragmentationError
from repro.parallel import FragmentedDatabase, HashFragmentation
from repro.parallel.bridge import ParallelRuleEnforcer
from repro.parallel.fragmentation import FragmentedRelation


@pytest.fixture
def schema():
    return DatabaseSchema(
        [
            RelationSchema("fk", [("id", INT), ("ref", INT), ("amount", INT)]),
            RelationSchema("pk", [("key", INT)]),
        ]
    )


@pytest.fixture
def fragmented(schema):
    db = Database(schema)
    db.load("pk", [(k,) for k in range(10)])
    db.load("fk", [(i, i % 10, i * 10) for i in range(40)] + [(99, 55, -5)])
    return FragmentedDatabase.from_database(
        db,
        {
            "fk": HashFragmentation("ref", 4),
            "pk": HashFragmentation("key", 4),
        },
        nodes=4,
    )


class TestFullPrograms:
    def test_domain_rule(self, schema, fragmented):
        rule = IntegrityRule(
            parse_constraint("(forall x in fk)(x.amount >= 0)"), name="dom"
        )
        program = trans_r(rule, schema)
        enforcer = ParallelRuleEnforcer(fragmented)
        reports = enforcer.enforce_program(program)
        assert len(reports) == 1
        assert reports[0].check == "domain"
        assert reports[0].violations == 1  # the (99, 55, -5) row

    def test_referential_rule(self, schema, fragmented):
        rule = IntegrityRule(
            parse_constraint("(forall x in fk)(exists y in pk)(x.ref = y.key)"),
            name="fk_rule",
        )
        program = trans_r(rule, schema)
        [report] = ParallelRuleEnforcer(fragmented).enforce_program(program)
        assert report.check == "referential"
        assert report.violations == 1  # ref 55 dangles

    def test_exclusion_rule(self, schema, fragmented):
        rule = IntegrityRule(
            parse_constraint("(forall x in fk)(forall y in pk)(x.ref != y.key)"),
            name="excl",
        )
        program = trans_r(rule, schema)
        [report] = ParallelRuleEnforcer(fragmented).enforce_program(program)
        assert report.check == "exclusion"
        assert report.violations == 40  # all non-dangling fk rows match


class TestDifferentialPrograms:
    def test_plus_differential_enforced(self, schema, fragmented):
        rule = IntegrityRule(
            parse_constraint("(forall x in fk)(exists y in pk)(x.ref = y.key)"),
            name="fk_rule",
        )
        program = trans_r(rule, schema)
        variants = differential_programs(rule, program)
        plus_program = variants[(INS, "fk")]

        batch = FragmentedRelation(
            schema.relation("fk"), HashFragmentation("ref", 4)
        )
        batch.load([(200, 3, 10), (201, 77, 10)])  # one dangling
        enforcer = ParallelRuleEnforcer(fragmented)
        enforcer.bind_auxiliary("fk@plus", batch)
        [report] = enforcer.enforce_program(plus_program)
        assert report.violations == 1

    def test_delete_path_differential(self, schema, fragmented):
        """(fk semijoin pk@minus) antijoin pk — the DEL(pk) variant."""
        from repro.core.triggers import DEL

        rule = IntegrityRule(
            parse_constraint("(forall x in fk)(exists y in pk)(x.ref = y.key)"),
            name="fk_rule",
        )
        program = trans_r(rule, schema)
        variants = differential_programs(rule, program)
        del_program = variants[(DEL, "pk")]

        # Simulate deleting key 3 from pk: the minus-differential holds it,
        # and pk itself no longer contains it.
        minus = FragmentedRelation(
            schema.relation("pk"), HashFragmentation("key", 4)
        )
        minus.load([(3,)])
        for fragment in fragmented.relation("pk").fragments:
            fragment.delete((3,))
        enforcer = ParallelRuleEnforcer(fragmented)
        enforcer.bind_auxiliary("pk@minus", minus)
        [report] = enforcer.enforce_program(del_program)
        # fk rows referencing key 3: ids 3, 13, 23, 33 -> 4 violations.
        assert report.violations == 4

    def test_delete_path_no_affected_referers(self, schema, fragmented):
        from repro.core.triggers import DEL

        rule = IntegrityRule(
            parse_constraint("(forall x in fk)(exists y in pk)(x.ref = y.key)"),
            name="fk_rule",
        )
        variants = differential_programs(rule, trans_r(rule, schema))
        minus = FragmentedRelation(
            schema.relation("pk"), HashFragmentation("key", 4)
        )
        minus.load([(77,)])  # nothing references key 77
        enforcer = ParallelRuleEnforcer(fragmented)
        enforcer.bind_auxiliary("pk@minus", minus)
        [report] = enforcer.enforce_program(variants[(DEL, "pk")])
        assert report.violations == 0

    def test_unbound_auxiliary_rejected(self, schema, fragmented):
        rule = IntegrityRule(
            parse_constraint("(forall x in fk)(x.amount >= 0)"), name="dom"
        )
        program = trans_r(rule, schema)
        variants = differential_programs(rule, program)
        plus_program = variants[(INS, "fk")]
        enforcer = ParallelRuleEnforcer(fragmented)
        with pytest.raises(FragmentationError, match="not bound"):
            enforcer.enforce_program(plus_program)


class TestCommitLogDeltas:
    """Plain-Relation deltas (a coordinator-held commit record) ship per
    the per-operand movement decision instead of requiring the caller to
    pre-fragment them."""

    def test_plain_delta_repartitions_on_join_attribute(self, schema, fragmented):
        from repro.engine import Relation
        from repro.parallel import Strategy

        rule = IntegrityRule(
            parse_constraint("(forall x in fk)(exists y in pk)(x.ref = y.key)"),
            name="fk_rule",
        )
        variants = differential_programs(rule, trans_r(rule, schema))
        delta = Relation(
            schema.relation("fk"), [(200, 3, 10), (201, 77, 10)]
        )
        enforcer = ParallelRuleEnforcer(fragmented)
        enforcer.bind_auxiliary("fk@plus", delta)
        [report] = enforcer.enforce_program(variants[(INS, "fk")])
        assert report.violations == 1  # ref 77 dangles
        assert report.placements["fk@plus"] is Strategy.REPARTITION
        assert report.placements["pk"] is Strategy.LOCAL
        assert report.tuples_shipped == len(delta)

    def test_plain_domain_delta_partitions_without_attribute(self, schema, fragmented):
        from repro.engine import Relation
        from repro.parallel import Strategy

        rule = IntegrityRule(
            parse_constraint("(forall x in fk)(x.amount >= 0)"), name="dom"
        )
        variants = differential_programs(rule, trans_r(rule, schema))
        delta = Relation(schema.relation("fk"), [(300, 1, -4), (301, 2, 4)])
        enforcer = ParallelRuleEnforcer(fragmented)
        enforcer.bind_auxiliary("fk@plus", delta)
        [report] = enforcer.enforce_program(variants[(INS, "fk")])
        assert report.violations == 1
        assert report.placements["fk@plus"] is Strategy.REPARTITION

    def test_forced_broadcast_never_replicates_the_carrier(self, schema, fragmented):
        from repro.engine import Relation
        from repro.parallel import Strategy

        rule = IntegrityRule(
            parse_constraint("(forall x in fk)(exists y in pk)(x.ref = y.key)"),
            name="fk_rule",
        )
        variants = differential_programs(rule, trans_r(rule, schema))
        delta = Relation(schema.relation("fk"), [(200, 3, 10), (201, 77, 10)])
        enforcer = ParallelRuleEnforcer(fragmented)
        enforcer.bind_auxiliary("fk@plus", delta)
        [report] = enforcer.enforce_program(
            variants[(INS, "fk")], strategy=Strategy.BROADCAST
        )
        # The probe-side delta (the carrier) partitions — replicating it
        # would count every violation once per node — while the forced
        # strategy broadcasts the non-carrier pk (each node ships its
        # local fragment to the 3 others).
        assert report.violations == 1  # ref 77 dangles, counted once
        assert report.placements["fk@plus"] is Strategy.REPARTITION
        assert report.placements["pk"] is Strategy.BROADCAST
        assert report.tuples_shipped == len(delta) + 10 * 3

    def test_forced_local_rejects_plain_delta(self, schema, fragmented):
        from repro.engine import Relation
        from repro.parallel import Strategy

        rule = IntegrityRule(
            parse_constraint("(forall x in fk)(exists y in pk)(x.ref = y.key)"),
            name="fk_rule",
        )
        variants = differential_programs(rule, trans_r(rule, schema))
        enforcer = ParallelRuleEnforcer(fragmented)
        enforcer.bind_auxiliary(
            "fk@plus", Relation(schema.relation("fk"), [(200, 3, 10)])
        )
        with pytest.raises(FragmentationError, match="not fragmented"):
            enforcer.enforce_program(
                variants[(INS, "fk")], strategy=Strategy.LOCAL
            )


class TestUnsupportedShapes:
    def test_aggregate_alarm_rejected(self, schema, fragmented):
        rule = IntegrityRule(parse_constraint("CNT(fk) <= 100"), name="cap")
        program = trans_r(rule, schema)
        with pytest.raises(FragmentationError, match="unsupported alarm shape"):
            ParallelRuleEnforcer(fragmented).enforce_program(program)

    def test_non_alarm_statement_rejected(self, fragmented):
        from repro.algebra.parser import parse_program

        program = parse_program("insert(fk, (1, 2, 3))")
        with pytest.raises(FragmentationError, match="alarm programs only"):
            ParallelRuleEnforcer(fragmented).enforce_program(program)

    def test_matches_sequential_verdict(self, schema, fragmented):
        """Parallel enforcement of the translated program finds exactly the
        violations the sequential engine's alarm would."""
        from repro.algebra.evaluation import StandaloneContext

        rule = IntegrityRule(
            parse_constraint("(forall x in fk)(exists y in pk)(x.ref = y.key)"),
            name="fk_rule",
        )
        program = trans_r(rule, schema)
        [report] = ParallelRuleEnforcer(fragmented).enforce_program(program)
        sequential_ctx = StandaloneContext(
            {
                "fk": fragmented.relation("fk").merged(),
                "pk": fragmented.relation("pk").merged(),
            }
        )
        sequential = program.statements[0].expr.evaluate(sequential_ctx)
        assert report.violations == len(sequential)
