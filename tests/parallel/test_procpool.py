"""Process-backed fragment workers: pool-vs-inline enforcement parity."""

import pytest

from repro.algebra import predicates as P
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.types import INT, STRING
from repro.errors import FragmentationError
from repro.parallel import (
    FragmentedDatabase,
    HashFragmentation,
    ParallelEnforcer,
    ProcessFragmentPool,
    RoundRobinFragmentation,
    Strategy,
)


@pytest.fixture
def schema():
    return DatabaseSchema(
        [
            RelationSchema("fk", [("id", INT), ("ref", INT)]),
            RelationSchema("pk", [("key", INT), ("name", STRING)]),
        ]
    )


@pytest.fixture
def database(schema):
    db = Database(schema)
    db.load("pk", [(k, f"k{k}") for k in range(10)])
    db.load("fk", [(i, i % 10) for i in range(50)] + [(100, 77)])
    return db


@pytest.fixture
def fragmented(database):
    return FragmentedDatabase.from_database(
        database,
        {
            "fk": HashFragmentation("ref", 4),
            "pk": HashFragmentation("key", 4),
        },
        nodes=4,
    )


@pytest.fixture
def pool(fragmented):
    with ProcessFragmentPool(nodes=4) as pool:
        yield pool


def _strip_timing(report):
    return (
        report.check,
        report.strategy,
        report.nodes,
        report.violations,
        report.sample,
        report.tuples_shipped,
        report.placements,
    )


class TestPoolParity:
    """The pool arm must reproduce inline verdicts and placements exactly."""

    @pytest.mark.parametrize(
        "strategy", [Strategy.AUTO, Strategy.LOCAL, Strategy.BROADCAST,
                     Strategy.REPARTITION]
    )
    def test_referential_parity(self, fragmented, pool, strategy):
        inline = ParallelEnforcer(fragmented).referential_check(
            "fk", "ref", "pk", "key", strategy
        )
        pooled = ParallelEnforcer(fragmented, pool=pool).referential_check(
            "fk", "ref", "pk", "key", strategy
        )
        assert _strip_timing(pooled) == _strip_timing(inline)
        assert inline.executor == "inline" and pooled.executor == "process"

    def test_domain_parity(self, fragmented, pool):
        predicate = P.Comparison(">", P.ColRef("ref"), P.Const(50))
        inline = ParallelEnforcer(fragmented).domain_check("fk", predicate)
        pooled = ParallelEnforcer(fragmented, pool=pool).domain_check(
            "fk", predicate
        )
        assert _strip_timing(pooled) == _strip_timing(inline)
        assert pooled.violations == 1 and pooled.sample == [(100, 77)]

    def test_exclusion_parity(self, fragmented, pool):
        inline = ParallelEnforcer(fragmented).exclusion_check(
            "fk", "ref", "pk", "key"
        )
        pooled = ParallelEnforcer(fragmented, pool=pool).exclusion_check(
            "fk", "ref", "pk", "key"
        )
        assert _strip_timing(pooled) == _strip_timing(inline)
        assert pooled.violations == 50

    def test_repartition_parity_on_incompatible_schemes(self, database, pool):
        fdb = FragmentedDatabase.from_database(
            database,
            {
                "fk": RoundRobinFragmentation(4),
                "pk": HashFragmentation("key", 4),
            },
            nodes=4,
        )
        inline = ParallelEnforcer(fdb).referential_check(
            "fk", "ref", "pk", "key"
        )
        pooled = ParallelEnforcer(fdb, pool=pool).referential_check(
            "fk", "ref", "pk", "key"
        )
        assert _strip_timing(pooled) == _strip_timing(inline)
        assert pooled.strategy is Strategy.REPARTITION


class TestByteAccounting:
    def test_local_check_ships_no_bytes(self, fragmented, pool):
        report = ParallelEnforcer(fragmented, pool=pool).referential_check(
            "fk", "ref", "pk", "key", Strategy.LOCAL
        )
        # Both operands are resident base fragments: nothing moves.
        assert report.bytes_shipped == 0
        assert report.tuples_shipped == 0

    def test_broadcast_ships_one_blob_per_node(self, fragmented, pool):
        enforcer = ParallelEnforcer(fragmented, pool=pool)
        report = enforcer.referential_check(
            "fk", "ref", "pk", "key", Strategy.BROADCAST
        )
        # The merged pk relation replicates to all 4 nodes as one blob.
        assert report.bytes_shipped > 0
        assert report.bytes_shipped % 4 == 0

    def test_inline_enforcer_reports_zero_bytes(self, fragmented):
        report = ParallelEnforcer(fragmented).referential_check(
            "fk", "ref", "pk", "key", Strategy.BROADCAST
        )
        assert report.executor == "inline"
        assert report.bytes_shipped == 0

    def test_base_residency_counted_as_install_not_shipment(
        self, fragmented, pool
    ):
        ParallelEnforcer(fragmented, pool=pool)
        assert pool.installed == {"fk", "pk"}
        assert pool.bytes_installed > 0


class TestPoolLifecycle:
    def test_node_count_mismatch_rejected(self, fragmented):
        with ProcessFragmentPool(nodes=2) as pool:
            with pytest.raises(FragmentationError, match="2 workers"):
                ParallelEnforcer(fragmented, pool=pool)

    def test_zero_nodes_rejected(self):
        with pytest.raises(FragmentationError):
            ProcessFragmentPool(nodes=0)

    def test_install_requires_one_fragment_per_node(self, fragmented):
        with ProcessFragmentPool(nodes=4) as pool:
            with pytest.raises(FragmentationError, match="fragments"):
                pool.install(
                    "fk", fragmented.relation("fk").fragments[:2]
                )

    def test_bindings_cleared_between_checks(self, fragmented, pool):
        enforcer = ParallelEnforcer(fragmented, pool=pool)
        enforcer.referential_check(
            "fk", "ref", "pk", "key", Strategy.BROADCAST
        )
        # A second check after the broadcast must not see stale bindings:
        # LOCAL resolves both operands from resident fragments only.
        report = enforcer.referential_check(
            "fk", "ref", "pk", "key", Strategy.LOCAL
        )
        assert report.violations == 1
        assert report.bytes_shipped == 0

    def test_close_is_idempotent(self, fragmented):
        pool = ProcessFragmentPool(nodes=2)
        pool.close()
        pool.close()

    def test_worker_error_surfaces_with_node_id(self, schema, pool):
        # An expression over a name no worker owns fails remotely on every
        # node; the coordinator must surface it, not hang.
        from repro.algebra import expressions as E

        with pytest.raises(FragmentationError, match="node 0"):
            pool.execute(E.RelationRef("no_such_relation"))

    def test_pool_reusable_after_worker_error(self, fragmented, pool):
        from repro.algebra import expressions as E

        with pytest.raises(FragmentationError):
            pool.execute(E.RelationRef("no_such_relation"))
        report = ParallelEnforcer(fragmented, pool=pool).referential_check(
            "fk", "ref", "pk", "key"
        )
        assert report.violations == 1


class TestSpawnStartMethod:
    def test_parity_under_spawn(self, fragmented):
        # spawn re-imports the worker module from scratch: the payload
        # path must carry everything (nothing inherited via fork).
        with ProcessFragmentPool(nodes=4, start_method="spawn") as pool:
            report = ParallelEnforcer(fragmented, pool=pool).referential_check(
                "fk", "ref", "pk", "key"
            )
            assert report.violations == 1
            assert report.sample == [(100, 77)]
            assert report.executor == "process"
