"""The interactive shell, driven through injected streams."""

import io

import pytest

from repro.cli import Shell


def run_shell(script: str) -> str:
    stdin = io.StringIO(script)
    stdout = io.StringIO()
    shell = Shell(stdin=stdin, stdout=stdout, interactive=False)
    shell.run()
    return stdout.getvalue()


BEER_SETUP = """\
relation beer(name string, type string, brewery string, alcohol float)
relation brewery(name string, city string null, country string null)
load brewery ("heineken", "amsterdam", "nl")
constraint R1 (forall x in beer)(x.alcohol >= 0)
"""


class TestBasics:
    def test_ddl_and_load(self):
        output = run_shell(BEER_SETUP + "show db\nexit\n")
        assert "created relation beer" in output
        assert "loaded 1 row(s) into brewery" in output
        assert "brewery[1]" in output

    def test_constraint_registration_reports_triggers(self):
        output = run_shell(BEER_SETUP + "exit\n")
        assert "registered R1 (aborting), WHEN INS(beer)" in output

    def test_show_rules(self):
        output = run_shell(BEER_SETUP + "show rules\nexit\n")
        assert "IF NOT (forall x in beer)(x.alcohol >= 0)" in output

    def test_show_schema(self):
        output = run_shell(BEER_SETUP + "show schema\nexit\n")
        assert "relation brewery(name string, city string null" in output

    def test_help(self):
        output = run_shell("help\nexit\n")
        assert "begin ... end" in output

    def test_unknown_command(self):
        output = run_shell("frobnicate\nexit\n")
        assert "unknown command 'frobnicate'" in output

    def test_comments_and_blank_lines_ignored(self):
        output = run_shell("# a comment\n\nexit\n")
        assert "error" not in output


class TestTransactions:
    def test_commit(self):
        script = BEER_SETUP + (
            'begin insert(beer, ("pils", "lager", "heineken", 5.0)); end\n'
            "query beer\nexit\n"
        )
        output = run_shell(script)
        assert "committed (t=1; +1/-0 tuples)" in output
        assert "('pils', 'lager', 'heineken', 5.0)" in output

    def test_abort(self):
        script = BEER_SETUP + (
            'begin insert(beer, ("bad", "ale", "heineken", -1.0)); end\n'
            "query beer\nexit\n"
        )
        output = run_shell(script)
        assert "aborted: R1" in output
        assert "(0 row(s))" in output

    def test_multiline_transaction(self):
        script = BEER_SETUP + (
            "begin\n"
            '    insert(beer, ("pils", "lager", "heineken", 5.0));\n'
            '    insert(beer, ("extra", "stout", "heineken", 7.0));\n'
            "end\n"
            "exit\n"
        )
        output = run_shell(script)
        assert "committed (t=1; +2/-0 tuples)" in output

    def test_explain_shows_modified_form(self):
        script = BEER_SETUP + (
            'explain begin insert(beer, ("p", "l", "h", 5.0)); end\n'
            "exit\n"
        )
        output = run_shell(script)
        assert "alarm(select(beer@plus, alcohol < 0)" in output
        assert "rules: R1" in output

    def test_compensating_rule_via_shell(self):
        script = BEER_SETUP + (
            "rule RULE R2 IF NOT (forall x in beer)(exists y in brewery)"
            "(x.brewery = y.name) THEN temp := diff(project(beer, [brewery]), "
            "project(brewery, [name])); insert(brewery, project(temp, "
            "[brewery as name, null, null]))\n"
            'begin insert(beer, ("new", "ale", "ghost", 5.0)); end\n'
            "query brewery\n"
            "exit\n"
        )
        output = run_shell(script)
        assert "registered R2 (compensating)" in output
        assert "('ghost', NULL, NULL)" in output


class TestChecksAndAudit:
    def test_check_satisfied_and_violated(self):
        script = BEER_SETUP + (
            "check CNT(beer) = 0\n"
            "check CNT(beer) = 5\n"
            "exit\n"
        )
        output = run_shell(script)
        assert "satisfied" in output
        assert "VIOLATED" in output

    def test_audit_clean(self):
        output = run_shell(BEER_SETUP + "audit\nexit\n")
        assert "all constraints satisfied" in output

    def test_audit_detects_loaded_violations(self):
        # 'load' bypasses integrity control; audit exposes the damage.
        script = BEER_SETUP + (
            'load beer ("rogue", "ale", "heineken", -9.0)\n'
            "audit\nexit\n"
        )
        output = run_shell(script)
        assert "VIOLATED: R1" in output

    def test_show_graph(self):
        output = run_shell(BEER_SETUP + "show graph\nexit\n")
        assert "TriggeringGraph(1 rules, 0 edges, acyclic)" in output


def run_durable_shell(script: str, directory) -> str:
    stdin = io.StringIO(script)
    stdout = io.StringIO()
    shell = Shell(
        stdin=stdin, stdout=stdout, interactive=False, durable=str(directory)
    )
    shell.run()
    return stdout.getvalue()


class TestDurability:
    COMMIT = 'begin insert(beer, ("pils", "lager", "heineken", 5.0)); end\n'

    def test_shell_round_trip_resumes_committed_history(self, tmp_path):
        first = run_durable_shell(BEER_SETUP + self.COMMIT + "exit\n", tmp_path)
        assert "committed (t=1; +1/-0 tuples)" in first
        second = run_durable_shell("query beer\nquery brewery\nexit\n", tmp_path)
        assert "recovered RecoveryReport" in second
        assert "('pils', 'lager', 'heineken', 5.0)" in second
        # 'load'ed rows bypass the commit path but survive via the
        # checkpoint the shell writes on exit.
        assert "('heineken', 'amsterdam', 'nl')" in second

    def test_shell_verify_subcommand(self, tmp_path):
        output = run_durable_shell(
            BEER_SETUP + self.COMMIT + "audit-log verify\nexit\n", tmp_path
        )
        assert "hash chain OK" in output

    def test_shell_verify_without_durable_log(self):
        output = run_shell("audit-log verify\nexit\n")
        assert "no durable log attached" in output

    def test_recover_entry_point(self, tmp_path, capsys):
        from repro.cli import main

        run_durable_shell(BEER_SETUP + self.COMMIT + "exit\n", tmp_path)
        assert main(["recover", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "RecoveryReport" in out
        assert "beer: 1 row(s)" in out
        assert "brewery: 1 row(s)" in out

    def test_recover_usage_errors(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["recover"]) == 2
        assert main(["recover", str(tmp_path), "--to", "x"]) == 2

    def test_recover_unusable_log_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["recover", str(tmp_path / "nothing-here")]) == 1
        assert "recover:" in capsys.readouterr().err

    def test_verify_entry_point_clean(self, tmp_path, capsys):
        from repro.cli import main

        run_durable_shell(BEER_SETUP + self.COMMIT + "exit\n", tmp_path)
        assert main(["audit-log", "--verify", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "hash chain OK" in out
        assert "segment(s)" in out

    def test_verify_reports_broken_link_with_location(self, tmp_path, capsys):
        from repro.cli import main
        from repro.engine import Database, DatabaseSchema, RelationSchema, Session
        from repro.engine.types import INT
        from repro.engine.wal import HEADER_SIZE, WriteAheadLog

        schema = DatabaseSchema(
            [RelationSchema("r", [("a", INT), ("b", INT)])]
        )
        database = Database(schema)
        # Tiny segments force rotation, so the damage lands in a *sealed*
        # segment — silent corruption, not repairable crash residue.
        database.attach_wal(WriteAheadLog(tmp_path, segment_bytes=256))
        session = Session(database)
        for i in range(8):
            assert session.execute(f"begin insert(r, ({i}, {i})); end").committed
        database.detach_wal()
        sealed = sorted(p for p in tmp_path.iterdir() if p.suffix == ".wal")[0]
        data = bytearray(sealed.read_bytes())
        data[HEADER_SIZE + 16] ^= 0x10
        sealed.write_bytes(bytes(data))
        assert main(["audit-log", "--verify", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "hash chain BROKEN at" in out
        assert sealed.name in out
        assert "@ byte" in out


class TestErrors:
    def test_parse_error_reported_not_fatal(self):
        output = run_shell("query select(\nshow db\nexit\n")
        assert "error:" in output
        assert "Database(t=0" in output  # shell kept running

    def test_duplicate_rule_reported(self):
        script = BEER_SETUP + (
            "constraint R1 (forall x in beer)(x.alcohol >= 0)\nexit\n"
        )
        output = run_shell(script)
        assert "error:" in output and "already registered" in output

    def test_unknown_relation_in_constraint(self):
        output = run_shell("constraint c (forall x in ghost)(x.a > 0)\nexit\n")
        assert "error:" in output


class TestAuditPipeline:
    SETUP = (
        "relation fk(id int, ref int)\n"
        "relation pk(key int)\n"
        "load pk (1) (2) (3)\n"
        "constraint fk_ref (forall x)(x in fk => "
        "(exists y)(y in pk and x.ref = y.key))\n"
    )

    def test_commit_defers_audit(self):
        output = run_shell(
            self.SETUP + "commit begin insert(fk, (11, 99)); end\nexit\n"
        )
        assert "audit deferred" in output

    def test_audit_log_tails_commits_and_verdicts(self):
        output = run_shell(
            self.SETUP
            + "commit begin insert(fk, (10, 1)); end\n"
            + "commit begin insert(fk, (11, 99)); end\n"
            + "audit-log\nexit\n"
        )
        assert "commit log: 2 record(s), next #2" in output
        assert "#0 t=0->1 fk +1/-0" in output
        assert "#0 fk_ref: ok" in output
        assert "#1 fk_ref: VIOLATED ((11, 99))" in output

    def test_audit_log_subcommand_entry_point(self, tmp_path, capsys):
        from repro.cli import main

        script = tmp_path / "scenario.txt"
        script.write_text(
            self.SETUP + "commit begin insert(fk, (11, 99)); end\n"
        )
        assert main(["audit-log", str(script)]) == 0
        output = capsys.readouterr().out
        assert "commit log: 1 record(s)" in output
        assert "fk_ref: VIOLATED" in output

    def test_audit_log_rejects_bad_limit(self, capsys):
        from repro.cli import main

        assert main(["audit-log", "-n", "x"]) == 2
