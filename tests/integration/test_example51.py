"""The paper's worked Example 5.1, end to end.

Section 5.4: the user submits an insert into ``beer``; the subsystem
extends the transaction with (1) the domain alarm for R1 and (2) the
referential compensation for R2, and the modified transaction "is now
guaranteed to be correct and can be executed without any further
precautions".
"""

import pytest

from repro.algebra.parser import parse_transaction
from repro.algebra.pretty import render_transaction
from repro.algebra.statements import Alarm, Assign, Insert
from repro.core.subsystem import IntegrityController
from repro.engine import Session
from repro.workloads.beer import (
    BEER_RULE_DOMAIN,
    BEER_RULE_REFERENTIAL,
    EXAMPLE_51_TRANSACTION,
    beer_schema,
)


@pytest.fixture
def controller():
    # differential=False reproduces the paper's unoptimized Example 5.1
    # (the alarm checks all of beer, not just beer@plus).
    controller = IntegrityController(beer_schema(), differential=False)
    controller.add_rule(BEER_RULE_DOMAIN)
    controller.add_rule(BEER_RULE_REFERENTIAL)
    return controller


class TestModificationShape:
    def test_statement_sequence_matches_paper(self, controller):
        txn = parse_transaction(EXAMPLE_51_TRANSACTION)
        modified = controller.modify_transaction(txn)
        statements = modified.statements
        # Paper: insert; alarm(domain); temp := ...; insert(brewery, ...).
        assert len(statements) == 4
        assert isinstance(statements[0], Insert) and statements[0].relation == "beer"
        assert isinstance(statements[1], Alarm)
        assert isinstance(statements[2], Assign) and statements[2].name == "temp"
        assert isinstance(statements[3], Insert) and statements[3].relation == "brewery"

    def test_domain_alarm_checks_alcohol(self, controller):
        txn = parse_transaction(EXAMPLE_51_TRANSACTION)
        modified = controller.modify_transaction(txn)
        rendered = render_transaction(modified)
        assert "alarm(select(beer, alcohol < 0)" in rendered

    def test_compensation_computes_missing_breweries(self, controller):
        txn = parse_transaction(EXAMPLE_51_TRANSACTION)
        rendered = render_transaction(controller.modify_transaction(txn))
        assert (
            "temp := diff(project(beer, [brewery]), project(brewery, [name]))"
            in rendered
        )
        assert "insert(brewery, project(temp, [brewery as name, null, null]))" in rendered

    def test_fixpoint_reached_in_one_round(self, controller):
        txn = parse_transaction(EXAMPLE_51_TRANSACTION)
        controller.modify_transaction(txn)
        assert controller.last_stats.rounds == 1
        assert sorted(controller.last_stats.selected_rule_names) == ["R1", "R2"]


class TestExecution:
    def test_committed_with_compensation(self, db, controller):
        session = Session(db, controller)
        result = session.execute(EXAMPLE_51_TRANSACTION)
        assert result.committed
        # The new beer is in, and the unknown brewery was compensated with
        # a (guineken, null, null) tuple — exactly the paper's outcome.
        from repro.engine.types import NULL

        assert ("exportgold", "stout", "guineken", 6.0) in db.relation("beer")
        assert ("guineken", NULL, NULL) in db.relation("brewery")

    def test_post_state_consistent(self, db, controller):
        session = Session(db, controller)
        session.execute(EXAMPLE_51_TRANSACTION)
        assert controller.violated_constraints(db) == []

    def test_negative_alcohol_aborts(self, db, controller):
        session = Session(db, controller)
        result = session.execute(
            'begin insert(beer, ("bad", "stout", "guineken", -6.0)); end'
        )
        assert result.aborted
        assert "R1" in result.reason
        assert len(db.relation("beer")) == 3  # atomic rollback
        assert controller.violated_constraints(db) == []

    def test_brewery_delete_triggers_compensation(self, db, controller):
        session = Session(db, controller)
        result = session.execute(
            'begin delete(brewery, where name = "heineken"); end'
        )
        # R2 is triggered by DEL(brewery): the compensation re-inserts a
        # null-city heineken because beers still reference it.
        assert result.committed
        from repro.engine.types import NULL

        assert ("heineken", NULL, NULL) in db.relation("brewery")
        assert controller.violated_constraints(db) == []

    def test_differential_variant_same_outcome(self, db):
        controller = IntegrityController(beer_schema(), differential=True)
        controller.add_rule(BEER_RULE_DOMAIN)
        controller.add_rule(BEER_RULE_REFERENTIAL)
        session = Session(db, controller)
        result = session.execute(EXAMPLE_51_TRANSACTION)
        assert result.committed
        assert controller.violated_constraints(db) == []
        rendered = render_transaction(
            controller.modify_transaction(
                parse_transaction(EXAMPLE_51_TRANSACTION)
            )
        )
        # The differential domain check touches only the inserted tuples.
        assert "alarm(select(beer@plus, alcohol < 0)" in rendered
