"""Failure injection: runtime errors must abort atomically.

The paper's atomicity requirement (Section 2.2) is unconditional: *any*
execution of T either completes fully or leaves D unchanged.  These tests
inject runtime failures — division by zero, type mismatches, unknown
relations, failures inside appended integrity programs — at various points
and verify the pre-state always survives.
"""

import pytest

from repro.core.subsystem import IntegrityController
from repro.engine import Session
from repro.workloads.beer import beer_schema


@pytest.fixture
def snapshot(db):
    return {name: db.relation(name).to_set() for name in db.relation_names}


def assert_unchanged(db, snapshot):
    for name, rows in snapshot.items():
        assert db.relation(name).to_set() == rows


class TestRuntimeErrors:
    def test_division_by_zero_aborts(self, db, plain_session, snapshot):
        result = plain_session.execute(
            """
            begin
                insert(beer, ("first", "ale", "heineken", 4.0));
                t := project(beer, [alcohol / 0]);
            end
            """
        )
        assert result.aborted
        assert "division by zero" in result.reason
        assert_unchanged(db, snapshot)

    def test_type_mismatch_aborts(self, db, plain_session, snapshot):
        result = plain_session.execute(
            'begin insert(beer, ("only", "three", "values")); end'
        )
        assert result.aborted
        assert "runtime error" in result.reason
        assert_unchanged(db, snapshot)

    def test_unknown_relation_aborts(self, db, plain_session, snapshot):
        result = plain_session.execute(
            """
            begin
                insert(beer, ("first", "ale", "heineken", 4.0));
                insert(ghost, (1,));
            end
            """
        )
        assert result.aborted
        assert_unchanged(db, snapshot)

    def test_union_arity_mismatch_aborts(self, db, plain_session, snapshot):
        result = plain_session.execute(
            "begin t := union(beer, brewery); end"
        )
        assert result.aborted
        assert_unchanged(db, snapshot)

    def test_unknown_attribute_in_update_aborts(self, db, plain_session, snapshot):
        result = plain_session.execute(
            "begin update(beer, true, proof := 80); end"
        )
        assert result.aborted
        assert_unchanged(db, snapshot)


class TestFailuresInsideIntegrityPrograms:
    def test_failing_compensation_rolls_back_user_updates(self, db, snapshot):
        # A compensating action that always fails at runtime: the user's
        # own insert must roll back with it.
        controller = IntegrityController(beer_schema())
        controller.add_constraint(
            "broken_repair",
            "(forall x in beer)(x.alcohol >= 0)",
            response="t := project(beer, [alcohol / 0])",
        )
        session = Session(db, controller)
        result = session.execute(
            'begin insert(beer, ("neg", "ale", "heineken", -1.0)); end'
        )
        assert result.aborted
        assert_unchanged(db, snapshot)

    def test_counters_track_aborts(self, db, plain_session):
        plain_session.execute("begin t := union(beer, brewery); end")
        plain_session.execute("begin end")
        assert plain_session.manager.aborted == 1
        assert plain_session.manager.committed == 1

    def test_partial_statement_execution_counted(self, db, plain_session):
        result = plain_session.execute(
            """
            begin
                insert(beer, ("ok", "ale", "heineken", 4.0));
                insert(ghost, (1,));
                insert(beer, ("never", "ale", "heineken", 4.0));
            end
            """
        )
        assert result.aborted
        assert result.statements_executed == 1
