"""End-to-end scenarios beyond the paper's worked example."""

import pytest

from repro.core.subsystem import IntegrityController
from repro.engine import Session
from repro.engine.types import NULL
from repro.workloads.employees import (
    EMP_PAYROLL_CAP,
    EMP_SALARY_MONOTONE,
    employees_database,
    employees_schema,
)


class TestEmployeeRules:
    def test_consistent_inserts_commit(self, emp_session, emp_db):
        result = emp_session.execute(
            'begin insert(emp, (100, "newbie", 0, 3000, 2)); end'
        )
        assert result.committed
        assert (100, "newbie", 0, 3000, 2) in emp_db.relation("emp")

    def test_dangling_department_aborts(self, emp_session, emp_db):
        result = emp_session.execute(
            'begin insert(emp, (100, "lost", 99, 3000, 2)); end'
        )
        assert result.aborted and "emp_dept_fk" in result.reason
        assert (100, "lost", 99, 3000, 2) not in emp_db.relation("emp")

    def test_nonpositive_salary_aborts(self, emp_session):
        result = emp_session.execute(
            'begin insert(emp, (100, "free", 0, 0, 2)); end'
        )
        assert result.aborted and "emp_salary_domain" in result.reason

    def test_department_delete_with_orphans_aborts(self, emp_session):
        result = emp_session.execute("begin delete(dept, where id = 0); end")
        assert result.aborted and "emp_dept_fk" in result.reason

    def test_department_delete_after_moving_staff_commits(self, emp_session):
        result = emp_session.execute(
            """
            begin
                update(emp, dept_id = 0, dept_id := 1);
                delete(dept, where id = 0);
            end
            """
        )
        assert result.committed


class TestTransitionConstraint:
    """emp_salary_monotone compares emp against emp@old (Def 3.3)."""

    def test_raise_commits(self, emp_session):
        result = emp_session.execute(
            "begin update(emp, id = 1, salary := salary + 500); end"
        )
        assert result.committed

    def test_cut_aborts(self, emp_session, emp_db):
        before = {row for row in emp_db.relation("emp") if row[0] == 1}
        result = emp_session.execute(
            "begin update(emp, id = 1, salary := salary - 500); end"
        )
        assert result.aborted and "emp_salary_monotone" in result.reason
        after = {row for row in emp_db.relation("emp") if row[0] == 1}
        assert before == after

    def test_cut_then_restore_within_transaction_commits(self, emp_session):
        # Transition constraints see only pre/post states (Section 3.2):
        # intermediate violations are invisible.
        result = emp_session.execute(
            """
            begin
                update(emp, id = 1, salary := salary - 500);
                update(emp, id = 1, salary := salary + 500);
            end
            """
        )
        assert result.committed


class TestAggregateRule:
    def test_payroll_cap_enforced(self):
        schema = employees_schema()
        controller = IntegrityController(schema)
        controller.add_rule(EMP_PAYROLL_CAP)
        db = employees_database(employees=3)
        session = Session(db, controller)
        result = session.execute(
            'begin insert(emp, (900, "croesus", 0, 999999999, 9)); end'
        )
        assert result.aborted and "emp_payroll_cap" in result.reason

    def test_cap_checked_on_delete_too(self):
        # DEL(emp) is in the aggregate rule's trigger set; deleting cannot
        # violate the <= cap, so the transaction commits.
        schema = employees_schema()
        controller = IntegrityController(schema)
        controller.add_rule(EMP_PAYROLL_CAP)
        db = employees_database(employees=3)
        session = Session(db, controller)
        result = session.execute("begin delete(emp, where id = 0); end")
        assert result.committed


class TestMultiStatementTransactions:
    def test_violation_in_middle_rolls_back_everything(self, emp_session, emp_db):
        size_before = len(emp_db.relation("emp"))
        result = emp_session.execute(
            """
            begin
                insert(emp, (200, "ok", 0, 4000, 3));
                insert(emp, (201, "dangling", 77, 4000, 3));
                insert(emp, (202, "never_reached", 0, 4000, 3));
            end
            """
        )
        assert result.aborted
        assert len(emp_db.relation("emp")) == size_before

    def test_cross_relation_transaction(self, emp_session, emp_db):
        result = emp_session.execute(
            """
            begin
                insert(dept, (9, "lab", "enschede"));
                insert(emp, (300, "phd", 9, 2500, 1));
            end
            """
        )
        assert result.committed
        assert (9, "lab", "enschede") in emp_db.relation("dept")


class TestUnmodifiedExecutionEquivalence:
    """Modified execution and check-after-execute agree (state rules)."""

    CASES = [
        'begin insert(emp, (400, "a", 0, 1000, 1)); end',
        'begin insert(emp, (401, "b", 55, 1000, 1)); end',
        'begin insert(emp, (402, "c", 0, -5, 1)); end',
        "begin delete(dept, where id = 1); end",
        'begin update(emp, id = 2, dept_id := 55); end',
    ]

    @pytest.mark.parametrize("txn_text", CASES)
    def test_equivalence(self, txn_text):
        from repro.workloads.employees import employees_controller

        # Modified path.
        db_a = employees_database()
        controller_a = employees_controller(include_transition=False)
        session_a = Session(db_a, controller_a)
        modified_result = session_a.execute(txn_text)

        # Baseline path: execute unmodified, audit, roll back by rebuild.
        db_b = employees_database()
        controller_b = employees_controller(include_transition=False)
        session_b = Session(db_b)  # no integrity control
        session_b.execute(txn_text)
        baseline_ok = controller_b.violated_constraints(db_b) == []

        assert modified_result.committed == baseline_ok
