"""The multiset (bag) extension, end to end.

Section 7 of the paper points to the multi-set algebra extension of [8] as
the bridge to SQL-like environments.  The engine supports bag semantics
behind the ``bag`` flag; these tests run the full modification/enforcement
pipeline over bag relations, including the ``MLT`` counting function that
Alg 5.7 already mentions (``Γ2 ∈ {CNT, MLT}``).
"""

import pytest

from repro.core.subsystem import IntegrityController
from repro.engine import Database, DatabaseSchema, RelationSchema, Session
from repro.engine.types import INT, STRING


@pytest.fixture
def bag_db():
    schema = DatabaseSchema(
        [
            RelationSchema("sale", [("item", STRING), ("qty", INT)]),
            RelationSchema("item", [("name", STRING)]),
        ]
    )
    db = Database(schema, bag=True)
    db.load("item", [("ale",), ("stout",)])
    return db


class TestBagSemantics:
    def test_duplicate_inserts_accumulate(self, bag_db):
        session = Session(bag_db)
        result = session.execute(
            """
            begin
                insert(sale, ("ale", 2));
                insert(sale, ("ale", 2));
            end
            """
        )
        assert result.committed
        assert len(bag_db.relation("sale")) == 2
        assert bag_db.relation("sale").multiplicity(("ale", 2)) == 2

    def test_delete_removes_one_occurrence(self, bag_db):
        session = Session(bag_db)
        session.execute(
            'begin insert(sale, ("ale", 2)); insert(sale, ("ale", 2)); end'
        )
        session.execute('begin delete(sale, ("ale", 2)); end')
        assert bag_db.relation("sale").multiplicity(("ale", 2)) == 1

    def test_cnt_vs_mlt_constraints(self, bag_db):
        controller = IntegrityController(bag_db.schema)
        # At most 3 sale *records*, at most 2 *distinct* sales.
        controller.add_constraint("cnt_cap", "CNT(sale) <= 3")
        controller.add_constraint("mlt_cap", "MLT(sale) <= 2")
        session = Session(bag_db, controller)
        result = session.execute(
            """
            begin
                insert(sale, ("ale", 1));
                insert(sale, ("ale", 1));
                insert(sale, ("stout", 1));
            end
            """
        )
        assert result.committed  # CNT=3, MLT=2: both at the cap
        result = session.execute('begin insert(sale, ("ale", 1)); end')
        assert result.aborted and "cnt_cap" in result.reason

    def test_mlt_cap_violation(self, bag_db):
        controller = IntegrityController(bag_db.schema)
        controller.add_constraint("mlt_cap", "MLT(sale) <= 1")
        session = Session(bag_db, controller)
        assert session.execute('begin insert(sale, ("ale", 1)); end').committed
        # Same tuple again: MLT unchanged, still fine.
        assert session.execute('begin insert(sale, ("ale", 1)); end').committed
        # A new distinct tuple: MLT would become 2.
        result = session.execute('begin insert(sale, ("stout", 1)); end')
        assert result.aborted and "mlt_cap" in result.reason

    def test_referential_rule_over_bags(self, bag_db):
        controller = IntegrityController(bag_db.schema)
        controller.add_constraint(
            "sale_item_fk",
            "(forall s in sale)(exists i in item)(s.item = i.name)",
        )
        session = Session(bag_db, controller)
        assert session.execute('begin insert(sale, ("ale", 5)); end').committed
        result = session.execute('begin insert(sale, ("porter", 5)); end')
        assert result.aborted and "sale_item_fk" in result.reason

    def test_atomicity_preserves_multiplicities(self, bag_db):
        controller = IntegrityController(bag_db.schema)
        controller.add_constraint("qty_pos", "(forall s in sale)(s.qty > 0)")
        session = Session(bag_db, controller)
        session.execute(
            'begin insert(sale, ("ale", 2)); insert(sale, ("ale", 2)); end'
        )
        result = session.execute(
            'begin insert(sale, ("ale", 2)); insert(sale, ("bad", 0)); end'
        )
        assert result.aborted
        assert bag_db.relation("sale").multiplicity(("ale", 2)) == 2

    def test_sum_aggregates_count_duplicates(self, bag_db):
        controller = IntegrityController(bag_db.schema)
        controller.add_constraint("qty_total", "SUM(sale, qty) <= 5")
        session = Session(bag_db, controller)
        result = session.execute(
            'begin insert(sale, ("ale", 2)); insert(sale, ("ale", 2)); end'
        )
        assert result.committed  # total 4
        result = session.execute('begin insert(sale, ("ale", 2)); end')
        assert result.aborted  # total would be 6
