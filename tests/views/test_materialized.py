"""Materialized views maintained via transaction modification."""

import pytest

from repro.core.subsystem import IntegrityController
from repro.engine import Session
from repro.errors import RuleError, UnknownRelationError
from repro.views import ViewManager
from repro.workloads.beer import beer_controller, beer_database


@pytest.fixture
def setup():
    db = beer_database(beers=10, breweries=4)
    controller = beer_controller()
    session = Session(db, controller)
    manager = ViewManager(db, controller)
    return db, controller, session, manager


class TestDefinition:
    def test_initial_population(self, setup):
        db, _, _, manager = setup
        view = manager.define_view("strong", "select(beer, alcohol >= 6.0)")
        expected = {
            row for row in db.relation("beer").rows() if row[3] >= 6.0
        }
        assert db.relation("strong").to_set() == frozenset(expected)
        assert view.mode == "differential"
        assert view.base_relations == ("beer",)

    def test_recompute_mode_for_complex_views(self, setup):
        db, _, _, manager = setup
        view = manager.define_view(
            "beer_count_by_join",
            "project(join(beer, brewery, left.brewery = right.name), [1, 5])",
        )
        assert view.mode == "recompute"

    def test_duplicate_name_rejected(self, setup):
        _, _, _, manager = setup
        manager.define_view("v1", "select(beer, alcohol >= 6.0)")
        with pytest.raises(RuleError):
            manager.define_view("v1", "select(beer, alcohol >= 6.0)")

    def test_unknown_base_rejected(self, setup):
        _, _, _, manager = setup
        with pytest.raises(UnknownRelationError):
            manager.define_view("v2", "select(ghost, true)")

    def test_differential_demands_selection_shape(self, setup):
        _, _, _, manager = setup
        with pytest.raises(RuleError):
            manager.define_view("v3", "union(beer, beer)", mode="differential")

    def test_auxiliary_base_rejected(self, setup):
        _, _, _, manager = setup
        with pytest.raises(RuleError):
            manager.define_view("v4", "select(beer@plus, true)")


class TestMaintenance:
    def test_insert_updates_differential_view(self, setup):
        db, _, session, manager = setup
        manager.define_view("strong", "select(beer, alcohol >= 6.0)")
        result = session.execute(
            'begin insert(beer, ("mega", "quad", "brewery_1", 11.0)); end'
        )
        assert result.committed
        assert ("mega", "quad", "brewery_1", 11.0) in db.relation("strong")
        assert manager.verify_view("strong")

    def test_weak_insert_not_in_view(self, setup):
        db, _, session, manager = setup
        manager.define_view("strong", "select(beer, alcohol >= 6.0)")
        session.execute('begin insert(beer, ("light", "lager", "brewery_1", 2.0)); end')
        assert ("light", "lager", "brewery_1", 2.0) not in db.relation("strong")
        assert manager.verify_view("strong")

    def test_delete_updates_view(self, setup):
        db, _, session, manager = setup
        manager.define_view("strong", "select(beer, alcohol >= 6.0)")
        strong_rows = list(db.relation("strong").rows())
        if not strong_rows:
            pytest.skip("fixture has no strong beers")
        victim = strong_rows[0]
        session.execute(f'begin delete(beer, where name = "{victim[0]}"); end')
        assert victim not in db.relation("strong")
        assert manager.verify_view("strong")

    def test_recompute_view_tracks_changes(self, setup):
        db, _, session, manager = setup
        manager.define_view(
            "brewery_names", "project(beer, [brewery])", mode="recompute"
        )
        session.execute(
            'begin insert(beer, ("new", "ale", "brewery_0", 5.0)); end'
        )
        assert manager.verify_view("brewery_names")

    def test_view_maintenance_does_not_trigger_rules(self, setup):
        db, controller, session, manager = setup
        manager.define_view("strong", "select(beer, alcohol >= 6.0)")
        # The maintenance program writes into "strong"; if it triggered
        # rules, modification would loop. One round must suffice.
        session.execute('begin insert(beer, ("x", "ale", "brewery_0", 8.0)); end')
        assert controller.last_stats.rounds <= 2

    def test_abort_leaves_view_untouched(self, setup):
        db, _, session, manager = setup
        manager.define_view("strong", "select(beer, alcohol >= 6.0)")
        before = db.relation("strong").to_set()
        result = session.execute(
            'begin insert(beer, ("bad", "ale", "brewery_0", -3.0)); end'
        )
        assert result.aborted
        assert db.relation("strong").to_set() == before

    def test_update_statement_maintains_view(self, setup):
        db, _, session, manager = setup
        manager.define_view("strong", "select(beer, alcohol >= 6.0)")
        session.execute(
            "begin update(beer, alcohol >= 5.0, alcohol := alcohol + 3.0); end"
        )
        assert manager.verify_view("strong")


class TestDropView:
    def test_drop_stops_maintenance(self, setup):
        db, controller, session, manager = setup
        manager.define_view("strong", "select(beer, alcohol >= 6.0)")
        manager.drop_view("strong")
        assert "view::strong" not in controller.store
        session.execute('begin insert(beer, ("y", "ale", "brewery_0", 9.0)); end')
        assert ("y", "ale", "brewery_0", 9.0) not in db.relation("strong")
