"""Crash-point properties: recovery is always a commit-boundary prefix.

The acceptance property of the durable log: after a crash at ANY byte
offset of the append stream, recovery yields exactly the database state at
some commit boundary — never a torn, half-applied state — and anything
that is not a legitimate crash artifact (silent corruption) fails loudly
with :class:`~repro.errors.WalCorruptionError` or a broken
:class:`~repro.engine.wal.ChainVerification`.

The append byte stream is deterministic for a fixed workload, so one
clean run yields both the per-commit expected states and the byte
boundary each commit ends at; every fault run is then compared against
the boundary table.
"""

import shutil

import pytest

from repro.engine import Database, DatabaseSchema, RelationSchema, Session
from repro.engine.recovery import recover
from repro.engine.types import INT
from repro.engine.wal import HEADER_SIZE, WriteAheadLog, verify_directory
from repro.errors import WalCorruptionError

from tests.faults.harness import FaultPlan, faulty_opener

COMMITS = [
    "begin insert(r, (10, 0)); end",
    "begin insert(r, (11, 1)); insert(r, (12, 2)); end",
    "begin delete(r, (1, 1)); end",
    "begin insert(r, (13, 3)); delete(r, (11, 1)); end",
    "begin insert(r, (14, 4)); end",
    "begin delete(r, (2, 2)); insert(r, (15, 5)); end",
]


def _schema():
    return DatabaseSchema([RelationSchema("r", [("a", INT), ("b", INT)])])


def _fresh_database():
    database = Database(_schema())
    database.load("r", [(1, 1), (2, 2)])
    return database


def _state(database):
    return dict(database.relation("r").items())


def _run_workload(database):
    session = Session(database)
    for text in COMMITS:
        assert session.execute(text).committed


@pytest.fixture(scope="module")
def clean_run(tmp_path_factory):
    """One clean durable run: (directory, states per boundary, boundaries).

    ``states[i]`` is the database state after ``i`` commits;
    ``boundaries[i]`` is the segment byte size at that point (so
    ``boundaries[0] == HEADER_SIZE``, before any record).
    """
    directory = tmp_path_factory.mktemp("clean-wal")
    database = _fresh_database()
    database.attach_wal(WriteAheadLog(directory, sync="commit"))
    # The segment file appears lazily with the first append; before that
    # the crash boundary is the (future) bare header.
    states = [_state(database)]
    boundaries = [HEADER_SIZE]
    session = Session(database)
    for text in COMMITS:
        assert session.execute(text).committed
        [segment] = database.wal.segments()
        states.append(_state(database))
        boundaries.append(segment.stat().st_size)
    database.detach_wal()
    return directory, states, boundaries


def _expected_prefix_index(boundaries, crash_offset):
    """Commits whose full record fits inside the first ``crash_offset`` bytes."""
    commits = 0
    for index, boundary in enumerate(boundaries):
        if boundary <= crash_offset:
            commits = index
    return commits


def _clone_with_segment_prefix(clean_dir, target_dir, prefix_length):
    target_dir.mkdir(parents=True, exist_ok=True)
    segment_bytes = None
    for path in clean_dir.iterdir():
        if path.suffix == ".wal":
            segment_bytes = path.read_bytes()
            (target_dir / path.name).write_bytes(segment_bytes[:prefix_length])
        else:
            shutil.copy(path, target_dir / path.name)
    assert segment_bytes is not None
    return segment_bytes


class TestEveryCrashPoint:
    def test_prefix_at_every_byte_offset(self, clean_run, tmp_path):
        """Truncate the stream at EVERY byte; recovery is always exact."""
        clean_dir, states, boundaries = clean_run
        total = boundaries[-1]
        target = tmp_path / "crashed"
        for crash_offset in range(total + 1):
            shutil.rmtree(target, ignore_errors=True)
            _clone_with_segment_prefix(clean_dir, target, crash_offset)
            database, report = recover(target, attach=False)
            expected = _expected_prefix_index(boundaries, crash_offset)
            assert _state(database) == states[expected], (
                f"crash at byte {crash_offset}: recovered state is not the "
                f"{expected}-commit prefix"
            )
            assert report.replayed == expected

    def test_drop_writes_mid_stream(self, clean_run, tmp_path):
        """Live runs whose writes vanish past an offset recover the prefix."""
        _clean_dir, states, boundaries = clean_run
        total = boundaries[-1]
        probes = sorted(
            {offset for b in boundaries for offset in (b - 2, b, b + 3)}
            | set(range(0, total, 97))
        )
        for crash_offset in probes:
            if not 0 <= crash_offset <= total:
                continue
            directory = tmp_path / f"drop-{crash_offset}"
            plan = FaultPlan("drop", crash_offset)
            database = _fresh_database()
            database.attach_wal(
                WriteAheadLog(
                    directory, sync="commit", opener=faulty_opener(plan)
                )
            )
            _run_workload(database)  # commits "succeed"; bytes are lost
            database.detach_wal()
            recovered, _report = recover(directory, attach=False)
            expected = _expected_prefix_index(boundaries, crash_offset)
            assert _state(recovered) == states[expected]
            assert plan.tripped == (crash_offset < total)

    def test_truncated_at_close(self, clean_run, tmp_path):
        """A drive that drops acked writes at close still yields a prefix."""
        _clean_dir, states, boundaries = clean_run
        crash_offset = (boundaries[2] + boundaries[3]) // 2  # mid-record 3
        directory = tmp_path / "trunc"
        plan = FaultPlan("truncate", crash_offset)
        database = _fresh_database()
        database.attach_wal(
            WriteAheadLog(directory, sync="commit", opener=faulty_opener(plan))
        )
        _run_workload(database)
        database.detach_wal()  # close fires the truncation
        assert plan.tripped
        recovered, _ = recover(directory, attach=False)
        assert _state(recovered) == states[2]


class TestBitflips:
    def test_bitflip_at_every_byte_is_prefix_or_loud(self, clean_run, tmp_path):
        """Silent corruption anywhere either verifies broken, recovers to a
        commit boundary, or raises — never a torn in-between state."""
        clean_dir, states, _boundaries = clean_run
        [segment] = [p for p in clean_dir.iterdir() if p.suffix == ".wal"]
        data = segment.read_bytes()
        target = tmp_path / "flipped"
        legal_states = [frozenset(s.items()) for s in states]
        for flip_offset in range(len(data)):
            shutil.rmtree(target, ignore_errors=True)
            _clone_with_segment_prefix(clean_dir, target, len(data))
            flipped = target / segment.name
            mutated = bytearray(data)
            mutated[flip_offset] ^= 0x10
            flipped.write_bytes(bytes(mutated))
            verification = verify_directory(target)
            if not verification.ok:
                continue  # loud: forensics located the damage
            try:
                database, _report = recover(target, attach=False)
            except WalCorruptionError:
                continue  # loud
            assert frozenset(_state(database).items()) in legal_states, (
                f"bit flip at byte {flip_offset} recovered a non-boundary "
                f"state"
            )

    def test_single_bitflips_in_records_never_verify_clean(self, clean_run, tmp_path):
        """CRC32 catches every single-bit record flip: full-length chains
        with a flipped record byte always report torn or broken."""
        clean_dir, _states, boundaries = clean_run
        [segment] = [p for p in clean_dir.iterdir() if p.suffix == ".wal"]
        data = segment.read_bytes()
        target = tmp_path / "flagged"
        for flip_offset in range(HEADER_SIZE, len(data), 41):
            shutil.rmtree(target, ignore_errors=True)
            _clone_with_segment_prefix(clean_dir, target, len(data))
            mutated = bytearray(data)
            mutated[flip_offset] ^= 0x10
            (target / segment.name).write_bytes(bytes(mutated))
            verification = verify_directory(target)
            assert (not verification.ok) or (
                verification.torn_tail is not None
            ) or verification.records < len(boundaries) - 1, (
                f"bit flip at byte {flip_offset} went unnoticed"
            )
