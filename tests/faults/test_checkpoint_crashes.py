"""Crashes in the checkpoint pipeline: torn links never lose commits.

Checkpoints are written atomically (temp file + ``os.replace``), so a
crash at any point of a base-then-delta checkpoint sequence leaves one of
three artifacts: no new file, a stray ``.tmp``, or a whole link.  In every
case the WAL still holds all committed records, so recovery must produce
exactly the live pre-crash state — the checkpoint chain only changes
*where replay starts*, never what it reaches.
"""

import shutil

import pytest

from repro.engine import Database, DatabaseSchema, RelationSchema, Session
from repro.engine.recovery import recover
from repro.engine.types import INT
from repro.engine.wal import WriteAheadLog


def _schema():
    return DatabaseSchema([RelationSchema("r", [("a", INT), ("b", INT)])])


def _state(database):
    return dict(database.relation("r").items())


def _run(directory):
    """Full checkpoint, commits, delta checkpoint, one tail commit."""
    database = Database(_schema())
    database.load("r", [(1, 1)])
    database.attach_wal(WriteAheadLog(directory, sync="commit"))
    session = Session(database)
    for i in range(3):
        assert session.execute(f"begin insert(r, ({10 + i}, 0)); end").committed
    database.checkpoint()  # full at #3
    for i in range(3):
        assert session.execute(f"begin insert(r, ({20 + i}, 0)); end").committed
    database.checkpoint(delta=True)  # delta at #6, base #3
    assert session.execute("begin insert(r, (30, 0)); end").committed
    live = _state(database)
    database.detach_wal()
    return live


class TestCheckpointCrashes:
    def test_crash_before_delta_checkpoint_lands(self, tmp_path):
        """The delta never made it to disk: replay from the full anchor."""
        live = _run(tmp_path)
        for path in tmp_path.iterdir():
            if path.suffix == ".dckpt":
                path.unlink()
        recovered, report = recover(tmp_path, attach=False)
        assert _state(recovered) == live
        assert report.checkpoint_sequence == 3

    def test_crash_mid_delta_write_leaves_tmp(self, tmp_path):
        """A torn atomic write leaves only a ``.tmp`` — invisible to
        recovery, which anchors at the whole delta's parent."""
        live = _run(tmp_path)
        for path in list(tmp_path.iterdir()):
            if path.suffix == ".dckpt":
                torn = path.read_bytes()[: max(4, path.stat().st_size // 2)]
                path.with_suffix(".tmp").write_bytes(torn)
                path.unlink()
        recovered, report = recover(tmp_path, attach=False)
        assert _state(recovered) == live
        assert report.checkpoint_sequence == 3

    def test_crash_after_delta_replays_tail_only(self, tmp_path):
        """The whole chain survived: only the tail commit replays."""
        live = _run(tmp_path)
        recovered, report = recover(tmp_path, attach=False)
        assert _state(recovered) == live
        assert report.checkpoint_sequence == 6
        assert report.replayed == 1

    def test_torn_delta_bytes_fall_back_to_full_anchor(self, tmp_path):
        """A half-written ``.dckpt`` (no atomic rename, e.g. copied by an
        operator) is skipped loudly-silently: older anchors recover the
        exact same state."""
        live = _run(tmp_path)
        for path in tmp_path.iterdir():
            if path.suffix == ".dckpt":
                path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        recovered, report = recover(tmp_path, attach=False)
        assert _state(recovered) == live
        assert report.checkpoint_sequence == 3

    def test_crash_between_repeated_delta_checkpoints(self, tmp_path):
        """Chain full -> delta -> (torn delta): the intact prefix anchors."""
        database = Database(_schema())
        database.attach_wal(WriteAheadLog(tmp_path, sync="commit"))
        session = Session(database)
        assert session.execute("begin insert(r, (1, 0)); end").committed
        database.checkpoint()  # full at #1
        assert session.execute("begin insert(r, (2, 0)); end").committed
        first_delta = database.checkpoint(delta=True)  # delta at #2
        assert session.execute("begin insert(r, (3, 0)); end").committed
        second_delta = database.checkpoint(delta=True)  # delta at #3
        live = _state(database)
        database.detach_wal()
        assert first_delta != second_delta
        second_delta.write_bytes(second_delta.read_bytes()[:8])
        recovered, report = recover(tmp_path, attach=False)
        assert _state(recovered) == live
        assert report.checkpoint_sequence == 2
