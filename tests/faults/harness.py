"""Byte-level fault injection for write-ahead-log segment files.

The :class:`~repro.engine.wal.WriteAheadLog` takes an ``opener`` hook for
segment files; :func:`faulty_opener` wraps the real file in a
:class:`FaultyFile` that misbehaves at a chosen byte offset of the
*cumulative write stream* (headers and records of every segment opened
through the hook, in write order):

``drop``
    The write covering the offset is cut short and every later write is
    silently swallowed — the canonical crash model: only a byte prefix of
    the append stream ever reaches the file.
``bitflip``
    One bit of the byte at the offset is flipped in transit — silent
    media corruption.
``truncate``
    The file is truncated back to the offset when closed — a lying drive
    that acked writes it then threw away.

The plan's ``written`` counter advances with every write regardless, so a
single plan describes one deterministic fault no matter how the WAL
chunks its writes.
"""

from __future__ import annotations

MODES = ("drop", "bitflip", "truncate")


class FaultPlan:
    """One injected fault: a mode and a byte offset in the write stream."""

    def __init__(self, mode: str, offset: int):
        if mode not in MODES:
            raise ValueError(f"unknown fault mode {mode!r}")
        self.mode = mode
        self.offset = int(offset)
        #: Bytes of the cumulative write stream seen so far.
        self.written = 0
        #: Whether the fault has fired.
        self.tripped = False


class FaultyFile:
    """A binary file wrapper that injects the plan's fault on write."""

    def __init__(self, inner, plan: FaultPlan):
        self._inner = inner
        self._plan = plan

    def write(self, data) -> int:
        plan = self._plan
        data = bytes(data)
        start = plan.written
        plan.written = start + len(data)
        if plan.mode == "drop":
            keep = data[: max(plan.offset - start, 0)]
            if len(keep) < len(data):
                plan.tripped = True
            if keep:
                self._inner.write(keep)
            return len(data)  # the writer believes the write succeeded
        if (
            plan.mode == "bitflip"
            and not plan.tripped
            and start <= plan.offset < start + len(data)
        ):
            index = plan.offset - start
            data = (
                data[:index]
                + bytes([data[index] ^ 0x10])
                + data[index + 1 :]
            )
            plan.tripped = True
        self._inner.write(data)
        return len(data)

    def close(self) -> None:
        plan = self._plan
        if plan.mode == "truncate" and not plan.tripped:
            try:
                self._inner.flush()
                if self._inner.seekable():
                    size = self._inner.seek(0, 2)
                    if size > plan.offset:
                        self._inner.truncate(plan.offset)
                        plan.tripped = True
            except (OSError, ValueError):
                pass
        self._inner.close()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def faulty_opener(plan: FaultPlan):
    """An ``opener`` for :class:`WriteAheadLog` injecting ``plan``.

    Read-only opens pass through untouched — the fault lives in the write
    path only.
    """

    def opener(path, mode):
        inner = open(path, mode)
        if mode == "rb":
            return inner
        return FaultyFile(inner, plan)

    return opener
