"""Epoch-based MVCC: pins, O(Δ) snapshots, reclamation, quiesce fencing."""

import pickle
import threading

import pytest

from repro.engine import Database, DatabaseSchema, Relation, RelationSchema, Session
from repro.engine.epochs import DEFAULT_RETAIN, EpochManager, fold_inverse
from repro.engine.types import INT
from repro.errors import EpochUnavailableError


@pytest.fixture
def rs_schema():
    return DatabaseSchema(
        [
            RelationSchema("r", [("a", INT), ("b", INT)]),
            RelationSchema("s", [("c", INT), ("d", INT)]),
        ]
    )


@pytest.fixture
def rdb(rs_schema):
    database = Database(rs_schema)
    database.load("r", [(1, 1), (2, 2), (3, 3)])
    database.load("s", [(1, 10)])
    return database


def commit(database, name, plus=None, minus=None):
    schema = database.relation_schema(name)
    bag = database.bag
    differentials = {
        name: (
            Relation(schema, plus or [], bag=bag) if plus is not None else None,
            Relation(schema, minus or [], bag=bag) if minus is not None else None,
        )
    }
    return database.apply_deltas(differentials)


class TestFoldInverse:
    def test_inverse_composition_cancels(self, rs_schema):
        schema = rs_schema.relation("r")
        plus = Relation(schema, bag=True)
        minus = Relation(schema, bag=True)
        # Commit 1 inserts (1,1); its inverse deletes it.
        fold_inverse(plus, minus, (Relation(schema, [(1, 1)], bag=True), None))
        assert minus.multiplicity((1, 1)) == 1 and len(plus) == 0
        # Commit 2 deletes (1,1); the two inverses cancel exactly.
        fold_inverse(plus, minus, (None, Relation(schema, [(1, 1)], bag=True)))
        assert len(plus) == 0 and len(minus) == 0

    def test_no_row_on_both_sides(self, rs_schema):
        schema = rs_schema.relation("r")
        plus = Relation(schema, bag=True)
        minus = Relation(schema, bag=True)
        fold_inverse(plus, minus, (None, Relation(schema, [(5, 5)], bag=True)))
        fold_inverse(plus, minus, (Relation(schema, [(5, 5)], bag=True), None))
        assert (5, 5) not in plus or (5, 5) not in minus


class TestEpochPinning:
    def test_pinned_reads_survive_later_commits(self, rdb):
        pin = rdb.epochs.pin()
        before = sorted(pin.relation("r"))
        commit(rdb, "r", plus=[(9, 9)])
        commit(rdb, "r", minus=[(1, 1)])
        assert sorted(pin.relation("r")) == before
        assert sorted(rdb.relation("r")) == [(2, 2), (3, 3), (9, 9)]
        pin.release()

    def test_pin_is_o_delta_not_a_copy(self, rdb):
        pin = rdb.epochs.pin()
        snap = pin.relation("r")
        # Before any commit lands the snapshot holds no private rows at
        # all — its base *is* the live dict, undo sides empty.
        assert snap.base is rdb.relation("r")
        assert len(snap.plus._rows) == 0 and len(snap.minus._rows) == 0
        commit(rdb, "r", plus=[(9, 9)])
        # One commit of one row: the undo delta holds exactly one row.
        assert snap.multiplicity((9, 9)) == 0
        assert len(snap.minus._rows) == 1
        pin.release()

    def test_public_epoch_is_commit_sequence(self, rdb):
        assert rdb.epochs.current_epoch == rdb.commit_log.next_sequence
        pin = rdb.epochs.pin()
        assert pin.epoch == rdb.commit_log.next_sequence
        commit(rdb, "r", plus=[(9, 9)])
        assert rdb.epochs.current_epoch == pin.epoch + 1
        pin.release()

    def test_snapshot_relation_is_read_only(self, rdb):
        with rdb.epochs.pin() as pin:
            snap = pin.relation("r")
            with pytest.raises(TypeError):
                snap.insert((7, 7))
            with pytest.raises(TypeError):
                snap.clear()

    def test_multiplicity_through_pin_in_bag_mode(self, rs_schema):
        database = Database(rs_schema, bag=True)
        database.load("r", [(1, 1), (1, 1)])
        pin = database.epochs.pin()
        commit(database, "r", plus=[(1, 1)])
        assert pin.relation("r").multiplicity((1, 1)) == 2
        assert database.relation("r").multiplicity((1, 1)) == 3
        pin.release()

    def test_release_is_idempotent_and_context_managed(self, rdb):
        pin = rdb.epochs.pin()
        pin.release()
        pin.release()
        with rdb.epochs.pin() as pin2:
            assert pin2.version in rdb.epochs.pinned_versions()
        assert pin2.version not in rdb.epochs.pinned_versions()


class TestReclamation:
    def test_entries_trimmed_once_unpinned(self, rs_schema):
        database = Database(rs_schema)
        database.epochs.retain = 4
        for i in range(20):
            commit(database, "r", plus=[(i, i)])
        assert database.epochs.retained() <= 4 + 1
        assert database.epochs.reclaimed > 0

    def test_pin_holds_back_reclamation(self, rs_schema):
        database = Database(rs_schema)
        database.epochs.retain = 2
        pin = database.epochs.pin()
        for i in range(10):
            commit(database, "r", plus=[(i, i)])
        # All ten entries must survive: the pin still needs them.
        assert database.epochs.retained() == 10
        assert sorted(pin.relation("r")) == []
        pin.release()
        commit(database, "r", plus=[(99, 99)])
        assert database.epochs.retained() <= 3

    def test_fresh_read_after_reclamation_raises(self, rs_schema):
        database = Database(rs_schema)
        database.epochs.retain = 1
        pin = database.epochs.pin()
        pin.release()
        for i in range(5):
            commit(database, "r", plus=[(i, i)])
        with pytest.raises(EpochUnavailableError):
            pin.relation("r").sorted_rows()

    def test_materialized_snapshot_outlives_reclamation(self, rs_schema):
        database = Database(rs_schema)
        database.load("r", [(1, 1)])
        database.epochs.retain = 1
        pin = database.epochs.pin()
        snap = pin.relation("r")
        rows = snap.sorted_rows()  # materializes
        pin.release()
        for i in range(5):
            commit(database, "r", plus=[(i + 10, i)])
        assert snap.sorted_rows() == rows == [(1, 1)]

    def test_default_retain_matches_commit_log_window(self, rs_schema):
        assert EpochManager(Database(rs_schema)).retain == DEFAULT_RETAIN


class TestUndoDifferentials:
    def test_restore_is_o_delta(self, rdb):
        epochs = rdb.epochs
        version = epochs.version
        commit(rdb, "r", plus=[(9, 9)], minus=[(1, 1)])
        undo = epochs.undo_differentials(version)
        plus, minus = undo["r"]
        assert sorted(plus) == [(1, 1)] and sorted(minus) == [(9, 9)]

    def test_clean_state_returns_empty(self, rdb):
        assert rdb.epochs.undo_differentials(rdb.epochs.version) == {}

    def test_unavailable_returns_none(self, rs_schema):
        database = Database(rs_schema)
        database.epochs.retain = 1
        version = database.epochs.version
        for i in range(5):
            commit(database, "r", plus=[(i, i)])
        assert database.epochs.undo_differentials(version) is None


class TestEpochSpans:
    def test_span_brackets_pre_and_post_states(self, rdb):
        first = rdb.commit_log.next_sequence
        commit(rdb, "r", plus=[(9, 9)])
        span = rdb.epochs.pin_span(first, first)
        assert span is not None
        assert (9, 9) not in span.pre_relation("r")
        assert (9, 9) in span.post_relation("r")
        # Later commits do not shift the bracketed states.
        commit(rdb, "r", minus=[(9, 9)])
        assert (9, 9) in span.post_relation("r")
        assert (9, 9) not in rdb.relation("r")
        span.release()

    def test_span_covering_a_batch_sees_both_ends(self, rdb):
        first = rdb.commit_log.next_sequence
        commit(rdb, "r", plus=[(9, 9)])
        last = rdb.commit_log.next_sequence
        commit(rdb, "r", plus=[(8, 8)], minus=[(1, 1)])
        span = rdb.epochs.pin_span(first, last)
        assert span is not None
        pre, post = span.pre_relation("r"), span.post_relation("r")
        assert sorted(pre) == [(1, 1), (2, 2), (3, 3)]
        assert sorted(post) == [(2, 2), (3, 3), (8, 8), (9, 9)]
        span.release()

    def test_span_refcounting(self, rdb):
        first = rdb.commit_log.next_sequence
        commit(rdb, "r", plus=[(9, 9)])
        span = rdb.epochs.pin_span(first, first)
        span.retain()
        span.release()
        assert not span.pre._released and not span.post._released
        span.release()
        assert span.pre._released and span.post._released

    def test_span_unavailable_when_reclaimed(self, rs_schema):
        database = Database(rs_schema)
        database.epochs.retain = 1
        first = database.commit_log.next_sequence
        for i in range(6):
            commit(database, "r", plus=[(i, i)])
        assert database.epochs.pin_span(first, first) is None


class TestQuiesceFence:
    def test_out_of_band_mutation_preserves_pinned_state(self, rdb):
        pin = rdb.epochs.pin()
        # Direct mutation bypassing apply_deltas: the observer fence must
        # materialize the pinned state before the row lands.
        rdb.relation("r").insert((42, 42))
        assert sorted(pin.relation("r")) == [(1, 1), (2, 2), (3, 3)]
        assert (42, 42) in rdb.relation("r")
        pin.release()

    def test_load_fences_outstanding_pins(self, rdb):
        pin = rdb.epochs.pin()
        snap = pin.relation("s")
        rdb.load("s", [(7, 70), (8, 80)])
        assert sorted(snap) == [(1, 10)]
        assert len(rdb.relation("s")) == 3
        pin.release()

    def test_restore_falls_back_after_fence(self, rdb):
        snapshot = rdb.snapshot()
        rdb.relation("r").clear()  # out-of-band: fences the epoch window
        rdb.relation("r").insert((5, 5))
        rdb.restore(snapshot)
        assert sorted(rdb.relation("r")) == [(1, 1), (2, 2), (3, 3)]

    def test_quiesce_is_amortized_constant(self, rdb):
        epochs = rdb.epochs
        rdb.relation("r").insert((50, 50))
        fenced = epochs.version
        # Repeated direct mutations while quiescent never re-fence.
        for i in range(10):
            rdb.relation("r").insert((60 + i, 60))
        assert epochs.version == fenced


class TestSnapshotIndexes:
    def test_probe_through_built_base_index(self, rdb):
        live = rdb.relation("r")
        live.declare_index((0,))
        live.index_on((0,))  # build on the live relation
        pin = rdb.epochs.pin()
        snap = pin.relation("r")
        commit(rdb, "r", plus=[(1, 100)], minus=[(2, 2)])
        index = snap.built_index((0,))
        assert index is not None
        assert sorted(index.lookup(1)) == [(1, 1)]  # (1,100) hidden
        assert sorted(index.lookup(2)) == [(2, 2)]  # deletion undone
        pin.release()

    def test_deleted_row_still_probed_at_pin(self, rdb):
        live = rdb.relation("r")
        live.declare_index((0,))
        live.index_on((0,))
        pin = rdb.epochs.pin()
        snap = pin.relation("r")
        commit(rdb, "r", minus=[(2, 2)])
        index = snap.index_on((0,))
        assert sorted(index.lookup(2)) == [(2, 2)]
        assert live.built_index((0,)).lookup(2) == ()
        pin.release()


class TestDatabaseSnapshotIntegration:
    def test_snapshot_mapping_compatibility(self, rdb):
        snapshot = rdb.snapshot()
        assert set(snapshot.relations.keys()) == {"r", "s"}
        assert "r" in snapshot.relations and "ghost" not in snapshot.relations
        assert len(snapshot.relations) == 2
        assert sorted(snapshot["r"]) == [(1, 1), (2, 2), (3, 3)]
        assert snapshot.epoch == rdb.commit_log.next_sequence

    def test_restore_reverts_committed_deltas(self, rdb):
        snapshot = rdb.snapshot()
        commit(rdb, "r", plus=[(9, 9)], minus=[(1, 1)])
        commit(rdb, "s", plus=[(2, 20)])
        rdb.restore(snapshot)
        assert sorted(rdb.relation("r")) == [(1, 1), (2, 2), (3, 3)]
        assert sorted(rdb.relation("s")) == [(1, 10)]

    def test_restore_preserves_bag_multiplicities(self, rs_schema):
        database = Database(rs_schema, bag=True)
        database.load("r", [(1, 1), (1, 1)])
        snapshot = database.snapshot()
        commit(database, "r", plus=[(1, 1)])
        database.restore(snapshot)
        assert database.relation("r").multiplicity((1, 1)) == 2

    def test_pickle_roundtrip_recreates_epochs(self, rdb):
        pin = rdb.epochs.pin()
        clone = pickle.loads(pickle.dumps(rdb))
        assert isinstance(clone.epochs, EpochManager)
        assert clone.relation("r")._observer is clone.epochs
        # The clone's manager is independent: committing there does not
        # disturb the original's pin.
        commit(clone, "r", plus=[(9, 9)])
        assert sorted(pin.relation("r")) == [(1, 1), (2, 2), (3, 3)]
        pin.release()

    def test_fork_cuts_at_pinned_epoch(self, rdb):
        commit(rdb, "r", plus=[(9, 9)])
        snapshot = rdb.snapshot()
        commit(rdb, "r", plus=[(10, 10)])
        fork = rdb.fork(snapshot)
        assert sorted(fork.relation("r")) == [(1, 1), (2, 2), (3, 3), (9, 9)]
        assert fork.commit_log.next_sequence == snapshot.epoch
        snapshot.release()


class TestConcurrentReaders:
    def test_pinned_iteration_is_stable_under_commits(self, rs_schema):
        """Regression: iterating a pinned view while commits land must
        neither raise (dict changed size during iteration) nor observe a
        torn state."""
        database = Database(rs_schema)
        database.load("r", [(i, i) for i in range(200)])
        session = Session(database)
        stop = threading.Event()
        failures = []

        def reader():
            try:
                while not stop.is_set():
                    result = session.query("r")
                    seen = {row for row in result}  # iterate the pinned view
                    count = len(seen)
                    assert count >= 200, f"torn read: {count} rows"
            except Exception as exc:  # pragma: no cover - failure capture
                failures.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for i in range(300):
                commit(database, "r", plus=[(1000 + i, i)])
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures, failures[0]

    def test_bare_name_query_is_pinned_by_default(self, rs_schema):
        database = Database(rs_schema)
        database.load("r", [(1, 1), (2, 2)])
        session = Session(database)
        result = session.query("r")
        iterator = iter(result.sorted_rows())
        first = next(iterator)
        commit(database, "r", plus=[(0, 0)])
        rest = list(iterator)
        assert [first] + rest == [(1, 1), (2, 2)]
        # Opting out returns the live relation itself.
        live = session.query("r", pinned=False)
        assert live is database.relation("r")
