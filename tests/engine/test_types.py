"""Domains, NULL, and value validation."""

import copy

import pytest

from repro.engine.types import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    NULL,
    STRING,
    domain_by_name,
    is_null,
    value_in_domain,
)
from repro.errors import TypeMismatchError


class TestDomains:
    def test_int_contains_int(self):
        assert INT.contains(5)

    def test_int_rejects_bool(self):
        # bool is an int subclass in Python; the domains stay disjoint.
        assert not INT.contains(True)

    def test_bool_contains_bool(self):
        assert BOOL.contains(False)

    def test_bool_rejects_int(self):
        assert not BOOL.contains(0)

    def test_float_contains_int(self):
        assert FLOAT.contains(3)

    def test_float_coerces_int(self):
        assert FLOAT.coerce(3) == 3

    def test_string_contains_str(self):
        assert STRING.contains("abc")

    def test_string_rejects_int(self):
        assert not STRING.contains(1)

    def test_any_contains_everything(self):
        for value in (1, 1.5, "x", True, NULL, None):
            assert ANY.contains(value)

    def test_coerce_raises_on_mismatch(self):
        with pytest.raises(TypeMismatchError):
            INT.coerce("not an int")

    def test_domain_by_name_aliases(self):
        assert domain_by_name("integer") is INT
        assert domain_by_name("TEXT") is STRING
        assert domain_by_name("real") is FLOAT
        assert domain_by_name("boolean") is BOOL

    def test_domain_by_name_unknown(self):
        with pytest.raises(TypeMismatchError):
            domain_by_name("decimal")

    def test_str_and_repr(self):
        assert str(INT) == "int"
        assert "int" in repr(INT)


class TestNull:
    def test_singleton(self):
        from repro.engine.types import _Null

        assert _Null() is NULL

    def test_falsy(self):
        assert not NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(0)
        assert not is_null(None)

    def test_deepcopy_preserves_identity(self):
        assert copy.deepcopy(NULL) is NULL
        assert copy.copy(NULL) is NULL

    def test_repr(self):
        assert repr(NULL) == "NULL"


class TestValueInDomain:
    def test_null_needs_nullable(self):
        assert not value_in_domain(NULL, INT, nullable=False)
        assert value_in_domain(NULL, INT, nullable=True)

    def test_plain_value(self):
        assert value_in_domain(7, INT)
        assert not value_in_domain("x", INT)
