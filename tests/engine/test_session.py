"""The Session facade and DatabaseView resolution."""

import pytest

from repro.engine import Relation, Session
from repro.engine.session import DatabaseView
from repro.errors import UnknownRelationError


class TestQueries:
    def test_query_returns_relation(self, plain_session):
        result = plain_session.query("select(beer, alcohol > 5.0)")
        assert isinstance(result, Relation)
        assert len(result) == 2

    def test_rows_sorted_deterministically(self, plain_session):
        rows = plain_session.rows("project(beer, [name])")
        assert rows == sorted(rows, key=repr)

    def test_query_does_not_change_state(self, db, plain_session):
        before = db.relation("beer").to_set()
        plain_session.query("diff(beer, beer)")
        assert db.relation("beer").to_set() == before
        assert db.logical_time == 0

    def test_query_with_aggregate(self, plain_session):
        assert plain_session.rows("cnt(beer)") == [(3,)]

    def test_query_unknown_relation(self, plain_session):
        with pytest.raises(UnknownRelationError):
            plain_session.query("ghost")


class TestTransactionHelpers:
    def test_transaction_from_text(self, plain_session):
        txn = plain_session.transaction("begin end")
        assert len(txn) == 0

    def test_transaction_passthrough(self, plain_session):
        txn = plain_session.transaction("begin end")
        assert plain_session.transaction(txn) is txn

    def test_execute_without_controller_does_not_modify(self, db, plain_session):
        result = plain_session.execute(
            'begin insert(beer, ("n", "ale", "heineken", -1.0)); end'
        )
        # No controller: even a "violating" insert commits.
        assert result.committed

    def test_verify_integrity_without_controller(self, plain_session):
        assert plain_session.verify_integrity() == []

    def test_verify_integrity_with_controller(self, session, db):
        assert session.verify_integrity() == []
        db.load("beer", [("rogue", "ale", "nowhere", -1.0)])
        assert set(session.verify_integrity()) == {"R1", "R2"}


class TestDatabaseView:
    def test_base_resolution(self, db):
        view = DatabaseView(db)
        assert view.resolve("beer") is db.relation("beer")

    def test_old_resolves_to_current_state(self, db):
        view = DatabaseView(db)
        assert view.resolve("beer@old").to_set() == db.relation("beer").to_set()

    def test_differentials_resolve_empty(self, db):
        view = DatabaseView(db)
        assert len(view.resolve("beer@plus")) == 0
        assert len(view.resolve("beer@minus")) == 0

    def test_unknown_base(self, db):
        with pytest.raises(UnknownRelationError):
            DatabaseView(db).resolve("ghost@plus")


class TestCorrectTransactionPredicate:
    """Def 3.5 via IntegrityController.is_correct_transaction."""

    def test_correct_transaction(self, db, controller):
        txn = Session(db).transaction(
            'begin insert(beer, ("ok", "ale", "heineken", 4.0)); end'
        )
        assert controller.is_correct_transaction(db, txn)

    def test_incorrect_transaction(self, db, controller):
        txn = Session(db).transaction(
            'begin insert(beer, ("bad", "ale", "heineken", -4.0)); end'
        )
        assert not controller.is_correct_transaction(db, txn)

    def test_predicate_is_non_destructive(self, db, controller):
        before = db.relation("beer").to_set()
        txn = Session(db).transaction(
            'begin insert(beer, ("bad", "ale", "heineken", -4.0)); end'
        )
        controller.is_correct_transaction(db, txn)
        assert db.relation("beer").to_set() == before
        assert db.logical_time == 0

    def test_aborting_transaction_is_vacuously_correct(self, db, controller):
        txn = Session(db).transaction(
            'begin insert(beer, ("x", "ale", "heineken", 4.0)); abort; end'
        )
        assert controller.is_correct_transaction(db, txn)
