"""Relation instances: set and multiset semantics."""

import pytest

from repro.engine import Relation, RelationSchema
from repro.engine.types import INT, STRING
from repro.errors import TypeMismatchError


@pytest.fixture
def schema() -> RelationSchema:
    return RelationSchema("t", [("a", INT), ("b", STRING)])


@pytest.fixture
def relation(schema) -> Relation:
    return Relation(schema, [(1, "x"), (2, "y")])


class TestSetSemantics:
    def test_len_and_contains(self, relation):
        assert len(relation) == 2
        assert (1, "x") in relation
        assert (3, "z") not in relation

    def test_duplicate_insert_is_noop(self, relation):
        assert relation.insert((1, "x")) is False
        assert len(relation) == 2

    def test_new_insert(self, relation):
        assert relation.insert((3, "z")) is True
        assert len(relation) == 3

    def test_delete_present(self, relation):
        assert relation.delete((1, "x")) is True
        assert len(relation) == 1

    def test_delete_absent(self, relation):
        assert relation.delete((9, "q")) is False
        assert len(relation) == 2

    def test_insert_validates(self, relation):
        with pytest.raises(TypeMismatchError):
            relation.insert(("bad", "x"))
        with pytest.raises(TypeMismatchError):
            relation.insert((1,))

    def test_insert_many_counts_changes(self, relation):
        assert relation.insert_many([(1, "x"), (5, "v"), (6, "w")]) == 2

    def test_delete_many_counts_changes(self, relation):
        assert relation.delete_many([(1, "x"), (9, "nope")]) == 1

    def test_equality_is_content_based(self, schema, relation):
        same = Relation(schema, [(2, "y"), (1, "x")])
        assert relation == same
        same.insert((3, "z"))
        assert relation != same

    def test_unhashable(self, relation):
        with pytest.raises(TypeError):
            hash(relation)

    def test_copy_independent(self, relation):
        clone = relation.copy()
        clone.insert((3, "z"))
        assert len(relation) == 2
        assert len(clone) == 3

    def test_to_set_and_sorted_rows(self, relation):
        assert relation.to_set() == frozenset({(1, "x"), (2, "y")})
        assert relation.sorted_rows() == [(1, "x"), (2, "y")]

    def test_filtered(self, relation):
        filtered = relation.filtered(lambda row: row[0] > 1)
        assert filtered.to_set() == frozenset({(2, "y")})
        assert len(relation) == 2  # original untouched

    def test_clear_and_replace(self, schema, relation):
        other = Relation(schema, [(7, "seven")])
        relation.replace_contents(other)
        assert relation.to_set() == frozenset({(7, "seven")})
        relation.clear()
        assert len(relation) == 0
        assert not relation

    def test_with_schema_arity_check(self, relation):
        narrow = RelationSchema("n", [("only", INT)])
        with pytest.raises(TypeMismatchError):
            relation.with_schema(narrow)


class TestBagSemantics:
    def test_duplicates_accumulate(self, schema):
        bag = Relation(schema, bag=True)
        assert bag.insert((1, "x")) is True
        assert bag.insert((1, "x")) is True
        assert len(bag) == 2
        assert bag.distinct_count() == 1
        assert bag.multiplicity((1, "x")) == 2

    def test_iteration_yields_duplicates(self, schema):
        bag = Relation(schema, [(1, "x"), (1, "x"), (2, "y")], bag=True)
        assert sorted(bag) == [(1, "x"), (1, "x"), (2, "y")]

    def test_delete_removes_one_occurrence(self, schema):
        bag = Relation(schema, [(1, "x"), (1, "x")], bag=True)
        assert bag.delete((1, "x")) is True
        assert len(bag) == 1
        assert bag.delete((1, "x")) is True
        assert len(bag) == 0

    def test_multiplicity_of_absent_row(self, schema):
        bag = Relation(schema, bag=True)
        assert bag.multiplicity((1, "x")) == 0

    def test_set_vs_bag_equality(self, schema):
        bag = Relation(schema, [(1, "x"), (1, "x")], bag=True)
        flat = Relation(schema, [(1, "x")])
        assert bag != flat
        single_bag = Relation(schema, [(1, "x")], bag=True)
        assert single_bag == flat

    def test_rows_iterates_distinct(self, schema):
        bag = Relation(schema, [(1, "x"), (1, "x")], bag=True)
        assert list(bag.rows()) == [(1, "x")]


class TestSortedRowsKey:
    def test_numeric_columns_sort_numerically(self):
        from repro.engine import DatabaseSchema, Relation, RelationSchema
        from repro.engine.types import INT

        schema = RelationSchema("n", [("a", INT)])
        relation = Relation(schema, [(10,), (2,), (-1,), (0,)])
        # key=repr would have ordered 10 before 2 ("(10,)" < "(2,)").
        assert relation.sorted_rows() == [(-1,), (0,), (2,), (10,)]

    def test_mixed_types_and_nulls_sort_without_errors(self):
        from repro.engine import Relation, RelationSchema
        from repro.engine.types import ANY, NULL
        from repro.engine.schema import Attribute

        schema = RelationSchema(
            "m", [Attribute("a", ANY, nullable=True)]
        )
        relation = Relation(
            schema, [("x",), (3,), (NULL,), (1.5,), ("a",)]
        )
        assert relation.sorted_rows() == [
            (NULL,),
            (1.5,),
            (3,),
            ("a",),
            ("x",),
        ]

    def test_sorted_rows_respects_bag_multiplicities(self):
        from repro.engine import Relation, RelationSchema
        from repro.engine.types import INT

        schema = RelationSchema("b", [("a", INT)])
        relation = Relation(schema, [(2,), (1,), (2,)], bag=True)
        assert relation.sorted_rows() == [(1,), (2,), (2,)]
