"""The shared tokenizer."""

import pytest

from repro.errors import LexError, ParseError
from repro.lex import Token, TokenStream, tokenize


def kinds(text):
    return [(token.kind, token.value) for token in tokenize(text)[:-1]]


class TestTokens:
    def test_names_and_numbers(self):
        assert kinds("beer 42 3.14") == [
            ("NAME", "beer"),
            ("INT", 42),
            ("FLOAT", 3.14),
        ]

    def test_scientific_notation(self):
        assert kinds("1e3 2.5e-2") == [("FLOAT", 1000.0), ("FLOAT", 0.025)]

    def test_integer_dot_not_float_without_digit(self):
        # "1." followed by a name is INT, OP, NAME (attribute selection).
        assert kinds("x.1") == [("NAME", "x"), ("OP", "."), ("INT", 1)]

    def test_strings_with_escapes(self):
        tokens = kinds(r'"a\"b" ' + r"'c\nd'")
        assert tokens == [("STRING", 'a"b'), ("STRING", "c\nd")]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_operators_longest_match(self):
        assert kinds(":= => <= >= != <") == [
            ("OP", ":="),
            ("OP", "=>"),
            ("OP", "<="),
            ("OP", ">="),
            ("OP", "!="),
            ("OP", "<"),
        ]

    def test_unicode_aliases(self):
        assert kinds("∀ ∃ ∧ ∨ ¬ ⇒ ∈ ≠ ≤ ≥") == [
            ("NAME", "forall"),
            ("NAME", "exists"),
            ("NAME", "and"),
            ("NAME", "or"),
            ("NAME", "not"),
            ("OP", "=>"),
            ("NAME", "in"),
            ("OP", "!="),
            ("OP", "<="),
            ("OP", ">="),
        ]

    def test_auxiliary_names_single_token(self):
        assert kinds("beer@old beer@plus beer@minus") == [
            ("NAME", "beer@old"),
            ("NAME", "beer@plus"),
            ("NAME", "beer@minus"),
        ]

    def test_bad_auxiliary_suffix(self):
        with pytest.raises(LexError):
            tokenize("beer@new")

    def test_comments_skipped(self):
        assert kinds("a # comment\n b") == [("NAME", "a"), ("NAME", "b")]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_eof_token(self):
        assert tokenize("")[-1] == Token("EOF", None, "", 0)


class TestTokenStream:
    def test_accept_and_expect(self):
        stream = TokenStream("a , b")
        assert stream.accept("NAME").value == "a"
        assert stream.accept("OP", ";") is None
        stream.expect("OP", ",")
        assert stream.expect("NAME").value == "b"
        stream.expect_eof()

    def test_keyword_matching_case_insensitive(self):
        stream = TokenStream("FORALL")
        assert stream.at_name("forall")
        assert stream.accept_name("forall") is not None

    def test_expect_error_message(self):
        stream = TokenStream("a")
        with pytest.raises(ParseError, match="expected ','"):
            stream.expect("OP", ",")

    def test_expect_eof_error(self):
        stream = TokenStream("a b")
        stream.advance()
        with pytest.raises(ParseError, match="trailing input"):
            stream.expect_eof()

    def test_peek_does_not_advance(self):
        stream = TokenStream("a b")
        assert stream.peek().value == "b"
        assert stream.current.value == "a"

    def test_advance_stops_at_eof(self):
        stream = TokenStream("a")
        stream.advance()
        assert stream.advance().kind == "EOF"
        assert stream.advance().kind == "EOF"
