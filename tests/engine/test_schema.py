"""Relation and database schemas (paper Defs 2.1-2.2)."""

import pytest

from repro.engine import Attribute, DatabaseSchema, RelationSchema
from repro.engine.types import FLOAT, INT, STRING
from repro.errors import (
    DuplicateRelationError,
    SchemaError,
    TypeMismatchError,
    UnknownAttributeError,
    UnknownRelationError,
)


@pytest.fixture
def emp() -> RelationSchema:
    return RelationSchema(
        "emp", [("id", INT), ("name", STRING), ("salary", FLOAT)]
    )


class TestAttribute:
    def test_domain_by_string(self):
        attribute = Attribute("age", "int")
        assert attribute.domain is INT

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Attribute("9lives", INT)
        with pytest.raises(SchemaError):
            Attribute("has space", INT)
        with pytest.raises(SchemaError):
            Attribute("", INT)

    def test_as_nullable(self):
        attribute = Attribute("a", INT)
        nullable = attribute.as_nullable()
        assert nullable.nullable and not attribute.nullable
        assert nullable.as_nullable() is nullable

    def test_equality_and_hash(self):
        assert Attribute("a", INT) == Attribute("a", INT)
        assert Attribute("a", INT) != Attribute("a", FLOAT)
        assert hash(Attribute("a", INT)) == hash(Attribute("a", INT))


class TestRelationSchema:
    def test_arity_and_names(self, emp):
        assert emp.arity == 3
        assert emp.attribute_names == ("id", "name", "salary")

    def test_position_of_by_name_and_index(self, emp):
        assert emp.position_of("id") == 1
        assert emp.position_of("salary") == 3
        assert emp.position_of(2) == 2

    def test_position_of_unknown(self, emp):
        with pytest.raises(UnknownAttributeError):
            emp.position_of("age")
        with pytest.raises(UnknownAttributeError):
            emp.position_of(0)
        with pytest.raises(UnknownAttributeError):
            emp.position_of(4)

    def test_attribute_at(self, emp):
        assert emp.attribute_at("name").domain is STRING
        assert emp.attribute_at(1).name == "id"

    def test_duplicate_attribute_names(self):
        with pytest.raises(SchemaError):
            RelationSchema("t", [("a", INT), ("a", STRING)])

    def test_empty_attributes(self):
        with pytest.raises(SchemaError):
            RelationSchema("t", [])

    def test_validate_tuple_ok(self, emp):
        assert emp.validate_tuple((1, "ann", 100.0)) == (1, "ann", 100.0)

    def test_validate_tuple_coerces_float(self, emp):
        validated = emp.validate_tuple((1, "ann", 100))
        assert validated[2] == 100.0
        assert isinstance(validated[2], float)

    def test_validate_tuple_wrong_arity(self, emp):
        with pytest.raises(TypeMismatchError):
            emp.validate_tuple((1, "ann"))

    def test_validate_tuple_wrong_domain(self, emp):
        with pytest.raises(TypeMismatchError):
            emp.validate_tuple(("one", "ann", 100.0))

    def test_union_compatibility(self, emp):
        clone = emp.renamed("emp2")
        assert emp.is_union_compatible(clone)
        other = RelationSchema("t", [("x", INT)])
        assert not emp.is_union_compatible(other)

    def test_renamed_keeps_attributes(self, emp):
        clone = emp.renamed("staff")
        assert clone.name == "staff"
        assert clone.attributes == emp.attributes

    def test_equality(self, emp):
        assert emp == RelationSchema(
            "emp", [("id", INT), ("name", STRING), ("salary", FLOAT)]
        )
        assert emp != emp.renamed("other")


class TestDatabaseSchema:
    def test_add_and_lookup(self, emp):
        db_schema = DatabaseSchema([emp])
        assert db_schema.relation("emp") is emp
        assert "emp" in db_schema
        assert len(db_schema) == 1

    def test_duplicate_relation(self, emp):
        db_schema = DatabaseSchema([emp])
        with pytest.raises(DuplicateRelationError):
            db_schema.add(emp.renamed("emp"))

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            DatabaseSchema([]).relation("ghost")

    def test_iteration_order(self, emp):
        other = RelationSchema("dept", [("id", INT)])
        db_schema = DatabaseSchema([emp, other])
        assert [schema.name for schema in db_schema] == ["emp", "dept"]
        assert db_schema.relation_names == ("emp", "dept")
