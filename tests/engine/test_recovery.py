"""Crash recovery: checkpoint + replay through the live delta path."""

import copy

import pytest

from repro.engine import (
    Database,
    DatabaseSchema,
    RelationSchema,
    Session,
    recover,
    replay_to,
)
from repro.engine.types import INT, STRING
from repro.engine.wal import WriteAheadLog


@pytest.fixture
def schema():
    return DatabaseSchema(
        [
            RelationSchema("emp", [("id", INT), ("dept", STRING)]),
            RelationSchema("dept", [("name", STRING)]),
        ]
    )


def _state(database):
    return {
        name.name: dict(database.relation(name.name).items())
        for name in database.schema
    }


def _run_workload(database):
    session = Session(database)
    for i in range(5):
        assert session.execute(
            f"begin insert(emp, ({i}, 'd{i % 2}')); end"
        ).committed
    assert session.execute("begin delete(emp, (0, 'd0')); end").committed
    assert session.execute(
        "begin insert(dept, ('d0')); insert(dept, ('d1')); end"
    ).committed


class TestRecover:
    def test_recovered_state_equals_live_state(self, schema, tmp_path):
        database = Database(schema)
        database.load("dept", [("seed",)])
        database.attach_wal(WriteAheadLog(tmp_path))
        _run_workload(database)
        live = _state(database)
        live_time = database.logical_time
        database.detach_wal()

        recovered, report = recover(tmp_path)
        assert _state(recovered) == live
        assert recovered.logical_time == live_time
        assert report.replayed == 7
        assert recovered.wal is not None  # full recovery re-attaches
        recovered.detach_wal()

    def test_recovered_equals_in_memory_replay(self, schema, tmp_path):
        # The acceptance criterion: replaying the durable log produces the
        # same state as replaying the in-memory commit log.
        database = Database(schema)
        database.attach_wal(WriteAheadLog(tmp_path))
        reference = copy.deepcopy(database)
        _run_workload(database)
        for record in database.commit_log.since(0)[0]:
            reference.apply_deltas(record.differentials, record=False)
        database.detach_wal()
        recovered, _report = recover(tmp_path, attach=False)
        assert _state(recovered) == _state(reference)

    def test_recovery_continues_committing(self, schema, tmp_path):
        database = Database(schema)
        database.attach_wal(WriteAheadLog(tmp_path))
        _run_workload(database)
        database.detach_wal()

        recovered, _ = recover(tmp_path)
        next_before = recovered.commit_log.next_sequence
        Session(recovered).execute("begin insert(emp, (99, 'x')); end")
        assert recovered.commit_log.next_sequence == next_before + 1
        recovered.detach_wal()
        # The appended commit is durable and chained onto the old history.
        final, report = recover(tmp_path, attach=False)
        assert (99, "x") in final.relation("emp")
        assert report.last_sequence == next_before

    def test_recovery_from_late_checkpoint_replays_suffix_only(
        self, schema, tmp_path
    ):
        database = Database(schema)
        database.attach_wal(WriteAheadLog(tmp_path))
        _run_workload(database)
        database.wal.write_checkpoint(database)  # checkpoint at #7
        session = Session(database)
        assert session.execute("begin insert(emp, (50, 'z')); end").committed
        live = _state(database)
        database.detach_wal()
        recovered, report = recover(tmp_path, attach=False)
        assert report.checkpoint_sequence == 7
        assert report.replayed == 1
        assert _state(recovered) == live

    def test_replay_preserves_sequences_and_delta_stats(self, schema, tmp_path):
        database = Database(schema)
        database.attach_wal(WriteAheadLog(tmp_path))
        _run_workload(database)
        database.detach_wal()
        recovered, _ = recover(tmp_path, attach=False)
        records, lost = recovered.commit_log.since(0)
        assert lost == 0
        assert [r.sequence for r in records] == list(range(7))
        assert recovered.delta_stats.expected("emp@plus") is not None


class TestReplayTo:
    def test_point_in_time_prefix(self, schema, tmp_path):
        database = Database(schema)
        database.attach_wal(WriteAheadLog(tmp_path))
        session = Session(database)
        states = []
        for i in range(4):
            assert session.execute(
                f"begin insert(emp, ({i}, 'd')); end"
            ).committed
            states.append(_state(database))
        database.detach_wal()
        for sequence, expected in enumerate(states):
            restored, report = replay_to(tmp_path, sequence)
            assert _state(restored) == expected
            assert report.upto == sequence
            assert restored.wal is None  # always detached

    def test_replay_to_minus_one_is_checkpoint_state(self, schema, tmp_path):
        database = Database(schema)
        database.load("dept", [("seed",)])
        database.attach_wal(WriteAheadLog(tmp_path))
        _run_workload(database)
        database.detach_wal()
        restored, report = replay_to(tmp_path, -1)
        assert report.replayed == 0
        assert _state(restored)["dept"] == {("seed",): 1}
        assert _state(restored)["emp"] == {}


class TestDeltaChainRecovery:
    def _chained_run(self, schema, tmp_path):
        """full@0 -> delta -> delta -> two tail commits; returns live state."""
        database = Database(schema)
        database.attach_wal(WriteAheadLog(tmp_path))
        session = Session(database)
        for i in range(3):
            assert session.execute(f"begin insert(emp, ({i}, 'a')); end").committed
        database.checkpoint(delta=True)
        for i in range(3, 6):
            assert session.execute(f"begin insert(emp, ({i}, 'b')); end").committed
        assert session.execute("begin delete(emp, (0, 'a')); end").committed
        database.checkpoint(delta=True)
        assert session.execute("begin insert(dept, ('tail')); end").committed
        live = _state(database)
        next_sequence = database.commit_log.next_sequence
        database.detach_wal()
        return live, next_sequence

    def test_chain_recovery_equals_live_state(self, schema, tmp_path):
        live, next_sequence = self._chained_run(schema, tmp_path)
        recovered, report = recover(tmp_path, attach=False)
        assert _state(recovered) == live
        assert recovered.commit_log.next_sequence == next_sequence
        # The anchor is the newest delta link: only the tail replays.
        assert report.checkpoint_sequence == 7
        assert report.replayed == 1

    def test_recovered_chain_keeps_committing(self, schema, tmp_path):
        self._chained_run(schema, tmp_path)
        recovered, _ = recover(tmp_path)
        session = Session(recovered)
        assert session.execute("begin insert(emp, (99, 'post')); end").committed
        recovered.detach_wal()
        again, _ = recover(tmp_path, attach=False)
        assert (99, "post") in again.relation("emp")

    def test_point_in_time_respects_chain_anchors(self, schema, tmp_path):
        database = Database(schema)
        database.attach_wal(WriteAheadLog(tmp_path))
        session = Session(database)
        states = []
        for i in range(6):
            assert session.execute(f"begin insert(emp, ({i}, 'd')); end").committed
            states.append(_state(database))
            if i == 2:
                database.checkpoint(delta=True)
        database.detach_wal()
        for sequence, expected in enumerate(states):
            restored, _ = replay_to(tmp_path, sequence)
            assert _state(restored) == expected, f"sequence {sequence}"

    def test_missing_full_ancestor_recovers_or_fails_loud(self, schema, tmp_path):
        live, _ = self._chained_run(schema, tmp_path)
        # Delete the full anchor the deltas chain back to; the WAL still
        # holds every record, so recovery must either compose from some
        # other intact anchor or fail loudly — never a silent wrong state.
        for seq, path in WriteAheadLog(tmp_path).checkpoints():
            if path.suffix == ".ckpt":
                path.unlink()
        from repro.errors import WalError

        try:
            recovered, _ = recover(tmp_path, attach=False)
        except WalError:
            return
        assert _state(recovered) == live
