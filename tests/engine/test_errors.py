"""The exception hierarchy: catchability contracts."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        leaves = [
            errors.SchemaError("x"),
            errors.TypeMismatchError("x"),
            errors.UnknownRelationError("r"),
            errors.UnknownAttributeError("a", "r"),
            errors.DuplicateRelationError("x"),
            errors.LexError("bad", 0, "text"),
            errors.ParseError("x"),
            errors.AnalysisError("x"),
            errors.UnsafeFormulaError("x"),
            errors.EvaluationError("x"),
            errors.TransactionAborted("x"),
            errors.NoActiveTransactionError("x"),
            errors.NestedTransactionError("x"),
            errors.ConstraintViolation("c"),
            errors.TriggerCycleError([["a", "b", "a"]]),
            errors.RuleError("x"),
            errors.TranslationError("x"),
            errors.FragmentationError("x"),
        ]
        for error in leaves:
            assert isinstance(error, errors.ReproError)

    def test_language_errors_catchable_together(self):
        for error in (
            errors.LexError("bad", 0, "text"),
            errors.ParseError("x"),
            errors.AnalysisError("x"),
            errors.UnsafeFormulaError("x"),
        ):
            assert isinstance(error, errors.LanguageError)

    def test_integrity_errors_catchable_together(self):
        for error in (
            errors.ConstraintViolation("c"),
            errors.TriggerCycleError([["a"]]),
            errors.RuleError("x"),
            errors.TranslationError("x"),
        ):
            assert isinstance(error, errors.IntegrityError)

    def test_transaction_aborted_carries_reason(self):
        error = errors.TransactionAborted("why not")
        assert error.reason == "why not"
        assert "why not" in str(error)

    def test_unknown_relation_message(self):
        error = errors.UnknownRelationError("ghost", "somewhere")
        assert "ghost" in str(error) and "somewhere" in str(error)
        assert error.name == "ghost"

    def test_lex_error_snippet(self):
        error = errors.LexError("unexpected character", 10, "0123456789X123")
        assert "position 10" in str(error)
        assert "X" in str(error)

    def test_cycle_error_formats_cycles(self):
        error = errors.TriggerCycleError([["a", "b", "a"], ["c", "c"]])
        assert "a -> b -> a" in str(error)
        assert error.cycles == [["a", "b", "a"], ["c", "c"]]

    def test_constraint_violation_detail(self):
        error = errors.ConstraintViolation("fk", "3 dangling rows")
        assert "fk" in str(error) and "3 dangling rows" in str(error)
        assert error.constraint_name == "fk"
