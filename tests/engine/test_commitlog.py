"""The bounded commit log, delta coalescing, and delta-based restore."""

import copy

import pytest

from repro.engine import Database, DatabaseSchema, Relation, RelationSchema, Session
from repro.engine.commitlog import (
    CommitLog,
    coalesce_differentials,
    take_batches,
)
from repro.engine.database import DatabaseSnapshot
from repro.engine.types import INT


@pytest.fixture
def schema():
    return DatabaseSchema([RelationSchema("r", [("a", INT), ("b", INT)])])


@pytest.fixture
def db(schema):
    database = Database(schema)
    database.load("r", [(1, 1), (2, 2), (3, 3)])
    return database


def _relation(schema, rows, bag=False):
    return Relation(schema.relation("r"), rows, bag=bag)


def _commit(session, text):
    result = session.execute(text)
    assert result.committed
    return result


class TestCommitLog:
    def test_apply_deltas_appends(self, db, schema):
        plus = _relation(schema, [(9, 9)])
        db.apply_deltas({"r": (plus, None)})
        assert len(db.commit_log) == 1
        [record] = list(db.commit_log)
        assert record.sequence == 0
        assert record.pre_time == 0 and record.post_time == 1
        assert record.sizes() == {"r": (1, 0)}

    def test_empty_sides_normalized(self, db, schema):
        empty = _relation(schema, [])
        plus = _relation(schema, [(9, 9)])
        db.apply_deltas({"r": (plus, empty)})
        [record] = list(db.commit_log)
        assert record.differentials["r"] == (plus, None)

    def test_untouched_relation_dropped(self, db, schema):
        empty = _relation(schema, [])
        db.apply_deltas({"r": (empty, None)})
        [record] = list(db.commit_log)
        assert record.is_empty

    def test_transaction_commits_are_recorded(self, db):
        session = Session(db)
        _commit(session, "begin insert(r, (7, 7)); end")
        _commit(session, "begin delete(r, (1, 1)); end")
        records = list(db.commit_log)
        assert [r.sequence for r in records] == [0, 1]
        assert records[0].sizes() == {"r": (1, 0)}
        assert records[1].sizes() == {"r": (0, 1)}

    def test_aborted_transactions_leave_no_record(self, db):
        session = Session(db)
        session.execute("begin insert(r, (7, 7)); abort; end")
        assert len(db.commit_log) == 0

    def test_capacity_eviction_and_lost_count(self, schema):
        database = Database(schema)
        database.commit_log = CommitLog(capacity=2)
        session = Session(database)
        for value in range(4):
            _commit(session, f"begin insert(r, ({value}, {value})); end")
        log = database.commit_log
        assert len(log) == 2
        assert log.first_sequence == 2
        records, lost = log.since(0)
        assert [r.sequence for r in records] == [2, 3]
        assert lost == 2
        records, lost = log.since(3)
        assert [r.sequence for r in records] == [3]
        assert lost == 0

    def test_since_negative_cursor(self, db):
        session = Session(db)
        _commit(session, "begin insert(r, (7, 7)); end")
        # A cursor below the log's first sequence counts nothing as lost
        # while the log still holds everything from sequence 0.
        records, lost = db.commit_log.since(-5)
        assert [r.sequence for r in records] == [0]
        assert lost == 0

    def test_since_cursor_past_next_sequence(self, db):
        session = Session(db)
        _commit(session, "begin insert(r, (7, 7)); end")
        records, lost = db.commit_log.since(db.commit_log.next_sequence + 10)
        assert records == []
        assert lost == 0

    def test_since_cursor_exactly_on_evicted_boundary(self, schema):
        database = Database(schema)
        database.commit_log = CommitLog(capacity=2)
        session = Session(database)
        for value in range(4):  # sequences 0..3; 0 and 1 evicted
            _commit(session, f"begin insert(r, ({value}, {value})); end")
        log = database.commit_log
        # Cursor exactly at the first surviving record: nothing lost.
        records, lost = log.since(2)
        assert [r.sequence for r in records] == [2, 3]
        assert lost == 0
        # Cursor on the newest evicted record: exactly one commit lost.
        records, lost = log.since(1)
        assert [r.sequence for r in records] == [2, 3]
        assert lost == 1

    def test_append_at_replays_original_sequence(self, db, schema):
        log = db.commit_log
        plus = _relation(schema, [(9, 9)])
        record = log.append_at(7, {"r": (plus, None)}, 7, 8)
        assert record.sequence == 7
        assert log.next_sequence == 8
        # Replay cannot rewind below what the log has already assigned.
        with pytest.raises(ValueError):
            log.append_at(3, {"r": (plus, None)}, 3, 4)

    def test_truncate_through(self, db):
        session = Session(db)
        for value in range(3):
            _commit(session, f"begin insert(r, ({value + 10}, 0)); end")
        dropped = db.commit_log.truncate_through(1)
        assert dropped == 2
        assert db.commit_log.first_sequence == 2

    def test_deepcopy_survives_lock(self, db):
        session = Session(db)
        _commit(session, "begin insert(r, (7, 7)); end")
        clone = copy.deepcopy(db)
        assert len(clone.commit_log) == 1

    def test_restore_replay_not_recorded(self, db):
        snapshot = db.snapshot()
        session = Session(db)
        _commit(session, "begin insert(r, (7, 7)); end")
        assert len(db.commit_log) == 1
        db.restore(snapshot)
        # The inverse replay is not a commit: no new record, no delta stat.
        assert len(db.commit_log) == 1


class TestCoalesce:
    def test_consecutive_inserts_merge(self, db):
        session = Session(db)
        first = _commit(session, "begin insert(r, (7, 7)); end")
        second = _commit(session, "begin insert(r, (8, 8)); end")
        merged = coalesce_differentials(
            [first.differentials, second.differentials], db
        )
        plus, minus = merged["r"]
        assert plus.to_set() == {(7, 7), (8, 8)}
        assert minus is None

    def test_insert_then_delete_cancels(self, db):
        session = Session(db)
        first = _commit(session, "begin insert(r, (7, 7)); end")
        second = _commit(session, "begin delete(r, (7, 7)); end")
        merged = coalesce_differentials(
            [first.differentials, second.differentials], db
        )
        assert merged == {}

    def test_delete_then_reinsert_cancels(self, db):
        session = Session(db)
        first = _commit(session, "begin delete(r, (1, 1)); end")
        second = _commit(session, "begin insert(r, (1, 1)); end")
        merged = coalesce_differentials(
            [first.differentials, second.differentials], db
        )
        assert merged == {}

    def test_bag_multiplicities_sum(self, schema):
        database = Database(schema, bag=True)
        plus_a = _relation(schema, [(5, 5), (5, 5)], bag=True)
        plus_b = _relation(schema, [(5, 5)], bag=True)
        merged = coalesce_differentials(
            [{"r": (plus_a, None)}, {"r": (plus_b, None)}], database
        )
        plus, minus = merged["r"]
        assert plus.multiplicity((5, 5)) == 3
        assert minus is None

    def test_bag_coalesce_is_linear_in_distinct_rows(self, schema, monkeypatch):
        # One mutation call per distinct row, regardless of multiplicity —
        # not one insert per occurrence.
        database = Database(schema, bag=True)
        plus = _relation(schema, [(5, 5)], bag=True)
        for _ in range(999):
            plus.insert((5, 5))
        minus = _relation(schema, [(6, 6)], bag=True)
        for _ in range(499):
            minus.insert((6, 6))
        calls = {"count": 0}
        original = Relation.insert_count

        def counting_insert_count(self, row, count, _validated=False):
            calls["count"] += 1
            return original(self, row, count, _validated=_validated)

        monkeypatch.setattr(Relation, "insert_count", counting_insert_count)
        monkeypatch.setattr(
            Relation,
            "insert",
            lambda self, row: pytest.fail("per-occurrence insert in coalesce"),
        )
        merged = coalesce_differentials(
            [{"r": (plus, None)}, {"r": (None, minus)}], database
        )
        assert calls["count"] == 2
        merged_plus, merged_minus = merged["r"]
        assert merged_plus.multiplicity((5, 5)) == 1000
        assert merged_minus.multiplicity((6, 6)) == 500

    def test_take_batches(self, db):
        session = Session(db)
        for value in range(3):
            _commit(session, f"begin insert(r, ({value + 10}, 0)); end")
        records, _ = db.commit_log.since(0)
        assert len(take_batches(records, coalesce=True)) == 1
        assert len(take_batches(records, coalesce=False)) == 3


class TestSnapshotRestore:
    def test_restore_preserves_relation_objects(self, db):
        live = db.relation("r")
        snapshot = db.snapshot()
        Session(db).execute("begin insert(r, (7, 7)); delete(r, (1, 1)); end")
        db.restore(snapshot)
        # In-place frozen delta application: same object, original rows.
        assert db.relation("r") is live
        assert live.to_set() == {(1, 1), (2, 2), (3, 3)}

    def test_restore_resets_logical_time(self, db):
        snapshot = db.snapshot()
        Session(db).execute("begin insert(r, (7, 7)); end")
        assert db.logical_time == 1
        db.restore(snapshot)
        assert db.logical_time == 0

    def test_restore_maintains_built_indexes(self, db):
        db.create_index("r", ["a"])
        snapshot = db.snapshot()
        Session(db).execute("begin insert(r, (7, 7)); end")
        db.restore(snapshot)
        index = db.relation("r").built_index((0,))
        assert index is not None
        assert index.lookup(7) == ()
        assert index.lookup(2) == ((2, 2),)

    def test_snapshot_is_mapping_compatible(self, db):
        snapshot = db.snapshot()
        assert isinstance(snapshot, DatabaseSnapshot)
        assert set(snapshot) == {"r"}
        assert snapshot["r"].to_set() == {(1, 1), (2, 2), (3, 3)}
        assert dict(snapshot) == {"r": snapshot["r"]}

    def test_legacy_mapping_restore(self, db, schema):
        frozen = {"r": _relation(schema, [(9, 9)])}
        db.restore(frozen)
        assert db.relation("r").to_set() == {(9, 9)}

    def test_restore_bag_multiplicities(self, schema):
        database = Database(schema, bag=True)
        database.load("r", [(1, 1), (1, 1), (2, 2)])
        snapshot = database.snapshot()
        database.relation("r").insert((1, 1))
        database.relation("r").delete((2, 2))
        database.restore(snapshot)
        assert database.relation("r").multiplicity((1, 1)) == 2
        assert database.relation("r").multiplicity((2, 2)) == 1
