"""OverlayRelation / OverlayIndex unit behaviour (engine substrate)."""

from __future__ import annotations

import pytest

from repro.engine import Database, DatabaseSchema, Relation, RelationSchema
from repro.engine.overlay import OverlayRelation
from repro.engine.transaction import TransactionContext
from repro.engine.types import INT


def _schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("r", [("a", INT), ("b", INT)]),
            RelationSchema("s", [("c", INT), ("d", INT)]),
        ]
    )


def _overlay(rows, bag: bool = False):
    database = Database(_schema(), bag=bag)
    database.load("r", rows)
    base = database.relation("r")
    schema = base.schema
    return base, OverlayRelation(
        base,
        plus=Relation(schema, bag=bag),
        minus=Relation(schema, bag=bag),
    )


class TestOverlayReads:
    def test_reads_pass_through_untouched(self):
        base, overlay = _overlay([(1, 1), (2, 2)])
        assert len(overlay) == 2
        assert (1, 1) in overlay and (3, 3) not in overlay
        assert sorted(overlay.rows()) == [(1, 1), (2, 2)]
        assert overlay.distinct_count() == 2
        assert dict(overlay.items()) == {(1, 1): 1, (2, 2): 1}

    def test_writes_touch_only_the_differentials(self):
        base, overlay = _overlay([(1, 1), (2, 2)])
        assert overlay.insert((3, 3))
        assert overlay.delete((1, 1))
        assert len(base) == 2, "the base relation must stay untouched"
        assert dict(overlay.plus.items()) == {(3, 3): 1}
        assert dict(overlay.minus.items()) == {(1, 1): 1}
        assert sorted(overlay.rows()) == [(2, 2), (3, 3)]
        assert len(overlay) == 2

    def test_insert_cancels_pending_delete(self):
        _, overlay = _overlay([(1, 1)])
        overlay.delete((1, 1))
        assert (1, 1) not in overlay
        assert overlay.insert((1, 1))
        assert (1, 1) in overlay
        assert not overlay.plus and not overlay.minus

    def test_duplicate_insert_is_a_noop_in_set_mode(self):
        _, overlay = _overlay([(1, 1)])
        assert not overlay.insert((1, 1))
        assert not overlay.plus

    def test_bag_mode_multiplicities_combine(self):
        _, overlay = _overlay([(1, 1), (1, 1)], bag=True)
        assert overlay.multiplicity((1, 1)) == 2
        overlay.insert((1, 1))
        assert overlay.multiplicity((1, 1)) == 3
        assert len(overlay) == 3
        assert overlay.distinct_count() == 1
        overlay.delete((1, 1))
        overlay.delete((1, 1))
        assert overlay.multiplicity((1, 1)) == 1
        assert (1, 1) in overlay
        assert dict(overlay.items()) == {(1, 1): 1}
        overlay.delete((1, 1))
        assert (1, 1) not in overlay
        assert not list(overlay.rows())

    def test_materialization_caches_and_invalidates(self):
        _, overlay = _overlay([(1, 1)])
        first = overlay._rows
        assert first == {(1, 1): 1}
        assert overlay._rows is first, "repeat access must reuse the cache"
        overlay.insert((2, 2))
        assert overlay._rows == {(1, 1): 1, (2, 2): 1}

    def test_filtered_and_copy_materialize_plain_relations(self):
        _, overlay = _overlay([(1, 1), (2, 2)])
        overlay.insert((3, 3))
        overlay.delete((1, 1))
        kept = overlay.filtered(lambda row: row[0] >= 2)
        assert type(kept) is Relation
        assert sorted(kept.rows()) == [(2, 2), (3, 3)]
        clone = overlay.copy()
        assert type(clone) is Relation
        assert dict(clone.items()) == dict(overlay.items())
        clone.insert((9, 9))
        assert (9, 9) not in overlay

    def test_equality_against_plain_relations(self):
        _, overlay = _overlay([(1, 1)])
        overlay.insert((2, 2))
        expected = Relation(overlay.schema, [(1, 1), (2, 2)])
        assert overlay == expected
        assert expected == overlay

    def test_clear_empties_via_the_differentials(self):
        base, overlay = _overlay([(1, 1), (2, 2)])
        overlay.insert((3, 3))
        overlay.clear()
        assert len(overlay) == 0 and not overlay
        assert len(base) == 2


class TestOverlayIndex:
    def _indexed_overlay(self, bag: bool = False):
        database = Database(_schema(), bag=bag)
        database.load("r", [(i, i % 3) for i in range(10)])
        database.create_index("r", ["a"])
        context = TransactionContext(database)
        return database, context, context._working_copy("r")

    def test_lookup_reflects_delta_corrections(self):
        _, _, overlay = self._indexed_overlay()
        index = overlay.built_index((0,))
        assert index.lookup(3) == ((3, 0),)
        overlay.delete((3, 0))
        assert index.lookup(3) == ()
        overlay.insert((3, 9))
        assert index.lookup(3) == ((3, 9),)
        overlay.insert((77, 7))
        assert index.lookup(77) == ((77, 7),)

    def test_buckets_view_matches_lookup(self):
        _, _, overlay = self._indexed_overlay()
        overlay.delete((3, 0))
        overlay.insert((77, 7))
        index = overlay.built_index((0,))
        assert 3 not in index.buckets
        assert index.buckets.get(3) is None
        assert list(index.buckets.get(77)) == [(77, 7)]
        assert dict(index.buckets.items())[77] == {(77, 7): None}
        assert len(index.buckets) == 10  # 10 base keys − 1 emptied + 1 new
        assert sorted(index.buckets) == sorted(
            {row[0] for row in overlay.rows()}
        )

    def test_bag_partial_delete_keeps_the_row_visible(self):
        database = Database(_schema(), bag=True)
        database.load("r", [(1, 1), (1, 1), (2, 2)])
        database.create_index("r", ["a"])
        context = TransactionContext(database)
        overlay = context._working_copy("r")
        overlay.delete((1, 1))
        index = overlay.built_index((0,))
        assert index.lookup(1) == ((1, 1),), "one occurrence remains"
        overlay.delete((1, 1))
        assert index.lookup(1) == ()

    def test_usage_accrues_on_the_base_ledger(self):
        database, _, overlay = self._indexed_overlay()
        index = overlay.built_index((0,))
        before = database.relation("r").built_index((0,)).usage.uses
        index.lookup(3)
        index.touch("probe")
        assert database.relation("r").built_index((0,)).usage.uses == before + 2


class TestApplyDeltas:
    def test_commit_applies_in_place_and_maintains_indexes(self):
        database = Database(_schema())
        database.load("r", [(i, 0) for i in range(5)])
        database.create_index("r", ["a"])
        base = database.relation("r")
        context = TransactionContext(database)
        context.insert_rows("r", [(10, 1), (11, 1)])
        context.delete_rows("r", [(0, 0)])
        context.commit()
        assert database.relation("r") is base, "no replacement object"
        assert (10, 1) in base and (0, 0) not in base
        assert base.built_index((0,)).lookup(10) == ((10, 1),)
        assert base.built_index((0,)).lookup(0) == ()
        assert database.logical_time == 1

    def test_bag_mode_multiplicities_apply_exactly(self):
        database = Database(_schema(), bag=True)
        database.load("r", [(1, 1), (1, 1), (1, 1), (2, 2)])
        context = TransactionContext(database)
        context.delete_rows("r", [(1, 1), (1, 1)])
        context.insert_rows("r", [(2, 2)])
        context.commit()
        relation = database.relation("r")
        assert relation.multiplicity((1, 1)) == 1
        assert relation.multiplicity((2, 2)) == 2

    def test_delta_observations_record_commit_sizes(self):
        database = Database(_schema())
        database.load("r", [(i, 0) for i in range(5)])
        context = TransactionContext(database)
        context.insert_rows("r", [(10, 1), (11, 1)])
        context.delete_rows("r", [(0, 0)])
        context.commit()
        assert database.delta_stats.expected("r@plus") == 2.0
        assert database.delta_stats.expected("r@minus") == 1.0
        assert database.delta_stats.expected("s@plus") is None
