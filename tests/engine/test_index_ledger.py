"""The precise per-use index ledger behind the drop-unused advisor."""

import pytest

from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra.planner import get_plan
from repro.core.subsystem import IntegrityController
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.indexes import HashIndex
from repro.engine.session import DatabaseView
from repro.engine.types import INT


@pytest.fixture
def db():
    database = Database(
        DatabaseSchema(
            [
                RelationSchema("fk", [("id", INT), ("ref", INT)]),
                RelationSchema("pk", [("key", INT)]),
            ]
        )
    )
    database.load("pk", [(k,) for k in range(10)])
    database.load("fk", [(i, i % 10) for i in range(50)])
    return database


class TestLedger:
    def test_lookup_records_one_key(self):
        index = HashIndex((0,))
        index.build([(1, 2), (3, 4)])
        index.lookup(1)
        index.lookup(99)
        assert index.usage.uses == 2
        assert index.usage.keys == 2
        assert index.usage.by_kind == {"lookup": 2}
        assert index.probes == 2  # legacy alias: use events

    def test_bulk_touch_records_exact_key_volume(self):
        index = HashIndex((0,))
        index.build([(k, 0) for k in range(7)])
        index.touch("build")
        assert index.usage.uses == 1
        assert index.usage.keys == 7
        index.touch("probe", keys=3)
        assert index.usage.uses == 2
        assert index.usage.keys == 10
        assert index.usage.by_kind == {"build": 7, "probe": 3}

    def test_reset_clears_window(self):
        index = HashIndex((0,))
        index.build([(1,)])
        index.lookup(1)
        index.usage.reset()
        assert index.usage.uses == 0
        assert index.usage.keys == 0


class TestAdvisorEvidence:
    def test_probe_volume_recorded_per_statement(self, db):
        db.create_index("fk", ["ref"])
        db.create_index("pk", ["key"])
        expr = E.AntiJoin(
            E.RelationRef("fk"),
            E.RelationRef("pk"),
            P.Comparison("=", P.ColRef("ref", "left"), P.ColRef("key", "right")),
        )
        view = DatabaseView(db)
        get_plan(expr).execute(view)
        fk_index = db.relation("fk").built_index((1,))
        pk_index = db.relation("pk").built_index((0,))
        # The probe side probed per distinct fk.ref key; the build side was
        # consumed wholesale at its distinct-key volume.
        assert fk_index.usage.by_kind == {"probe": 10}
        assert pk_index.usage.by_kind == {"build": 10}

    def test_drop_unused_uses_ledger(self, db):
        controller = IntegrityController(db.schema)
        db.create_index("fk", ["ref"])
        db.create_index("pk", ["key"])
        # Only the pk index sees use.
        expr = E.SemiJoin(
            E.RelationRef("fk"),
            E.RelationRef("pk"),
            P.Comparison("=", P.ColRef("ref", "left"), P.ColRef("key", "right")),
        )
        db.relation("fk").indexes.drop((1,))
        db.create_index("fk", ["id"])  # never probed
        get_plan(expr).execute(DatabaseView(db))
        dropped = controller.drop_unused(db)
        assert ("fk", (0,)) in dropped
        assert ("pk", (0,)) not in dropped
        # Surviving ledgers reset: a second pass with no traffic drops pk.
        assert controller.drop_unused(db) == [("pk", (0,))]

    def test_min_keys_threshold(self, db):
        controller = IntegrityController(db.schema)
        db.create_index("pk", ["key"])
        index = db.relation("pk").built_index((0,))
        index.lookup(1)  # one use, one key
        dropped = controller.drop_unused(db, min_probes=1, min_keys=5)
        assert dropped == [("pk", (0,))]
