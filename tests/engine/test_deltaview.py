"""Net-differential exposure and the DeltaView resolver."""

import pytest

from repro.engine import Database, DatabaseSchema, RelationSchema, Session
from repro.engine.session import DeltaView
from repro.engine.transaction import TransactionContext
from repro.engine.types import INT


@pytest.fixture
def db():
    database = Database(
        DatabaseSchema([RelationSchema("r", [("a", INT), ("b", INT)])])
    )
    database.load("r", [(1, 10), (2, 20), (3, 30)])
    return database


class TestNetDifferentials:
    def test_insert_and_delete_tracked(self, db):
        context = TransactionContext(db)
        context.insert_rows("r", [(4, 40)])
        context.delete_rows("r", [(1, 10)])
        diffs = context.net_differentials()
        plus, minus = diffs["r"]
        assert plus.to_set() == {(4, 40)}
        assert minus.to_set() == {(1, 10)}
        assert context.performed_triggers() == {("INS", "r"), ("DEL", "r")}

    def test_net_cancellation_yields_no_differential(self, db):
        context = TransactionContext(db)
        context.insert_rows("r", [(4, 40)])
        context.delete_rows("r", [(4, 40)])
        assert context.net_differentials() == {}
        assert context.performed_triggers() == frozenset()

    def test_empty_side_is_none(self, db):
        context = TransactionContext(db)
        context.insert_rows("r", [(4, 40)])
        plus, minus = context.net_differentials()["r"]
        assert plus is not None and minus is None

    def test_committed_result_carries_differentials(self, db):
        session = Session(db)
        result = session.execute(
            "begin insert(r, (4, 40)); delete(r, {(2, 20)}); end"
        )
        assert result.committed
        plus, minus = result.differentials["r"]
        assert plus.to_set() == {(4, 40)}
        assert minus.to_set() == {(2, 20)}

    def test_aborted_result_has_no_differentials(self, db):
        session = Session(db)
        result = session.execute("begin insert(r, (4, 40)); abort; end")
        assert result.aborted
        assert result.differentials == {}


class TestDeltaView:
    def _view(self, db):
        session = Session(db)
        result = session.execute(
            "begin insert(r, (4, 40)); delete(r, {(1, 10)}); end"
        )
        return DeltaView(db, result.differentials)

    def test_resolves_current_state(self, db):
        view = self._view(db)
        assert view.resolve("r").to_set() == {(2, 20), (3, 30), (4, 40)}

    def test_resolves_differentials(self, db):
        view = self._view(db)
        assert view.resolve("r@plus").to_set() == {(4, 40)}
        assert view.resolve("r@minus").to_set() == {(1, 10)}

    def test_reconstructs_old_state(self, db):
        view = self._view(db)
        assert view.resolve("r@old").to_set() == {(1, 10), (2, 20), (3, 30)}

    def test_untouched_relation_old_is_current(self, db):
        view = DeltaView(db, {})
        assert view.resolve("r@old") is db.relation("r")
        assert len(view.resolve("r@plus")) == 0

    def test_performed_triggers(self, db):
        view = self._view(db)
        assert view.performed_triggers() == {("INS", "r"), ("DEL", "r")}
