"""The hash index manager: building, maintenance, commit migration."""

from __future__ import annotations

import pytest

from repro.engine import Database, DatabaseSchema, Relation, RelationSchema, Session
from repro.engine.indexes import HashIndex, IndexSet
from repro.engine.types import INT, STRING


@pytest.fixture
def db() -> Database:
    schema = DatabaseSchema(
        [
            RelationSchema("pk", [("key", INT), ("payload", STRING)]),
            RelationSchema("fk", [("id", INT), ("ref", INT)]),
        ]
    )
    database = Database(schema)
    database.load("pk", [(k, f"p{k}") for k in range(5)])
    database.load("fk", [(i, i % 5) for i in range(20)])
    return database


class TestHashIndex:
    def test_single_key_is_unwrapped(self):
        index = HashIndex((1,))
        index.build([(1, 10), (2, 10), (3, 20)])
        assert 10 in index
        assert sorted(index.lookup(10)) == [(1, 10), (2, 10)]
        assert index.lookup(99) == ()

    def test_composite_key(self):
        index = HashIndex((0, 1))
        index.build([(1, 10), (1, 20)])
        assert (1, 10) in index
        assert index.lookup((1, 20)) == ((1, 20),)

    def test_add_remove(self):
        index = HashIndex((0,))
        index.build([])
        index.add((1, "a"))
        index.add((1, "b"))
        assert sorted(index.lookup(1)) == [(1, "a"), (1, "b")]
        index.remove((1, "a"))
        assert index.lookup(1) == ((1, "b"),)
        index.remove((1, "b"))
        assert 1 not in index
        assert index.distinct_keys == 0


class TestRelationIndexes:
    def test_index_on_builds_once_and_maintains(self, db):
        fk = db.relation("fk")
        index = fk.index_on((1,))
        assert index.built
        assert len(index.lookup(0)) == 4
        fk.insert((100, 0))
        assert len(index.lookup(0)) == 5
        fk.delete((100, 0))
        assert len(index.lookup(0)) == 4
        # Same positions -> same index object (no rebuild).
        assert fk.index_on((1,)) is index

    def test_bag_mode_tracks_distinct_rows(self):
        schema = RelationSchema("t", [("x", INT)])
        relation = Relation(schema, bag=True)
        index = relation.index_on((0,))
        relation.insert((1,))
        relation.insert((1,))
        assert index.lookup(1) == ((1,),)
        relation.delete((1,))
        assert index.lookup(1) == ((1,),)  # one occurrence left
        relation.delete((1,))
        assert 1 not in index

    def test_copy_carries_declarations_not_contents(self, db):
        fk = db.relation("fk")
        fk.index_on((1,))
        clone = fk.copy()
        assert clone.built_index((1,)) is None
        assert clone.indexes.get((1,)) is not None  # declared
        assert clone.index_on((1,)).built

    def test_clear_invalidates(self, db):
        fk = db.relation("fk")
        index = fk.index_on((1,))
        fk.clear()
        assert not index.built
        assert fk.built_index((1,)) is None


class TestDatabaseIndexes:
    def test_create_index_resolves_names_and_positions(self, db):
        db.create_index("fk", ["ref"])
        assert db.relation("fk").built_index((1,)) is not None
        db.create_index("pk", [1])
        assert db.relation("pk").built_index((0,)) is not None
        assert (1,) in db.indexed_positions("fk")

    def test_index_survives_commit_incrementally(self, db):
        db.create_index("fk", ["ref"])
        session = Session(db)
        result = session.execute("begin insert(fk, (500, 0)); end")
        assert result.committed
        index = db.relation("fk").built_index((1,))
        assert index is not None and index.built
        assert (500, 0) in index.lookup(0)

    def test_index_correct_after_delete_commit(self, db):
        db.create_index("fk", ["ref"])
        session = Session(db)
        result = session.execute(
            "begin delete(fk, (0, 0)); insert(fk, (600, 4)); end"
        )
        assert result.committed
        index = db.relation("fk").built_index((1,))
        assert (0, 0) not in index.lookup(0)
        assert (600, 4) in index.lookup(4)
        # Full consistency check against a rebuild.
        fresh = HashIndex((1,)).build(db.relation("fk").rows())
        assert {k: set(v) for k, v in fresh.buckets.items()} == {
            k: set(v) for k, v in index.buckets.items()
        }

    def test_aborted_transaction_leaves_index_untouched(self, db):
        db.create_index("fk", ["ref"])
        before = dict(db.relation("fk").built_index((1,)).buckets)
        session = Session(db)
        result = session.execute(
            "begin insert(fk, (700, 1)); abort; end"
        )
        assert result.aborted
        index = db.relation("fk").built_index((1,))
        assert index.buckets == before


class TestIndexSet:
    def test_declare_is_lazy(self):
        indexes = IndexSet()
        index = indexes.declare((0,))
        assert not index.built
        assert indexes.get_built((0,)) is None
        indexes.ensure_built((0,), [(1,), (2,)])
        assert indexes.get_built((0,)) is index

    def test_row_hooks_only_touch_built(self):
        indexes = IndexSet()
        declared = indexes.declare((0,))
        built = indexes.ensure_built((1,), [(1, 2)])
        indexes.row_added((5, 6))
        assert declared.buckets == {}
        assert 6 in built
