"""On-demand (amortized) index building: relation, transaction, advisor."""

from __future__ import annotations

from repro.algebra.parser import parse_transaction
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.indexes import BUILD_AMORTIZE_HURDLE
from repro.engine.transaction import TransactionManager
from repro.engine.types import INT


def _schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("r", [("a", INT), ("b", INT)]),
            RelationSchema("s", [("c", INT), ("d", INT)]),
        ]
    )


def _relation(n: int = 10):
    database = Database(_schema())
    database.load("r", [(i, i % 3) for i in range(n)])
    return database.relation("r")


def test_amortized_index_accumulates_to_the_hurdle():
    relation = _relation(10)
    relation.declare_index((0,))
    # Each probe forgoes one scan of the relation; the hurdle is 2 passes.
    assert relation.amortized_index((0,), forgone_work=10) is None
    index = relation.amortized_index((0,), forgone_work=10)
    assert index is not None and index.built
    assert index.lookup(3) == ((3, 0),)
    assert BUILD_AMORTIZE_HURDLE == 2.0


def test_amortized_index_requires_a_declaration():
    relation = _relation(10)
    assert relation.amortized_index((0,), forgone_work=1e9) is None
    assert relation.amortized_index((0,)) is None


def test_build_side_request_builds_declared_immediately():
    # forgone_work=None: the caller pays a hashing pass anyway.
    relation = _relation(10)
    relation.declare_index((1,))
    index = relation.amortized_index((1,))
    assert index is not None and index.built


def test_overlay_forgone_work_accumulates_on_the_base_index():
    # Probe volume inside a transaction counts toward the *base* relation's
    # build decision (the overlay delegates its amortization accounting),
    # so the built index persists past the transaction.
    from repro.engine.overlay import OverlayIndex
    from repro.engine.transaction import TransactionContext

    database = Database(_schema())
    database.load("r", [(i, i % 3) for i in range(10)])
    database.relation("r").declare_index((0,))
    context = TransactionContext(database)
    context.insert_rows("r", [(99, 99)])
    overlay = context.resolve("r")
    assert overlay.amortized_index((0,), forgone_work=10) is None
    view = overlay.amortized_index((0,), forgone_work=10)
    assert isinstance(view, OverlayIndex)
    assert view.lookup(99) == ((99, 99),)
    assert database.relation("r").built_index((0,)) is not None


def test_overlay_probe_and_commit_keep_the_base_index_current():
    database = Database(_schema())
    database.load("r", [(i, 0) for i in range(50)])
    database.load("s", [(i % 5, 1) for i in range(50)])
    database.create_index("r", ["a"])  # built on the base relation
    manager = TransactionManager(database)
    transaction = parse_transaction(
        "begin insert(r, (99, 99)); "
        "t := semijoin(r, s, left.a = right.c); end"
    )
    result = manager.execute(transaction)
    assert result.committed
    # The overlay probed the base's built index corrected by the delta; the
    # in-place commit maintained that same index incrementally.
    index = database.relation("r").built_index((0,))
    assert index is not None
    assert index.lookup(99) == ((99, 99),)


def test_drop_unused_removes_cold_indexes():
    from repro.core.subsystem import IntegrityController

    database = Database(_schema())
    database.load("r", [(i, 0) for i in range(20)])
    database.create_index("r", ["a"])
    database.create_index("r", ["b"])
    controller = IntegrityController(database.schema)
    # Probe only the index on a.
    database.relation("r").built_index((0,)).lookup(3)
    dropped = controller.drop_unused(database)
    assert dropped == [("r", (1,))]
    assert database.relation("r").built_index((0,)) is not None
    assert database.relation("r").built_index((1,)) is None


def test_install_indexes_threshold_skips_small_relations():
    from repro.core.subsystem import IntegrityController

    database = Database(_schema())
    database.load("r", [(i, 0) for i in range(5)])
    database.load("s", [(i, 0) for i in range(5)])
    controller = IntegrityController(database.schema)
    controller.add_constraint(
        "ref", "(forall x)(x in r => (exists y)(y in s and x.a = y.c))"
    )
    # 5-tuple relations: one use x 5 tuples of benefit, below a 100 floor.
    assert controller.install_indexes(database, min_benefit=100) == []
    # The default threshold installs every hint.
    installed = controller.install_indexes(database)
    assert installed, "default threshold must keep the PR 1 behaviour"
