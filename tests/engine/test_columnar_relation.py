"""Columnar-backed relations: lazy rows over a ColumnBatch backing store."""

from __future__ import annotations

import pickle

import pytest

from repro.algebra.columnar import ColumnBatch
from repro.engine import Relation, RelationSchema
from repro.engine.relation import ColumnarRelation
from repro.engine.types import INT


@pytest.fixture
def schema() -> RelationSchema:
    return RelationSchema("t", [("a", INT), ("b", INT)])


def _source(schema, bag=False, rows=((1, 10), (2, 20), (3, 30))) -> Relation:
    relation = Relation(schema, bag=bag)
    for row in rows:
        relation.insert(row)
    return relation


def _backed(schema, bag=False, **kwargs) -> ColumnarRelation:
    return ColumnarRelation(ColumnBatch.from_relation(_source(schema, bag, **kwargs)))


class TestLaziness:
    def test_cheap_surfaces_answer_from_the_batch(self, schema):
        backed = _backed(schema)
        assert len(backed) == 3
        assert backed.distinct_count() == 3
        assert bool(backed) is True
        rows, counts = backed.rows_and_counts()
        assert sorted(rows) == [(1, 10), (2, 20), (3, 30)]
        assert counts is None
        # None of the above touched the row dict.
        assert backed._materialized is None

    def test_row_iteration_materializes_once(self, schema):
        backed = _backed(schema)
        assert sorted(backed) == [(1, 10), (2, 20), (3, 30)]
        assert backed._materialized is not None
        assert backed == _source(schema)

    def test_bag_counts_survive(self, schema):
        source = Relation(schema, bag=True)
        for row in [(1, 10), (1, 10), (2, 20)]:
            source.insert(row)
        backed = ColumnarRelation(ColumnBatch.from_relation(source))
        assert len(backed) == 3
        assert backed.distinct_count() == 2
        rows, counts = backed.rows_and_counts()
        assert dict(zip(rows, counts)) == {(1, 10): 2, (2, 20): 1}
        assert backed.multiplicity((1, 10)) == 2
        assert backed == source

    def test_empty_batch(self, schema):
        backed = _backed(schema, rows=())
        assert len(backed) == 0
        assert not backed
        assert list(backed.rows()) == []


class TestMutation:
    def test_insert_materializes_then_behaves_like_a_relation(self, schema):
        backed = _backed(schema)
        assert backed.insert((4, 40)) is True
        assert len(backed) == 4
        assert (4, 40) in backed
        assert backed.delete((1, 10)) is True
        assert sorted(backed.rows()) == [(2, 20), (3, 30), (4, 40)]

    def test_clear_and_replace_contents(self, schema):
        backed = _backed(schema)
        backed.clear()
        assert len(backed) == 0
        replacement = _source(schema, rows=((9, 90),))
        backed2 = _backed(schema)
        backed2.replace_contents(replacement)
        assert sorted(backed2.rows()) == [(9, 90)]

    def test_declaring_a_new_index_does_not_lose_rows(self, schema):
        # declare_index invalidates the cached batch; on a still-lazy
        # columnar relation the batch IS the data, so it must be
        # materialized first, not dropped.
        backed = _backed(schema)
        backed.declare_index((0,))
        assert len(backed) == 3
        assert sorted(backed.rows()) == [(1, 10), (2, 20), (3, 30)]
        index = backed.index_on((0,))
        assert index.lookup(2) == ((2, 20),)


class TestWireFormat:
    def test_index_specs_carry_over_from_the_batch(self, schema):
        source = _source(schema)
        source.declare_index((1,))
        backed = ColumnarRelation(ColumnBatch.from_relation(source))
        assert tuple(backed.indexes.specs()) == ((1,),)

    def test_reduce_reships_columns(self, schema):
        backed = _backed(schema)
        revived = pickle.loads(pickle.dumps(backed))
        assert isinstance(revived, ColumnarRelation)
        assert revived._materialized is None
        assert revived == _source(schema)

    def test_column_batch_is_reused_while_lazy(self, schema):
        backed = _backed(schema)
        assert backed.column_batch() is backed.column_batch()

    def test_mutated_relation_reencodes_current_rows(self, schema):
        backed = _backed(schema)
        backed.insert((4, 40))
        revived = pickle.loads(pickle.dumps(backed))
        assert revived == backed
        assert (4, 40) in revived
