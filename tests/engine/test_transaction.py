"""The transaction model: atomicity, differentials, pre-state (Def 2.5)."""

import pytest

from repro.algebra import parse_program, parse_transaction
from repro.algebra.programs import bracket, debracket
from repro.engine.transaction import (
    Transaction,
    TransactionContext,
    TransactionManager,
    TransactionStatus,
)
from repro.errors import (
    NoActiveTransactionError,
    UnknownRelationError,
)


class TestTransactionObject:
    def test_statements_from_program(self):
        txn = parse_transaction('begin insert(beer, ("a", "b", "c", 1.0)); end')
        assert len(txn) == 1

    def test_statements_from_sequence(self):
        program = parse_program('insert(beer, ("a", "b", "c", 1.0))')
        txn = Transaction(list(program.statements))
        assert len(txn.statements) == 1

    def test_names_unique(self):
        first = Transaction([])
        second = Transaction([])
        assert first.name != second.name

    def test_debracket_bracket_roundtrip(self):
        program = parse_program('insert(beer, ("a", "b", "c", 1.0))')
        txn = bracket(program, name="t")
        assert debracket(txn) is program


class TestExecution:
    def test_commit_advances_logical_time(self, db, plain_session):
        assert db.logical_time == 0
        result = plain_session.execute(
            'begin insert(beer, ("new", "ale", "heineken", 4.5)); end'
        )
        assert result.committed
        assert db.logical_time == 1
        assert result.pre_time == 0 and result.post_time == 1

    def test_abort_keeps_logical_time(self, db, plain_session):
        result = plain_session.execute(
            'begin insert(beer, ("new", "ale", "heineken", 4.5)); abort; end'
        )
        assert result.aborted
        assert db.logical_time == 0

    def test_atomicity_on_abort(self, db, plain_session):
        before = db.relation("beer").to_set()
        result = plain_session.execute(
            """
            begin
                insert(beer, ("doomed", "ale", "heineken", 4.5));
                delete(beer, ("pils", "lager", "heineken", 5.0));
                abort "nope";
            end
            """
        )
        assert result.aborted and result.reason == "nope"
        assert db.relation("beer").to_set() == before

    def test_intermediate_states_visible_within_transaction(self, db, plain_session):
        # A delete inside the transaction is seen by a later alarm check.
        result = plain_session.execute(
            """
            begin
                delete(beer, where brewery = "heineken");
                alarm(select(beer, brewery = "heineken"), "should be empty");
            end
            """
        )
        assert result.committed

    def test_temporaries_dropped_at_commit(self, db, plain_session):
        result = plain_session.execute(
            "begin t1 := select(beer, alcohol > 5.0); end"
        )
        assert result.committed
        assert "t1" not in db

    def test_manager_counters(self, db, plain_session):
        plain_session.execute("begin end")
        plain_session.execute("begin abort; end")
        manager = plain_session.manager
        assert manager.executed == 2
        assert manager.committed == 1
        assert manager.aborted == 1

    def test_result_tuple_counts(self, db, plain_session):
        result = plain_session.execute(
            """
            begin
                insert(beer, ("one", "ale", "heineken", 4.5));
                insert(beer, ("two", "ale", "heineken", 4.6));
                delete(beer, ("pils", "lager", "heineken", 5.0));
            end
            """
        )
        assert result.tuples_inserted == 2
        assert result.tuples_deleted == 1

    def test_no_active_context_outside_transaction(self, db, plain_session):
        with pytest.raises(NoActiveTransactionError):
            plain_session.manager.active_context


class TestDifferentials:
    def test_plus_tracks_net_inserts(self, db):
        context = TransactionContext(db)
        context.insert_rows("beer", [("n1", "ale", "heineken", 4.0)])
        assert context.resolve("beer@plus").to_set() == {
            ("n1", "ale", "heineken", 4.0)
        }
        assert len(context.resolve("beer@minus")) == 0

    def test_insert_then_delete_nets_out(self, db):
        context = TransactionContext(db)
        row = ("n1", "ale", "heineken", 4.0)
        context.insert_rows("beer", [row])
        context.delete_rows("beer", [row])
        assert len(context.resolve("beer@plus")) == 0
        assert len(context.resolve("beer@minus")) == 0

    def test_delete_then_reinsert_nets_out(self, db):
        context = TransactionContext(db)
        row = ("pils", "lager", "heineken", 5.0)
        context.delete_rows("beer", [row])
        assert context.resolve("beer@minus").to_set() == {row}
        context.insert_rows("beer", [row])
        assert len(context.resolve("beer@minus")) == 0
        assert len(context.resolve("beer@plus")) == 0

    def test_duplicate_insert_not_in_plus(self, db):
        context = TransactionContext(db)
        context.insert_rows("beer", [("pils", "lager", "heineken", 5.0)])
        assert len(context.resolve("beer@plus")) == 0

    def test_old_is_pre_transaction_state(self, db):
        context = TransactionContext(db)
        before = db.relation("beer").to_set()
        context.insert_rows("beer", [("n1", "ale", "heineken", 4.0)])
        assert context.resolve("beer@old").to_set() == before
        assert ("n1", "ale", "heineken", 4.0) in context.resolve("beer")

    def test_modified_relations(self, db):
        context = TransactionContext(db)
        context.insert_rows("beer", [("n1", "ale", "heineken", 4.0)])
        assert context.modified_relations() == ("beer",)

    def test_commit_installs_working_set(self, db):
        context = TransactionContext(db)
        context.insert_rows("beer", [("n1", "ale", "heineken", 4.0)])
        context.commit()
        assert ("n1", "ale", "heineken", 4.0) in db.relation("beer")

    def test_temp_cannot_shadow_base(self, db):
        from repro.engine import Relation

        context = TransactionContext(db)
        with pytest.raises(UnknownRelationError):
            context.set_temp("beer", Relation(db.relation_schema("beer")))

    def test_temp_cannot_be_auxiliary(self, db):
        from repro.engine import Relation

        context = TransactionContext(db)
        with pytest.raises(UnknownRelationError):
            context.set_temp("x@plus", Relation(db.relation_schema("beer")))

    def test_resolve_unknown(self, db):
        context = TransactionContext(db)
        with pytest.raises(UnknownRelationError):
            context.resolve("ghost")
        with pytest.raises(UnknownRelationError):
            context.resolve("ghost@plus")


class TestModifierHook:
    def test_modifier_applied(self, db):
        calls = []

        def modifier(txn):
            calls.append(txn.name)
            return txn

        manager = TransactionManager(db, modifier=modifier)
        txn = parse_transaction("begin end")
        manager.execute(txn)
        assert calls == [txn.name]

    def test_modifier_skipped_when_disabled(self, db):
        calls = []

        def modifier(txn):
            calls.append(txn.name)
            return txn

        manager = TransactionManager(db, modifier=modifier)
        manager.execute(parse_transaction("begin end"), modify=False)
        assert calls == []
