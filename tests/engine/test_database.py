"""Database states, snapshots, transitions (Defs 2.2-2.3)."""

import pytest

from repro.engine import Database, DatabaseSchema, Relation, RelationSchema
from repro.engine.database import Transition
from repro.engine.types import INT
from repro.engine import naming
from repro.errors import UnknownRelationError


class TestDatabase:
    def test_load_and_cardinalities(self, db):
        assert db.cardinalities() == {"beer": 3, "brewery": 3}
        assert db.total_tuples() == 6

    def test_relation_lookup(self, db):
        assert db.relation("beer").schema.name == "beer"
        with pytest.raises(UnknownRelationError):
            db.relation("ghost")

    def test_contains_and_names(self, db):
        assert "beer" in db and "ghost" not in db
        assert db.relation_names == ("beer", "brewery")

    def test_snapshot_restore(self, db):
        snapshot = db.snapshot()
        db.relation("beer").clear()
        assert len(db.relation("beer")) == 0
        db.restore(snapshot)
        assert len(db.relation("beer")) == 3

    def test_snapshot_is_independent(self, db):
        snapshot = db.snapshot()
        db.relation("beer").insert(("n", "ale", "heineken", 3.0))
        assert len(snapshot["beer"]) == 3

    def test_install_advances_time(self, db):
        replacement = db.relation("beer").copy()
        replacement.clear()
        db.install({"beer": replacement})
        assert db.logical_time == 1
        assert len(db.relation("beer")) == 0

    def test_install_unknown_relation(self, db):
        with pytest.raises(UnknownRelationError):
            db.install({"ghost": db.relation("beer").copy()})

    def test_add_relation(self, db):
        new_schema = RelationSchema("stock", [("qty", INT)])
        db.add_relation(new_schema, [(5,)])
        assert len(db.relation("stock")) == 1
        assert "stock" in db.schema

    def test_load_returns_inserted_count(self, db):
        inserted = db.load("beer", [("pils", "lager", "heineken", 5.0), ("n", "ale", "heineken", 3.0)])
        assert inserted == 1  # the first row already existed


class TestTransition:
    def test_single_step(self, db):
        pre = db.snapshot()
        db.install({"beer": db.relation("beer").copy()})
        post = db.snapshot()
        transition = Transition(pre, post, 0, db.logical_time)
        assert transition.is_single_step
        assert "t=0 -> t=1" in repr(transition)

    def test_multi_step(self, db):
        transition = Transition(db.snapshot(), db.snapshot(), 0, 5)
        assert not transition.is_single_step


class TestAuxiliaryNaming:
    def test_names(self):
        assert naming.old_name("r") == "r@old"
        assert naming.plus_name("r") == "r@plus"
        assert naming.minus_name("r") == "r@minus"

    def test_split(self):
        assert naming.split_auxiliary("r@old") == ("r", "old")
        assert naming.split_auxiliary("r") == ("r", None)

    def test_split_malformed(self):
        with pytest.raises(ValueError):
            naming.split_auxiliary("r@bogus")
        with pytest.raises(ValueError):
            naming.split_auxiliary("@old")

    def test_base_of(self):
        assert naming.base_of("beer@plus") == "beer"
        assert naming.base_of("beer") == "beer"

    def test_is_auxiliary(self):
        assert naming.is_auxiliary("beer@minus")
        assert not naming.is_auxiliary("beer")


class TestSnapshotCost:
    """``snapshot()`` is O(Δ) — pinning an epoch, not copying relations."""

    def test_snapshot_beats_eager_copy_at_scale(self):
        import time

        schema = DatabaseSchema([RelationSchema("big", [("a", INT), ("b", INT)])])
        database = Database(schema)
        database.load("big", [(i, i % 97) for i in range(100_000)])

        start = time.perf_counter()
        eager = {name: database.relation(name).copy() for name in database.relation_names}
        eager_cost = time.perf_counter() - start
        assert len(eager["big"]) == 100_000

        start = time.perf_counter()
        snapshots = [database.snapshot() for _ in range(10)]
        pinned_cost = (time.perf_counter() - start) / 10

        try:
            assert pinned_cost * 10 < eager_cost, (
                f"epoch-pinned snapshot ({pinned_cost:.6f}s) not >=10x faster "
                f"than eager copy ({eager_cost:.6f}s) at n=100k"
            )
        finally:
            for snapshot in snapshots:
                snapshot.release()

    def test_restore_is_o_delta_after_small_change(self):
        schema = DatabaseSchema([RelationSchema("big", [("a", INT), ("b", INT)])])
        database = Database(schema)
        database.load("big", [(i, i) for i in range(100_000)])
        snapshot = database.snapshot()
        plus = Relation(schema.relation("big"), [(1_000_000, 0)])
        database.apply_deltas({"big": (plus, None)})
        before = database.epochs.reclaimed
        database.restore(snapshot)
        assert len(database.relation("big")) == 100_000
        assert (1_000_000, 0) not in database.relation("big")
        # The restore went through the undo-differential fast path (no
        # full-state diff): only the one-row delta was reverted.
        assert database.epochs.version >= 2
