"""The durable, hash-chained write-ahead log: format, rotation, retention."""

import os

import pytest

from repro.engine import Database, DatabaseSchema, RelationSchema, Session
from repro.engine.types import INT
from repro.engine.wal import (
    CHAIN_ROOT,
    HEADER_SIZE,
    RECORD_HEADER_SIZE,
    WriteAheadLog,
    verify_directory,
)
from repro.errors import WalCorruptionError, WalError


@pytest.fixture
def schema():
    return DatabaseSchema([RelationSchema("r", [("a", INT), ("b", INT)])])


@pytest.fixture
def db(schema):
    database = Database(schema)
    database.load("r", [(1, 1), (2, 2)])
    return database


def _commit_n(database, n, start=10):
    session = Session(database)
    for value in range(start, start + n):
        result = session.execute(f"begin insert(r, ({value}, 0)); end")
        assert result.committed


class TestAppendScan:
    def test_round_trip(self, db, tmp_path):
        wal = WriteAheadLog(tmp_path)
        db.attach_wal(wal)
        _commit_n(db, 3)
        records = list(wal.scan())
        assert [r.sequence for r in records] == [0, 1, 2]
        plus, minus = records[0].differentials["r"]
        assert plus.to_set() == {(10, 0)}
        assert minus is None
        db.detach_wal()

    def test_chain_hashes_link(self, db, tmp_path):
        wal = WriteAheadLog(tmp_path)
        db.attach_wal(wal)
        _commit_n(db, 2)
        first, second = list(wal.scan(decode=False))
        # Each blob stores its predecessor's chain hash; the first roots
        # at the segment header (CHAIN_ROOT for the very first segment).
        path = tmp_path / first.segment
        data = path.read_bytes()
        blob1 = data[first.offset + RECORD_HEADER_SIZE : first.offset + first.length]
        blob2 = data[second.offset + RECORD_HEADER_SIZE : second.offset + second.length]
        assert blob1[:32] == CHAIN_ROOT
        assert blob2[:32] == first.chain_hash
        db.detach_wal()

    def test_scan_window(self, db, tmp_path):
        db.attach_wal(WriteAheadLog(tmp_path))
        _commit_n(db, 5)
        assert [r.sequence for r in db.wal.scan(start_sequence=2, upto=3)] == [2, 3]
        db.detach_wal()

    def test_reopen_resumes_chain(self, db, tmp_path):
        db.attach_wal(WriteAheadLog(tmp_path))
        _commit_n(db, 2)
        db.detach_wal()
        reopened = WriteAheadLog(tmp_path)
        assert reopened.next_sequence == 2
        db.attach_wal(reopened, checkpoint=False)
        _commit_n(db, 1, start=50)
        verification = verify_directory(tmp_path)
        assert verification.ok and verification.records == 3
        db.detach_wal()

    def test_sync_policies_accepted(self, db, tmp_path):
        for policy in ("commit", "interval", "none"):
            directory = tmp_path / policy
            database = Database(db.schema)
            database.attach_wal(WriteAheadLog(directory, sync=policy))
            _commit_n(database, 2)
            database.wal.sync()
            assert database.wal.durable_through == 1
            database.detach_wal()
            assert verify_directory(directory).ok

    def test_unknown_sync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path, sync="eventually")


class TestRotation:
    def test_byte_rotation_creates_segments(self, db, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=256)
        db.attach_wal(wal)
        _commit_n(db, 8)
        assert len(wal.segments()) > 1
        assert [r.sequence for r in wal.scan()] == list(range(8))
        assert verify_directory(tmp_path).ok
        db.detach_wal()

    def test_purge_respects_consumers_and_checkpoints(self, db, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=256)
        db.attach_wal(wal)
        _commit_n(db, 8)
        wal.register_consumer("lagging", 0)
        wal.write_checkpoint(db)
        assert wal.purge() == []  # the lagging consumer pins everything
        wal.advance_consumer("lagging", 8)
        removed = wal.purge()
        assert removed  # checkpoint at #8 + consumer at #8: old segments go
        assert [r.sequence for r in wal.scan()] != []  # tail survives
        db.detach_wal()

    def test_purge_without_checkpoint_keeps_everything(self, db, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=256)
        db.attach_wal(wal, checkpoint=False)
        _commit_n(db, 8)
        assert wal.purge() == []
        db.detach_wal()

    def test_consumer_watermarks_persist(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.register_consumer("audit", 3)
        wal.advance_consumer("audit", 5)
        wal.advance_consumer("audit", 4)  # monotonic: no rewind
        wal.close()
        reopened = WriteAheadLog(tmp_path)
        assert reopened.consumers == {"audit": 5}
        assert reopened.retention_floor() == 5
        reopened.release_consumer("audit")
        assert reopened.retention_floor() is None
        reopened.close()


class TestTornTail:
    def _populate(self, db, tmp_path):
        db.attach_wal(WriteAheadLog(tmp_path))
        _commit_n(db, 3)
        db.detach_wal()
        [segment] = [p for p in tmp_path.iterdir() if p.suffix == ".wal"]
        return segment

    def test_truncated_tail_repairs_to_prefix(self, db, tmp_path):
        segment = self._populate(db, tmp_path)
        data = segment.read_bytes()
        segment.write_bytes(data[:-5])  # tear the last record's bytes
        verification = verify_directory(tmp_path)
        assert verification.ok and verification.torn_tail is not None
        wal = WriteAheadLog(tmp_path)
        assert wal.tail_repair is not None
        assert [r.sequence for r in wal.scan()] == [0, 1]
        assert wal.next_sequence == 2
        wal.close()

    def test_tail_crc_damage_is_torn_not_corrupt(self, db, tmp_path):
        segment = self._populate(db, tmp_path)
        data = bytearray(segment.read_bytes())
        data[-3] ^= 0x40  # flip a bit inside the last record's body
        segment.write_bytes(bytes(data))
        verification = verify_directory(tmp_path)
        assert verification.ok
        assert verification.torn_tail[2] == "record CRC mismatch"
        wal = WriteAheadLog(tmp_path)
        assert [r.sequence for r in wal.scan()] == [0, 1]
        wal.close()

    def test_append_after_repair_continues_chain(self, db, tmp_path):
        segment = self._populate(db, tmp_path)
        segment.write_bytes(segment.read_bytes()[:-5])
        database = Database.recover(tmp_path)
        assert database.last_recovery.torn_tail is not None
        _commit_n(database, 1, start=90)
        database.detach_wal()
        verification = verify_directory(tmp_path)
        assert verification.ok and verification.torn_tail is None
        assert verification.last_sequence == 2  # repaired #2 slot reused


class TestCorruption:
    def _populate(self, db, tmp_path, segment_bytes=1 << 20):
        db.attach_wal(WriteAheadLog(tmp_path, segment_bytes=segment_bytes))
        _commit_n(db, 4)
        db.detach_wal()
        return sorted(p for p in tmp_path.iterdir() if p.suffix == ".wal")

    def test_mid_segment_bitflip_breaks_verification_or_prefixes(self, db, tmp_path):
        [segment] = self._populate(db, tmp_path)
        wal = WriteAheadLog(tmp_path)
        first = next(iter(wal.scan(decode=False)))
        wal.close()
        data = bytearray(segment.read_bytes())
        # Flip a bit inside the *first* record's stored chain hash: the CRC
        # fails, so scanning stops there — records after it are dropped,
        # but what survives is still an exact commit-boundary prefix.
        data[first.offset + RECORD_HEADER_SIZE + 4] ^= 0x01
        segment.write_bytes(bytes(data))
        verification = verify_directory(tmp_path)
        assert verification.records == 0
        assert verification.torn_tail is not None

    def test_sealed_segment_damage_is_corruption(self, db, tmp_path):
        segments = self._populate(db, tmp_path, segment_bytes=200)
        assert len(segments) > 1
        sealed = segments[0]
        data = bytearray(sealed.read_bytes())
        data[-3] ^= 0x40
        sealed.write_bytes(bytes(data))
        verification = verify_directory(tmp_path)
        assert not verification.ok
        assert verification.broken[0] == sealed.name
        with pytest.raises(WalCorruptionError):
            list(WriteAheadLog(tmp_path).scan())

    def test_forged_record_breaks_chain(self, db, tmp_path):
        # Rewrite a record body *and* its CRC (a deliberate tamper): the
        # CRC verifies, but the successor's stored hash no longer matches.
        import struct
        from zlib import crc32

        [segment] = self._populate(db, tmp_path)
        wal = WriteAheadLog(tmp_path)
        records = list(wal.scan(decode=False))
        wal.close()
        victim = records[1]
        data = bytearray(segment.read_bytes())
        blob_start = victim.offset + RECORD_HEADER_SIZE
        blob = bytearray(data[blob_start : victim.offset + victim.length])
        blob[-1] ^= 0xFF  # tamper with the pickled payload
        data[victim.offset : blob_start] = struct.pack(
            "<II", len(blob), crc32(bytes(blob))
        )
        data[blob_start : victim.offset + victim.length] = blob
        segment.write_bytes(bytes(data))
        verification = verify_directory(tmp_path)
        assert not verification.ok
        assert verification.broken[2] in (
            "undecodable record payload",
            "record breaks the hash chain "
            "(stored predecessor hash mismatch)",
        )

    def test_damaged_header_is_corruption(self, db, tmp_path):
        [segment] = self._populate(db, tmp_path)
        data = bytearray(segment.read_bytes())
        data[1] ^= 0xFF  # inside the magic
        segment.write_bytes(bytes(data))
        verification = verify_directory(tmp_path)
        assert not verification.ok
        assert verification.broken == (segment.name, 0, "damaged segment header")


class TestCheckpoints:
    def test_attach_writes_anchor_checkpoint(self, db, tmp_path):
        db.attach_wal(WriteAheadLog(tmp_path))
        assert db.wal.latest_checkpoint() is not None
        db.detach_wal()

    def test_point_in_time_uses_applicable_checkpoint(self, db, tmp_path):
        db.attach_wal(WriteAheadLog(tmp_path))
        _commit_n(db, 3)
        db.wal.write_checkpoint(db)  # checkpoint at #3
        _commit_n(db, 2, start=50)
        wal = db.wal
        assert wal.latest_checkpoint()[0] == 3
        # Restoring to #1 must not use the #3 checkpoint (too new).
        assert wal.latest_checkpoint(before=1)[0] == 0
        assert wal.latest_checkpoint(before=2)[0] == 3
        db.detach_wal()

    def test_missing_checkpoint_fails_loud(self, tmp_path):
        WriteAheadLog(tmp_path).close()
        with pytest.raises(WalError):
            Database.recover(tmp_path)


class TestDeltaCheckpoints:
    def test_first_delta_falls_back_to_full(self, db, tmp_path):
        wal = WriteAheadLog(tmp_path)
        db.wal = wal  # attach without the anchor checkpoint
        _commit_n(db, 2)
        path = wal.write_delta_checkpoint(db)
        assert path.name.endswith(".ckpt")
        db.detach_wal()

    def test_delta_with_nothing_new_returns_parent(self, db, tmp_path):
        db.attach_wal(WriteAheadLog(tmp_path))
        _commit_n(db, 2)
        first = db.wal.write_delta_checkpoint(db)
        second = db.wal.write_delta_checkpoint(db)
        assert second == first
        db.detach_wal()

    def test_delta_payload_is_coalesced(self, db, tmp_path):
        db.attach_wal(WriteAheadLog(tmp_path))
        session = Session(db)
        assert session.execute("begin insert(r, (10, 0)); end").committed
        assert session.execute(
            "begin delete(r, (10, 0)); insert(r, (11, 0)); end"
        ).committed
        path = db.wal.write_delta_checkpoint(db)
        assert path.name.endswith(".dckpt")
        payload = db.wal.load_checkpoint(path)
        assert payload["base_sequence"] == 0
        assert payload["next_sequence"] == 2
        from repro.algebra.columnar import decode_differentials

        plus, minus = decode_differentials(payload["differentials"])["r"]
        # (10,0) was inserted then deleted: it vanishes from the net delta.
        assert plus.to_set() == {(11, 0)} and minus is None
        db.detach_wal()

    def test_checkpoints_lists_both_kinds(self, db, tmp_path):
        db.attach_wal(WriteAheadLog(tmp_path))
        _commit_n(db, 2)
        db.wal.write_delta_checkpoint(db)
        _commit_n(db, 2, start=50)
        db.wal.write_checkpoint(db)
        kinds = [path.suffix for _seq, path in db.wal.checkpoints()]
        assert kinds == [".ckpt", ".dckpt", ".ckpt"]
        db.detach_wal()

    def test_database_checkpoint_api(self, db, tmp_path):
        with pytest.raises(WalError):
            db.checkpoint()
        db.attach_wal(WriteAheadLog(tmp_path))
        _commit_n(db, 2)
        assert db.checkpoint(delta=True).name.endswith(".dckpt")
        _commit_n(db, 1, start=60)
        assert db.checkpoint().name.endswith(".ckpt")
        db.detach_wal()

    def test_purge_never_orphans_delta_chains(self, db, tmp_path):
        db.attach_wal(WriteAheadLog(tmp_path, segment_bytes=256))
        _commit_n(db, 4)
        db.wal.write_delta_checkpoint(db)  # chains to the attach anchor
        _commit_n(db, 4, start=50)
        db.wal.write_delta_checkpoint(db)
        db.wal.purge()
        remaining = db.wal.checkpoints()
        full = [seq for seq, path in remaining if path.suffix == ".ckpt"]
        # The full ancestor every surviving delta chains back to survives.
        assert 0 in full
        assert db.wal.load_checkpoint_chain() is not None
        db.detach_wal()

    def test_chain_composes_to_latest_state(self, db, tmp_path):
        db.attach_wal(WriteAheadLog(tmp_path))
        _commit_n(db, 3)
        db.wal.write_delta_checkpoint(db)
        _commit_n(db, 3, start=50)
        db.wal.write_delta_checkpoint(db)
        expected = db.relation("r").to_set()
        anchor = db.wal.load_checkpoint_chain()
        assert anchor is not None
        sequence, recovered = anchor
        assert sequence == db.commit_log.next_sequence
        assert recovered.relation("r").to_set() == expected
        assert recovered.commit_log.next_sequence == db.commit_log.next_sequence
        db.detach_wal()

    def test_broken_chain_falls_back_to_older_anchor(self, db, tmp_path):
        db.attach_wal(WriteAheadLog(tmp_path))
        _commit_n(db, 3)
        middle = db.wal.write_checkpoint(db)
        _commit_n(db, 3, start=50)
        delta = db.wal.write_delta_checkpoint(db)
        expected = db.relation("r").to_set()
        db.detach_wal()
        # Corrupt the delta link: its anchor is disqualified, but the full
        # checkpoint behind it still anchors — records replay from there.
        delta.write_bytes(b"garbage")
        wal = WriteAheadLog(tmp_path)
        anchor = wal.load_checkpoint_chain()
        assert anchor is not None and anchor[0] == 3
        wal.close()
        from repro.engine.recovery import recover

        recovered, report = recover(tmp_path, attach=False)
        assert recovered.relation("r").to_set() == expected
        assert report.checkpoint_sequence == 3

    def test_stray_tmp_files_are_ignored(self, db, tmp_path):
        db.attach_wal(WriteAheadLog(tmp_path))
        _commit_n(db, 2)
        (tmp_path / "checkpoint-0000000000000002.tmp").write_bytes(b"partial")
        assert [s for s, _ in db.wal.checkpoints()] == [0]
        assert db.wal.load_checkpoint_chain() is not None
        db.detach_wal()
