"""The DDL text form for relation schemas."""

import pytest

from repro.ddl import parse_relation_schema, parse_schema, render_relation_schema
from repro.engine.types import BOOL, FLOAT, INT, STRING
from repro.errors import ParseError


class TestParseRelation:
    def test_basic(self):
        schema = parse_relation_schema(
            "relation beer(name string, type string, brewery string, alcohol float)"
        )
        assert schema.name == "beer"
        assert schema.arity == 4
        assert schema.attribute_at("alcohol").domain is FLOAT

    def test_nullable_marker(self):
        schema = parse_relation_schema(
            "relation brewery(name string, city string null)"
        )
        assert not schema.attribute_at("name").nullable
        assert schema.attribute_at("city").nullable

    def test_domain_aliases(self):
        schema = parse_relation_schema(
            "relation t(a integer, b real, c text, d boolean)"
        )
        domains = [attribute.domain for attribute in schema.attributes]
        assert domains == [INT, FLOAT, STRING, BOOL]

    def test_unknown_domain(self):
        with pytest.raises(ParseError):
            parse_relation_schema("relation t(a decimal)")

    def test_missing_keyword(self):
        with pytest.raises(ParseError):
            parse_relation_schema("table t(a int)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_relation_schema("relation t(a int) extra")


class TestParseSchema:
    def test_multiple_relations(self):
        schema = parse_schema(
            """
            relation r(a int, b int);
            relation s(c int, d string null)
            """
        )
        assert schema.relation_names == ("r", "s")

    def test_semicolons_optional(self):
        schema = parse_schema("relation r(a int) relation s(b int)")
        assert len(schema) == 2

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_schema("   ")


class TestRoundTrip:
    CASES = [
        "relation beer(name string, alcohol float)",
        "relation t(a int, b string null, c bool)",
        "relation one(only float null)",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_render_parse(self, text):
        schema = parse_relation_schema(text)
        assert parse_relation_schema(render_relation_schema(schema)) == schema
