"""Shared fixtures: the paper's schemas, populated databases, controllers."""

from __future__ import annotations

import pytest

from repro.core.subsystem import IntegrityController
from repro.engine import Database, DatabaseSchema, RelationSchema, Session
from repro.engine import FLOAT, INT, STRING
from repro.workloads.beer import beer_controller, beer_database, beer_schema
from repro.workloads.employees import (
    employees_controller,
    employees_database,
)


@pytest.fixture
def schema() -> DatabaseSchema:
    """The paper's beer/brewery schema."""
    return beer_schema()


@pytest.fixture
def db(schema) -> Database:
    """A small consistent beer database."""
    database = Database(schema)
    database.load(
        "brewery",
        [
            ("heineken", "amsterdam", "nl"),
            ("guinness", "dublin", "ie"),
            ("grolsch", "enschede", "nl"),
        ],
    )
    database.load(
        "beer",
        [
            ("pils", "lager", "heineken", 5.0),
            ("extra_stout", "stout", "guinness", 7.5),
            ("premium", "lager", "grolsch", 5.1),
        ],
    )
    return database


@pytest.fixture
def controller(schema) -> IntegrityController:
    """The paper's rules R1 + R2 over the beer schema (static mode)."""
    return beer_controller(schema)


@pytest.fixture
def session(db, controller) -> Session:
    return Session(db, controller)


@pytest.fixture
def plain_session(db) -> Session:
    """A session with no integrity control attached."""
    return Session(db)


@pytest.fixture
def emp_db() -> Database:
    return employees_database()


@pytest.fixture
def emp_controller() -> IntegrityController:
    return employees_controller()


@pytest.fixture
def emp_session(emp_db, emp_controller) -> Session:
    return Session(emp_db, emp_controller)


@pytest.fixture
def rs_pair() -> DatabaseSchema:
    """Two small integer relations for translation/property tests."""
    return DatabaseSchema(
        [
            RelationSchema("r", [("a", INT), ("b", INT)]),
            RelationSchema("s", [("c", INT), ("d", INT)]),
        ]
    )
