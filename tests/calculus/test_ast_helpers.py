"""CL AST helper functions and structural properties."""

import pytest

from repro.calculus import ast as C
from repro.calculus.parser import parse_constraint


class TestSugarConstructors:
    def test_forall_in_desugars_to_implication(self):
        body = C.Compare(">", C.AttrSel("x", 1), C.Const(0))
        formula = C.forall_in("x", "r", body)
        assert formula == C.Forall("x", C.Implies(C.Member("x", "r"), body))

    def test_exists_in_desugars_to_conjunction(self):
        body = C.Compare(">", C.AttrSel("x", 1), C.Const(0))
        formula = C.exists_in("x", "r", body)
        assert formula == C.Exists("x", C.And(C.Member("x", "r"), body))

    def test_conjoin_left_nested(self):
        a, b, c = (C.Member(v, "r") for v in "abc")
        assert C.conjoin(a, b, c) == C.And(C.And(a, b), c)

    def test_conjoin_single(self):
        atom = C.Member("x", "r")
        assert C.conjoin(atom) is atom

    def test_conjoin_empty_rejected(self):
        with pytest.raises(ValueError):
            C.conjoin()


class TestIteration:
    FORMULA = parse_constraint(
        "(forall x in r)(exists y in s)"
        "(x.a + 1 = y.c and SUM(r, b) <= CNT(s) * 2)"
    )

    def test_iter_subformulas_preorder(self):
        nodes = list(C.iter_subformulas(self.FORMULA))
        assert nodes[0] is self.FORMULA
        kinds = {type(node).__name__ for node in nodes}
        assert {"Forall", "Implies", "Member", "Exists", "And", "Compare"} <= kinds

    def test_iter_terms_reaches_nested_arithmetic(self):
        terms = list(C.iter_terms(self.FORMULA))
        assert any(isinstance(term, C.AggTerm) for term in terms)
        assert any(isinstance(term, C.CntTerm) for term in terms)
        assert any(
            isinstance(term, C.AttrSel) and term.var == "x" for term in terms
        )

    def test_formulas_hashable_and_comparable(self):
        again = parse_constraint(
            "(forall x in r)(exists y in s)"
            "(x.a + 1 = y.c and SUM(r, b) <= CNT(s) * 2)"
        )
        assert again == self.FORMULA
        assert hash(again) == hash(self.FORMULA)
        assert len({again, self.FORMULA}) == 1


class TestNnfAndMiniscope:
    def test_nnf_involution_on_double_negation(self):
        from repro.core.translation import nnf

        formula = parse_constraint("(forall x in r)(x.a > 0)")
        assert nnf(C.Not(C.Not(formula))) == nnf(formula)

    def test_nnf_negation_flips_comparisons(self):
        from repro.core.translation import nnf

        formula = parse_constraint("CNT(r) <= 10")
        assert nnf(formula, positive=False) == parse_constraint("CNT(r) > 10")

    def test_miniscope_pulls_var_free_conjuncts(self):
        from repro.core.translation import miniscope

        # exists y (x in r AND y in s)  =>  x in r AND exists y (y in s)
        inner = C.Exists("y", C.And(C.Member("x", "r"), C.Member("y", "s")))
        result = miniscope(inner)
        assert result == C.And(
            C.Member("x", "r"), C.Exists("y", C.Member("y", "s"))
        )

    def test_miniscope_keeps_fully_dependent_bodies(self):
        from repro.core.translation import miniscope

        inner = C.Exists("y", C.And(C.Member("y", "s"), C.TupleEq("x", "y")))
        assert miniscope(inner) == inner
