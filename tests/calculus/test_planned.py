"""Unit tests for the plan-backed constraint evaluator (calculus.planned)."""

from __future__ import annotations

import pytest

from repro.calculus.evaluation import evaluate_constraint
from repro.calculus.parser import parse_constraint
from repro.calculus.planned import (
    clear_constraint_cache,
    compile_constraint,
    constraint_cache_info,
    evaluate_constraint_planned,
)
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.session import DatabaseView
from repro.engine.types import INT


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_constraint_cache()
    yield
    clear_constraint_cache()


def _schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("r", [("a", INT), ("b", INT)]),
            RelationSchema("s", [("c", INT), ("d", INT)]),
        ]
    )


def _database(rows_r=(), rows_s=()):
    database = Database(_schema())
    database.load("r", rows_r)
    database.load("s", rows_s)
    return database


REFERENTIAL = "(forall x)(x in r => (exists y)(y in s and x.a = y.c))"
DOMAIN = "(forall x)(x in r => x.b >= 0)"
# Disjunctive existential body referencing the outer variable: used to be
# naive residue; the relational-disjunction distribution now translates it
# (two antijoins in violation form).
DISJUNCTIVE = (
    "(forall x)(x in r => "
    "(exists y)((y in s and x.a = y.c) or (y in s and x.b = y.d)))"
)
# Linking across non-adjacent quantifier levels (z constrained by both x
# and y): genuinely outside the translatable fragment — the model checker
# remains the evaluator of last resort.
RESIDUE = (
    "(forall x)(x in r => (exists y)(y in s and x.a = y.c and "
    "(exists z)(z in r and z.b = x.b + y.d)))"
)


def test_translatable_constraint_is_fully_planned():
    compiled = compile_constraint(parse_constraint(REFERENTIAL), _schema())
    assert compiled.fully_planned
    assert compiled.plan_count() == 1
    assert compiled.residue() == []


def test_conjunction_of_universals_splits_into_plans():
    # trans_c rejects a top-level conjunction; the decomposing compiler
    # turns it into two physical plans under a boolean AND.
    formula = parse_constraint(f"{DOMAIN} and {REFERENTIAL}")
    schema = _schema()
    compiled = compile_constraint(formula, schema)
    assert compiled.fully_planned
    assert compiled.plan_count() == 2

    satisfied = _database(rows_r=[(1, 2)], rows_s=[(1, 0)])
    violated_domain = _database(rows_r=[(1, -2)], rows_s=[(1, 0)])
    violated_ref = _database(rows_r=[(7, 2)], rows_s=[(1, 0)])
    for database in (satisfied, violated_domain, violated_ref):
        view = DatabaseView(database)
        assert compiled.satisfied(view) == evaluate_constraint(
            formula, view, validate=False
        )


def test_negated_quantifier_pushes_through():
    # not (exists x)(...) is rewritten to a universal before translation.
    formula = parse_constraint("not (exists x)(x in r and x.b < 0)")
    compiled = compile_constraint(formula, _schema())
    assert compiled.fully_planned
    ok = _database(rows_r=[(1, 2)])
    bad = _database(rows_r=[(1, -1)])
    assert compiled.satisfied(DatabaseView(ok))
    assert not compiled.satisfied(DatabaseView(bad))


def test_disjunctive_existential_body_now_fully_planned():
    # The ROADMAP follow-up from PR 2: disjunctive existential bodies
    # referencing outer variables used to be naive residue.
    formula = parse_constraint(DISJUNCTIVE)
    compiled = compile_constraint(formula, _schema())
    assert compiled.fully_planned
    assert compiled.residue() == []
    satisfied = _database(rows_r=[(1, 9)], rows_s=[(1, 0), (2, 9)])
    violated = _database(rows_r=[(5, 6)], rows_s=[(1, 0)])
    for database in (satisfied, violated):
        view = DatabaseView(database)
        assert compiled.satisfied(view) == evaluate_constraint(
            formula, view, validate=False
        )


def test_untranslatable_residue_falls_back_to_oracle():
    formula = parse_constraint(RESIDUE)
    compiled = compile_constraint(formula, _schema())
    assert not compiled.fully_planned
    assert compiled.residue() == [formula]
    database = _database(rows_r=[(1, 9)], rows_s=[(1, 0)])
    view = DatabaseView(database)
    assert compiled.satisfied(view) == evaluate_constraint(
        formula, view, validate=False
    )


def test_partial_plan_mixes_backends():
    formula = parse_constraint(f"{DOMAIN} and {RESIDUE}")
    compiled = compile_constraint(formula, _schema())
    assert not compiled.fully_planned
    assert compiled.plan_count() == 1
    assert len(compiled.residue()) == 1


def test_cache_shares_compiled_artifacts_per_schema():
    schema = _schema()
    formula = parse_constraint(REFERENTIAL)
    first = compile_constraint(formula, schema)
    second = compile_constraint(parse_constraint(REFERENTIAL), schema)
    assert first is second  # structural formula equality
    info = constraint_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    other = compile_constraint(formula, _schema())  # different schema object
    assert other is not first


def test_cache_invalidated_by_schema_ddl():
    schema = _schema()
    formula = parse_constraint(REFERENTIAL)
    first = compile_constraint(formula, schema)
    schema.add(RelationSchema("t", [("e", INT)]))
    second = compile_constraint(formula, schema)
    assert second is not first
    assert second.schema_version == schema.version


def test_evaluate_constraint_planned_discovers_schema_from_resolver():
    database = _database(rows_r=[(1, 2)], rows_s=[(1, 0)])
    formula = parse_constraint(REFERENTIAL)
    assert evaluate_constraint_planned(formula, DatabaseView(database))
    database.load("r", [(5, 5)])
    assert not evaluate_constraint_planned(formula, DatabaseView(database))
