"""The direct CL evaluator: the semantic ground truth."""

import pytest

from repro.algebra.evaluation import StandaloneContext
from repro.calculus.evaluation import evaluate_constraint
from repro.calculus.parser import parse_constraint
from repro.engine import Relation, RelationSchema
from repro.engine.session import DatabaseView
from repro.engine.types import INT, NULL, STRING
from repro.errors import EvaluationError


@pytest.fixture
def ctx():
    r_schema = RelationSchema("r", [("a", INT), ("b", INT)])
    s_schema = RelationSchema("s", [("c", INT), ("d", INT)])
    return StandaloneContext(
        {
            "r": Relation(r_schema, [(1, 10), (2, 20), (3, 30)]),
            "s": Relation(s_schema, [(1, 100), (2, 200)]),
            "empty": Relation(r_schema.renamed("empty")),
        }
    )


def check(text, ctx):
    return evaluate_constraint(parse_constraint(text), ctx)


class TestDomainFamily:
    def test_satisfied(self, ctx):
        assert check("(forall x in r)(x.a > 0)", ctx)

    def test_violated(self, ctx):
        assert not check("(forall x in r)(x.a > 1)", ctx)

    def test_vacuous_on_empty(self, ctx):
        assert check("(forall x in empty)(x.a > 999)", ctx)

    def test_positional_attributes(self, ctx):
        assert check("(forall x in r)(x.2 = x.1 * 10)", ctx)


class TestExistentialFamily:
    def test_witness_found(self, ctx):
        assert check("(exists x in r)(x.b = 20)", ctx)

    def test_no_witness(self, ctx):
        assert not check("(exists x in r)(x.b = 999)", ctx)

    def test_empty_relation_has_no_witness(self, ctx):
        assert not check("(exists x in empty)(x.a = x.a)", ctx)


class TestReferentialFamily:
    def test_violated(self, ctx):
        # r.a = 3 has no partner in s.c
        assert not check(
            "(forall x in r)(exists y in s)(x.a = y.c)", ctx
        )

    def test_satisfied_after_restriction(self, ctx):
        assert check(
            "(forall x in r)(x.a > 2 or (exists y in s)(x.a = y.c))", ctx
        )


class TestExclusionFamily:
    def test_exclusion_violated(self, ctx):
        # some r.a equals some s.c
        assert not check(
            "(forall x in r)(forall y in s)(x.a != y.c)", ctx
        )

    def test_exclusion_satisfied(self, ctx):
        assert check(
            "(forall x in r)(forall y in s)(x.b != y.d)", ctx
        )


class TestTupleEquality:
    def test_self_join_equality(self, ctx):
        assert check("(forall x in r)(exists y in r)(x = y)", ctx)

    def test_cross_relation_never_equal(self, ctx):
        assert check("(forall x in r)(forall y in s)(not x = y)", ctx)


class TestAggregates:
    def test_cnt(self, ctx):
        assert check("CNT(r) = 3", ctx)
        assert check("CNT(empty) = 0", ctx)

    def test_sum_avg_min_max(self, ctx):
        assert check("SUM(r, b) = 60", ctx)
        assert check("AVG(r, b) = 20", ctx)
        assert check("MIN(r, a) = 1 and MAX(r, a) = 3", ctx)

    def test_aggregate_arithmetic(self, ctx):
        assert check("SUM(r, b) / CNT(r) = 20", ctx)

    def test_empty_aggregates(self, ctx):
        assert check("SUM(empty, a) = 0", ctx)
        # MIN over empty is NULL; unknown verdicts count as satisfied.
        assert check("MIN(empty, a) = 0", ctx)
        assert check("MIN(empty, a) != 0", ctx)

    def test_mixed_aggregate_and_quantifier(self, ctx):
        assert check("(forall x in r)(x.b <= SUM(r, b))", ctx)

    def test_mlt_vs_cnt_on_bag(self, ctx):
        schema = RelationSchema("bag", [("a", INT)])
        ctx.bind("bag", Relation(schema, [(1,), (1,), (2,)], bag=True))
        assert check("CNT(bag) = 3 and MLT(bag) = 2", ctx)


class TestConnectives:
    def test_implication_semantics(self, ctx):
        assert check("CNT(r) = 99 => CNT(r) = 100", ctx)  # false antecedent
        assert check("CNT(r) = 3 => CNT(s) = 2", ctx)
        assert not check("CNT(r) = 3 => CNT(s) = 99", ctx)

    def test_not(self, ctx):
        assert check("not CNT(r) = 99", ctx)

    def test_nested_connectives(self, ctx):
        assert check(
            "(CNT(r) = 3 and CNT(s) = 2) or CNT(empty) = 5", ctx
        )


class TestTransitionConstraints:
    def test_old_state_via_database_view(self, db):
        # Outside a transaction, R@old resolves to the current state.
        view = DatabaseView(db)
        assert evaluate_constraint(
            parse_constraint("(forall x in beer@old)(x.alcohol >= 0)"), view
        )

    def test_old_state_inside_transaction(self, db):
        from repro.engine.transaction import TransactionContext

        context = TransactionContext(db)
        context.insert_rows("beer", [("brandnew", "ale", "heineken", 9.9)])
        # The new tuple is in beer but not in beer@old.
        assert evaluate_constraint(
            parse_constraint(
                '(exists x in beer)(x.name = "brandnew")'
            ),
            context,
        )
        assert not evaluate_constraint(
            parse_constraint(
                '(exists x in beer@old)(x.name = "brandnew")'
            ),
            context,
        )


class TestNullHandling:
    def test_unknown_counts_as_satisfied(self):
        # "Satisfied unless definitely violated": NULL comparisons are
        # unknown, and unknown never fires an alarm (module docs).
        schema = RelationSchema("t", [("a", INT, True)])
        ctx = StandaloneContext({"t": Relation(schema, [(NULL,)])})
        assert evaluate_constraint(parse_constraint("(forall x in t)(x.a = x.a)"), ctx)
        assert evaluate_constraint(parse_constraint("(exists x in t)(x.a = x.a)"), ctx)

    def test_three_valued_entry_point(self):
        from repro.calculus.evaluation import evaluate_three_valued

        schema = RelationSchema("t", [("a", INT, True)])
        ctx = StandaloneContext({"t": Relation(schema, [(NULL,)])})
        assert evaluate_three_valued(parse_constraint("(forall x in t)(x.a = x.a)"), ctx) is None
        assert evaluate_three_valued(parse_constraint("(forall x in t)(x.a = 1 or x.a != 1 or x.a = x.a)"), ctx) is None

    def test_empty_aggregate_constraints_vacuously_satisfied(self):
        schema = RelationSchema("t", [("a", INT)])
        ctx = StandaloneContext({"t": Relation(schema)})
        assert evaluate_constraint(parse_constraint("MIN(t, a) = 0"), ctx)
        assert evaluate_constraint(parse_constraint("MIN(t, a) != 0"), ctx)
        assert evaluate_constraint(parse_constraint("SUM(t, a) = 0"), ctx)
        assert not evaluate_constraint(parse_constraint("SUM(t, a) = 1"), ctx)


class TestErrors:
    def test_attribute_out_of_range(self, ctx):
        with pytest.raises(EvaluationError):
            check("(forall x in r)(x.9 > 0)", ctx)

    def test_division_by_zero(self, ctx):
        with pytest.raises(EvaluationError):
            check("(forall x in r)(x.a / 0 > 0)", ctx)

    def test_validation_can_be_disabled(self, ctx):
        from repro.calculus.parser import parse_constraint as parse

        # An open formula fails validation, but validate=False skips it and
        # the evaluator then reports the unbound variable at use time.
        formula = parse("x.a > 0")
        with pytest.raises(EvaluationError):
            evaluate_constraint(formula, ctx, validate=False)
