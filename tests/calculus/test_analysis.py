"""Static analyses: free variables, closedness, safety, ranges."""

import pytest

from repro.calculus import ast as C
from repro.calculus.analysis import (
    check_closed,
    check_constraint,
    check_safety,
    free_variables,
    quantifier_depth,
    relation_names,
    variable_ranges,
)
from repro.calculus.parser import parse_constraint
from repro.errors import AnalysisError, UnsafeFormulaError


class TestFreeVariables:
    def test_closed_sentence(self):
        formula = parse_constraint("(forall x in r)(x.a > 0)")
        assert free_variables(formula) == set()

    def test_open_formula(self):
        formula = parse_constraint("x in r and y.a > 0")
        assert free_variables(formula) == {"x", "y"}

    def test_quantifier_binds(self):
        formula = parse_constraint("(exists x in r)(x.a = y.b)")
        assert free_variables(formula) == {"y"}

    def test_tuple_eq_variables(self):
        formula = parse_constraint("x = y")
        assert free_variables(formula) == {"x", "y"}

    def test_shadowing(self):
        # Outer x is bound by the outer quantifier; inner re-binds it.
        formula = C.Forall(
            "x",
            C.Implies(
                C.Member("x", "r"),
                C.Exists("x", C.And(C.Member("x", "s"), C.Compare(">", C.AttrSel("x", 1), C.Const(0)))),
            ),
        )
        assert free_variables(formula) == set()


class TestClosedness:
    def test_closed_ok(self):
        check_closed(parse_constraint("(forall x in r)(x.a > 0)"))

    def test_open_rejected(self):
        with pytest.raises(AnalysisError, match="free variable"):
            check_closed(parse_constraint("x.a > 0"))

    def test_aggregate_condition_is_closed(self):
        check_closed(parse_constraint("CNT(r) < 100"))


class TestSafety:
    def test_guarded_forall_ok(self):
        check_safety(parse_constraint("(forall x)(x in r => x.a > 0)"))

    def test_guarded_exists_ok(self):
        check_safety(parse_constraint("(exists x)(x in r and x.a > 0)"))

    def test_unguarded_forall_rejected(self):
        with pytest.raises(UnsafeFormulaError):
            check_safety(parse_constraint("(forall x)(x.a > 0)"))

    def test_unguarded_nested_rejected(self):
        with pytest.raises(UnsafeFormulaError):
            check_safety(
                parse_constraint("(forall x in r)(exists y)(y.a = x.a)")
            )

    def test_membership_anywhere_in_scope_suffices(self):
        check_safety(
            parse_constraint("(forall x)(not x in r or x.a > 0)")
        )

    def test_shadowed_membership_does_not_leak(self):
        formula = C.Forall(
            "x", C.Exists("x", C.And(C.Member("x", "r"), C.Compare(">", C.AttrSel("x", 1), C.Const(0))))
        )
        with pytest.raises(UnsafeFormulaError):
            check_safety(formula)

    def test_check_constraint_combines_both(self):
        with pytest.raises(AnalysisError):
            check_constraint(parse_constraint("x.a > 0"))
        with pytest.raises(UnsafeFormulaError):
            check_constraint(parse_constraint("(forall x)(x.a > 0)"))
        check_constraint(parse_constraint("(forall x in r)(x.a > 0)"))


class TestRelationNamesAndRanges:
    def test_relation_names_memberships(self):
        formula = parse_constraint(
            "(forall x in beer)(exists y in brewery)(x.brewery = y.name)"
        )
        assert relation_names(formula) == {"beer", "brewery"}

    def test_relation_names_aggregates(self):
        formula = parse_constraint("SUM(emp, salary) + CNT(dept) <= MLT(log)")
        assert relation_names(formula) == {"emp", "dept", "log"}

    def test_variable_ranges(self):
        formula = parse_constraint(
            "(forall x in beer)(exists y in brewery)(x.brewery = y.name)"
        )
        assert variable_ranges(formula) == {"x": {"beer"}, "y": {"brewery"}}

    def test_variable_with_two_ranges(self):
        formula = parse_constraint("(forall x)((x in r and x in s) => x.1 > 0)")
        assert variable_ranges(formula) == {"x": {"r", "s"}}


class TestQuantifierDepth:
    def test_depths(self):
        assert quantifier_depth(parse_constraint("CNT(r) > 0")) == 0
        assert quantifier_depth(parse_constraint("(forall x in r)(x.a > 0)")) == 1
        assert (
            quantifier_depth(
                parse_constraint(
                    "(forall x in r)(exists y in s)(x.a = y.c)"
                )
            )
            == 2
        )
