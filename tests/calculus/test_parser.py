"""CL parsing: ASCII and Unicode forms, sugar, precedence."""

import pytest

from repro.calculus import ast as C
from repro.calculus.parser import parse_constraint
from repro.engine.types import NULL
from repro.errors import ParseError


class TestBasicForms:
    def test_paper_domain_constraint(self):
        formula = parse_constraint("(forall x)(x in beer => x.alcohol >= 0)")
        assert formula == C.Forall(
            "x",
            C.Implies(
                C.Member("x", "beer"),
                C.Compare(">=", C.AttrSel("x", "alcohol"), C.Const(0)),
            ),
        )

    def test_paper_referential_constraint(self):
        formula = parse_constraint(
            "(forall x)(x in beer => "
            "(exists y)(y in brewery and x.brewery = y.name))"
        )
        assert isinstance(formula, C.Forall)
        inner = formula.body.right
        assert inner == C.Exists(
            "y",
            C.And(
                C.Member("y", "brewery"),
                C.Compare(
                    "=", C.AttrSel("x", "brewery"), C.AttrSel("y", "name")
                ),
            ),
        )

    def test_unicode_matches_ascii(self):
        ascii_form = parse_constraint("(forall x)(x in beer => x.alcohol >= 0)")
        unicode_form = parse_constraint("(∀x)(x ∈ beer ⇒ x.alcohol ≥ 0)")
        assert ascii_form == unicode_form

    def test_bounded_forall_sugar(self):
        sugar = parse_constraint("(forall x in beer)(x.alcohol >= 0)")
        plain = parse_constraint("(forall x)(x in beer => x.alcohol >= 0)")
        assert sugar == plain

    def test_bounded_exists_sugar(self):
        sugar = parse_constraint("(exists x in beer)(x.alcohol > 10)")
        plain = parse_constraint("(exists x)(x in beer and x.alcohol > 10)")
        assert sugar == plain

    def test_multi_variable_quantifier(self):
        formula = parse_constraint("(forall x, y in r)(x.1 <= y.1 + 1)")
        assert isinstance(formula, C.Forall)
        assert isinstance(formula.body.right, C.Forall)

    def test_chained_quantifiers(self):
        formula = parse_constraint(
            "(forall x in beer)(exists y in brewery)(x.brewery = y.name)"
        )
        assert isinstance(formula, C.Forall)
        assert isinstance(formula.body.right, C.Exists)

    def test_aggregate_constraint(self):
        formula = parse_constraint("CNT(beer) <= 1000")
        assert formula == C.Compare("<=", C.CntTerm("beer"), C.Const(1000))

    def test_sum_avg_min_max(self):
        assert parse_constraint("SUM(emp, salary) >= 0").left == C.AggTerm(
            "SUM", "emp", "salary"
        )
        assert parse_constraint("avg(emp, 2) < 5").left == C.AggTerm(
            "AVG", "emp", 2
        )
        assert parse_constraint("MIN(r, a) != MAX(r, a)").right == C.AggTerm(
            "MAX", "r", "a"
        )

    def test_mlt(self):
        assert parse_constraint("MLT(r) = CNT(r)").left == C.MltTerm("r")

    def test_auxiliary_relation_reference(self):
        formula = parse_constraint("(forall x in emp@old)(x.salary > 0)")
        assert isinstance(formula.body.left, C.Member)
        assert formula.body.left.relation == "emp@old"


class TestOperators:
    def test_implication_right_associative(self):
        formula = parse_constraint("x in r => x in s => x.1 > 0")
        assert isinstance(formula, C.Implies)
        assert isinstance(formula.right, C.Implies)

    def test_and_binds_tighter_than_or(self):
        formula = parse_constraint("x in r or x in s and x.1 > 0")
        assert isinstance(formula, C.Or)
        assert isinstance(formula.right, C.And)

    def test_not(self):
        formula = parse_constraint("not x in r")
        assert formula == C.Not(C.Member("x", "r"))

    def test_tuple_equality(self):
        formula = parse_constraint("(forall x in r)(forall y in s)(not x = y)")
        negation = formula.body.right.body.right
        assert negation == C.Not(C.TupleEq("x", "y"))

    def test_bare_variable_in_arithmetic_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("x + 1 > 0")

    def test_bare_variable_with_inequality_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("x < y")

    def test_parenthesized_term_comparison(self):
        formula = parse_constraint("(forall x in r)((x.a + 1) * 2 > x.b)")
        comparison = formula.body.right
        assert isinstance(comparison.left, C.ArithTerm)
        assert comparison.left.op == "*"

    def test_constants(self):
        assert parse_constraint('(forall x in r)(x.name != "abc")').body.right.right == C.Const("abc")
        assert parse_constraint("(forall x in r)(x.flag = true)").body.right.right == C.Const(True)
        null_compare = parse_constraint("(forall x in r)(x.c != null)").body.right
        assert null_compare.right == C.Const(NULL)
        assert parse_constraint("(forall x in r)(x.a > -3)").body.right.right == C.Const(-3)

    def test_division_term(self):
        formula = parse_constraint("(forall x in r)(x.a / 2 <= 10)")
        assert formula.body.right.left.op == "/"


class TestErrors:
    def test_reserved_variable_name(self):
        with pytest.raises(ParseError):
            parse_constraint("(forall in)(in in r)")

    def test_missing_comparison(self):
        with pytest.raises(ParseError):
            parse_constraint("(forall x in r)(x.a)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_constraint("CNT(r) > 0 extra")

    def test_unterminated_quantifier(self):
        with pytest.raises(ParseError):
            parse_constraint("(forall x)(x in r")

    def test_malformed_aux_suffix(self):
        from repro.errors import LexError

        with pytest.raises(LexError):
            parse_constraint("(forall x in r@bogus)(x.1 > 0)")
