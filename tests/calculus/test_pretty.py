"""CL rendering: ASCII round-trips and the paper's symbol form."""

import pytest

from repro.calculus.parser import parse_constraint
from repro.calculus.pretty import render_constraint

CONSTRAINTS = [
    "(forall x)(x in beer => x.alcohol >= 0)",
    "(forall x in beer)(exists y in brewery)(x.brewery = y.name)",
    "(forall x, y)((x in emp and y in emp and x.dept = y.dept) => x.grade <= y.grade + 2)",
    "(forall x in r)(forall y in s)(x.1 != y.2)",
    "(exists x in r)(x.a > 10 or x.b < 0)",
    "CNT(beer) <= 1000",
    "SUM(emp, salary) + CNT(emp) <= 100000",
    "MIN(r, a) != MAX(r, a) => CNT(r) >= 2",
    "(forall x in emp)(forall o in emp@old)(x.id != o.id or x.salary >= o.salary)",
    "(forall x in r)(not x.a = 1 and not x.b = 2)",
    "(forall x in r)(exists y in r)(x = y)",
    '(forall x in t)(x.name != "it\'s")',
    "(forall x in r)((x.a + 1) * 2 > x.b / 2 - 3)",
    "not (exists x in r)(x.a < 0)",
]


class TestAsciiRoundTrip:
    @pytest.mark.parametrize("text", CONSTRAINTS)
    def test_parse_render_parse(self, text):
        formula = parse_constraint(text)
        rendered = render_constraint(formula)
        assert parse_constraint(rendered) == formula


class TestSymbolForm:
    def test_symbols_also_reparse(self):
        for text in CONSTRAINTS:
            formula = parse_constraint(text)
            symbolic = render_constraint(formula, symbols=True)
            assert parse_constraint(symbolic) == formula

    def test_uses_paper_notation(self):
        formula = parse_constraint("(forall x)(x in beer => x.alcohol >= 0)")
        symbolic = render_constraint(formula, symbols=True)
        assert "∀" in symbolic and "∈" in symbolic and "≥" in symbolic

    def test_bounded_sugar_reintroduced(self):
        formula = parse_constraint("(forall x)(x in beer => x.alcohol >= 0)")
        assert render_constraint(formula) == "(forall x in beer)(x.alcohol >= 0)"

    def test_unbounded_quantifier_rendered_plain(self):
        formula = parse_constraint("(forall x)(not x in r or x.a > 0)")
        assert render_constraint(formula).startswith("(forall x)(")
