#!/usr/bin/env python
"""Materialized views maintained by transaction modification.

Section 7 of the paper: "transaction modification can be used for purposes
other than integrity control as well, like materialized view maintenance."
This example registers two views over the beer database — a differential
selection view and a recomputed join view — and shows their maintenance
programs riding along with every transaction, coexisting with the paper's
integrity rules R1/R2.

Run with:  python examples/materialized_views.py
"""

from repro import Session
from repro.algebra.pretty import render_program, render_transaction
from repro.views import ViewManager
from repro.workloads.beer import beer_controller, beer_database


def main() -> None:
    db = beer_database(beers=12, breweries=4, seed=11)
    controller = beer_controller()
    session = Session(db, controller)
    manager = ViewManager(db, controller)

    strong = manager.define_view("strong_beer", "select(beer, alcohol >= 7.0)")
    catalog = manager.define_view(
        "catalog",
        "project(join(beer, brewery, left.brewery = right.name), [1, 3, 6])",
    )
    print(f"defined {strong} and {catalog}")
    print(f"strong_beer[{len(db.relation('strong_beer'))}] "
          f"catalog[{len(db.relation('catalog'))}]\n")

    for view in (strong, catalog):
        program = controller.store.get(f"view::{view.name}").program
        print(f"maintenance program for {view.name} ({view.mode}):")
        print(render_program(program, indent="    "))
        print()

    transaction = session.transaction(
        'begin insert(beer, ("tripel_karmeliet", "tripel", "brewery_1", 8.4)); end'
    )
    modified = controller.modify_transaction(transaction)
    print("an insert transaction after modification — integrity checks,")
    print("compensation, and both view-maintenance programs appended:")
    print(render_transaction(modified))

    result = session.execute(transaction)
    print(f"\nexecution: {result}")
    print(f"strong_beer now: {db.relation('strong_beer').sorted_rows()}")
    print(f"views verified: strong={manager.verify_view('strong_beer')}, "
          f"catalog={manager.verify_view('catalog')}")

    # Views stay consistent through deletes and aborts alike.
    session.execute('begin delete(beer, where name = "tripel_karmeliet"); end')
    print(f"\nafter deleting it again: strong_beer = "
          f"{db.relation('strong_beer').sorted_rows()}")
    aborted = session.execute(
        'begin insert(beer, ("impossible", "ale", "brewery_1", -1.0)); end'
    )
    print(f"aborted transaction left views intact: {aborted.status.value}, "
          f"verified={manager.verify_view('strong_beer')}")


if __name__ == "__main__":
    main()
