#!/usr/bin/env python
"""The Section 7 experiment: parallel constraint enforcement at scale.

Builds the paper's test database (5000-tuple key relation, 50000-tuple
foreign-key relation), inserts 5000 new tuples, and enforces the
referential and domain constraints on a simulated multi-node main-memory
machine — sweeping node counts and comparing the enforcement strategies of
Grefen & Apers [7].

The checks execute for real on the fragments; times come from the POOMA
cost model calibrated against the paper's two published measurements
("within 3 seconds" referential, "less than 1 second" domain, 8 nodes).

Run with:  python examples/parallel_enforcement.py
"""

import time

from repro.algebra import parse_predicate
from repro.parallel import (
    FragmentedDatabase,
    HashFragmentation,
    ParallelEnforcer,
    RoundRobinFragmentation,
    Strategy,
)
from repro.parallel.cost_model import MODERN_2026, POOMA_1992
from repro.parallel.fragmentation import FragmentedRelation
from repro.workloads.section7 import (
    BATCH_SIZE,
    FK_SIZE,
    PK_SIZE,
    section7_database,
    section7_insert_batch,
)


def main() -> None:
    print(f"building the Section 7 database: pk[{PK_SIZE}] fk[{FK_SIZE}] ...")
    started = time.perf_counter()
    db = section7_database()
    print(f"  built in {time.perf_counter() - started:.2f}s\n")

    batch_rows = section7_insert_batch(start_id=FK_SIZE + 1000)

    print(f"differential check of a {BATCH_SIZE}-tuple insert batch")
    print("(the R@plus set produced by transaction modification)\n")

    header = f"{'nodes':>5}  {'referential':>12}  {'domain':>8}  {'ref/dom':>8}"
    print(header)
    print("-" * len(header))
    for nodes in (1, 2, 4, 8):
        fdb = FragmentedDatabase.from_database(
            db,
            {
                "pk": HashFragmentation("key", nodes),
                "fk": HashFragmentation("ref", nodes),
            },
            nodes=nodes,
        )
        enforcer = ParallelEnforcer(fdb, POOMA_1992)
        batch = FragmentedRelation(
            db.relation_schema("fk"), HashFragmentation("ref", nodes)
        )
        batch.load(batch_rows)
        referential = enforcer.referential_check(
            batch, "ref", "pk", "key", Strategy.LOCAL
        )
        domain = enforcer.domain_check(batch, parse_predicate("amount < 0"))
        ratio = referential.simulated_seconds / domain.simulated_seconds
        print(
            f"{nodes:>5}  {referential.simulated_seconds:>10.2f} s"
            f"  {domain.simulated_seconds:>6.2f} s  {ratio:>7.1f}x"
        )
    print(
        "\npaper, 8 nodes: referential 'within 3 seconds', domain "
        "'less than 1 second'"
    )

    # -- strategies on attribute-blind fragmentation ---------------------------
    print("\nfull-relation check (50k fk vs 5k pk) under each strategy, 8 nodes:")
    rows = []
    fdb = FragmentedDatabase.from_database(
        db,
        {
            "pk": HashFragmentation("key", 8),
            "fk": HashFragmentation("ref", 8),
        },
        nodes=8,
    )
    rows.append(
        ParallelEnforcer(fdb, POOMA_1992).referential_check(
            "fk", "ref", "pk", "key", Strategy.LOCAL
        )
    )
    for strategy in (Strategy.BROADCAST, Strategy.REPARTITION):
        blind = FragmentedDatabase.from_database(
            db,
            {
                "pk": HashFragmentation("key", 8),
                "fk": RoundRobinFragmentation(8),
            },
            nodes=8,
        )
        rows.append(
            ParallelEnforcer(blind, POOMA_1992).referential_check(
                "fk", "ref", "pk", "key", strategy
            )
        )
    for report in rows:
        print(
            f"  {report.strategy.value:>12}: {report.simulated_seconds:>6.2f} s "
            f"simulated, {report.tuples_shipped:>6} tuples shipped, "
            f"{report.violations} violations"
        )

    # -- 2026 hardware for perspective ---------------------------------------------
    enforcer = ParallelEnforcer(fdb, MODERN_2026)
    report = enforcer.referential_check("fk", "ref", "pk", "key", Strategy.LOCAL)
    print(
        f"\nsame check, 2026-grade cost model: "
        f"{report.simulated_seconds * 1000:.3f} ms simulated "
        f"({report.python_seconds * 1000:.1f} ms actual Python)"
    )


if __name__ == "__main__":
    main()
