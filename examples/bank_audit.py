#!/usr/bin/env python
"""Banking scenario: transition constraints and a compensating audit trail.

Demonstrates the parts of the paper the beer example leaves out:

* a **transition constraint** (Def 3.3) over the pre-transaction auxiliary
  state ``account@old``: an account balance may decrease by at most the
  overdraft allowance in one transaction;
* an **aggregate state constraint** (Table 1 rows 6-7): the bank's total
  balance must stay non-negative;
* a **compensating rule with a non-triggering action** (Def 6.2): every
  transaction touching accounts appends an audit record — the action
  inserts into ``audit`` but is declared non-triggering so it can never
  cascade.

Run with:  python examples/bank_audit.py
"""

from repro import Database, DatabaseSchema, IntegrityController, RelationSchema, Session
from repro.engine import INT, STRING

OVERDRAFT = 500


def build_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("account", [("id", INT), ("owner", STRING), ("balance", INT)]),
            RelationSchema("audit", [("account_id", INT), ("balance", INT)]),
        ]
    )


def build_controller(schema: DatabaseSchema) -> IntegrityController:
    controller = IntegrityController(schema)

    # State constraint: balances never drop below the overdraft line.
    controller.add_rule(f"""
        RULE no_deep_overdraft
        IF NOT (forall a in account)(a.balance >= -{OVERDRAFT})
        THEN abort
    """)

    # Transition constraint (Def 3.3): a single transaction may not cut a
    # balance by more than the overdraft allowance. account@old is the
    # pre-transaction state maintained by the engine.
    controller.add_rule(f"""
        RULE bounded_withdrawal
        WHEN INS(account), DEL(account)
        IF NOT (forall a in account)(forall o in account@old)
               (a.id != o.id or o.balance - a.balance <= {OVERDRAFT})
        THEN abort
    """)

    # Aggregate constraint: the bank as a whole stays solvent.
    controller.add_rule("""
        RULE bank_solvent
        IF NOT SUM(account, balance) >= 0
        THEN abort
    """)

    # Compensating, non-triggering audit rule: whenever accounts change,
    # record the current state of every touched account.  The condition is
    # an exclusion against the differential (new audit rows must exist for
    # changed accounts); the action simply writes them.
    controller.add_rule("""
        RULE audit_trail
        WHEN INS(account), DEL(account)
        IF NOT (forall a in account@plus)(exists e in audit)
               (a.id = e.account_id and a.balance = e.balance)
        THEN NONTRIGGERING
             insert(audit, project(account@plus, [id, balance]))
    """)
    return controller


def main() -> None:
    schema = build_schema()
    db = Database(schema)
    db.load(
        "account",
        [(1, "ada", 1200), (2, "bob", 300), (3, "cyn", -200)],
    )
    controller = build_controller(schema)
    session = Session(db, controller)
    print(f"initial: {db}")
    print(f"rules:   {[rule.name for rule in controller.rules]}")
    print(f"graph:   {controller.validate_rules()}\n")

    # A legal transfer: ada -> bob, 400.
    result = session.execute(
        """
        begin
            update(account, id = 1, balance := balance - 400);
            update(account, id = 2, balance := balance + 400);
        end
        """
    )
    print(f"transfer 400 ada->bob: {result}")
    print(f"  audit rows: {db.relation('audit').sorted_rows()}")

    # An illegal withdrawal: cuts ada's balance by more than the allowance.
    result = session.execute(
        "begin update(account, id = 1, balance := balance - 501); end"
    )
    print(f"\nwithdraw 501 from ada: {result}")

    # A deep overdraft: blocked by the state constraint.
    result = session.execute(
        "begin update(account, id = 3, balance := balance - 400); end"
    )
    print(f"overdraw cyn by 400:   {result}")

    # Draining the bank: blocked by the aggregate constraint.
    result = session.execute(
        "begin update(account, balance > 0, balance := balance - 1000); end"
    )
    print(f"drain all accounts:    {result}")

    print(f"\nfinal:  {db}")
    print(f"audit:  {db.relation('audit').sorted_rows()}")
    print(f"intact: violated = {controller.violated_constraints(db)}")


if __name__ == "__main__":
    main()
