#!/usr/bin/env python
"""Inventory scenario: compensation cascades and triggering-graph analysis.

Shows the *recursive* nature of transaction modification (Alg 5.1): a
compensating rule's repair program performs updates that trigger further
rules, so ModT keeps appending until a fixpoint.  Also demonstrates the
infinite-triggering analysis of Section 6.1: a cyclic rule set is detected
by the triggering graph, and declaring one action non-triggering (Def 6.2)
breaks the cycle.

Schema: orders reference products; products reference suppliers.  Deleting
a supplier cascades: its products are dropped, which cascades to orders.

Run with:  python examples/inventory_cascade.py
"""

from repro import Database, DatabaseSchema, IntegrityController, RelationSchema, Session
from repro.algebra.pretty import render_transaction
from repro.engine import INT, STRING
from repro.errors import TriggerCycleError


def build_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("supplier", [("id", INT), ("name", STRING)]),
            RelationSchema("part", [("id", INT), ("supplier_id", INT)]),
            RelationSchema("orders", [("id", INT), ("part_id", INT)]),
        ]
    )


def build_controller(schema: DatabaseSchema) -> IntegrityController:
    controller = IntegrityController(schema)
    # Products of vanished suppliers are dropped (cascade level 1).
    controller.add_rule("""
        RULE part_supplier_fk
        IF NOT (forall p in part)(exists s in supplier)(p.supplier_id = s.id)
        THEN delete(part, antijoin(part, supplier, left.supplier_id = right.id))
    """)
    # Orders of vanished products are dropped (cascade level 2).
    controller.add_rule("""
        RULE order_part_fk
        IF NOT (forall o in orders)(exists p in part)(o.part_id = p.id)
        THEN delete(orders, antijoin(orders, part, left.part_id = right.id))
    """)
    return controller


def main() -> None:
    schema = build_schema()
    db = Database(schema)
    db.load("supplier", [(1, "acme"), (2, "globex")])
    db.load("part", [(10, 1), (11, 1), (20, 2)])
    db.load("orders", [(100, 10), (101, 11), (102, 20)])
    controller = build_controller(schema)
    session = Session(db, controller)

    graph = controller.validate_rules()
    print(f"triggering graph: {graph}")
    print(f"edges: {list(graph.edges)}")
    print(f"longest triggering chain: {graph.triggering_depth()} rounds\n")

    transaction = session.transaction("begin delete(supplier, where id = 1); end")
    modified = controller.modify_transaction(transaction)
    print("deleting supplier 1 becomes the cascade:")
    print(render_transaction(modified))
    print(f"(ModT rounds: {controller.last_stats.rounds})\n")

    result = session.execute(transaction)
    print(f"execution: {result}")
    print(f"products left: {db.relation('part').sorted_rows()}")
    print(f"orders left:   {db.relation('orders').sorted_rows()}")
    print(f"audit: violated = {controller.violated_constraints(db)}\n")

    # -- the cyclic case (Section 6.1) ---------------------------------------
    print("now a *cyclic* rule set: products sync to a mirror and back ...")
    cyclic_schema = DatabaseSchema(
        [
            RelationSchema("left_copy", [("id", INT)]),
            RelationSchema("right_copy", [("id", INT)]),
        ]
    )
    cyclic = IntegrityController(cyclic_schema)
    cyclic.add_rule("""
        RULE sync_right
        IF NOT (forall x in left_copy)(exists y in right_copy)(x.id = y.id)
        THEN insert(right_copy, diff(left_copy, right_copy))
    """)
    cyclic.add_rule("""
        RULE sync_left
        IF NOT (forall x in right_copy)(exists y in left_copy)(x.id = y.id)
        THEN insert(left_copy, diff(right_copy, left_copy))
    """)
    try:
        cyclic.validate_rules()
    except TriggerCycleError as error:
        print(f"cycle detected: {error}")
        print(f"suggested fix: declare non-triggering -> "
              f"{cyclic.triggering_graph().suggest_non_triggering()}")

    # Break the cycle per Def 6.2 and show the fixpoint now terminates.
    fixed = IntegrityController(cyclic_schema)
    fixed.add_rule("""
        RULE sync_right
        IF NOT (forall x in left_copy)(exists y in right_copy)(x.id = y.id)
        THEN insert(right_copy, diff(left_copy, right_copy))
    """)
    fixed.add_rule("""
        RULE sync_left
        IF NOT (forall x in right_copy)(exists y in left_copy)(x.id = y.id)
        THEN NONTRIGGERING insert(left_copy, diff(right_copy, left_copy))
    """)
    fixed.validate_rules()
    print(f"\nafter marking sync_left non-triggering: {fixed.triggering_graph()}")
    mirror_db = Database(cyclic_schema)
    mirror_session = Session(mirror_db, fixed)
    result = mirror_session.execute("begin insert(left_copy, (7,)); end")
    print(f"insert into left_copy: {result}")
    print(f"right_copy mirrored: {mirror_db.relation('right_copy').sorted_rows()}")


if __name__ == "__main__":
    main()
