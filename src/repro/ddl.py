"""A small DDL text form for relation schemas.

The paper defines schemas mathematically (Def 2.1); tests and the CLI need
a text form.  Syntax:

.. code-block:: text

    relation beer(name string, type string, brewery string, alcohol float)
    relation brewery(name string, city string null, country string null)

Domains: ``int``, ``float``, ``string``, ``bool`` (plus the aliases of
:func:`repro.engine.types.domain_by_name`); a trailing ``null`` marks the
attribute nullable.
"""

from __future__ import annotations

from typing import List

from repro.engine.schema import Attribute, DatabaseSchema, RelationSchema
from repro.engine.types import domain_by_name
from repro.errors import ParseError
from repro.lex import TokenStream


def parse_relation_schema(text: str) -> RelationSchema:
    """Parse one ``relation name(attr domain [null], ...)`` declaration."""
    stream = TokenStream(text)
    schema = _relation(stream)
    stream.expect_eof()
    return schema


def parse_schema(text: str) -> DatabaseSchema:
    """Parse a sequence of relation declarations into a database schema."""
    stream = TokenStream(text)
    relations: List[RelationSchema] = []
    while not stream.at("EOF"):
        relations.append(_relation(stream))
        stream.accept("OP", ";")
    if not relations:
        raise ParseError("schema text contains no relation declarations")
    return DatabaseSchema(relations)


def _relation(stream: TokenStream) -> RelationSchema:
    stream.expect_name("relation")
    name = stream.expect("NAME").value
    stream.expect("OP", "(")
    attributes = [_attribute(stream)]
    while stream.accept("OP", ","):
        attributes.append(_attribute(stream))
    stream.expect("OP", ")")
    return RelationSchema(name, attributes)


def _attribute(stream: TokenStream) -> Attribute:
    name = stream.expect("NAME").value
    domain_token = stream.expect("NAME")
    try:
        domain = domain_by_name(domain_token.value)
    except Exception:
        raise ParseError(
            f"unknown domain {domain_token.value!r} at position "
            f"{domain_token.position}"
        ) from None
    nullable = stream.accept_name("null") is not None
    return Attribute(name, domain, nullable=nullable)


def render_relation_schema(schema: RelationSchema) -> str:
    """Render a schema back to DDL text (round-trip property tested)."""
    attributes = ", ".join(
        f"{attribute.name} {attribute.domain.name}"
        + (" null" if attribute.nullable else "")
        for attribute in schema.attributes
    )
    return f"relation {schema.name}({attributes})"
