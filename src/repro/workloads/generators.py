"""Random data, database, and transaction generators.

Used by property-based tests (alongside hypothesis strategies) and by the
benchmarks for reproducible synthetic inputs.  All generators take an
explicit ``random.Random`` or seed — nothing here touches global state.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra import statements as S
from repro.algebra.programs import Program, bracket
from repro.engine import Database, DatabaseSchema, RelationSchema
from repro.engine.schema import Attribute
from repro.engine.transaction import Transaction
from repro.engine.types import BOOL, FLOAT, INT, STRING

_WORDS = (
    "ale", "bock", "dort", "edel", "frue", "gose", "hell", "ipa",
    "kolsch", "lager", "marz", "pils", "quad", "rauch", "saison", "tripel",
)


def _rng(seed_or_rng: Union[int, random.Random, None]) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def random_value(attribute: Attribute, rng: random.Random):
    """A random value fitting an attribute's domain."""
    domain = attribute.domain
    if domain is INT:
        return rng.randint(-50, 50)
    if domain is FLOAT:
        return round(rng.uniform(-50.0, 50.0), 2)
    if domain is BOOL:
        return rng.random() < 0.5
    if domain is STRING:
        return rng.choice(_WORDS) + str(rng.randint(0, 9))
    return rng.randint(0, 9)


def random_rows(
    schema: RelationSchema, count: int, seed: Union[int, random.Random, None] = None
) -> List[tuple]:
    """``count`` random rows for a relation schema."""
    rng = _rng(seed)
    return [
        tuple(random_value(attribute, rng) for attribute in schema.attributes)
        for _ in range(count)
    ]


def random_database(
    schema: DatabaseSchema,
    rows_per_relation: int = 10,
    seed: Union[int, random.Random, None] = None,
) -> Database:
    """A database with random contents (no constraints guaranteed)."""
    rng = _rng(seed)
    database = Database(schema)
    for relation_schema in schema:
        database.load(
            relation_schema.name, random_rows(relation_schema, rows_per_relation, rng)
        )
    return database


def random_transaction(
    database: Database,
    statements: int = 4,
    seed: Union[int, random.Random, None] = None,
    allow_updates: bool = True,
) -> Transaction:
    """A random multi-update transaction against the current database.

    Mixes inserts of fresh random rows, deletes of existing rows (by value),
    and single-attribute updates — the "arbitrary multi-update transactions"
    the paper's technique is designed for.
    """
    rng = _rng(seed)
    names = list(database.relation_names)
    produced: List[S.Statement] = []
    for _ in range(statements):
        name = rng.choice(names)
        relation = database.relation(name)
        schema = relation.schema
        kind = rng.random()
        if kind < 0.55 or len(relation) == 0:
            rows = tuple(
                tuple(random_value(attribute, rng) for attribute in schema.attributes)
                for _ in range(rng.randint(1, 3))
            )
            produced.append(S.Insert(name, E.Literal(rows)))
        elif kind < 0.8 or not allow_updates:
            victims = rng.sample(
                list(relation.rows()), k=min(len(relation), rng.randint(1, 2))
            )
            produced.append(S.Delete(name, E.Literal(tuple(victims))))
        else:
            position = rng.randint(1, schema.arity)
            attribute = schema.attributes[position - 1]
            new_value = random_value(attribute, rng)
            pivot = random_value(attribute, rng)
            if attribute.domain in (INT, FLOAT):
                predicate: P.Predicate = P.Comparison(
                    rng.choice(("<", ">=")), P.ColRef(position), P.Const(pivot)
                )
            else:
                predicate = P.Comparison("=", P.ColRef(position), P.Const(pivot))
            produced.append(
                S.Update(name, predicate, ((position, P.Const(new_value)),))
            )
    return bracket(Program(produced))
