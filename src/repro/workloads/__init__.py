"""Workload and data generators for examples, tests, and benchmarks.

* :mod:`repro.workloads.beer` — the paper's running beer/brewery example
  (Section 4 examples, Example 5.1);
* :mod:`repro.workloads.employees` — an employee/department schema with
  state *and* transition constraints;
* :mod:`repro.workloads.section7` — the Section 7 performance workload:
  a 5000-tuple key relation, a 50000-tuple foreign-key relation, and a
  5000-tuple insert batch;
* :mod:`repro.workloads.generators` — random rows, databases, and
  transactions for property-based testing.
"""

from repro.workloads.beer import (
    BEER_RULE_DOMAIN,
    BEER_RULE_REFERENTIAL,
    beer_controller,
    beer_database,
    beer_schema,
)
from repro.workloads.employees import employees_controller, employees_database
from repro.workloads.section7 import (
    section7_database,
    section7_insert_batch,
    section7_schema,
)
from repro.workloads.generators import (
    random_database,
    random_rows,
    random_transaction,
)

__all__ = [
    "BEER_RULE_DOMAIN",
    "BEER_RULE_REFERENTIAL",
    "beer_controller",
    "beer_database",
    "beer_schema",
    "employees_controller",
    "employees_database",
    "random_database",
    "random_rows",
    "random_transaction",
    "section7_database",
    "section7_insert_batch",
    "section7_schema",
]
