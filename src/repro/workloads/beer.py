"""The paper's running example: the beer database.

Section 4 introduces ``beer(name, type, brewery, alcohol)`` and
``brewery(name, city, country)`` with a domain constraint I1 and a
referential integrity constraint I2; Example 4.2 turns them into the rules
R1 (aborting) and R2 (compensating) reproduced verbatim below; Example 5.1
modifies an insert transaction against them.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.subsystem import IntegrityController
from repro.engine import Database, DatabaseSchema, FLOAT, RelationSchema, STRING

#: Rule R1 of Example 4.2 (aborting domain rule), in RL text.
BEER_RULE_DOMAIN = """
RULE R1
WHEN INS(beer)
IF NOT (forall x)(x in beer => x.alcohol >= 0)
THEN abort
"""

#: Rule R2 of Example 4.2 (compensating referential rule), in RL text.
BEER_RULE_REFERENTIAL = """
RULE R2
WHEN INS(beer), DEL(brewery)
IF NOT (forall x)(x in beer =>
        (exists y)(y in brewery and x.brewery = y.name))
THEN temp := diff(project(beer, [brewery]), project(brewery, [name]));
     insert(brewery, project(temp, [brewery as name, null, null]))
"""

#: The transaction of Example 5.1.
EXAMPLE_51_TRANSACTION = """
begin
    insert(beer, ("exportgold", "stout", "guineken", 6.0));
end
"""

_BEER_TYPES = ("lager", "stout", "ale", "pilsner", "porter", "wheat")
_CITIES = ("amsterdam", "dublin", "munich", "brussels", "prague", "enschede")
_COUNTRIES = ("nl", "ie", "de", "be", "cz")


def beer_schema() -> DatabaseSchema:
    """The beer/brewery database schema of Section 4."""
    return DatabaseSchema(
        [
            RelationSchema(
                "beer",
                [
                    ("name", STRING),
                    ("type", STRING),
                    ("brewery", STRING),
                    ("alcohol", FLOAT),
                ],
            ),
            RelationSchema(
                "brewery",
                [
                    ("name", STRING),
                    ("city", STRING, True),
                    ("country", STRING, True),
                ],
            ),
        ]
    )


def beer_database(
    beers: int = 20, breweries: int = 8, seed: int = 1993
) -> Database:
    """A populated, consistent beer database."""
    rng = random.Random(seed)
    database = Database(beer_schema())
    brewery_names = [f"brewery_{index}" for index in range(breweries)]
    database.load(
        "brewery",
        [
            (name, rng.choice(_CITIES), rng.choice(_COUNTRIES))
            for name in brewery_names
        ],
    )
    database.load(
        "beer",
        [
            (
                f"beer_{index}",
                rng.choice(_BEER_TYPES),
                rng.choice(brewery_names),
                round(rng.uniform(0.0, 12.0), 1),
            )
            for index in range(beers)
        ],
    )
    return database


def beer_controller(
    schema: Optional[DatabaseSchema] = None, **controller_options
) -> IntegrityController:
    """An integrity controller loaded with the paper's rules R1 and R2."""
    controller = IntegrityController(schema or beer_schema(), **controller_options)
    controller.add_rule(BEER_RULE_DOMAIN)
    controller.add_rule(BEER_RULE_REFERENTIAL)
    return controller
