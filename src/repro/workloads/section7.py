"""The Section 7 performance workload.

The paper's evaluation: "Given a test database with a key relation of 5000
tuples and a foreign key relation of 50000 tuples, checking a referential
integrity constraint after the insertion of 5000 new tuples into the
foreign key relation can be completed within 3 seconds on an 8-node POOMA
multiprocessor.  Checking a domain constraint in the same situation takes
less than 1 second."

This module builds exactly that database and insert batch:

* ``pk(key, payload)`` — the key relation (5000 tuples);
* ``fk(id, ref, amount)`` — the foreign-key relation (50000 tuples), with
  ``fk.ref`` referencing ``pk.key`` and ``fk.amount >= 0`` as the domain
  constraint's attribute;
* an insert batch of 5000 new ``fk`` tuples, optionally seeded with
  violations to exercise the abort path.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core.subsystem import IntegrityController
from repro.engine import Database, DatabaseSchema, INT, RelationSchema, STRING

PK_SIZE = 5000
FK_SIZE = 50000
BATCH_SIZE = 5000

SECTION7_REFERENTIAL = """
RULE fk_ref
IF NOT (forall x)(x in fk => (exists y)(y in pk and x.ref = y.key))
THEN abort
"""

SECTION7_DOMAIN = """
RULE fk_domain
IF NOT (forall x)(x in fk => x.amount >= 0)
THEN abort
"""


def section7_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("pk", [("key", INT), ("payload", STRING)]),
            RelationSchema(
                "fk", [("id", INT), ("ref", INT), ("amount", INT)]
            ),
        ]
    )


def section7_database(
    pk_size: int = PK_SIZE, fk_size: int = FK_SIZE, seed: int = 1993
) -> Database:
    """The 5000-key / 50000-FK test database (sizes configurable)."""
    rng = random.Random(seed)
    database = Database(section7_schema())
    database.load("pk", [(key, f"payload_{key}") for key in range(pk_size)])
    database.load(
        "fk",
        [
            (row_id, rng.randrange(pk_size), rng.randint(0, 10000))
            for row_id in range(fk_size)
        ],
    )
    return database


def section7_insert_batch(
    batch_size: int = BATCH_SIZE,
    pk_size: int = PK_SIZE,
    start_id: int = FK_SIZE,
    violations: int = 0,
    violation_kind: str = "referential",
    seed: int = 29,
) -> List[Tuple[int, int, int]]:
    """A batch of new fk tuples; optionally the first ``violations`` rows
    break the referential (dangling ref) or domain (negative amount)
    constraint."""
    rng = random.Random(seed)
    rows: List[Tuple[int, int, int]] = []
    for offset in range(batch_size):
        ref = rng.randrange(pk_size)
        amount = rng.randint(0, 10000)
        if offset < violations:
            if violation_kind == "referential":
                ref = pk_size + 1 + offset  # dangling
            else:
                amount = -1 - offset  # negative
        rows.append((start_id + offset, ref, amount))
    return rows


def section7_transaction_text(rows: List[Tuple[int, int, int]]) -> str:
    """The insert batch as a ``begin ... end`` transaction text."""
    statements = "\n".join(
        f"    insert(fk, ({row_id}, {ref}, {amount}));"
        for row_id, ref, amount in rows
    )
    return f"begin\n{statements}\nend"


def section7_controller(
    referential: bool = True,
    domain: bool = True,
    **controller_options,
) -> IntegrityController:
    controller = IntegrityController(section7_schema(), **controller_options)
    if referential:
        controller.add_rule(SECTION7_REFERENTIAL)
    if domain:
        controller.add_rule(SECTION7_DOMAIN)
    return controller
