"""Employee/department workload: state and transition constraints.

Exercises the parts of the paper the beer example does not: transition
(dynamic) constraints over the pre-transaction auxiliary state ``emp@old``
(Def 3.3), aggregate constraints, and multi-variable universals (Table 1
row 4).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.subsystem import IntegrityController
from repro.engine import Database, DatabaseSchema, INT, RelationSchema, STRING

#: Referential: every employee's department exists.
EMP_DEPT_FK = """
RULE emp_dept_fk
IF NOT (forall e)(e in emp => (exists d)(d in dept and e.dept_id = d.id))
THEN abort
"""

#: Domain: salaries are positive.
EMP_SALARY_DOMAIN = """
RULE emp_salary_domain
IF NOT (forall e)(e in emp => e.salary > 0)
THEN abort
"""

#: Transition constraint (Def 3.3): salaries never decrease.  The
#: pre-transaction state is the auxiliary relation emp@old.
EMP_SALARY_MONOTONE = """
RULE emp_salary_monotone
WHEN INS(emp)
IF NOT (forall e)(e in emp =>
        (forall o)(o in emp@old => (e.id != o.id or e.salary >= o.salary)))
THEN abort
"""

#: Aggregate constraint: total payroll is capped.
EMP_PAYROLL_CAP = """
RULE emp_payroll_cap
IF NOT SUM(emp, salary) <= 1000000
THEN abort
"""

#: Two-variable universal (Table 1 row 4): within a department, grades of
#: colleagues differ by at most 3.
EMP_GRADE_SPREAD = """
RULE emp_grade_spread
IF NOT (forall x, y)((x in emp and y in emp and x.dept_id = y.dept_id)
        => x.grade <= y.grade + 3)
THEN abort
"""


def employees_schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema(
                "emp",
                [
                    ("id", INT),
                    ("name", STRING),
                    ("dept_id", INT),
                    ("salary", INT),
                    ("grade", INT),
                ],
            ),
            RelationSchema(
                "dept",
                [("id", INT), ("name", STRING), ("city", STRING, True)],
            ),
        ]
    )


def employees_database(
    employees: int = 50, departments: int = 5, seed: int = 7
) -> Database:
    """A populated, consistent employee database."""
    rng = random.Random(seed)
    database = Database(employees_schema())
    database.load(
        "dept",
        [(index, f"dept_{index}", f"city_{index % 3}") for index in range(departments)],
    )
    base_grade = {index: rng.randint(1, 6) for index in range(departments)}
    database.load(
        "emp",
        [
            (
                index,
                f"emp_{index}",
                index % departments,
                rng.randint(2000, 9000),
                base_grade[index % departments] + rng.randint(0, 3),
            )
            for index in range(employees)
        ],
    )
    return database


def employees_controller(
    schema: Optional[DatabaseSchema] = None,
    include_transition: bool = True,
    include_aggregate: bool = True,
    include_spread: bool = False,
    **controller_options,
) -> IntegrityController:
    """A controller with the employee rule set (configurable subsets)."""
    controller = IntegrityController(
        schema or employees_schema(), **controller_options
    )
    controller.add_rule(EMP_DEPT_FK)
    controller.add_rule(EMP_SALARY_DOMAIN)
    if include_transition:
        controller.add_rule(EMP_SALARY_MONOTONE)
    if include_aggregate:
        controller.add_rule(EMP_PAYROLL_CAP)
    if include_spread:
        controller.add_rule(EMP_GRADE_SPREAD)
    return controller
