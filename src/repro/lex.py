"""A small shared tokenizer for the library's text languages.

Three text languages share this lexer: the constraint language CL
(:mod:`repro.calculus.parser`), the integrity rule language RL
(:mod:`repro.core.rule_language`), and the extended-algebra program/
transaction language (:mod:`repro.algebra.parser`).

Token kinds:

``NAME``
    identifiers, including auxiliary relation names ``rel@old`` /
    ``rel@plus`` / ``rel@minus`` (the ``@suffix`` is part of one token);
``INT`` / ``FLOAT``
    numeric literals;
``STRING``
    single- or double-quoted, with backslash escapes;
``OP``
    operators and punctuation (longest match first), including the Unicode
    aliases used by the paper's notation (``∀ ∃ ∧ ∨ ¬ ⇒ ∈ ≠ ≤ ≥``).
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Optional

from repro.errors import LexError, ParseError


class Token(NamedTuple):
    kind: str
    value: object
    text: str
    position: int


# Longest operators first so the scanner can use greedy matching.
_OPERATORS = [
    ":=",
    "=>",
    "<=",
    ">=",
    "!=",
    "<>",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    ".",
    "<",
    ">",
    "=",
    "+",
    "-",
    "*",
    "/",
]

# Unicode aliases normalize to their ASCII spelling.
_UNICODE_ALIASES = {
    "∀": "forall",
    "∃": "exists",
    "∧": "and",
    "∨": "or",
    "¬": "not",
    "⇒": "=>",
    "→": "=>",
    "∈": "in",
    "≠": "!=",
    "≤": "<=",
    "≥": ">=",
    "−": "-",
}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CONT = _NAME_START | set("0123456789")
_AUX_SUFFIXES = ("old", "plus", "minus")


def tokenize(text: str) -> list:
    """Tokenize ``text``; raises LexError on invalid input."""
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "#":  # comment to end of line
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch in _UNICODE_ALIASES:
            alias = _UNICODE_ALIASES[ch]
            kind = "NAME" if alias[0].isalpha() else "OP"
            tokens.append(Token(kind, alias, ch, i))
            i += 1
            continue
        if ch in _NAME_START:
            start = i
            while i < n and text[i] in _NAME_CONT:
                i += 1
            name = text[start:i]
            # Auxiliary relation names: name@old / name@plus / name@minus.
            if i < n and text[i] == "@":
                j = i + 1
                while j < n and text[j] in _NAME_CONT:
                    j += 1
                suffix = text[i + 1 : j]
                if suffix not in _AUX_SUFFIXES:
                    raise LexError(
                        f"unknown auxiliary suffix {suffix!r}", i, text
                    )
                name = f"{name}@{suffix}"
                i = j
            tokens.append(Token("NAME", name, name, start))
            continue
        if ch.isdigit():
            start = i
            while i < n and text[i].isdigit():
                i += 1
            is_float = False
            if i < n and text[i] == "." and i + 1 < n and text[i + 1].isdigit():
                is_float = True
                i += 1
                while i < n and text[i].isdigit():
                    i += 1
            if i < n and text[i] in "eE":
                j = i + 1
                if j < n and text[j] in "+-":
                    j += 1
                if j < n and text[j].isdigit():
                    is_float = True
                    i = j
                    while i < n and text[i].isdigit():
                        i += 1
            literal = text[start:i]
            if is_float:
                tokens.append(Token("FLOAT", float(literal), literal, start))
            else:
                tokens.append(Token("INT", int(literal), literal, start))
            continue
        if ch in "'\"":
            quote = ch
            start = i
            i += 1
            parts = []
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    escape = text[i + 1]
                    parts.append({"n": "\n", "t": "\t"}.get(escape, escape))
                    i += 2
                else:
                    parts.append(text[i])
                    i += 1
            if i >= n:
                raise LexError("unterminated string literal", start, text)
            i += 1
            tokens.append(Token("STRING", "".join(parts), text[start:i], start))
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, op, i))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", i, text)
    tokens.append(Token("EOF", None, "", n))
    return tokens


class TokenStream:
    """A cursor over a token list with the usual parser conveniences."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, ahead: int = 1) -> Token:
        index = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self.index += 1
        return token

    def at(self, kind: str, value: Optional[object] = None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def at_name(self, *names: str) -> bool:
        """True when the current token is one of the given keywords.

        Keyword matching is case-insensitive, so ``FORALL`` and ``forall``
        are the same token (the paper mixes fonts, not spellings).
        """
        token = self.current
        if token.kind != "NAME":
            return False
        return token.value.lower() in names

    def accept(self, kind: str, value: Optional[object] = None) -> Optional[Token]:
        if self.at(kind, value):
            return self.advance()
        return None

    def accept_name(self, *names: str) -> Optional[Token]:
        if self.at_name(*names):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[object] = None) -> Token:
        if self.at(kind, value):
            return self.advance()
        want = value if value is not None else kind
        raise ParseError(
            f"expected {want!r} but found {self.current.text or 'end of input'!r} "
            f"at position {self.current.position}"
        )

    def expect_name(self, *names: str) -> Token:
        if self.at_name(*names):
            return self.advance()
        raise ParseError(
            f"expected one of {names} but found "
            f"{self.current.text or 'end of input'!r} "
            f"at position {self.current.position}"
        )

    def expect_eof(self) -> None:
        if self.current.kind != "EOF":
            raise ParseError(
                f"unexpected trailing input {self.current.text!r} "
                f"at position {self.current.position}"
            )
