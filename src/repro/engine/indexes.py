"""Per-relation hash indexes with incremental maintenance.

The physical query-plan layer (:mod:`repro.algebra.physical`) accelerates
equality selections and the equi-join family (hash join, semijoin, antijoin)
with hash indexes over base relations.  An index maps a *key* — the tuple of
values at a fixed sequence of attribute positions — to the set of distinct
rows carrying that key.

Design points:

* **Distinct-row granularity.**  Buckets hold distinct rows only; bag-mode
  multiplicities stay in :attr:`Relation._rows` and are re-attached by the
  physical operators when they materialize results.  Membership-style
  operators (semijoin, antijoin, equality selection) only ever need the
  distinct level.

* **Declared vs built.**  An index can be *declared* (its key positions are
  registered, e.g. carried over from a committed predecessor relation)
  without being *built*.  Building is lazy — the first operator that wants
  the index pays one pass over the current rows — and from then on the
  relation maintains it incrementally on every insert and delete.

* **Amortized on-demand building.**  A declared-but-unbuilt index tracks the
  scan/hash work operators *forgo* by probing row-wise without it
  (:attr:`HashIndex.deferred_cost`).  Once the accumulated forgone work
  amortizes a build pass (:data:`BUILD_AMORTIZE_HURDLE` times the relation
  size), the next request builds the index.  Write transactions probe
  through :class:`~repro.engine.overlay.OverlayIndex` views, which forward
  their forgone-work accounting (and usage evidence) to the base relation's
  index — so probe volume inside transactions counts toward the same build
  decision, and a base index built mid-transaction keeps paying off after
  commit.

* **Incremental maintenance across commits.**  A transaction commit applies
  its net differential (``R@plus`` / ``R@minus``) to the base relation *in
  place* (:meth:`Database.apply_deltas`), so built indexes are maintained
  tuple-by-tuple through :meth:`IndexSet.row_added` /
  :meth:`IndexSet.row_removed` — O(|delta|), not O(|R|).
  :func:`migrate_indexes` survives for the wholesale-replacement path
  (:meth:`Database.install`), which bulk state changes still use.

Single-attribute keys (by far the common case: foreign keys, key lookups)
are stored unwrapped (``row[i]`` instead of ``(row[i],)``), which roughly
halves probe cost under CPython.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

# A declared index is built once the forgone row-wise work accumulated in
# ``deferred_cost`` reaches this multiple of a build pass over the relation.
BUILD_AMORTIZE_HURDLE = 2.0


class IndexUsage:
    """Per-use evidence ledger for the index advisor.

    Every consuming operator execution records one *use* together with the
    exact number of keys it probed or served, broken down by kind
    (``"lookup"`` — an equality-selection bucket probe; ``"probe"`` — a
    semijoin/antijoin probing per distinct key; ``"build"`` — a join build
    side consuming the buckets wholesale).  This replaces the old single
    ``probes`` counter, which recorded bulk consumptions as one unit and so
    systematically under-weighted exactly the uses that save the most work.
    """

    __slots__ = ("uses", "keys", "lookups", "_bulk")

    def __init__(self):
        self.uses = 0
        self.keys = 0
        # Single-key lookups are the hot path: a dedicated integer counter
        # keeps their bookkeeping to plain increments; the per-kind dict is
        # only touched by (rare) bulk consumptions and materialized on read.
        self.lookups = 0
        self._bulk: Dict[str, int] = {}

    def record(self, kind: str, keys: int = 1) -> None:
        self.uses += 1
        self.keys += keys
        self._bulk[kind] = self._bulk.get(kind, 0) + keys

    @property
    def by_kind(self) -> Dict[str, int]:
        """Exact key volume per use kind (``"lookup"`` merged in)."""
        merged = dict(self._bulk)
        if self.lookups:
            merged["lookup"] = merged.get("lookup", 0) + self.lookups
        return merged

    def reset(self) -> None:
        self.uses = 0
        self.keys = 0
        self.lookups = 0
        self._bulk = {}

    def __repr__(self) -> str:
        return f"IndexUsage(uses={self.uses}, keys={self.keys}, {self.by_kind})"


class HashIndex:
    """A hash index over one relation, keyed by a tuple of 0-based positions."""

    __slots__ = ("positions", "buckets", "built", "deferred_cost", "usage")

    def __init__(self, positions: Tuple[int, ...]):
        self.positions = tuple(positions)
        # key -> {row: None} (an ordered set of distinct rows)
        self.buckets: Dict[object, dict] = {}
        self.built = False
        # Row-wise work forgone while declared-but-unbuilt (see module docs).
        self.deferred_cost = 0.0
        # Usage evidence for the advisor's drop-unused maintenance.
        self.usage = IndexUsage()

    @property
    def probes(self) -> int:
        """Use events since the last ledger reset (advisor evidence)."""
        return self.usage.uses

    # -- key extraction -------------------------------------------------------

    def key_of(self, row: tuple):
        """The index key of ``row`` (unwrapped for single-attribute keys)."""
        positions = self.positions
        if len(positions) == 1:
            return row[positions[0]]
        return tuple(row[position] for position in positions)

    # -- construction and maintenance ----------------------------------------

    def build(self, rows: Iterable[tuple]) -> "HashIndex":
        """(Re)build the index from scratch over ``rows`` (distinct rows)."""
        self.buckets = {}
        add = self.add
        for row in rows:
            add(row)
        self.built = True
        return self

    def add(self, row: tuple) -> None:
        key = self.key_of(row)
        bucket = self.buckets.get(key)
        if bucket is None:
            self.buckets[key] = {row: None}
        else:
            bucket[row] = None

    def remove(self, row: tuple) -> None:
        key = self.key_of(row)
        bucket = self.buckets.get(key)
        if bucket is None:
            return
        bucket.pop(row, None)
        if not bucket:
            del self.buckets[key]

    # -- probing --------------------------------------------------------------

    def __contains__(self, key) -> bool:
        return key in self.buckets

    def lookup(self, key) -> tuple:
        """The distinct rows with this key (empty tuple when absent)."""
        usage = self.usage
        usage.uses += 1
        usage.keys += 1
        usage.lookups += 1
        bucket = self.buckets.get(key)
        return tuple(bucket) if bucket else ()

    def touch(self, kind: str = "bulk", keys: Optional[int] = None) -> None:
        """Record a bulk use (an operator consuming ``buckets`` wholesale).

        ``keys`` is the exact number of keys the consumer probed or served;
        it defaults to the full distinct-key count, which is what wholesale
        consumption amounts to.
        """
        self.usage.record(kind, len(self.buckets) if keys is None else keys)

    def keys(self) -> Iterator:
        return iter(self.buckets)

    @property
    def distinct_keys(self) -> int:
        return len(self.buckets)

    def __repr__(self) -> str:
        state = "built" if self.built else "declared"
        return (
            f"HashIndex(positions={self.positions}, {state}, "
            f"{len(self.buckets)} keys)"
        )


class IndexSet:
    """The indexes attached to one relation, keyed by position tuple."""

    __slots__ = ("_indexes",)

    def __init__(self):
        self._indexes: Dict[Tuple[int, ...], HashIndex] = {}

    def declare(self, positions: Tuple[int, ...]) -> HashIndex:
        """Register an index spec without building it."""
        positions = tuple(positions)
        index = self._indexes.get(positions)
        if index is None:
            index = HashIndex(positions)
            self._indexes[positions] = index
        return index

    def get(self, positions: Tuple[int, ...]) -> Optional[HashIndex]:
        return self._indexes.get(tuple(positions))

    def get_built(self, positions: Tuple[int, ...]) -> Optional[HashIndex]:
        """The built index on ``positions``, or None."""
        index = self._indexes.get(tuple(positions))
        if index is not None and index.built:
            return index
        return None

    def ensure_built(
        self, positions: Tuple[int, ...], rows: Iterable[tuple]
    ) -> HashIndex:
        """Declare-and-build (idempotent; an already-built index is kept)."""
        index = self.declare(positions)
        if not index.built:
            index.build(rows)
        return index

    def drop(self, positions: Tuple[int, ...]) -> Optional[HashIndex]:
        """Remove an index (declaration and contents); returns it or None."""
        return self._indexes.pop(tuple(positions), None)

    # -- maintenance hooks (called by Relation) -------------------------------

    def row_added(self, row: tuple) -> None:
        """A row became present (newly distinct) in the relation."""
        for index in self._indexes.values():
            if index.built:
                index.add(row)

    def row_removed(self, row: tuple) -> None:
        """A row fully left the relation (last occurrence deleted)."""
        for index in self._indexes.values():
            if index.built:
                index.remove(row)

    def invalidate(self) -> None:
        """Drop built contents but keep declarations (wholesale row change)."""
        for index in self._indexes.values():
            index.buckets = {}
            index.built = False

    def specs(self) -> tuple:
        """The declared position tuples."""
        return tuple(self._indexes)

    def __len__(self) -> int:
        return len(self._indexes)

    def __iter__(self) -> Iterator[HashIndex]:
        return iter(self._indexes.values())

    def __repr__(self) -> str:
        return f"IndexSet({list(self._indexes)})"


def migrate_indexes(
    old_relation,
    new_relation,
    plus=None,
    minus=None,
) -> None:
    """Move ``old_relation``'s indexes onto ``new_relation`` incrementally.

    ``new_relation`` is assumed to be ``old ∪ plus − minus`` (the contract
    of :meth:`Database.install` with differentials).  Built indexes are
    replayed with the differential in O(|plus| + |minus|); when no
    differential is supplied the built contents are dropped and only the
    declarations survive (they rebuild lazily on next use).

    Bag-mode subtlety: a row in ``minus`` may still be present in the new
    relation (a duplicate occurrence was deleted); removal therefore checks
    membership in the new relation, and additions are idempotent at the
    distinct level by construction.
    """
    old_indexes = getattr(old_relation, "_indexes", None)
    if old_indexes is None or old_relation is new_relation:
        return
    if new_relation._indexes is None:
        new_relation._indexes = old_indexes
    else:
        # Merge: keep the destination's own declarations too.
        for index in old_indexes:
            existing = new_relation._indexes.get(index.positions)
            if existing is None or not existing.built:
                new_relation._indexes._indexes[index.positions] = index
        old_indexes = new_relation._indexes
    old_relation._indexes = None
    if plus is None and minus is None:
        old_indexes.invalidate()
        return
    for index in old_indexes:
        if not index.built:
            continue
        if minus is not None:
            for row in minus.rows():
                if row not in new_relation:
                    index.remove(row)
        if plus is not None:
            for row in plus.rows():
                index.add(row)
