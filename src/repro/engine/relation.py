"""Relation instances (paper Def 2.1) with set and multiset semantics.

The paper's core model is set-based; Section 7 mentions the multi-set
(bag) extension of [8] as important for SQL-like environments.  Both are
supported here: a :class:`Relation` stores tuples with multiplicities and a
``bag`` flag decides whether duplicate insertions accumulate (bag) or are
absorbed (set).  The ``MLT`` counting function of the multiset extension
reads the multiplicities.

Relations are value-like: algebra operators produce new relations and never
mutate their inputs.  Mutating methods (insert/delete) exist for the engine's
update statements and for data loading.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.engine.schema import RelationSchema
from repro.engine.types import NULL
from repro.errors import TypeMismatchError


def _value_sort_key(value) -> tuple:
    """A totally ordered key over the engine's value universe.

    Values are ranked by kind (NULL, then numbers, then strings, then
    everything else by repr) so heterogeneous columns (ANY domains, NULLs)
    sort without comparison errors, and numbers sort *numerically* — the old
    ``key=repr`` ordering put ``10`` before ``2`` and cost an O(|repr|)
    string build per row on every test/printing path.
    """
    if value is NULL:
        return (0, "", 0)
    if isinstance(value, (int, float)):  # bool included deliberately
        return (1, "", value)
    if isinstance(value, str):
        return (2, value, 0)
    return (3, repr(value), 0)


def row_sort_key(row: tuple) -> tuple:
    """Deterministic, type-aware sort key for a tuple of engine values."""
    return tuple(_value_sort_key(value) for value in row)


class Relation:
    """A relation state: a (multi)set of typed tuples over a schema."""

    __slots__ = ("schema", "bag", "_rows", "_indexes", "_batch", "_observer")

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[tuple] = (),
        bag: bool = False,
        _validated: bool = False,
    ):
        self.schema = schema
        self.bag = bag
        self._rows: dict = {}
        self._indexes = None  # lazily an engine.indexes.IndexSet
        self._batch = None  # lazily a cached algebra.columnar.ColumnBatch
        # Mutation observer (the owning database's EpochManager on base
        # relations; None everywhere else): notified *before* every row
        # change so out-of-band mutations — ones bypassing the commit
        # delta path — cannot silently invalidate pinned epoch snapshots.
        self._observer = None
        for row in rows:
            self.insert(row, _validated=_validated)

    # -- basic container protocol -------------------------------------------

    def __len__(self) -> int:
        """Number of tuples (counting multiplicities in bag mode)."""
        if self.bag:
            return sum(self._rows.values())
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        """Iterate tuples; bag mode yields duplicates."""
        if self.bag:
            for row, count in self._rows.items():
                for _ in range(count):
                    yield row
        else:
            yield from self._rows

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self._rows

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __eq__(self, other) -> bool:
        """Equality of contents (schema names are not compared).

        Two relations are equal when they contain the same tuples with the
        same multiplicities; a set relation never equals a bag relation that
        holds duplicates.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self):
        raise TypeError("Relation instances are mutable and unhashable")

    def __repr__(self) -> str:
        kind = "bag" if self.bag else "set"
        return f"Relation({self.schema.name}, {len(self)} tuples, {kind})"

    # -- accessors -----------------------------------------------------------

    @property
    def cardinality(self) -> int:
        return len(self)

    def distinct_count(self) -> int:
        """Number of distinct tuples regardless of bag/set mode."""
        return len(self._rows)

    def multiplicity(self, row: tuple) -> int:
        """The MLT function of the multiset extension: count of ``row``."""
        return self._rows.get(tuple(row), 0)

    def rows(self) -> Iterator[tuple]:
        """Iterate distinct tuples (ignores multiplicities)."""
        return iter(self._rows)

    def to_set(self) -> frozenset:
        """The tuple set, as a frozenset (multiplicities dropped)."""
        return frozenset(self._rows)

    def sorted_rows(self) -> list:
        """Deterministically ordered rows (useful for printing and tests).

        Sorts on the tuples directly with a type-aware key — numeric columns
        order numerically, mixed-type columns order by kind — instead of the
        old O(n log n · |repr|) repr-string sort.
        """
        return sorted(self, key=row_sort_key)

    # -- mutation (engine-internal and data loading) -------------------------

    def insert(self, row: tuple, _validated: bool = False) -> bool:
        """Insert one tuple.

        Returns True when the relation changed (always true in bag mode; in
        set mode a duplicate insert is a no-op returning False).
        """
        if self._observer is not None:
            self._observer.note_mutation(self)
        row = tuple(row) if _validated else self.schema.validate_tuple(tuple(row))
        if self.bag:
            count = self._rows.get(row, 0)
            self._rows[row] = count + 1
            self._batch = None
            if count == 0 and self._indexes is not None:
                self._indexes.row_added(row)
            return True
        if row in self._rows:
            return False
        self._rows[row] = 1
        self._batch = None
        if self._indexes is not None:
            self._indexes.row_added(row)
        return True

    def delete(self, row: tuple) -> bool:
        """Delete one tuple (one occurrence, in bag mode).

        Returns True when the relation changed.
        """
        if self._observer is not None:
            self._observer.note_mutation(self)
        row = tuple(row)
        count = self._rows.get(row)
        if count is None:
            return False
        if self.bag and count > 1:
            self._rows[row] = count - 1
        else:
            del self._rows[row]
            if self._indexes is not None:
                self._indexes.row_removed(row)
        self._batch = None
        return True

    def insert_count(self, row: tuple, count: int, _validated: bool = False) -> bool:
        """Insert ``count`` occurrences of ``row`` in O(1).

        The bag-mode counter is bumped once instead of ``count`` times (set
        mode absorbs to a single occurrence), so coalescing duplicate-heavy
        bag deltas and replaying recovered commit records stay O(distinct
        rows).  Index maintenance fires exactly as ``count`` single inserts
        would: the per-distinct-row hook runs only on the 0 → non-zero
        transition.  Returns True when the relation changed.
        """
        if count <= 0:
            return False
        if self._observer is not None:
            self._observer.note_mutation(self)
        row = tuple(row) if _validated else self.schema.validate_tuple(tuple(row))
        existing = self._rows.get(row, 0)
        if not self.bag:
            if existing:
                return False
            count = 1
        self._rows[row] = existing + count
        self._batch = None
        if existing == 0 and self._indexes is not None:
            self._indexes.row_added(row)
        return True

    def delete_count(self, row: tuple, count: int) -> int:
        """Delete up to ``count`` occurrences of ``row`` in O(1).

        Returns the number of occurrences actually removed (0 when the row
        is absent).  The index hook fires only on the non-zero → 0
        transition, mirroring ``count`` single deletes.
        """
        if count <= 0:
            return 0
        if self._observer is not None:
            self._observer.note_mutation(self)
        row = tuple(row)
        existing = self._rows.get(row)
        if existing is None:
            return 0
        removed = min(existing, count) if self.bag else existing
        remaining = existing - removed
        if remaining:
            self._rows[row] = remaining
        else:
            del self._rows[row]
            if self._indexes is not None:
                self._indexes.row_removed(row)
        self._batch = None
        return removed

    def insert_many(self, rows: Iterable[tuple]) -> int:
        """Insert many tuples; return the number of actual changes."""
        return sum(1 for row in rows if self.insert(row))

    def delete_many(self, rows: Iterable[tuple]) -> int:
        """Delete many tuples; return the number of actual changes."""
        return sum(1 for row in rows if self.delete(row))

    def clear(self) -> None:
        if self._observer is not None:
            self._observer.note_mutation(self)
        self._rows.clear()
        self._batch = None
        if self._indexes is not None:
            self._indexes.invalidate()

    def replace_contents(self, other: "Relation") -> None:
        """Overwrite this relation's rows with those of ``other``."""
        if self._observer is not None:
            self._observer.note_mutation(self)
        self._rows = dict(other._rows)
        self._batch = None
        if self._indexes is not None:
            self._indexes.invalidate()

    def _cow_detach_rows(self) -> None:
        """Swap in a private copy of the row dict, abandoning the old one.

        Called by the epoch manager *before* a mutation lands while a
        snapshot shares this relation's dict zero-copy: the sharer keeps
        the (now frozen) old dict, this relation mutates the copy.
        """
        self._rows = dict(self._rows)

    # -- hash indexes ---------------------------------------------------------

    @property
    def indexes(self):
        """The attached :class:`~repro.engine.indexes.IndexSet`, or None."""
        return self._indexes

    def declare_index(self, positions) -> None:
        """Register an index on 0-based ``positions`` without building it."""
        from repro.engine.indexes import IndexSet

        if self._indexes is None:
            self._indexes = IndexSet()
        positions = tuple(positions)
        if self._indexes.get(positions) is None:
            # A cached batch carries the declared specs; drop it so the
            # next one ships the new declaration too.
            self._invalidate_batch()
        self._indexes.declare(positions)

    def index_on(self, positions):
        """The built hash index on 0-based ``positions`` (building lazily).

        Once built, the index is maintained incrementally by
        :meth:`insert` / :meth:`delete`.
        """
        from repro.engine.indexes import IndexSet

        if self._indexes is None:
            self._indexes = IndexSet()
        positions = tuple(positions)
        if self._indexes.get(positions) is None:
            self._invalidate_batch()
        return self._indexes.ensure_built(positions, self._rows)

    def built_index(self, positions):
        """The built index on ``positions`` if one exists, else None."""
        if self._indexes is None:
            return None
        return self._indexes.get_built(tuple(positions))

    def amortized_index(self, positions, forgone_work=None):
        """The built index on ``positions``, building a *declared* one once
        the work forgone by probing row-wise amortizes a build pass.

        ``forgone_work`` is the row-wise work (in tuples touched) the caller
        is about to perform for lack of the index; it accumulates on the
        declared index until it reaches ``BUILD_AMORTIZE_HURDLE`` build
        passes, at which point the index is built and returned.
        ``forgone_work=None`` means the caller would pay a full hashing pass
        over this relation anyway (the build side of a hash join), so a
        declared index is built immediately — the build *is* that pass.

        Returns None when no index is declared on ``positions`` or the
        hurdle is not yet met; never declares new indexes.
        """
        if self._indexes is None:
            return None
        index = self._indexes.get(tuple(positions))
        if index is None:
            return None
        if index.built:
            return index
        if forgone_work is not None:
            from repro.engine.indexes import BUILD_AMORTIZE_HURDLE

            index.deferred_cost += forgone_work
            if index.deferred_cost < BUILD_AMORTIZE_HURDLE * len(self._rows):
                return None
        index.build(self._rows)
        return index

    # -- value-like derivation ------------------------------------------------

    def copy(self) -> "Relation":
        """An independent copy — O(|R|), plus-or-minus tuple immutability.

        Index *declarations* carry over (a clone remembers which indexes
        its source had and can rebuild them lazily); built index contents
        do not — cloning them would double the copy cost.  Transactions no
        longer copy at all: they layer an
        :class:`~repro.engine.overlay.OverlayRelation` over the base.
        """
        clone = Relation(self.schema, bag=self.bag)
        clone._rows = dict(self._rows)
        if self._indexes is not None and len(self._indexes):
            for positions in self._indexes.specs():
                clone.declare_index(positions)
        return clone

    def with_schema(self, schema: RelationSchema) -> "Relation":
        """The same rows viewed under a different (compatible) schema."""
        if schema.arity != self.schema.arity:
            raise TypeMismatchError(
                f"cannot view arity-{self.schema.arity} relation under "
                f"arity-{schema.arity} schema {schema.name!r}"
            )
        clone = Relation(schema, bag=self.bag)
        clone._rows = dict(self._rows)
        return clone

    def filtered(self, predicate: Callable[[tuple], bool]) -> "Relation":
        """A new relation holding the rows satisfying ``predicate``."""
        clone = Relation(self.schema, bag=self.bag)
        clone._rows = {
            row: count for row, count in self._rows.items() if predicate(row)
        }
        return clone

    def items(self):
        """(row, multiplicity) pairs."""
        return self._rows.items()

    def rows_and_counts(self):
        """Batch iteration surface: ``(row_list, counts_or_None)``.

        ``counts`` is ``None`` when every multiplicity is 1 (always in set
        mode), letting columnar consumers use bulk ``dict.fromkeys`` paths.
        """
        rows = self._rows
        if not self.bag:
            return list(rows), None
        counts = list(rows.values())
        if all(count == 1 for count in counts):
            return list(rows), None
        return list(rows), counts

    def column_batch(self):
        """This relation decomposed into per-attribute columns.

        The batch is cached until the next mutation, so read-mostly
        relations pay the decomposition once across scans and wire
        encodes.
        """
        batch = self._batch
        if batch is None:
            from repro.algebra.columnar import ColumnBatch

            batch = self._batch = ColumnBatch.from_relation(self)
        return batch

    def _invalidate_batch(self) -> None:
        self._batch = None

    # -- pickling -------------------------------------------------------------

    def __getstate__(self):
        # The cached batch duplicates the row data; never pickle it.  The
        # mutation observer is process-local (it points at the owning
        # database's epoch manager) and is re-attached on unpickle by
        # Database.__setstate__.
        state = object.__getstate__(self)
        state[1].pop("_batch", None)
        state[1].pop("_observer", None)
        return state

    def __setstate__(self, state):
        for key, value in state[1].items():
            setattr(self, key, value)
        self._batch = None
        self._observer = None


class ColumnarRelation(Relation):
    """A relation backed by a :class:`ColumnBatch`, rows materialized lazily.

    Decoded wire payloads (fragment installs, Δ task blobs) arrive as
    column batches; wrapping them in a ``ColumnarRelation`` means a scan
    or wire re-encode reads the columns directly and the ``{row: count}``
    dict only ever materializes when something row-iterates, probes, or
    mutates the relation.  After the first mutation the dict is
    authoritative and the relation behaves exactly like a plain
    :class:`Relation`.
    """

    __slots__ = ("_materialized",)

    def __init__(self, batch):
        self.schema = batch.schema
        self.bag = batch.bag
        self._indexes = None
        self._materialized = None
        self._batch = None
        self._observer = None
        for positions in batch.index_specs:
            self.declare_index(positions)
        # Set last: declare_index invalidates the cached batch.
        self._batch = batch._normalized()

    @property
    def _rows(self) -> dict:
        rows = self._materialized
        if rows is None:
            batch = self._batch
            rows = batch._merged_rows() if batch is not None else {}
            self._materialized = rows
        return rows

    def _invalidate_batch(self) -> None:
        if self._materialized is None and self._batch is not None:
            # The batch is still the backing store; materialize first.
            self._materialized = self._batch._merged_rows()
        self._batch = None

    def _cow_detach_rows(self) -> None:
        self._materialized = dict(self._rows)

    def __len__(self) -> int:
        batch = self._batch
        if batch is not None and self._materialized is None:
            return len(batch)
        return Relation.__len__(self)

    def distinct_count(self) -> int:
        batch = self._batch
        if batch is not None and self._materialized is None:
            return batch.row_count
        return Relation.distinct_count(self)

    def __bool__(self) -> bool:
        batch = self._batch
        if batch is not None and self._materialized is None:
            return batch.row_count > 0
        return Relation.__bool__(self)

    def rows_and_counts(self):
        batch = self._batch
        if batch is not None and self._materialized is None:
            counts = batch.counts
            if self.bag and counts is not None:
                return list(batch.rows_list()), list(counts)
            return list(batch.rows_list()), None
        return Relation.rows_and_counts(self)

    def clear(self) -> None:
        if self._observer is not None:
            self._observer.note_mutation(self)
        self._materialized = {}
        self._batch = None
        if self._indexes is not None:
            self._indexes.invalidate()

    def replace_contents(self, other: "Relation") -> None:
        if self._observer is not None:
            self._observer.note_mutation(self)
        self._materialized = dict(other._rows)
        self._batch = None
        if self._indexes is not None:
            self._indexes.invalidate()

    def __reduce__(self):
        return (ColumnarRelation, (self.column_batch(),))
