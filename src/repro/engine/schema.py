"""Relation and database schemas (paper Definitions 2.1 and 2.2).

A :class:`RelationSchema` is a relation name plus an ordered list of typed
attributes; its *type* is the cartesian product of the attribute domains.
A :class:`DatabaseSchema` is a named set of relation schemas.

Attribute positions are **1-based** throughout the library, matching the
paper's attribute-selection terms ``x.i`` (Def 4.2).  Attributes can equally
be addressed by name (``x.alcohol`` in the paper's examples).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.engine.types import Domain, domain_by_name, value_in_domain
from repro.errors import (
    DuplicateRelationError,
    SchemaError,
    TypeMismatchError,
    UnknownAttributeError,
    UnknownRelationError,
)

_IDENT_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _check_identifier(name: str, what: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _IDENT_OK:
        raise SchemaError(f"invalid {what} name {name!r}")
    return name


class Attribute:
    """A single typed attribute of a relation schema."""

    __slots__ = ("name", "domain", "nullable")

    def __init__(self, name: str, domain: Domain | str, nullable: bool = False):
        self.name = _check_identifier(name, "attribute")
        self.domain = domain_by_name(domain) if isinstance(domain, str) else domain
        self.nullable = nullable

    def __repr__(self) -> str:
        suffix = "?" if self.nullable else ""
        return f"{self.name}:{self.domain}{suffix}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Attribute)
            and self.name == other.name
            and self.domain is other.domain
            and self.nullable == other.nullable
        )

    def __hash__(self) -> int:
        return hash((self.name, self.domain.name, self.nullable))

    def as_nullable(self) -> "Attribute":
        """Return a nullable copy of this attribute."""
        if self.nullable:
            return self
        return Attribute(self.name, self.domain, nullable=True)


class RelationSchema:
    """A relation schema ``R(A_1, ..., A_n)`` (paper Def 2.1)."""

    def __init__(self, name: str, attributes: Sequence[Attribute | tuple]):
        self.name = _check_identifier(name, "relation")
        attrs = []
        for spec in attributes:
            if isinstance(spec, Attribute):
                attrs.append(spec)
            else:
                attrs.append(Attribute(*spec))
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        names = [attribute.name for attribute in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"relation {name!r} has duplicate attribute names")
        self.attributes: tuple = tuple(attrs)
        self._index_by_name = {
            attribute.name: position
            for position, attribute in enumerate(self.attributes, start=1)
        }

    # -- structure ----------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of attributes (the degree of the relation)."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple:
        return tuple(attribute.name for attribute in self.attributes)

    def position_of(self, attribute: int | str) -> int:
        """Resolve an attribute reference (1-based position or name).

        Returns the 1-based position; raises UnknownAttributeError otherwise.
        """
        if isinstance(attribute, int):
            if 1 <= attribute <= self.arity:
                return attribute
            raise UnknownAttributeError(attribute, self.name)
        position = self._index_by_name.get(attribute)
        if position is None:
            raise UnknownAttributeError(attribute, self.name)
        return position

    def attribute_at(self, attribute: int | str) -> Attribute:
        """Return the Attribute addressed by position or name."""
        return self.attributes[self.position_of(attribute) - 1]

    # -- validation ---------------------------------------------------------

    def validate_tuple(self, values: tuple) -> tuple:
        """Check arity and domains of ``values``; return the tuple.

        Raises TypeMismatchError when the tuple does not fit the schema.
        FLOAT attributes coerce ints to float so mixed literals behave.
        """
        if len(values) != self.arity:
            raise TypeMismatchError(
                f"tuple of arity {len(values)} does not fit relation "
                f"{self.name!r} of arity {self.arity}"
            )
        coerced = []
        for value, attribute in zip(values, self.attributes):
            if value_in_domain(value, attribute.domain, attribute.nullable):
                if attribute.domain.name == "float" and isinstance(value, int):
                    value = float(value)
                coerced.append(value)
            else:
                raise TypeMismatchError(
                    f"value {value!r} not valid for attribute "
                    f"{self.name}.{attribute.name} ({attribute.domain})"
                )
        return tuple(coerced)

    def is_union_compatible(self, other: "RelationSchema") -> bool:
        """True when both schemas have the same domain sequence."""
        if self.arity != other.arity:
            return False
        return all(
            mine.domain is theirs.domain
            for mine, theirs in zip(self.attributes, other.attributes)
        )

    # -- derivation ---------------------------------------------------------

    def renamed(self, new_name: str) -> "RelationSchema":
        """Return a copy of this schema under a different relation name."""
        return RelationSchema(new_name, self.attributes)

    # -- dunder -------------------------------------------------------------

    def __repr__(self) -> str:
        attrs = ", ".join(repr(attribute) for attribute in self.attributes)
        return f"{self.name}({attrs})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RelationSchema)
            and self.name == other.name
            and self.attributes == other.attributes
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))


class DatabaseSchema:
    """A database schema: a set of relation schemas (paper Def 2.2)."""

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations: dict = {}
        # Monotonic DDL counter: bumped on every add().  Caches keyed on a
        # schema (e.g. the plan-backed constraint cache) compare versions to
        # detect that compiled artifacts predate a schema change.
        self.version = 0
        for schema in relations:
            self.add(schema)

    def add(self, schema: RelationSchema) -> RelationSchema:
        """Add a relation schema; raise on duplicate names."""
        if schema.name in self._relations:
            raise DuplicateRelationError(
                f"relation {schema.name!r} already in database schema"
            )
        self._relations[schema.name] = schema
        self.version += 1
        return schema

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation schema by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name, "database schema") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple:
        return tuple(self._relations)

    def __repr__(self) -> str:
        names = ", ".join(self._relations)
        return f"DatabaseSchema({names})"
