"""Naming conventions for auxiliary relations.

The paper (Section 4.1) distinguishes *base* relations from *auxiliary*
relations that the DBMS computes automatically for integrity-control
purposes; the most important auxiliary relation is the pre-transaction state
of a relation, needed for transition constraints.  The differential
optimization (Section 5.2.1, refs [18, 5, 7]) additionally needs the sets of
tuples inserted and deleted by the running transaction.

We expose three auxiliary relations per base relation ``R``:

``R@old``
    the pre-transaction state of ``R`` (paper: the state at logical time t).
``R@plus``
    tuples inserted into ``R`` by the transaction so far (net of deletes).
``R@minus``
    tuples deleted from ``R`` by the transaction so far (net of inserts).

The ``@`` character cannot occur in user relation names (schema identifiers
are ``[A-Za-z_][A-Za-z0-9_]*``), so auxiliary names can never collide with
base names.  Both the CL parser and the algebra parser accept ``name@suffix``
as a single relation token.
"""

from __future__ import annotations

OLD_SUFFIX = "old"
PLUS_SUFFIX = "plus"
MINUS_SUFFIX = "minus"

_AUX_SUFFIXES = (OLD_SUFFIX, PLUS_SUFFIX, MINUS_SUFFIX)


def old_name(relation: str) -> str:
    """Auxiliary name of the pre-transaction state of ``relation``."""
    return f"{relation}@{OLD_SUFFIX}"


def plus_name(relation: str) -> str:
    """Auxiliary name of the inserted-tuples differential of ``relation``."""
    return f"{relation}@{PLUS_SUFFIX}"


def minus_name(relation: str) -> str:
    """Auxiliary name of the deleted-tuples differential of ``relation``."""
    return f"{relation}@{MINUS_SUFFIX}"


def is_auxiliary(name: str) -> bool:
    """True when ``name`` follows the auxiliary naming convention."""
    return "@" in name


def split_auxiliary(name: str) -> tuple:
    """Split an auxiliary name into ``(base, suffix)``.

    For a plain base name, returns ``(name, None)``.  Raises ValueError for a
    malformed auxiliary name (unknown suffix or multiple ``@``).
    """
    if "@" not in name:
        return name, None
    base, _, suffix = name.partition("@")
    if not base or suffix not in _AUX_SUFFIXES or "@" in suffix:
        raise ValueError(f"malformed auxiliary relation name {name!r}")
    return base, suffix


def base_of(name: str) -> str:
    """The base relation a (possibly auxiliary) name refers to."""
    return split_auxiliary(name)[0]
