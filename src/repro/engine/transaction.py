"""Transactions and their execution (paper Definitions 2.4-2.5, Section 2.2).

A transaction is an extended relational algebra program enclosed in
transaction brackets, executed against a database state ``D^t``.  During
execution the database passes through intermediate states ``D^{t.i}`` that
may contain temporary relations; these states have no semantics outside the
transaction.  On commit, temporaries are dropped and the result is installed
as ``D^{t+1}``; on abort, ``D^t`` is kept (atomicity).

The implementation is an *overlay*: base relations of the underlying
:class:`~repro.engine.Database` are never mutated while a transaction runs.
The first write to a relation creates an
:class:`~repro.engine.overlay.OverlayRelation` view over ``(base, Δ⁺, Δ⁻)``
in the transaction's working set; reads prefer the working set, writes
mutate only the differentials.  This gives four things for free:

* atomicity — aborting simply drops the overlays, O(1);
* the pre-transaction auxiliary state ``R@old`` — it is the database's
  untouched relation;
* O(|Δ|) writes — beginning a transaction and updating ``k`` tuples costs
  O(k), independent of the touched relations' sizes (the pre-overlay
  engine dict-copied every touched relation on first write);
* O(|Δ|) commit — the net delta is applied to the base relations in place
  (:meth:`~repro.engine.database.Database.apply_deltas`), with built hash
  indexes maintained by the ordinary incremental hooks.

The differential auxiliary relations ``R@plus`` (net inserted) and
``R@minus`` (net deleted), which the integrity-rule optimizer of Section
5.2.1 relies on, are the very relations the overlays write through — one
source of truth for transaction-local state.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, Optional

from repro.engine import naming
from repro.engine.database import Database
from repro.engine.overlay import OverlayRelation
from repro.engine.relation import Relation
from repro.errors import (
    NoActiveTransactionError,
    ReproError,
    TransactionAborted,
    UnknownRelationError,
)


class TransactionStatus(enum.Enum):
    """Outcome of a transaction execution."""

    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """A bracketed extended relational algebra program (Def 2.5).

    ``program`` is any object with a ``statements`` sequence whose items
    implement ``execute(context)`` (see :mod:`repro.algebra.statements`); a
    plain sequence of such statements is also accepted.
    """

    _counter = 0

    def __init__(self, program, name: Optional[str] = None):
        Transaction._counter += 1
        self.program = program
        self.name = name or f"txn_{Transaction._counter}"

    @property
    def statements(self) -> tuple:
        statements = getattr(self.program, "statements", None)
        if statements is not None:
            return tuple(statements)
        return tuple(self.program)

    def __len__(self) -> int:
        return len(self.statements)

    def __repr__(self) -> str:
        return f"Transaction({self.name}, {len(self)} statements)"


class TransactionResult:
    """What a transaction execution produced."""

    __slots__ = (
        "status",
        "reason",
        "transaction",
        "statements_executed",
        "tuples_inserted",
        "tuples_deleted",
        "pre_time",
        "post_time",
        "differentials",
        "audit",
    )

    def __init__(
        self,
        status: TransactionStatus,
        transaction: Transaction,
        reason: str = "",
        statements_executed: int = 0,
        tuples_inserted: int = 0,
        tuples_deleted: int = 0,
        pre_time: int = 0,
        post_time: int = 0,
        differentials: Optional[dict] = None,
    ):
        self.status = status
        self.reason = reason
        self.transaction = transaction
        self.statements_executed = statements_executed
        self.tuples_inserted = tuples_inserted
        self.tuples_deleted = tuples_deleted
        self.pre_time = pre_time
        self.post_time = post_time
        # The committed net differentials, ``{base: (plus, minus)}`` with
        # empty sides as None — what a transaction "was" to the database
        # state.  Incremental (delta-plan) audits bind these; see
        # IntegrityController.violated_constraints_incremental.
        self.differentials = differentials if differentials is not None else {}
        # Audit outcomes for this commit when executed through
        # ``Session.commit(audit="sync")``; None otherwise (deferred/async
        # verdicts are collected from the scheduler, not the result).
        self.audit = None

    @property
    def committed(self) -> bool:
        return self.status is TransactionStatus.COMMITTED

    @property
    def aborted(self) -> bool:
        return self.status is TransactionStatus.ABORTED

    def __repr__(self) -> str:
        outcome = self.status.value
        if self.aborted and self.reason:
            outcome = f"{outcome}: {self.reason}"
        return f"TransactionResult({self.transaction.name}, {outcome})"


class TransactionContext:
    """The mutable execution state of one running transaction.

    Resolves relation names for the algebra evaluator (base relations,
    temporaries, and the auxiliary relations ``R@old`` / ``R@plus`` /
    ``R@minus``) and applies updates through overlay relations, so all
    transaction-local state is carried by the differentials — O(|Δ|), never
    O(|R|).
    """

    def __init__(self, database: Database, engine: Optional[str] = None):
        self.database = database
        self.engine = engine  # evaluation backend ("naive"/"planned"/None)
        self.working: dict = {}
        self.temps: dict = {}
        self._plus: dict = {}
        self._minus: dict = {}
        self.tuples_inserted = 0
        self.tuples_deleted = 0
        self.statements_executed = 0

    # -- name resolution -------------------------------------------------------

    def resolve(self, name: str) -> Relation:
        """Return the relation instance ``name`` denotes right now.

        Resolution order: temporaries shadow nothing (they live in a
        separate namespace but are checked first so assignments can be
        re-read), then auxiliary names, then working copies, then the
        underlying database state.
        """
        if name in self.temps:
            return self.temps[name]
        base, suffix = naming.split_auxiliary(name)
        if suffix is None:
            if base in self.working:
                return self.working[base]
            return self.database.relation(base)
        if base not in self.database:
            raise UnknownRelationError(base)
        if suffix == naming.OLD_SUFFIX:
            return self.database.relation(base)
        if suffix == naming.PLUS_SUFFIX:
            return self._differential(self._plus, base)
        return self._differential(self._minus, base)

    def _differential(self, table: dict, base: str) -> Relation:
        relation = table.get(base)
        if relation is None:
            relation = Relation(self.database.relation_schema(base), bag=self.database.bag)
            table[base] = relation
        return relation

    def _working_copy(self, base: str) -> OverlayRelation:
        """The overlay carrying this transaction's view of ``base``.

        O(1): no rows are copied — the overlay reads through to the base
        relation and writes into the live ``R@plus`` / ``R@minus``
        differentials, which are shared with auxiliary-name resolution.
        Index probes answer from the base's built indexes corrected by the
        delta (:class:`~repro.engine.overlay.OverlayIndex`), so nothing of
        the old copy's heat/rebuild dance is needed.
        """
        relation = self.working.get(base)
        if relation is None:
            relation = OverlayRelation(
                self.database.relation(base),
                plus=self._differential(self._plus, base),
                minus=self._differential(self._minus, base),
            )
            self.working[base] = relation
        return relation

    # -- updates ------------------------------------------------------------------

    def insert_rows(self, base: str, rows: Iterable[tuple]) -> int:
        """Insert rows into a base relation; returns effective insert count.

        The overlay's insert maintains the net differentials itself: an
        insert cancels a pending delete before it grows ``R@plus``.
        """
        target = self._working_copy(base)
        changed = 0
        for row in rows:
            if target.insert(row):
                changed += 1
        self.tuples_inserted += changed
        return changed

    def delete_rows(self, base: str, rows: Iterable[tuple]) -> int:
        """Delete rows from a base relation; returns effective delete count."""
        target = self._working_copy(base)
        changed = 0
        for row in list(rows):
            if target.delete(row):
                changed += 1
        self.tuples_deleted += changed
        return changed

    def set_temp(self, name: str, relation: Relation) -> None:
        """Bind a temporary relation (the assignment statement)."""
        if naming.is_auxiliary(name):
            raise UnknownRelationError(name, "assignment target")
        if name in self.database:
            raise UnknownRelationError(
                name, "assignment target (shadows a base relation)"
            )
        self.temps[name] = relation

    # -- lifecycle ------------------------------------------------------------------

    def commit(self) -> None:
        """Apply the net delta in place as ``D^{t+1}`` (temporaries dropped).

        O(|Δ|): each touched relation's net ``(plus, minus)`` differential
        is replayed onto the base relation, whose built hash indexes follow
        along through the ordinary incremental-maintenance hooks.  Nothing
        is copied or replaced — the pre-PR install path rebuilt a whole
        relation object per touched relation.
        """
        differentials = {
            base: (self._plus.get(base), self._minus.get(base))
            for base in self.working
        }
        self.database.apply_deltas(differentials)

    def rollback(self) -> None:
        """Discard all transaction-local state — O(1).

        The overlays and their differentials are simply dropped; the base
        relations were never touched, so there is nothing to undo.
        """
        self.working.clear()
        self.temps.clear()
        self._plus.clear()
        self._minus.clear()

    def modified_relations(self) -> tuple:
        """Names of base relations with a non-empty net differential."""
        return tuple(self.net_differentials())

    def net_differentials(self) -> dict:
        """The transaction's net deltas as plan-bindable relations.

        Returns ``{base: (plus, minus)}`` for every base relation with a
        non-empty net differential; an empty side is None.  The relations
        are the live ``R@plus`` / ``R@minus`` auxiliaries — O(|Δ|) state the
        delta-plan layer reads directly, both mid-transaction and (captured
        into the :class:`TransactionResult`) after commit.
        """
        out: dict = {}
        for base in self.working:
            plus = self._plus.get(base)
            minus = self._minus.get(base)
            if plus is not None and not len(plus):
                plus = None
            if minus is not None and not len(minus):
                minus = None
            if plus is not None or minus is not None:
                out[base] = (plus, minus)
        return out

    def performed_triggers(self) -> frozenset:
        """The elementary-update trigger specs this transaction performed.

        ``(INS, R)`` for a non-empty net plus, ``(DEL, R)`` for a non-empty
        net minus — the key the per-trigger differential programs are
        selected by.
        """
        performed = set()
        for base, (plus, minus) in self.net_differentials().items():
            if plus is not None:
                performed.add(("INS", base))
            if minus is not None:
                performed.add(("DEL", base))
        return frozenset(performed)


class TransactionManager:
    """Executes transactions against a database with full atomicity.

    An optional *modifier* hook — the integrity controller's ``ModT`` — is
    applied to every transaction before execution; this is exactly where the
    paper's transaction modification subsystem sits in the DBMS architecture.
    """

    def __init__(
        self,
        database: Database,
        modifier: Optional[Callable[[Transaction], Transaction]] = None,
        engine: Optional[str] = None,
    ):
        self.database = database
        self.modifier = modifier
        self.engine = engine  # evaluation backend for statement expressions
        self._active: Optional[TransactionContext] = None
        self.executed = 0
        self.committed = 0
        self.aborted = 0

    def execute(
        self,
        transaction: Transaction,
        modify: bool = True,
    ) -> TransactionResult:
        """Run one transaction to completion (commit or abort).

        When ``modify`` is true and a modifier hook is installed, the
        transaction is first passed through it (transaction modification).
        """
        if self.modifier is not None and modify:
            transaction = self.modifier(transaction)
        context = TransactionContext(self.database, engine=self.engine)
        self._active = context
        pre_time = self.database.logical_time
        self.executed += 1
        try:
            for statement in transaction.statements:
                statement.execute(context)
                context.statements_executed += 1
        except TransactionAborted as abort:
            self.aborted += 1
            context.rollback()
            return TransactionResult(
                TransactionStatus.ABORTED,
                transaction,
                reason=abort.reason,
                statements_executed=context.statements_executed,
                pre_time=pre_time,
                post_time=pre_time,
            )
        except ReproError as error:
            # Runtime errors (division by zero, type mismatches, unknown
            # relations) abort the transaction like a real DBMS would; the
            # overlay working set guarantees the pre-state survives.
            self.aborted += 1
            context.rollback()
            return TransactionResult(
                TransactionStatus.ABORTED,
                transaction,
                reason=f"runtime error: {error}",
                statements_executed=context.statements_executed,
                pre_time=pre_time,
                post_time=pre_time,
            )
        finally:
            self._active = None
        context.commit()
        self.committed += 1
        return TransactionResult(
            TransactionStatus.COMMITTED,
            transaction,
            statements_executed=context.statements_executed,
            tuples_inserted=context.tuples_inserted,
            tuples_deleted=context.tuples_deleted,
            pre_time=pre_time,
            post_time=self.database.logical_time,
            differentials=context.net_differentials(),
        )

    @property
    def active_context(self) -> TransactionContext:
        if self._active is None:
            raise NoActiveTransactionError("no transaction is executing")
        return self._active
