"""Epoch-based MVCC: O(Δ) pinned snapshots over the live delta stream.

Every committed transaction already *is* its net differential
(:class:`~repro.engine.commitlog.CommitRecord`), and commits apply that
differential to base relations in place.  This module turns that stream
into multi-version concurrency control without ever copying a relation:

* The database carries one :class:`EpochManager`.  Each mutation batch
  (``apply_deltas`` — recorded commits and unrecorded restores alike)
  advances an internal *version* and retains the batch's net differentials
  in an entry list.  For recorded commits the entry also carries the commit
  sequence number — the ``CommitLog`` sequence *is* the public epoch
  counter.
* A reader :meth:`~EpochManager.pin`\\ s the current epoch.  Relations
  read through the pin (:class:`SnapshotRelation`) present the state *as of
  the pin*, reconstructed algebraically as ``live − suffixΔ⁺ + suffixΔ⁻``:
  an :class:`~repro.engine.overlay.OverlayRelation` whose base is the live
  relation and whose delta is the *inverse* of every commit after the pin.
  Keeping a snapshot is O(Δ-since-pin), never O(|R|).
* Entries are reclaimed once no pin needs them (refcounted), with a small
  bounded window retained for late pins; :attr:`EpochManager.reclaimed`
  counts reclamations for observability.

Writer/reader coordination is a *seqlock*, not a mutex: the single writer
(the owning session's commit thread) bumps a stamp to odd before mutating
and back to even after retaining the entry; readers snapshot the stamp,
compute, and retry iff the stamp moved.  Commits therefore never wait on
readers in the common path, and readers never block commits — the
"lock-free" in lock-free async audits.  The one bounded exception: a
reader that loses the validation race :data:`READ_RETRY_LIMIT` times
(a large merge under a continuously-committing writer would otherwise
starve) takes the writer's gate for a single reconstruction pass, and
the one-off whole-relation materialization takes the gate directly —
an O(n) compute loses the race whenever any commit lands during it, so
optimism there is wasted work, while the gate is a single uncontended
lock acquire when the writer is idle.
Snapshot-internal synchronization (two audit threads catching up the same
snapshot's undo delta) uses a snapshot-local lock that the writer never
touches.

A snapshot's first whole-relation read (a scan, ``_rows``, equality)
materializes the merged state once and caches it permanently — the state
at a pinned epoch is immutable — after which the snapshot is *detached*:
reads stop consulting the live base entirely and answer from the frozen
dict.  :meth:`EpochManager.quiesce` forces that detachment for every
outstanding pin, which is how out-of-band bulk mutations
(``Database.load`` / ``install``) keep old pins correct.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, Dict, Iterator, List, Optional

from repro.engine.overlay import OverlayIndex, OverlayRelation, _DeltaBuckets
from repro.engine.relation import Relation
from repro.errors import EpochUnavailableError, UnknownRelationError

#: Mutation batches retained for late pins when nothing is pinned; mirrors
#: the commit log's default capacity so "still in the commit log" implies
#: "still pinnable" in the common configuration.
DEFAULT_RETAIN = 256

#: Optimistic seqlock attempts before a starving reader falls back to the
#: write gate.  Large merges under a continuously-committing writer can
#: lose the validation race forever; the fallback bounds reader latency
#: at the cost of stalling the writer for one reconstruction.  Kept small:
#: every lost round re-runs the full compute, so for expensive reads the
#: retry budget is wasted work and the gate is the faster path anyway.
READ_RETRY_LIMIT = 2


def fold_inverse(plus: Relation, minus: Relation, delta: tuple) -> None:
    """Fold one newer commit's *inverse* into running undo differentials.

    ``delta`` is the commit's ``(Δ⁺, Δ⁻)`` for one relation (either side
    may be None).  With the undo pair held as net relations, composing
    means ``plus += Δ⁻`` and ``minus += Δ⁺`` under signed cancellation —
    a row the commit re-inserted after the undo re-added it just cancels.
    Cancel-before-insert keeps the overlay invariants (no row on both
    sides, ``minus ⊆ base``) intact.
    """
    dplus, dminus = delta
    if dminus is not None:
        for row, count in dminus.items():
            remaining = count - minus.delete_count(row, count)
            if remaining:
                plus.insert_count(row, remaining, _validated=True)
    if dplus is not None:
        for row, count in dplus.items():
            remaining = count - plus.delete_count(row, count)
            if remaining:
                minus.insert_count(row, remaining, _validated=True)


class EpochEntry:
    """One applied mutation batch: the version it produced and its delta.

    ``sequence`` is the commit-log sequence for recorded commits, or None
    for unrecorded mutations (snapshot restore, recovery replay), which
    advance the version — pinned readers must see through them too — but
    have no public epoch number.
    """

    __slots__ = ("version", "sequence", "differentials")

    def __init__(self, version: int, sequence: Optional[int], differentials: dict):
        self.version = version
        self.sequence = sequence
        self.differentials = differentials

    def __repr__(self) -> str:
        seq = f"#{self.sequence}" if self.sequence is not None else "unrecorded"
        return f"EpochEntry(v{self.version}, {seq}, {len(self.differentials)} rel)"


class EpochManager:
    """Per-database epoch bookkeeping: seqlock, retained deltas, pins."""

    def __init__(self, database, retain: int = DEFAULT_RETAIN):
        self._database = database
        self.retain = max(int(retain), 1)
        # Seqlock stamp: even = stable, odd = a mutation batch is in
        # flight.  Written only by the single commit thread.
        self._stamp = 0
        # Starvation fallback: the writer holds this across its (short)
        # critical section; a reader whose optimistic read keeps losing
        # the seqlock race (large merge under a hot writer) takes it once
        # to compute against a stable base.  Uncontended in the common
        # path — commits only ever wait for a reader that has already
        # retried ``READ_RETRY_LIMIT`` times.
        self._write_gate = threading.Lock()
        # Internal version: +1 per non-empty mutation batch.  Distinct
        # from the public epoch (the commit sequence) because unrecorded
        # mutations move state without consuming a sequence number.
        self._version = 0
        # Versions below this cannot mint new snapshot relations (the
        # quiesce fence: an out-of-band bulk mutation happened since).
        self._floor = 0
        self._entries: List[EpochEntry] = []
        self._pins: Dict[int, int] = {}
        # RLock: EpochPin.__del__ may run from the GC at any point,
        # including while this thread already holds the lock.
        self._lock = threading.RLock()
        # Live snapshot relations and pins, detached/fenced by quiesce().
        # Relations are tracked by identity (Relation is unhashable by
        # design, and value-equal snapshots must not collapse), pins in a
        # plain WeakSet.
        self._issued: Dict[int, "weakref.ref"] = {}
        self._issued_pins: "weakref.WeakSet" = weakref.WeakSet()
        # True while no pin, snapshot view, or retained entry could be
        # invalidated by an out-of-band mutation: note_mutation() is then
        # O(1).  Cleared whenever one appears; restored by quiesce().
        self._quiescent = True
        # Zero-copy materializations: name -> weakrefs of snapshots whose
        # ``_materialized`` IS the live row dict (undo was empty at merge
        # time).  The writer's next mutation of that relation swaps the
        # live relation onto a private copy, leaving the shared dict
        # frozen for the sharers.  Mutated only under the write gate.
        self._cow_shares: Dict[str, List["weakref.ref"]] = {}
        # Materialization recycling: name -> (version, rows, owner refs).
        # Once every owner of a *private* merged dict is unreachable, the
        # next materialization adopts the dict and rolls it forward O(Δ)
        # through the retained entries instead of copying O(n) — in the
        # steady state (a reader re-pinning under a live writer) neither
        # side ever copies.  Guarded by ``_lock``.
        self._mat_cache: Dict[str, tuple] = {}
        self.reclaimed = 0
        self.pins_taken = 0

    # -- introspection ---------------------------------------------------------

    @property
    def version(self) -> int:
        """The current internal version (mutation batches applied)."""
        return self._version

    @property
    def current_epoch(self) -> int:
        """The public epoch counter: the next commit-log sequence number."""
        return self._database.commit_log.next_sequence

    def retained(self) -> int:
        """Mutation-batch entries currently held for pinned/late readers."""
        return len(self._entries)

    def pinned_versions(self) -> tuple:
        with self._lock:
            return tuple(sorted(self._pins))

    # -- writer protocol (single-threaded: the owning commit thread) -----------

    def begin_write(self) -> None:
        """Enter the mutation critical section (stamp goes odd)."""
        self._write_gate.acquire()
        self._stamp += 1

    def end_write(self, differentials, sequence: Optional[int] = None) -> None:
        """Leave the critical section, retaining the batch's net delta.

        ``differentials`` is the applied ``{base: (Δ⁺, Δ⁻)}`` map (sides
        may be None or empty; the map itself may be None for delta-free
        mutations); ``sequence`` is the commit-log sequence for recorded
        commits.  Retained by reference — differentials are frozen once
        applied, the same contract the commit log relies on.
        """
        try:
            normalized: dict = {}
            for base, (plus, minus) in dict(differentials or {}).items():
                if plus is not None and not len(plus):
                    plus = None
                if minus is not None and not len(minus):
                    minus = None
                if plus is not None or minus is not None:
                    normalized[base] = (plus, minus)
            if normalized:
                self._version += 1
                self._entries.append(
                    EpochEntry(self._version, sequence, normalized)
                )
                self._quiescent = False  # later direct mutations must fence
                with self._lock:
                    self._trim_locked()
        finally:
            self._stamp += 1
            self._write_gate.release()

    def _trim_locked(self) -> None:
        """Drop entries below every pin and the unpinned retention window.

        Readers may be iterating the entry list concurrently, so the list
        reference is swapped (copy-on-trim) rather than mutated in place;
        a reader holding the old reference simply sees a superset.
        """
        floor = self._version - self.retain
        if self._pins:
            floor = min(floor, min(self._pins))
        entries = self._entries
        drop = 0
        for entry in entries:
            if entry.version <= floor:
                drop += 1
            else:
                break
        if drop:
            self._entries = entries[drop:]
            self.reclaimed += drop

    # -- reader protocol --------------------------------------------------------

    def read_begin(self) -> int:
        """A stable (even) stamp; waits out the writer's critical section.

        An odd stamp means the gate is held, so blocking on the gate wakes
        the reader the moment the batch lands — a bare GIL yield here can
        stall for whole scheduler intervals against a CPU-bound writer.
        """
        while True:
            stamp = self._stamp
            if not (stamp & 1):
                return stamp
            gate = self._write_gate
            gate.acquire()
            gate.release()

    def read_validate(self, stamp: int) -> bool:
        return self._stamp == stamp

    # -- pinning ----------------------------------------------------------------

    def _available_locked(self, version: int) -> bool:
        if version < self._floor:
            return False
        if version >= self._version:
            return version == self._version
        entries = self._entries
        # Entry versions are contiguous (trimmed only from the front), so
        # one front check proves every suffix entry > ``version`` survives.
        return bool(entries) and entries[0].version <= version + 1

    def pin(self) -> "EpochPin":
        """Pin the current epoch; reads through the pin see it forever."""
        while True:
            # (version, epoch) must come from one stable interval — the
            # seqlock brackets both the relation mutations and the commit
            # log append, so an even-stamp double read is atomic.
            stamp = self.read_begin()
            version = self._version
            epoch = self._database.commit_log.next_sequence
            if not self.read_validate(stamp):
                continue
            with self._lock:
                self._pins[version] = self._pins.get(version, 0) + 1
                if self._available_locked(version):
                    self.pins_taken += 1
                    pin = EpochPin(self, version, epoch)
                    self._issued_pins.add(pin)
                    self._quiescent = False
                    return pin
                # Raced with enough commits to lose the window; rare.
                self._unpin_locked(version)

    def pin_span(self, first_sequence: int, last_sequence: int):
        """Pins bracketing commits ``[first, last]``: an EpochSpan or None.

        ``pre`` is the state the first commit applied to; ``post`` is the
        state the last commit produced.  Returns None when the entries are
        no longer retained (e.g. commits older than the manager), letting
        callers fall back to live-state audits.
        """
        with self._lock:
            pre_version = post_version = None
            for entry in self._entries:
                if entry.sequence is None:
                    continue
                if entry.sequence == first_sequence:
                    pre_version = entry.version - 1
                if entry.sequence == last_sequence:
                    post_version = entry.version
            if pre_version is None or post_version is None:
                return None
            if not self._available_locked(pre_version):
                return None
            self._pins[pre_version] = self._pins.get(pre_version, 0) + 1
            self._pins[post_version] = self._pins.get(post_version, 0) + 1
            self.pins_taken += 2
            pre = EpochPin(self, pre_version, first_sequence)
            post = EpochPin(self, post_version, last_sequence + 1)
            self._issued_pins.add(pre)
            self._issued_pins.add(post)
            self._quiescent = False
        return EpochSpan(pre, post)

    def _unpin_locked(self, version: int) -> None:
        count = self._pins.get(version, 0) - 1
        if count <= 0:
            self._pins.pop(version, None)
        else:
            self._pins[version] = count

    def _release(self, version: int) -> None:
        with self._lock:
            self._unpin_locked(version)
            # Reclamation happens opportunistically here and on every
            # write; both paths swap the list, never mutate it.
            self._trim_locked()

    def snapshot_relation(self, name: str, pin: "EpochPin") -> "SnapshotRelation":
        """The state of base relation ``name`` as of ``pin``."""
        live = self._database.relation(name)
        with self._lock:
            if not self._available_locked(pin.version):
                raise EpochUnavailableError(pin.epoch)
            relation = SnapshotRelation(self, pin, name, live)
            issued, key = self._issued, id(relation)
            issued[key] = weakref.ref(
                relation, lambda _ref, issued=issued, key=key: issued.pop(key, None)
            )
        return relation

    def undo_differentials(self, version: int) -> Optional[dict]:
        """Net ``{base: (Δ⁺, Δ⁻)}`` reverting the live state to ``version``.

        The inverse of every retained entry after ``version``, composed
        with signed cancellation — applying it through ``apply_deltas``
        restores the pinned state in O(Δ-since-pin).  Returns None when the
        entries are no longer retained (fall back to a state diff), ``{}``
        when nothing changed.  Writer-thread only.
        """
        with self._lock:
            if not self._available_locked(version):
                return None
            entries = [e for e in self._entries if e.version > version]
        undo: Dict[str, tuple] = {}
        database = self._database
        for entry in entries:
            for name, delta in entry.differentials.items():
                pair = undo.get(name)
                if pair is None:
                    schema = database.relation_schema(name)
                    pair = (
                        Relation(schema, bag=database.bag),
                        Relation(schema, bag=database.bag),
                    )
                    undo[name] = pair
                fold_inverse(pair[0], pair[1], delta)
        return {
            name: (plus if len(plus) else None, minus if len(minus) else None)
            for name, (plus, minus) in undo.items()
            if len(plus) or len(minus)
        }

    # -- out-of-band mutation fence ---------------------------------------------

    def note_mutation(self, relation=None) -> None:
        """A base relation is about to mutate — possibly out-of-band.

        Called by :class:`~repro.engine.relation.Relation` before every
        row change on an observed relation.  Mutations inside the writer's
        seqlock window are the commit delta path and return immediately;
        anything else (direct ``relation.insert(...)`` bypassing
        ``apply_deltas``, fixture code) silently invalidates the algebraic
        reconstruction, so the outstanding pins are materialized at their
        pinned state and detached *before* the mutation lands.  O(1) when
        nothing is pinned or retained.

        Either way, if a snapshot shares ``relation``'s row dict zero-copy
        (see :meth:`_register_share`) the live relation is moved onto a
        private copy first — the sharers keep the old dict, frozen from
        here on.  Ordered *after* the quiesce fence so snapshots that
        materialize (and possibly share) during the fence are covered by
        the same swap.
        """
        if not (self._stamp & 1 or self._quiescent):
            self.quiesce()
        if relation is not None and self._cow_shares:
            self._cow_swap(relation)

    def _register_share(self, name: str, snapshot: "SnapshotRelation"):
        """Record that ``snapshot._materialized`` is the live dict itself.

        Safe from two contexts: under the write gate (serialized against
        :meth:`_cow_swap` directly), or inside an optimistic seqlock
        round — the GIL makes the append atomic, and the caller either
        validates the stamp afterwards (so the registration
        happened-before any later commit's swap check) or unregisters
        the returned ref.  Returns the weakref for unregistration.
        """
        refs = self._cow_shares.setdefault(name, [])
        if len(refs) >= 64:  # prune dead sharers from quiet pin loops
            refs[:] = [ref for ref in refs if ref() is not None]
        ref = weakref.ref(snapshot)
        refs.append(ref)
        return ref

    def _unregister_share(self, name: str, ref) -> None:
        refs = self._cow_shares.get(name)
        if refs is not None:
            try:
                refs.remove(ref)
            except ValueError:
                pass  # already popped by a swap

    def _adopt_cached(self, name: str, upto: int, snapshot) -> Optional[dict]:
        """Recycle a dead owner's merged dict, rolled forward to ``upto``.

        Returns the adopted (now exclusively owned) row dict, or None
        when no cached dict exists, an owner is still reachable, the
        cached state is newer than ``upto`` (states cannot be rewound),
        or the connecting entries were reclaimed.  The roll-forward is
        pure private-dict + frozen-entry arithmetic, so it needs no
        seqlock bracket — concurrent commits cannot perturb it.
        """
        with self._lock:
            cached = self._mat_cache.pop(name, None)
            if cached is None:
                return None
            version, rows, owners = cached
            if any(ref() is not None for ref in owners):
                self._mat_cache[name] = cached  # still shared; retry later
                return None
            if version > upto:
                self._mat_cache[name] = cached  # a newer reader may chain
                return None
            entries = self._entries
            if version < upto and (
                not entries or entries[0].version > version + 1
            ):
                return None  # gap: the chain is broken for good
        if version < upto:
            for entry in entries:
                if entry.version <= version or entry.version > upto:
                    continue
                delta = entry.differentials.get(name)
                if delta is None:
                    continue
                plus, minus = delta
                if minus is not None:
                    for row, count in minus._rows.items():
                        remaining = rows.get(row, 0) - count
                        if remaining > 0:
                            rows[row] = remaining
                        else:
                            rows.pop(row, None)
                if plus is not None:
                    for row, count in plus._rows.items():
                        rows[row] = rows.get(row, 0) + count
        with self._lock:
            self._mat_cache[name] = (upto, rows, [weakref.ref(snapshot)])
        return rows

    def _cow_swap(self, relation) -> None:
        name = relation.schema.name
        if name not in self._cow_shares:
            return
        if self._stamp & 1:
            # Commit path: this thread already holds the write gate.
            self._cow_swap_gated(relation, name)
        else:
            with self._write_gate:
                self._cow_swap_gated(relation, name)

    def _cow_swap_gated(self, relation, name: str) -> None:
        refs = self._cow_shares.pop(name, ())
        live = [ref for ref in refs if ref() is not None]
        if not live:
            return
        old_rows = relation._rows
        relation._cow_detach_rows()
        if self._stamp & 1:
            # Commit path: the abandoned dict is exactly the state at the
            # current version — seed the recycling cache so the next
            # materialization (once the sharers die) rolls it forward
            # O(Δ) instead of copying.  Out-of-band mutations don't bump
            # the version, so their abandoned dicts are not chainable.
            with self._lock:
                self._mat_cache[name] = (self._version, old_rows, live)

    def quiesce(self) -> int:
        """Detach every outstanding pin before an unobserved bulk mutation.

        ``Database.load`` / ``install`` mutate or replace relations without
        going through the delta path, so the algebraic reconstruction
        breaks for any snapshot still reading through the live base.  Every
        live pin's relations are materialized *now* (at their pinned state,
        pre-mutation) and permanently detached; the entry list is fenced so
        stale pins cannot mint new snapshot relations.  Returns the number
        of snapshot relations detached.
        """
        for pin in list(self._issued_pins):
            if pin._released:
                continue
            for name in self._database.relation_names:
                try:
                    # The fence dict holds the snapshot strongly: once
                    # detached it cannot be reconstructed from entries, so
                    # the pin itself must keep it alive.
                    pin._fenced[name] = pin.relation(name)
                except (EpochUnavailableError, UnknownRelationError):
                    continue
        detached = 0
        for ref in list(self._issued.values()):
            relation = ref()
            if relation is not None:
                relation._detach()
                detached += 1
        with self._lock:
            self._issued = {}
            self._mat_cache = {}  # cached states predate the fence
            self.reclaimed += len(self._entries)
            self._entries = []
            self._version += 1
            self._floor = self._version
            self._quiescent = True
        return detached

    def __repr__(self) -> str:
        return (
            f"EpochManager(v{self._version}, epoch=#{self.current_epoch}, "
            f"{len(self._entries)} retained, {len(self._pins)} pinned, "
            f"{self.reclaimed} reclaimed)"
        )


class EpochPin:
    """A refcounted claim on one epoch; holds its reconstruction window."""

    __slots__ = (
        "_manager",
        "version",
        "epoch",
        "_released",
        "_relations",
        "_fenced",
        "__weakref__",
    )

    def __init__(self, manager: EpochManager, version: int, epoch: int):
        self._manager = manager
        self.version = version
        #: Public epoch number: the commit-log sequence boundary this pin
        #: observes (commits with sequence < epoch are visible).
        self.epoch = epoch
        self._released = False
        # Snapshot relations are cached per pin so every reader of the pin
        # (e.g. all audit tasks of one batch) shares one materialization.
        # Weak values: the snapshot holds the pin (never the reverse), so
        # a dropped snapshot is reclaimed by refcounting immediately — a
        # strong cache here would form a cycle that lingers until the
        # cyclic GC runs, keeping dead materializations "live" and
        # blocking the manager's dict recycling.
        self._relations: "weakref.WeakValueDictionary" = (
            weakref.WeakValueDictionary()
        )
        # Exception: snapshots materialized by the quiesce fence are held
        # strongly — once detached they cannot be reconstructed from the
        # entry list, so the pin is their only anchor.  Fencing is the
        # rare out-of-band path; the steady-state commit path never fills
        # this dict, so the cycle it forms stays off the hot path.
        self._fenced: Dict[str, "SnapshotRelation"] = {}

    def relation(self, name: str) -> "SnapshotRelation":
        relation = self._fenced.get(name)
        if relation is not None:
            return relation
        relation = self._relations.get(name)
        if relation is None:
            relation = self._manager.snapshot_relation(name, self)
            self._relations[name] = relation
        return relation

    def release(self) -> None:
        """Idempotent; reclamation may drop this epoch's entries after.

        Already-materialized snapshot relations stay readable forever; a
        *fresh* whole-relation read after release may raise
        :class:`~repro.errors.EpochUnavailableError` once the entries are
        reclaimed.
        """
        if not self._released:
            self._released = True
            self._manager._release(self.version)

    def __del__(self):  # safety net: GC'd pins must not retain entries
        try:
            self.release()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def __enter__(self) -> "EpochPin":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else "held"
        return f"EpochPin(epoch=#{self.epoch}, v{self.version}, {state})"


class EpochSpan:
    """A shared pre/post pin pair bracketing one audit batch.

    Audit tasks of the same batch resolve bare names against
    :meth:`post_relation` and ``R@old`` against :meth:`pre_relation`, so
    every rule in the batch audits exactly the states its commits
    transitioned between, no matter when the worker thread runs.  The span
    is refcounted across the batch's tasks; the last release drops both
    pins.
    """

    __slots__ = ("pre", "post", "_refs", "_lock")

    def __init__(self, pre: EpochPin, post: EpochPin):
        self.pre = pre
        self.post = post
        self._refs = 1
        self._lock = threading.Lock()

    def retain(self) -> "EpochSpan":
        with self._lock:
            self._refs += 1
        return self

    def release(self) -> None:
        with self._lock:
            self._refs -= 1
            drop = self._refs == 0
        if drop:
            self.pre.release()
            self.post.release()

    def pre_relation(self, name: str) -> "SnapshotRelation":
        return self.pre.relation(name)

    def post_relation(self, name: str) -> "SnapshotRelation":
        return self.post.relation(name)

    def __repr__(self) -> str:
        return f"EpochSpan(#{self.pre.epoch} -> #{self.post.epoch})"


class PinnedRelations:
    """Lazy ``{name: SnapshotRelation}`` mapping over one pin.

    Backs an epoch-pinned :class:`~repro.engine.database.DatabaseSnapshot`:
    taking the snapshot creates *nothing* per relation; each relation's
    O(Δ) snapshot view is minted on first access and cached on the pin.
    """

    __slots__ = ("_pin", "_names")

    def __init__(self, pin: EpochPin, names: tuple):
        self._pin = pin
        self._names = names

    def __getitem__(self, name: str) -> "SnapshotRelation":
        if name not in self._names:
            raise KeyError(name)
        return self._pin.relation(name)

    def get(self, name: str, default=None):
        if name not in self._names:
            return default
        return self._pin.relation(name)

    def __contains__(self, name) -> bool:
        return name in self._names

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def keys(self) -> tuple:
        return self._names

    def values(self):
        return (self._pin.relation(name) for name in self._names)

    def items(self):
        return ((name, self._pin.relation(name)) for name in self._names)

    def __repr__(self) -> str:
        return f"PinnedRelations({self._pin!r}, {len(self._names)} relation(s))"


class SnapshotRelation(OverlayRelation):
    """One base relation frozen at a pinned epoch, reconstructed O(Δ).

    An overlay whose *base* is the live relation and whose delta is the
    running **inverse** of every commit after the pin: ``plus`` re-adds
    rows later commits deleted, ``minus`` hides rows they inserted.  The
    overlay invariants hold by construction (:func:`fold_inverse`), so
    every inherited read answers correctly; reads go through a seqlock
    retry loop (:meth:`_read`) that first catches the undo delta up to the
    newest committed version, then validates nothing moved mid-compute.

    Read-only: the state at an epoch is immutable, and the first
    whole-relation materialization is therefore cached permanently,
    detaching the snapshot from the live base for good.
    """

    __slots__ = (
        "_manager",
        "_pin",
        "_name",
        "_synced",
        "_detached",
        "_sync_lock",
        "__weakref__",
    )

    def __init__(self, manager: EpochManager, pin: EpochPin, name: str, live: Relation):
        plus = Relation(live.schema, bag=live.bag)
        minus = Relation(live.schema, bag=live.bag)
        OverlayRelation.__init__(self, live, plus, minus)
        self._manager = manager
        self._pin = pin  # keeps the reconstruction window alive
        self._name = name
        self._synced = pin.version
        self._detached = False
        # Serializes snapshot-internal catch-up between concurrent reader
        # threads; the writer never takes it.  RLock: reads nest (e.g. an
        # index probe membership-checks back through the relation).
        self._sync_lock = threading.RLock()

    # -- reconstruction ---------------------------------------------------------

    def _sync_locked(self) -> None:
        """Catch the undo delta up to the newest retained entry."""
        entries = self._manager._entries
        synced = self._synced
        if entries and entries[0].version > synced + 1:
            # The entries between our pin and the retained window were
            # reclaimed — only possible once the pin is released.
            raise EpochUnavailableError(self._pin.epoch)
        if not entries:
            if self._manager._version > synced:
                raise EpochUnavailableError(self._pin.epoch)
            return
        name = self._name
        for entry in entries:
            if entry.version <= synced:
                continue
            delta = entry.differentials.get(name)
            if delta is not None:
                fold_inverse(self.plus, self.minus, delta)
                self._materialized = None
            synced = entry.version
        self._synced = synced

    def _read(self, compute: Callable):
        """Run ``compute`` against a consistent pinned view (seqlock retry).

        Optimistic first: snapshot the stamp, sync the undo delta,
        compute, and accept iff the stamp never moved.  A compute that
        keeps losing that race (a large merge under a hot writer would
        otherwise starve forever) falls back to holding the manager's
        write gate for one pass — the only point where a reader can make
        the writer wait, and it is bounded by a single reconstruction.
        """
        if self._materialized is not None or self._detached:
            return compute()
        manager = self._manager
        for _attempt in range(READ_RETRY_LIMIT):
            stamp = manager.read_begin()
            with self._sync_lock:
                if self._materialized is not None or self._detached:
                    return compute()
                self._sync_locked()
                try:
                    value = compute()
                except RuntimeError:
                    # The live base mutated mid-iteration; retry on the
                    # next stable stamp.
                    continue
            if manager.read_validate(stamp):
                return value
        with manager._write_gate:  # stamp is even and frozen while held
            with self._sync_lock:
                if self._materialized is None and not self._detached:
                    self._sync_locked()
                return compute()

    @property
    def _rows(self) -> dict:
        """The merged pinned state, materialized once and frozen forever."""
        rows = self._materialized
        if rows is None:
            rows = self._materialize()
        return rows

    def _materialize(self) -> dict:
        """Merge once under the seqlock, then freeze the result.

        Same optimistic-then-gated shape as :meth:`_read`, with two
        twists.  Only the O(1) zero-copy share path runs optimistically:
        an O(n) copy-merge loses the validation race whenever any commit
        lands during the copy, so with a non-empty undo the gate is the
        faster path outright.  And a share registered during an
        optimistic round whose validation then fails is unregistered
        again — the writer may have mutated the adopted dict before
        seeing the registration, so the round's result is discarded and
        must not trigger a copy-on-write swap later.
        """
        manager = self._manager
        rows = None
        for _attempt in range(READ_RETRY_LIMIT):
            stamp = manager.read_begin()
            with self._sync_lock:
                if self._materialized is not None or self._detached:
                    return self._merge_locked()[0]
                self._sync_locked()
                if self.plus._rows or self.minus._rows:
                    break  # O(n) merge: optimism is doomed, go gated
                value, share = self._merge_locked()  # recycle or share
            if share is None:
                # Recycled dict: private arithmetic, valid regardless of
                # concurrent commits — no validation needed.
                rows = value
                break
            if manager.read_validate(stamp):
                rows = value
                break
            manager._unregister_share(self._name, share)
        if rows is None:
            with manager._write_gate:  # stamp frozen even while held
                with self._sync_lock:
                    if self._materialized is None and not self._detached:
                        self._sync_locked()
                    rows = self._merge_locked()[0]
        with self._sync_lock:
            if self._materialized is None:
                self._materialized = rows
            return self._materialized

    def _merge_locked(self):
        """``(merged rows, share ref or None)``; caller holds the seqlock
        bracket (or the write gate) and ``_sync_lock``."""
        if self._materialized is not None:
            return self._materialized, None
        # Empty undo: the pinned state IS the current live state.  Best
        # case a dead predecessor's merged dict is recycled and rolled
        # forward O(Δ); otherwise adopt the live dict zero-copy — the
        # manager swaps the live relation onto a private copy before its
        # next mutation (copy-on-write), so the adopted dict is frozen
        # at this state.  Either way snapshotting a quiet relation never
        # copies, and the one O(n) copy is paid by the writer only if
        # and when it mutates a still-shared relation again.
        if not self.plus._rows and not self.minus._rows:
            rows = self._manager._adopt_cached(self._name, self._synced, self)
            if rows is not None:
                return rows, None
            ref = self._manager._register_share(self._name, self)
            return self.base._rows, ref
        # C-speed copy of the live dict corrected by the O(Δ) undo — never
        # a Python-level per-row merge of the whole relation.
        rows = dict(self.base._rows)
        minus = self.minus._rows
        if minus:
            for row, count in minus.items():
                remaining = rows.get(row, 0) - count
                if remaining > 0:
                    rows[row] = remaining
                else:
                    rows.pop(row, None)
        plus = self.plus._rows
        if plus:
            for row, count in plus.items():
                rows[row] = rows.get(row, 0) + count
        return rows, None

    def _detach(self) -> None:
        """Materialize at the pinned state and stop reading the live base."""
        self._rows  # property access performs the one-off materialization
        self._detached = True

    # -- read protocol ----------------------------------------------------------
    #
    # Each override answers from the frozen dict once materialized and
    # otherwise runs the inherited overlay arithmetic inside the seqlock
    # retry loop.  Whole-relation consumers (__iter__, items, filtered,
    # sorted_rows, equality) inherit from Relation and hit ``_rows``.

    def __len__(self) -> int:
        if self._materialized is not None:
            return Relation.__len__(self)
        return self._read(lambda: OverlayRelation.__len__(self))

    def __contains__(self, row) -> bool:
        if self._materialized is not None:
            return Relation.__contains__(self, row)
        return self._read(lambda: OverlayRelation.__contains__(self, row))

    def __bool__(self) -> bool:
        if self._materialized is not None:
            return Relation.__bool__(self)
        return self._read(lambda: OverlayRelation.__bool__(self))

    def multiplicity(self, row) -> int:
        if self._materialized is not None:
            return Relation.multiplicity(self, row)
        return self._read(lambda: OverlayRelation.multiplicity(self, row))

    def distinct_count(self) -> int:
        if self._materialized is not None:
            return Relation.distinct_count(self)
        return self._read(lambda: OverlayRelation.distinct_count(self))

    def rows_and_counts(self):
        if self._materialized is not None:
            return Relation.rows_and_counts(self)
        return self._read(lambda: OverlayRelation.rows_and_counts(self))

    def column_batch(self):
        if self._materialized is None and not self._detached:
            # Quiet snapshots share the live base's *already cached* batch
            # (immutable once built); never build one on the base from a
            # reader thread — that would race the writer's invalidation.
            def borrow():
                if not self.plus._rows and not self.minus._rows:
                    return self.base._batch
                return None

            batch = self._read(borrow)
            if batch is not None:
                return batch
        return Relation.column_batch(self)  # builds over the frozen rows

    # -- mutation: forbidden ----------------------------------------------------

    def _readonly(self, *_args, **_kwargs):
        raise TypeError(
            f"SnapshotRelation({self._name!r} at epoch #{self._pin.epoch}) is "
            f"read-only: the state at a pinned epoch is immutable"
        )

    insert = _readonly
    delete = _readonly
    insert_count = _readonly
    delete_count = _readonly
    insert_many = _readonly
    delete_many = _readonly
    clear = _readonly
    replace_contents = _readonly

    # -- hash indexes -----------------------------------------------------------
    #
    # Probes are served through SnapshotIndex views over the live base's
    # *built* indexes, corrected by the undo delta under the same seqlock
    # retry — the snapshot never builds or charges indexes on the live
    # base (an index build from a reader thread would scan a mutating dict
    # and install a torn index).  Whole-index consumption and
    # post-materialization probing use a local index over the frozen rows.

    def declare_index(self, positions) -> None:
        from repro.engine.indexes import IndexSet

        with self._sync_lock:
            if self._indexes is None:
                self._indexes = IndexSet()
            self._indexes.declare(tuple(positions))

    def _local_index(self, positions):
        from repro.engine.indexes import IndexSet

        with self._sync_lock:
            if self._indexes is None:
                self._indexes = IndexSet()
            return self._indexes.ensure_built(tuple(positions), self._rows)

    def index_on(self, positions):
        positions = tuple(positions)
        if self._materialized is None and not self._detached:
            index = self.base.built_index(positions)
            if index is not None:
                return self._index_view(index)
        return self._local_index(positions)

    def built_index(self, positions):
        positions = tuple(positions)
        if self._materialized is None and not self._detached:
            index = self.base.built_index(positions)
            if index is None:
                return None
            return self._index_view(index)
        if self._indexes is not None:
            local = self._indexes.get_built(positions)
            if local is not None:
                return local
        if self.base.built_index(positions) is None:
            return None
        return self._local_index(positions)

    def amortized_index(self, positions, forgone_work=None):
        # Never delegate the build decision to the live base: snapshots do
        # not charge forgone work or trigger builds from reader threads.
        # A base index that is already built is served through the
        # corrected view; otherwise report no index.
        return self.built_index(tuple(positions))

    def _index_view(self, index) -> "SnapshotIndex":
        with self._sync_lock:
            view = self._index_views.get(index.positions)
            if view is None:
                view = SnapshotIndex(index, self)
                self._index_views[index.positions] = view
            return view

    def __repr__(self) -> str:
        state = (
            "materialized"
            if self._materialized is not None
            else f"+{len(self.plus._rows)}/-{len(self.minus._rows)} undo"
        )
        return f"SnapshotRelation({self._name}@#{self._pin.epoch}, {state})"


class SnapshotIndex(OverlayIndex):
    """A live built index corrected to a pinned epoch, probe-safe.

    Same correction arithmetic as :class:`OverlayIndex` (base bucket minus
    undo-hidden rows, plus undo-re-added rows from delta-side indexes on
    the snapshot's own undo relations), with every probe wrapped in the
    snapshot's seqlock retry and every returned bucket detached from the
    live index's storage.  Once the snapshot materializes, probes switch
    to a local index over the frozen rows.
    """

    __slots__ = ()

    def __init__(self, base_index, overlay: SnapshotRelation):
        OverlayIndex.__init__(self, base_index, overlay)
        self.buckets = _SnapshotBuckets(self)

    def _local(self):
        return self.overlay._local_index(self.positions)

    def lookup(self, key) -> tuple:
        rel = self.overlay
        if rel._materialized is not None or rel._detached:
            return self._local().lookup(key)
        return rel._read(lambda: OverlayIndex.lookup(self, key))

    def touch(self, kind: str = "bulk", keys: Optional[int] = None) -> None:
        # Usage evidence still flows to the base ledger (plain counter
        # bumps; a lost racing increment is harmless).
        try:
            self.base_index.touch(kind, keys)
        except RuntimeError:  # pragma: no cover - ledger resize race
            pass

    def __repr__(self) -> str:
        return f"SnapshotIndex(positions={self.positions})"


class _SnapshotBuckets(_DeltaBuckets):
    """Corrected buckets of a :class:`SnapshotIndex`.

    Per-key probes run the inherited correction under the seqlock retry
    and always return buckets detached from the live index (a handed-out
    dict must stay stable while later commits land).  Wholesale iteration
    (join build sides) materializes the snapshot and serves the local
    index's buckets — the consumer was about to pay O(|R|) anyway.
    """

    __slots__ = ()

    def get(self, key, default=None):
        rel = self._index.overlay
        if rel._materialized is not None or rel._detached:
            bucket = self._index._local().buckets.get(key)
            return bucket if bucket else default

        def probe():
            bucket = _DeltaBuckets.get(self, key)
            if bucket is None:
                return None
            # Detach: untouched keys alias the live index's bucket dict.
            return dict(bucket)

        bucket = rel._read(probe)
        return bucket if bucket else default

    def __contains__(self, key) -> bool:
        return self.get(key) is not None

    def items(self):
        local = self._index._local()  # materializes the snapshot
        return iter(local.buckets.items())

    def __iter__(self):
        return iter(self._index._local().buckets)

    def __len__(self) -> int:
        return len(self._index._local().buckets)
