"""The bounded commit log: committed net differentials, in order.

PRISMA/DB's whole point (Grefen & Apers) was that enforcement need not run
inline with the transaction: the simplified check — not the full constraint
— is the unit of distributable work, and a committed transaction *is* its
net differential.  The commit log makes that unit durable inside the
engine: every :meth:`~repro.engine.database.Database.apply_deltas` appends
one :class:`CommitRecord` carrying the sequence number, the logical-time
transition, and the per-relation net ``(Δ⁺, Δ⁻)`` relations — by reference,
O(touched relations), since the differentials are frozen once the owning
transaction commits.

The log is bounded: past ``capacity`` records the oldest are evicted
(retention), and :meth:`CommitLog.since` reports how many records a reader
lost to truncation so a consumer (the
:class:`~repro.core.scheduler.AuditScheduler`) can surface the gap instead
of silently skipping it.

:func:`coalesce_differentials` composes consecutive committed deltas into
one net delta (signed multiplicity counters, so an insert-then-delete
cancels), which is what lets a batch of small commits be audited as one
O(|ΣΔ|) unit of work.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Iterator, List, Optional, Tuple

from repro.engine.relation import Relation

#: Default number of commit records retained before the oldest are evicted.
DEFAULT_CAPACITY = 256


class CommitRecord:
    """One committed transaction as the database saw it: a net delta."""

    __slots__ = ("sequence", "pre_time", "post_time", "differentials")

    def __init__(
        self,
        sequence: int,
        pre_time: int,
        post_time: int,
        differentials: Dict[str, Tuple[Optional[Relation], Optional[Relation]]],
    ):
        self.sequence = sequence
        self.pre_time = pre_time
        self.post_time = post_time
        self.differentials = differentials

    @property
    def is_empty(self) -> bool:
        return not self.differentials

    @property
    def touched(self) -> tuple:
        """Names of base relations with a non-empty net differential."""
        return tuple(self.differentials)

    def sizes(self) -> Dict[str, Tuple[int, int]]:
        """``{base: (|Δ⁺|, |Δ⁻|)}`` for display and pricing."""
        return {
            base: (
                len(plus) if plus is not None else 0,
                len(minus) if minus is not None else 0,
            )
            for base, (plus, minus) in self.differentials.items()
        }

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{base}[+{sizes[0]}/-{sizes[1]}]"
            for base, sizes in self.sizes().items()
        )
        return (
            f"CommitRecord(#{self.sequence}, t={self.pre_time}->"
            f"{self.post_time}, {parts or 'empty'})"
        )


class CommitLog:
    """Bounded, thread-safe sequence of :class:`CommitRecord` entries.

    Appends happen on the owning session's thread (inside
    ``apply_deltas``); reads happen from audit-scheduler drains, possibly
    on other threads — a lock keeps the record list consistent.  Record
    payloads are never mutated after append.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("commit log capacity must be >= 1")
        self.capacity = capacity
        self._records: List[CommitRecord] = []
        self._next_sequence = 0
        self._lock = threading.Lock()

    # The lock is an implementation detail: copies (tests deep-copy whole
    # databases) serialize the records and get a fresh lock.
    def __getstate__(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "_records": list(self._records),
                "_next_sequence": self._next_sequence,
            }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- writing ---------------------------------------------------------------

    def append(
        self,
        differentials,
        pre_time: int,
        post_time: int,
    ) -> CommitRecord:
        """Record one committed transaction's net differentials.

        Empty sides are normalized to None and untouched relations are
        dropped; the (possibly empty) record is appended either way so the
        sequence mirrors the commit order.  Evicts the oldest record past
        capacity.
        """
        normalized: Dict[str, tuple] = {}
        for base, (plus, minus) in dict(differentials or {}).items():
            if plus is not None and not len(plus):
                plus = None
            if minus is not None and not len(minus):
                minus = None
            if plus is not None or minus is not None:
                normalized[base] = (plus, minus)
        with self._lock:
            record = CommitRecord(
                self._next_sequence, pre_time, post_time, normalized
            )
            self._next_sequence += 1
            self._records.append(record)
            if len(self._records) > self.capacity:
                del self._records[: len(self._records) - self.capacity]
            return record

    def append_at(
        self,
        sequence: int,
        differentials,
        pre_time: int,
        post_time: int,
    ) -> CommitRecord:
        """Append a record carrying an explicit sequence number (replay).

        Recovery replays durable commit records through the same delta
        path commits use, and the replayed records must keep their
        *original* sequence numbers (audit cursors, retention watermarks,
        and the hash chain are all keyed on them).  The sequence must not
        move backwards; gaps are allowed (older segments may have been
        purged) and simply advance ``next_sequence``.
        """
        with self._lock:
            if sequence < self._next_sequence:
                raise ValueError(
                    f"cannot replay sequence #{sequence} behind "
                    f"next=#{self._next_sequence}"
                )
            self._next_sequence = sequence
        return self.append(differentials, pre_time, post_time)

    def advance_to(self, sequence: int) -> None:
        """Move ``next_sequence`` forward to ``sequence`` (never backward).

        Used when a database is forked from a pinned epoch: the fork keeps
        only the records below the pin, but its next commit must continue
        the original numbering so audit cursors and the WAL stay aligned.
        """
        with self._lock:
            if sequence > self._next_sequence:
                self._next_sequence = sequence

    def truncate_through(self, sequence: int) -> int:
        """Drop records with ``record.sequence <= sequence``; return count."""
        with self._lock:
            kept = [r for r in self._records if r.sequence > sequence]
            dropped = len(self._records) - len(kept)
            self._records = kept
            return dropped

    # -- reading ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[CommitRecord]:
        with self._lock:
            return iter(list(self._records))

    @property
    def next_sequence(self) -> int:
        """The sequence number the next commit will receive."""
        with self._lock:
            return self._next_sequence

    @property
    def first_sequence(self) -> Optional[int]:
        """Sequence of the oldest retained record (None when empty)."""
        with self._lock:
            return self._records[0].sequence if self._records else None

    def since(self, sequence: int) -> Tuple[List[CommitRecord], int]:
        """``(records, lost)``: retained records with sequence >= the given
        cursor, plus how many such records were already evicted."""
        with self._lock:
            records = [r for r in self._records if r.sequence >= sequence]
            expected = max(self._next_sequence - max(sequence, 0), 0)
            return records, expected - len(records)

    def tail(self, limit: int = 10) -> List[CommitRecord]:
        """The most recent ``limit`` records, oldest first."""
        with self._lock:
            return list(self._records[-limit:])

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"CommitLog({len(self._records)}/{self.capacity} records, "
                f"next=#{self._next_sequence})"
            )


def coalesce_differentials(records, database) -> Dict[str, tuple]:
    """Compose consecutive committed deltas into one net delta.

    ``records`` is an ordered iterable of :class:`CommitRecord` entries (or
    bare ``{base: (plus, minus)}`` mappings).  Per relation, a signed
    multiplicity counter accumulates ``+Δ⁺`` and ``−Δ⁻`` in commit order,
    so a tuple inserted by one commit and deleted by a later one vanishes
    from the coalesced delta entirely.  Returns ``{base: (plus, minus)}``
    with empty sides as None, omitting relations whose net change cancels —
    the same shape :attr:`~repro.engine.transaction.TransactionResult.
    differentials` carries, audit-ready.
    """
    counters: Dict[str, dict] = {}
    for record in records:
        differentials = getattr(record, "differentials", record)
        for base, (plus, minus) in differentials.items():
            counter = counters.setdefault(base, {})
            if minus is not None:
                for row, count in minus.items():
                    counter[row] = counter.get(row, 0) - count
            if plus is not None:
                for row, count in plus.items():
                    counter[row] = counter.get(row, 0) + count
    out: Dict[str, tuple] = {}
    for base, counter in counters.items():
        schema = database.relation_schema(base)
        plus_rel = Relation(schema, bag=database.bag)
        minus_rel = Relation(schema, bag=database.bag)
        for row, count in counter.items():
            target = plus_rel if count > 0 else minus_rel
            target.insert_count(row, abs(count), _validated=True)
        plus_side = plus_rel if len(plus_rel) else None
        minus_side = minus_rel if len(minus_rel) else None
        if plus_side is not None or minus_side is not None:
            out[base] = (plus_side, minus_side)
    return out


def take_batches(records, coalesce: bool) -> List[List[CommitRecord]]:
    """Group drained records into audit batches.

    With ``coalesce`` every non-empty record lands in one batch (audited as
    a single composed delta); without it each non-empty record is its own
    batch (per-commit audit granularity).  Empty records are dropped — an
    empty delta audit is free and verdict-less by construction.
    """
    non_empty = [r for r in records if not r.is_empty]
    if not non_empty:
        return []
    if coalesce:
        return [non_empty]
    return [[record] for record in non_empty]


def batch_sequences(batch) -> tuple:
    """The commit sequence numbers an audit batch covers."""
    return tuple(
        record.sequence
        for record in batch
        if isinstance(record, CommitRecord)
    )


# Convenience for tests: flatten an iterable of batches back to records.
def flatten(batches) -> Iterator[CommitRecord]:
    return itertools.chain.from_iterable(batches)
