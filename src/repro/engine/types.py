"""Attribute domains and value handling.

The paper (Def 2.1) defines each attribute on a domain ``dom(A_i)``.  We
provide the four scalar domains needed by the paper's examples and the CL
language (integers, floats, strings, booleans) plus an explicit ``NULL``
marker used by generalized projection (the paper's Example 4.2 inserts
``(name, null, null)`` tuples as a compensating action).

Values are plain Python objects; domains are small singleton descriptors that
know how to validate and coerce values.  Keeping values unboxed keeps the
evaluator fast, which matters for the Section 7 benchmarks.
"""

from __future__ import annotations

from typing import Any

from repro.errors import TypeMismatchError


class _Null:
    """Singleton SQL-style null marker.

    ``NULL`` compares unequal to everything including itself under the
    three-valued-logic helpers in :mod:`repro.algebra.predicates`; as a Python
    object it is hashable and equal only to itself so it can live in tuples
    stored in set-based relations.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self


NULL = _Null()


class Domain:
    """A scalar attribute domain.

    Instances are shared singletons (:data:`INT`, :data:`FLOAT`,
    :data:`STRING`, :data:`BOOL`).  A domain validates values and defines
    which Python types are acceptable representations.
    """

    def __init__(self, name: str, pytypes: tuple, coerce=None):
        self.name = name
        self.pytypes = pytypes
        self._coerce = coerce

    def __repr__(self) -> str:
        return f"Domain({self.name})"

    def __str__(self) -> str:
        return self.name

    def contains(self, value: Any) -> bool:
        """Return True when ``value`` is a member of this domain."""
        if self is ANY:
            return True
        if isinstance(value, bool):
            # bool is a subclass of int in Python; keep the domains disjoint.
            return self is BOOL
        return isinstance(value, self.pytypes)

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` into this domain or raise TypeMismatchError."""
        if self.contains(value):
            return value
        if self._coerce is not None:
            try:
                return self._coerce(value)
            except (TypeError, ValueError):
                pass
        raise TypeMismatchError(
            f"value {value!r} is not in domain {self.name}"
        )


INT = Domain("int", (int,))
FLOAT = Domain("float", (float, int), coerce=float)
STRING = Domain("string", (str,))
BOOL = Domain("bool", (bool,))

# ANY is used only for *derived* relation schemas (projection of computed
# values, aggregate results, NULL literals) where a precise domain cannot be
# inferred.  Base relations always carry precise domains; inserting a derived
# relation into a base relation re-validates every tuple against the target.
ANY = Domain("any", (object,))

_DOMAINS_BY_NAME = {
    "int": INT,
    "integer": INT,
    "float": FLOAT,
    "real": FLOAT,
    "double": FLOAT,
    "string": STRING,
    "str": STRING,
    "text": STRING,
    "bool": BOOL,
    "boolean": BOOL,
}


def domain_by_name(name: str) -> Domain:
    """Look up a domain by (case-insensitive) name.

    Accepts the common aliases (``integer``, ``real``, ``text``...) so schema
    definitions read naturally.
    """
    try:
        return _DOMAINS_BY_NAME[name.lower()]
    except KeyError:
        raise TypeMismatchError(f"unknown domain name {name!r}") from None


def value_in_domain(value: Any, domain: Domain, nullable: bool = False) -> bool:
    """Return True when ``value`` is acceptable for an attribute.

    ``NULL`` is acceptable only for nullable attributes.
    """
    if value is NULL:
        return nullable
    return domain.contains(value)


def is_null(value: Any) -> bool:
    """Return True when ``value`` is the NULL marker."""
    return value is NULL
