"""The durable, hash-chained commit log: append-only segment files.

The in-memory :class:`~repro.engine.commitlog.CommitLog` is the engine's
source of truth for the enforcement pipeline, but it is bounded and dies
with the process.  This module makes the log *durable*: every committed
:class:`~repro.engine.commitlog.CommitRecord` serializes — reusing the
:class:`~repro.algebra.columnar.ColumnBatch` typed-array wire format for
the Δ⁺/Δ⁻ payloads — into a length-prefixed, CRC-guarded record whose
body carries the SHA-256 of the *previous* record, forming a tamper-evident
hash chain (theory-api's "events as truth" ledger principle, SNIPPETS.md
§1; Wielemaker's commit-log-as-logical-update-view durability story).

On-disk layout, per segment file ``segment-<base>.wal``::

    header  : MAGIC | version | flags | base_sequence | prev_chain_hash | crc
    record* : u32 blob_length | u32 crc32(blob) | blob
    blob    : prev_hash (32 bytes) || pickle((seq, pre_t, post_t, encoded Δ))

``prev_chain_hash`` in the header roots the chain per segment (it is the
chain hash of the last record *before* this segment, or 32 zero bytes for
the very first), so segments verify independently and the chain still
links across them.  The chain hash of a record is ``sha256(blob)``.

Corruption policy — the load-bearing distinction:

* A *torn tail* (short read or CRC mismatch at the end of the **newest**
  segment) is what a crash mid-write legitimately leaves behind.  Opening
  the log repairs it: the file is truncated back to the last whole record
  and appends continue from there.  Recovery therefore always restores an
  exact commit-boundary prefix of history.
* A CRC failure in a *sealed* region, a damaged segment header, or a
  record whose stored predecessor hash breaks the chain is **corruption**
  (bit rot or tampering) and hard-fails with
  :class:`~repro.errors.WalCorruptionError` naming the segment and byte
  offset — never a silent partial state.

Sync policy trades durability for commit latency: ``"commit"`` fsyncs
every append, ``"interval"`` group-commits (flush always, fsync at most
every ``group_interval`` seconds), ``"none"`` leaves flushing to the OS.
Segments rotate on byte size or age; sealed segments are dropped only when
every registered *consumer watermark* (audit scheduler, process-executor
replicas) and the newest checkpoint have all passed them — scheduler-driven
retention instead of blind truncation.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import struct
import threading
import time
from hashlib import sha256
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple
from zlib import crc32

from repro.algebra.columnar import decode_differentials, encode_differentials
from repro.engine.commitlog import coalesce_differentials
from repro.errors import WalCorruptionError, WalError

MAGIC = b"RWAL"
VERSION = 1
#: sha256 digest size; the chain root before any record exists.
HASH_SIZE = 32
CHAIN_ROOT = b"\x00" * HASH_SIZE

_HEADER_STRUCT = struct.Struct(f"<4sHHQ{HASH_SIZE}s")
_HEADER_CRC_STRUCT = struct.Struct("<I")
HEADER_SIZE = _HEADER_STRUCT.size + _HEADER_CRC_STRUCT.size
_RECORD_STRUCT = struct.Struct("<II")
RECORD_HEADER_SIZE = _RECORD_STRUCT.size

#: Rotate the active segment past this many bytes.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
#: Group-commit fsync interval (seconds) under ``sync="interval"``.
DEFAULT_GROUP_INTERVAL = 0.05

SYNC_POLICIES = ("commit", "interval", "none")

PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".wal"
CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".ckpt"
DELTA_CHECKPOINT_SUFFIX = ".dckpt"
CONSUMERS_FILE = "consumers.json"


def _segment_name(base_sequence: int) -> str:
    return f"{SEGMENT_PREFIX}{base_sequence:016d}{SEGMENT_SUFFIX}"


def _segment_base(path) -> int:
    """The base sequence encoded in a segment file name."""
    return int(path.name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)])


def _checkpoint_name(next_sequence: int) -> str:
    return f"{CHECKPOINT_PREFIX}{next_sequence:016d}{CHECKPOINT_SUFFIX}"


def _delta_checkpoint_name(next_sequence: int) -> str:
    return f"{CHECKPOINT_PREFIX}{next_sequence:016d}{DELTA_CHECKPOINT_SUFFIX}"


def _is_full_checkpoint(path) -> bool:
    return path.name.endswith(CHECKPOINT_SUFFIX)


def _default_opener(path, mode):
    return open(path, mode)


class WalRecord:
    """One commit record as read back from a segment file."""

    __slots__ = (
        "sequence",
        "pre_time",
        "post_time",
        "differentials",
        "segment",
        "offset",
        "length",
        "chain_hash",
    )

    def __init__(
        self,
        sequence: int,
        pre_time: int,
        post_time: int,
        differentials: dict,
        segment: str,
        offset: int,
        length: int,
        chain_hash: bytes,
    ):
        self.sequence = sequence
        self.pre_time = pre_time
        self.post_time = post_time
        self.differentials = differentials
        self.segment = segment
        self.offset = offset
        self.length = length
        self.chain_hash = chain_hash

    def decoded_differentials(self) -> dict:
        """The ``{base: (Δ⁺, Δ⁻)}`` map with columnar payloads decoded."""
        return decode_differentials(self.differentials)

    def __repr__(self) -> str:
        return (
            f"WalRecord(#{self.sequence}, {self.segment}@{self.offset}, "
            f"{len(self.differentials)} relation(s))"
        )


class ChainVerification:
    """The outcome of a full hash-chain walk (:meth:`WriteAheadLog.verify`).

    ``ok`` is True when no sealed-region corruption or chain break was
    found; a repaired/ignorable torn tail is reported separately in
    ``torn_tail`` (it does not make the chain bad — it is what a crash
    leaves).  ``broken`` is ``(segment, offset, reason)`` for the first
    hard break, or None.
    """

    __slots__ = ("segments", "records", "broken", "torn_tail", "last_sequence")

    def __init__(self, segments, records, broken, torn_tail, last_sequence):
        self.segments = segments
        self.records = records
        self.broken = broken
        self.torn_tail = torn_tail
        self.last_sequence = last_sequence

    @property
    def ok(self) -> bool:
        return self.broken is None

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"BROKEN at {self.broken[0]}@{self.broken[1]}"
        return (
            f"ChainVerification({self.segments} segment(s), "
            f"{self.records} record(s), {state})"
        )


class _TornTail(Exception):
    """Internal: scanning hit a legitimately torn region (crash artifact)."""

    def __init__(self, offset: int, reason: str):
        self.offset = offset
        self.reason = reason


class WriteAheadLog:
    """Append-only, hash-chained, segment-rotated durable commit log.

    ``opener`` is the file-factory hook the fault-injection harness uses
    (``tests/faults``): any callable with the signature of :func:`open`
    returning a binary file object.  It is applied to *segment* files only
    — checkpoints and the consumer sidecar use plain ``open``.
    """

    def __init__(
        self,
        directory,
        sync: str = "commit",
        group_interval: float = DEFAULT_GROUP_INTERVAL,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        segment_age: Optional[float] = None,
        opener: Optional[Callable] = None,
    ):
        if sync not in SYNC_POLICIES:
            raise ValueError(
                f"unknown sync policy {sync!r}; expected one of {SYNC_POLICIES}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync_policy = sync
        self.group_interval = float(group_interval)
        self.segment_bytes = int(segment_bytes)
        self.segment_age = segment_age
        self._opener = opener or _default_opener
        self._lock = threading.RLock()
        self._file = None
        self._active_path: Optional[Path] = None
        self._segment_opened_at = 0.0
        self._segment_size = 0
        self._chain_hash = CHAIN_ROOT
        self._last_fsync = 0.0
        #: Highest sequence appended (+1); None until something is known.
        self.next_sequence: Optional[int] = None
        #: Sequence through which appends are known fsync-durable.
        self.durable_through = -1
        self._consumers: Dict[str, int] = self._load_consumers()
        self.tail_repair: Optional[Tuple[str, int, str]] = None
        self._open_tail()

    # -- opening and tail repair -----------------------------------------------

    def segments(self) -> List[Path]:
        """Segment files on disk, oldest first."""
        return sorted(
            path
            for path in self.directory.iterdir()
            if path.name.startswith(SEGMENT_PREFIX)
            and path.name.endswith(SEGMENT_SUFFIX)
        )

    def _open_tail(self) -> None:
        """Scan the newest segment, repair a torn tail, resume the chain."""
        paths = self.segments()
        if not paths:
            return
        # The chain state entering the last segment comes from its header;
        # sealed segments are not re-read on open (verify() walks them all).
        last = paths[-1]
        try:
            records, torn, chain, base = self._scan_segment(
                last, expected_prev=None, is_last=True
            )
        except WalCorruptionError:
            raise
        valid_end = HEADER_SIZE if not records else (
            records[-1].offset + records[-1].length
        )
        if torn is not None:
            self.tail_repair = (last.name, torn.offset, torn.reason)
            if torn.offset == 0 and not records:
                # Crash mid-rotation: the new segment never got a whole
                # header.  Drop the file; the previous segment is the tail.
                last.unlink()
                remaining = self.segments()
                if remaining:
                    previous = remaining[-1]
                    records, torn2, chain, base = self._scan_segment(
                        previous, expected_prev=None, is_last=True
                    )
                    if torn2 is not None:
                        self._truncate_file(
                            previous,
                            records[-1].offset + records[-1].length
                            if records
                            else HEADER_SIZE,
                        )
                    last = previous
                    valid_end = HEADER_SIZE if not records else (
                        records[-1].offset + records[-1].length
                    )
                else:
                    return
            else:
                self._truncate_file(last, valid_end)
        self._active_path = last
        self._chain_hash = chain
        if records:
            self.next_sequence = records[-1].sequence + 1
            self.durable_through = records[-1].sequence
        else:
            self.next_sequence = base
            self.durable_through = base - 1
        self._segment_size = valid_end
        self._segment_opened_at = time.monotonic()

    def _truncate_file(self, path: Path, size: int) -> None:
        with self._opener(path, "r+b") as handle:
            handle.truncate(size)

    # -- appending ---------------------------------------------------------------

    def append(self, record) -> int:
        """Durably append one :class:`CommitRecord`; return its byte offset.

        Serialization reuses the columnar typed-array wire format for the
        Δ⁺/Δ⁻ payloads (:func:`~repro.algebra.columnar.
        encode_differentials`), so a large delta ships to disk the same
        way it ships to a process-executor replica.
        """
        body = pickle.dumps(
            (
                record.sequence,
                record.pre_time,
                record.post_time,
                encode_differentials(record.differentials),
            ),
            protocol=PICKLE_PROTOCOL,
        )
        with self._lock:
            if self._file is None and self._active_path is not None:
                self._file = self._opener(self._active_path, "r+b")
                self._file.seek(0, io.SEEK_END)
            if self._file is None or self._should_rotate():
                self._rotate(record.sequence)
            blob = self._chain_hash + body
            frame = _RECORD_STRUCT.pack(len(blob), crc32(blob)) + blob
            offset = self._segment_size
            self._file.write(frame)
            self._chain_hash = sha256(blob).digest()
            self._segment_size += len(frame)
            self.next_sequence = record.sequence + 1
            self._apply_sync_policy(record.sequence)
            return offset

    def _should_rotate(self) -> bool:
        if self._segment_size >= self.segment_bytes:
            return True
        if self.segment_age is not None and (
            time.monotonic() - self._segment_opened_at >= self.segment_age
        ):
            return True
        return False

    def _rotate(self, base_sequence: int) -> None:
        """Seal the active segment and start a new one, chained to it."""
        if self._file is not None:
            self._fsync()
            self._file.close()
            self._file = None
        path = self.directory / _segment_name(base_sequence)
        if path.exists():
            raise WalError(f"segment {path.name} already exists")
        handle = self._opener(path, "wb")
        header = _HEADER_STRUCT.pack(
            MAGIC, VERSION, 0, base_sequence, self._chain_hash
        )
        handle.write(header + _HEADER_CRC_STRUCT.pack(crc32(header)))
        self._file = handle
        self._active_path = path
        self._segment_size = HEADER_SIZE
        self._segment_opened_at = time.monotonic()
        self.purge()

    def _apply_sync_policy(self, sequence: int) -> None:
        if self.sync_policy == "commit":
            self._fsync()
            self.durable_through = sequence
        elif self.sync_policy == "interval":
            self._file.flush()
            now = time.monotonic()
            if now - self._last_fsync >= self.group_interval:
                self._fsync()
                self.durable_through = sequence

    def _fsync(self) -> None:
        if self._file is None:
            return
        self._file.flush()
        try:
            os.fsync(self._file.fileno())
        except (AttributeError, OSError, ValueError):
            pass  # in-memory / faulty files without a real descriptor
        self._last_fsync = time.monotonic()

    def sync(self) -> None:
        """Force an fsync of the active segment (group-commit flush point)."""
        with self._lock:
            if self._file is not None:
                self._fsync()
                if self.next_sequence is not None:
                    self.durable_through = self.next_sequence - 1

    # -- scanning ----------------------------------------------------------------

    def _read_exact(self, handle, n: int):
        data = handle.read(n)
        return data if len(data) == n else None

    def _scan_segment(
        self,
        path: Path,
        expected_prev: Optional[bytes],
        is_last: bool,
        decode: bool = False,
    ):
        """Read one segment; returns (records, torn, chain_hash, base_seq).

        ``expected_prev`` enforces cross-segment chain continuity (None
        accepts the header's root — the first readable segment after a
        purge).  In the last segment a short read or CRC failure is a torn
        tail; anywhere else it is corruption.  A stored predecessor hash
        that fails to match is corruption *everywhere* — a torn write
        cannot forge a valid CRC over a wrong hash.
        """
        records: List[WalRecord] = []
        torn: Optional[_TornTail] = None
        with self._opener(path, "rb") as handle:
            raw_header = self._read_exact(handle, HEADER_SIZE)
            if raw_header is None:
                if is_last:
                    return records, _TornTail(0, "short segment header"), (
                        expected_prev or CHAIN_ROOT
                    ), None
                raise WalCorruptionError(path.name, 0, "short segment header")
            magic, version, _flags, base, prev = _HEADER_STRUCT.unpack(
                raw_header[: _HEADER_STRUCT.size]
            )
            (header_crc,) = _HEADER_CRC_STRUCT.unpack(
                raw_header[_HEADER_STRUCT.size :]
            )
            if (
                magic != MAGIC
                or version != VERSION
                or header_crc != crc32(raw_header[: _HEADER_STRUCT.size])
            ):
                raise WalCorruptionError(
                    path.name, 0, "damaged segment header"
                )
            if expected_prev is not None and prev != expected_prev:
                raise WalCorruptionError(
                    path.name,
                    0,
                    "segment header breaks the hash chain "
                    "(previous-segment hash mismatch)",
                )
            chain = prev
            offset = HEADER_SIZE
            while True:
                raw = handle.read(RECORD_HEADER_SIZE)
                if not raw:
                    break  # clean end of segment
                if len(raw) < RECORD_HEADER_SIZE:
                    torn = _TornTail(offset, "short record header")
                    break
                length, blob_crc = _RECORD_STRUCT.unpack(raw)
                blob = handle.read(length)
                if len(blob) < length:
                    torn = _TornTail(offset, "short record body")
                    break
                if crc32(blob) != blob_crc:
                    torn = _TornTail(offset, "record CRC mismatch")
                    break
                stored_prev = blob[:HASH_SIZE]
                if stored_prev != chain:
                    raise WalCorruptionError(
                        path.name,
                        offset,
                        "record breaks the hash chain "
                        "(stored predecessor hash mismatch)",
                    )
                try:
                    sequence, pre_time, post_time, encoded = pickle.loads(
                        blob[HASH_SIZE:]
                    )
                except Exception:
                    # A valid CRC over an undecodable payload cannot be a
                    # torn write: someone rewrote record *and* checksum.
                    raise WalCorruptionError(
                        path.name, offset, "undecodable record payload"
                    )
                differentials = (
                    decode_differentials(encoded) if decode else encoded
                )
                frame_length = RECORD_HEADER_SIZE + length
                records.append(
                    WalRecord(
                        sequence,
                        pre_time,
                        post_time,
                        differentials,
                        path.name,
                        offset,
                        frame_length,
                        sha256(blob).digest(),
                    )
                )
                chain = records[-1].chain_hash
                offset += frame_length
        if torn is not None and not is_last:
            raise WalCorruptionError(path.name, torn.offset, torn.reason)
        return records, torn, chain, base

    def scan(
        self,
        start_sequence: Optional[int] = None,
        upto: Optional[int] = None,
        decode: bool = True,
    ) -> Iterator[WalRecord]:
        """Stream records (chain-verified) with sequence in [start, upto].

        A torn tail at the very end is silently ignored — by construction
        it holds no whole committed record; any other damage raises
        :class:`~repro.errors.WalCorruptionError`.
        """
        paths = self.segments()
        # Skip whole segments strictly before the start cursor (the next
        # segment's base bounds this one's sequences from above); the first
        # scanned segment then anchors the chain at its own header root.
        if start_sequence is not None:
            while len(paths) > 1 and _segment_base(paths[1]) <= start_sequence:
                paths.pop(0)
        expected_prev: Optional[bytes] = None
        for index, path in enumerate(paths):
            is_last = index == len(paths) - 1
            records, _torn, chain, _base = self._scan_segment(
                path, expected_prev, is_last, decode=decode
            )
            expected_prev = chain
            for record in records:
                if start_sequence is not None and record.sequence < start_sequence:
                    continue
                if upto is not None and record.sequence > upto:
                    return
                yield record

    def verify(self) -> ChainVerification:
        """Walk the full hash chain; report the first broken link, if any.

        Unlike :meth:`scan`, verification never raises: forensics want the
        damage *located* (segment, byte offset, reason), not an exception
        mid-walk.  A torn tail is reported separately and does not fail
        verification — it is the legitimate residue of a crash, holds no
        committed record, and the next open repairs it.
        """
        paths = self.segments()
        total = 0
        torn_tail = None
        last_sequence = None
        expected_prev: Optional[bytes] = None
        for index, path in enumerate(paths):
            is_last = index == len(paths) - 1
            try:
                records, torn, chain, _base = self._scan_segment(
                    path, expected_prev, is_last, decode=False
                )
            except WalCorruptionError as error:
                return ChainVerification(
                    len(paths),
                    total,
                    (error.segment, error.offset, error.reason),
                    None,
                    last_sequence,
                )
            total += len(records)
            if records:
                last_sequence = records[-1].sequence
            if torn is not None:
                torn_tail = (path.name, torn.offset, torn.reason)
            expected_prev = chain
        return ChainVerification(
            len(paths), total, None, torn_tail, last_sequence
        )

    # -- checkpoints ---------------------------------------------------------------

    def write_checkpoint(self, database) -> Path:
        """Persist a full database snapshot anchoring replay.

        The checkpoint captures everything through the database's current
        ``commit_log.next_sequence``; recovery loads the newest applicable
        checkpoint and replays only the records after it.  Checkpoints are
        what make segments purgeable at all — a segment wholly covered by
        a checkpoint (and drained by every consumer) carries no
        information recovery still needs.

        What actually gets pickled is an epoch-*forked* copy
        (:meth:`~repro.engine.database.Database.fork`): the fork is cut at
        a pinned epoch, so a checkpointer thread can serialize while the
        owning session keeps committing — the writer is never stopped and
        the checkpoint is still an exact commit boundary.
        """
        fork = database.fork() if hasattr(database, "fork") else database
        next_sequence = fork.commit_log.next_sequence
        path = self.directory / _checkpoint_name(next_sequence)
        blob = pickle.dumps(fork, protocol=PICKLE_PROTOCOL)
        self._write_atomic(path, blob)
        return path

    def write_delta_checkpoint(self, database) -> Path:
        """Persist only the net changes since the newest checkpoint.

        The delta checkpoint (``.dckpt``) holds the *coalesced* committed
        differentials of every durable record at or after its parent
        checkpoint's sequence, wire-encoded columnar — O(Δ-since-parent)
        bytes instead of O(database).  Recovery composes the chain: load
        the full ancestor, apply each delta checkpoint's differentials,
        then replay the records after the newest link.  Falls back to a
        full checkpoint when none exists yet; returns the parent's path
        unchanged when nothing committed since.
        """
        self.sync()  # group-commit tail must be on disk before we scan it
        parent = self.latest_checkpoint()
        if parent is None:
            return self.write_checkpoint(database)
        base_sequence = parent[0]
        records = list(self.scan(start_sequence=base_sequence, decode=True))
        if not records:
            return parent[1]
        differentials = coalesce_differentials(
            [record.differentials for record in records], database
        )
        # next_sequence derives from the records actually scanned (not the
        # live commit log): unsynced or in-flight commits stay ahead of
        # this checkpoint and will be replayed from the WAL at recovery.
        payload = {
            "base_sequence": base_sequence,
            "next_sequence": records[-1].sequence + 1,
            "logical_time": records[-1].post_time,
            "differentials": encode_differentials(differentials),
        }
        path = self.directory / _delta_checkpoint_name(records[-1].sequence + 1)
        self._write_atomic(path, pickle.dumps(payload, protocol=PICKLE_PROTOCOL))
        return path

    def _write_atomic(self, path: Path, blob: bytes) -> None:
        temp = path.with_suffix(".tmp")
        with open(temp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            try:
                os.fsync(handle.fileno())
            except OSError:  # pragma: no cover - exotic filesystems
                pass
        os.replace(temp, path)

    def checkpoints(self) -> List[Tuple[int, Path]]:
        """(next_sequence, path) of every checkpoint, oldest first.

        Lists full (``.ckpt``) and delta (``.dckpt``) checkpoints alike;
        distinguish by suffix.  A full and a delta at the same sequence
        sort full-first.
        """
        found = []
        for path in self.directory.iterdir():
            name = path.name
            if not name.startswith(CHECKPOINT_PREFIX):
                continue
            if name.endswith(CHECKPOINT_SUFFIX):
                digits = name[len(CHECKPOINT_PREFIX) : -len(CHECKPOINT_SUFFIX)]
            elif name.endswith(DELTA_CHECKPOINT_SUFFIX):
                digits = name[
                    len(CHECKPOINT_PREFIX) : -len(DELTA_CHECKPOINT_SUFFIX)
                ]
            else:
                continue
            try:
                found.append((int(digits), path))
            except ValueError:
                continue
        return sorted(found, key=lambda item: (item[0], item[1].name))

    def latest_checkpoint(
        self, before: Optional[int] = None
    ) -> Optional[Tuple[int, Path]]:
        """The newest checkpoint usable for replay up to ``before``.

        A checkpoint at sequence ``s`` already contains commits < ``s``, so
        point-in-time recovery to sequence ``S`` needs ``s <= S + 1``.
        """
        usable = [
            (seq, path)
            for seq, path in self.checkpoints()
            if before is None or seq <= before + 1
        ]
        return usable[-1] if usable else None

    def load_checkpoint(self, path: Path):
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def load_checkpoint_chain(self, before: Optional[int] = None):
        """Load the newest usable checkpoint state, composing delta chains.

        Walks anchors newest-first: a full checkpoint loads directly; a
        delta checkpoint is resolved back through its ``base_sequence``
        parents to a full ancestor, then composed by applying each link's
        coalesced differentials in order.  A broken link (missing parent,
        unreadable file, cyclic base) disqualifies that anchor and the
        next-older one is tried, so a torn delta never masks an intact
        full checkpoint behind it.

        Returns ``(anchor_sequence, database)`` — replay resumes at
        ``anchor_sequence`` — or ``None`` when no intact chain exists.
        """
        usable = [
            (seq, path)
            for seq, path in self.checkpoints()
            if before is None or seq <= before + 1
        ]
        for seq, path in reversed(usable):
            chain = self._resolve_chain(seq, path, usable)
            if chain is None:
                continue
            database = self._compose_chain(chain)
            if database is not None:
                return seq, database
        return None

    def _resolve_chain(self, seq, path, usable):
        """Full-ancestor-first list of ``(seq, path, payload)`` links, or None."""
        by_seq: Dict[int, Dict[str, Path]] = {}
        for link_seq, link_path in usable:
            slot = by_seq.setdefault(link_seq, {})
            slot["full" if _is_full_checkpoint(link_path) else "delta"] = link_path
        chain = []
        current_seq, current_path = seq, path
        while True:
            if _is_full_checkpoint(current_path):
                chain.append((current_seq, current_path, None))
                chain.reverse()
                return chain
            try:
                payload = self.load_checkpoint(current_path)
                parent_seq = int(payload["base_sequence"])
            except Exception:
                return None
            chain.append((current_seq, current_path, payload))
            if parent_seq >= current_seq:  # malformed: chains walk backward
                return None
            slot = by_seq.get(parent_seq)
            if not slot:
                return None
            # Prefer a full checkpoint at the parent sequence: it
            # terminates the chain without further composition.
            current_path = slot.get("full") or slot["delta"]
            current_seq = parent_seq

    def _compose_chain(self, chain):
        base_seq, base_path, _ = chain[0]
        try:
            database = self.load_checkpoint(base_path)
        except Exception:
            return None
        for _seq, _path, payload in chain[1:]:
            try:
                differentials = decode_differentials(payload["differentials"])
                if differentials:
                    database.apply_deltas(
                        differentials, advance_time=False, record=False
                    )
                database.logical_time = payload["logical_time"]
                database.commit_log.advance_to(payload["next_sequence"])
            except Exception:
                return None
        return database

    # -- consumer watermarks and retention ------------------------------------------

    def register_consumer(self, name: str, sequence: int) -> None:
        """Place a retention hold: keep records with sequence >= ``sequence``."""
        with self._lock:
            self._consumers[name] = int(sequence)
            self._save_consumers()

    def advance_consumer(self, name: str, sequence: int) -> None:
        """Move a consumer's drained-through cursor forward (monotonic)."""
        with self._lock:
            current = self._consumers.get(name, -1)
            if sequence > current:
                self._consumers[name] = int(sequence)
                self._save_consumers()

    def release_consumer(self, name: str) -> None:
        with self._lock:
            if self._consumers.pop(name, None) is not None:
                self._save_consumers()

    @property
    def consumers(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._consumers)

    def retention_floor(self) -> Optional[int]:
        """Lowest sequence any registered consumer still needs (None: no holds)."""
        with self._lock:
            if not self._consumers:
                return None
            return min(self._consumers.values())

    def purge(self) -> List[str]:
        """Drop sealed segments no consumer or checkpoint still needs.

        A segment covering ``[base_i, base_{i+1})`` is purgeable when every
        registered consumer has drained past ``base_{i+1}`` *and* the
        newest checkpoint covers it (recovery will never replay it).  The
        active segment is never dropped.  Returns the removed file names.
        """
        with self._lock:
            checkpoint = self.latest_checkpoint()
            if checkpoint is None:
                return []
            limit = checkpoint[0]
            floor = self.retention_floor()
            if floor is not None:
                limit = min(limit, floor)
            paths = self.segments()
            removed = []
            for index in range(len(paths) - 1):  # never the active tail
                if _segment_base(paths[index + 1]) <= limit:
                    paths[index].unlink()
                    removed.append(paths[index].name)
                else:
                    break
            # A superseded checkpoint stays useful for point-in-time
            # replay only while the segments following it survive; once
            # its records are gone it anchors nothing — drop it.  Never
            # drop the newest *full* checkpoint or anything after it:
            # delta checkpoints written later chain back to it (bases are
            # monotone in write order), so deleting it would orphan them.
            remaining = self.segments()
            oldest_base = (
                _segment_base(remaining[0]) if remaining else limit
            )
            links = self.checkpoints()
            full_seqs = [
                seq for seq, path in links if _is_full_checkpoint(path)
            ]
            newest_full = max(full_seqs) if full_seqs else None
            for seq, path in links[:-1]:
                if seq < oldest_base and (
                    newest_full is None or seq < newest_full
                ):
                    path.unlink()
            return removed

    def _consumers_path(self) -> Path:
        return self.directory / CONSUMERS_FILE

    def _load_consumers(self) -> Dict[str, int]:
        try:
            with open(self._consumers_path()) as handle:
                data = json.load(handle)
            return {str(k): int(v) for k, v in data.items()}
        except (OSError, ValueError):
            return {}

    def _save_consumers(self) -> None:
        try:
            with open(self._consumers_path(), "w") as handle:
                json.dump(self._consumers, handle)
        except OSError:  # pragma: no cover - read-only media
            pass

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._fsync()
                if self.next_sequence is not None:
                    self.durable_through = self.next_sequence - 1
                self._file.close()
                self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.directory}, sync={self.sync_policy}, "
            f"{len(self.segments())} segment(s), "
            f"next=#{self.next_sequence}, durable=#{self.durable_through})"
        )


def verify_directory(directory, opener: Optional[Callable] = None) -> ChainVerification:
    """Walk a log directory's full hash chain *without opening the log*.

    Forensics entry point (``python -m repro audit-log --verify``): unlike
    constructing a :class:`WriteAheadLog` — which repairs a torn tail in
    place — this touches nothing on disk.  Returns the same
    :class:`ChainVerification` as :meth:`WriteAheadLog.verify`.
    """
    log = WriteAheadLog.__new__(WriteAheadLog)
    log.directory = Path(directory)
    log._opener = opener or _default_opener
    log._lock = threading.RLock()
    return log.verify()
