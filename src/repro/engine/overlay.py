"""Overlay relations: transaction-local state as a view over (base, Δ⁺, Δ⁻).

Before this module, the engine's write path was copy-on-write at relation
granularity: the first update to a relation inside a transaction duplicated
the *whole* relation (``Relation.copy`` — a full ``dict(self._rows)``), and
commit installed the replacement wholesale.  A one-tuple update against a
100k-row relation paid ~100k units of copy work before any enforcement ran —
the exact asymmetry the paper's differential decomposition (``D^t`` plus
``Δ⁺`` / ``Δ⁻``, Section 5.2.1) exists to avoid.

An :class:`OverlayRelation` carries a running transaction's view of one base
relation **without materializing it**: reads answer from the triple
``(base, plus, minus)`` where ``plus``/``minus`` are the transaction's live
differential relations (the same objects ``R@plus`` / ``R@minus`` resolve
to), and writes mutate only the differentials.  The invariants maintained by
:meth:`OverlayRelation.insert` / :meth:`OverlayRelation.delete` are

* ``multiplicity(row) = base(row) + plus(row) − minus(row)`` for every row;
* no row has both a plus and a minus count (net differentials);
* ``minus(row) <= base(row)`` (only present tuples are deleted).

Consequences:

* beginning a transaction and updating ``k`` tuples is O(k), independent of
  the base relation's size;
* commit *applies* the net delta to the base relation in place
  (:meth:`repro.engine.database.Database.apply_deltas`) — O(|Δ|), with built
  hash indexes maintained by the relation's own incremental hooks;
* rollback is O(1): the overlay and its differentials are simply dropped,
  the base was never touched;
* the pre-transaction auxiliary ``R@old`` is the untouched base relation.

Index probes against an overlay keep the physical plan layer's index wins
without the old copy-and-reheat dance: :class:`OverlayIndex` answers from
the base relation's built index corrected by the delta — base bucket minus
the Δ⁻ hits, plus the Δ⁺ hits from small delta-side indexes that the
differential relations maintain incrementally themselves.

``OverlayRelation`` subclasses :class:`~repro.engine.relation.Relation` so
that every consumer of the read protocol (both evaluation backends, the
physical operators, equality in tests) accepts it unchanged.  Whole-relation
operations (scans, filters, hash set operations, ``rel._rows`` access)
run over a lazily cached materialization — they are O(|R|) by nature, so
nothing is lost asymptotically, and the cache keeps repeated full-state
checks inside one transaction at plain-relation speed; the sub-linear paths
(length, membership, multiplicity, index probes) never materialize.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.engine.relation import Relation


class OverlayRelation(Relation):
    """A relation view over ``base ∪ plus − minus`` with O(|Δ|) writes."""

    __slots__ = ("base", "plus", "minus", "_materialized", "_index_views")

    def __init__(self, base: Relation, plus: Relation, minus: Relation):
        # Deliberately does NOT call Relation.__init__: the overlay owns no
        # row storage.  The parent's schema/bag/_indexes slots are populated
        # so inherited methods (validation, bag branches) work unchanged.
        self.schema = base.schema
        self.bag = base.bag
        self._indexes = None
        self._batch = None
        self._observer = None
        self.base = base
        self.plus = plus
        self.minus = minus
        self._materialized: Optional[dict] = None
        self._index_views: dict = {}

    # -- materialization ------------------------------------------------------

    def _merged_items(self):
        """Lazy ``(row, count)`` view over ``base ∪ plus − minus``.

        Feeds the cached materialization and the few early-exit consumers
        (:meth:`__bool__`); everything whole-relation goes through
        :attr:`_rows` instead, so repeated O(|R|) scans iterate one plain
        dict at C speed rather than re-merging per row.
        """
        base_rows = self.base._rows
        plus_rows = self.plus._rows
        minus_rows = self.minus._rows
        for row, count in base_rows.items():
            removed = minus_rows.get(row)
            if removed is not None:
                count -= removed
                if count <= 0:
                    continue
            else:
                added = plus_rows.get(row)
                if added is not None:  # bag-mode duplicate insertions
                    count += added
            yield row, count
        for row, count in plus_rows.items():
            if row not in base_rows:
                yield row, count

    @property
    def _rows(self) -> dict:
        """The merged row->count dict, materialized lazily and cached.

        Only whole-relation consumers (full scans, filters, hash set
        operations, naive-backend copies) reach this — all O(|R|) by
        nature, so the one-off materialization does not change their
        complexity, and until the next mutation they run at plain-relation
        speed.  The sub-linear paths (length, membership, multiplicity,
        index probes) never touch it.  Mutations invalidate the cache.
        """
        rows = self._materialized
        if rows is None:
            rows = dict(self._merged_items())
            self._materialized = rows
        return rows

    # -- container protocol (sub-linear: no materialization) -------------------
    #
    # __iter__/rows()/items()/filtered()/to_set()/with_schema() are
    # deliberately *inherited* from Relation: they are whole-relation
    # operations and run over the cached materialization via ``_rows``.

    def __len__(self) -> int:
        return len(self.base) + len(self.plus) - len(self.minus)

    def __contains__(self, row: tuple) -> bool:
        row = tuple(row)
        if row in self.plus._rows:
            return True
        count = self.base._rows.get(row)
        if count is None:
            return False
        return self.minus._rows.get(row, 0) < count

    def __bool__(self) -> bool:
        if self.plus._rows:
            return True
        if not self.minus._rows:
            return bool(self.base._rows)
        return next(self._merged_items(), None) is not None

    def __repr__(self) -> str:
        kind = "bag" if self.bag else "set"
        return (
            f"OverlayRelation({self.schema.name}, base={len(self.base)}, "
            f"+{len(self.plus)}, -{len(self.minus)}, {kind})"
        )

    # -- accessors -------------------------------------------------------------

    def distinct_count(self) -> int:
        base_rows = self.base._rows
        count = len(base_rows) + len(self.plus._rows)
        for row in self.plus._rows:
            if row in base_rows:  # bag-mode extra occurrences of a base row
                count -= 1
        for row, removed in self.minus._rows.items():
            if base_rows.get(row, 0) <= removed:  # fully deleted
                count -= 1
        return count

    def multiplicity(self, row: tuple) -> int:
        row = tuple(row)
        return (
            self.base._rows.get(row, 0)
            + self.plus._rows.get(row, 0)
            - self.minus._rows.get(row, 0)
        )

    def rows_and_counts(self):
        """Batch iteration without materializing untouched overlays.

        Audits routinely scan overlay wrappers whose delta is empty (the
        transaction touched other relations); delegating straight to the
        base skips building a merged copy of the whole row dict.
        """
        if not self.plus._rows and not self.minus._rows:
            return self.base.rows_and_counts()
        return Relation.rows_and_counts(self)

    def column_batch(self):
        """Columnar view; untouched overlays share the base's cached batch."""
        if not self.plus._rows and not self.minus._rows:
            return self.base.column_batch()
        return Relation.column_batch(self)

    # -- mutation (differential-only) ------------------------------------------

    def insert(self, row: tuple, _validated: bool = False) -> bool:
        row = tuple(row) if _validated else self.schema.validate_tuple(tuple(row))
        if not self.bag:
            # Inline membership: present iff in plus, or in base and not
            # net-deleted (this is the transaction write hot path).
            if row in self.plus._rows:
                return False
            count = self.base._rows.get(row)
            if count is not None and self.minus._rows.get(row, 0) < count:
                return False
        self._materialized = None
        self._batch = None
        if not self.minus.delete(row):
            self.plus.insert(row, _validated=True)
        return True

    def delete(self, row: tuple) -> bool:
        row = tuple(row)
        if row not in self:
            return False
        self._materialized = None
        self._batch = None
        if not self.plus.delete(row):
            self.minus.insert(row, _validated=True)
        return True

    def clear(self) -> None:
        self._materialized = None
        self._batch = None
        self.plus.clear()
        self.minus.replace_contents(self.base)
        # Wholesale replacement invalidated the delta-side indexes backing
        # any handed-out OverlayIndex views; rebuild them in place.
        for view in self._index_views.values():
            self.plus.index_on(view.positions)
            self.minus.index_on(view.positions)

    def replace_contents(self, other: "Relation") -> None:
        self.clear()
        self.insert_many(iter(other))

    # -- hash indexes -----------------------------------------------------------

    def declare_index(self, positions) -> None:
        """Declarations go to the base: they persist past the transaction."""
        self.base.declare_index(positions)

    def index_on(self, positions):
        self.base.index_on(positions)
        return self._index_view(self.base.built_index(tuple(positions)))

    def built_index(self, positions):
        index = self.base.built_index(tuple(positions))
        if index is None:
            return None
        return self._index_view(index)

    def amortized_index(self, positions, forgone_work=None):
        """Delegate the build decision (and its forgone-work accounting) to
        the base relation — probe volume against the overlay is probe volume
        against the base, and a base index built mid-transaction keeps
        paying off after commit.  A built base index is served through an
        :class:`OverlayIndex` so probe answers reflect the delta.
        """
        index = self.base.amortized_index(tuple(positions), forgone_work)
        if index is None:
            return None
        return self._index_view(index)

    def _index_view(self, index) -> "OverlayIndex":
        view = self._index_views.get(index.positions)
        if view is None:
            view = OverlayIndex(index, self)
            self._index_views[index.positions] = view
        return view

    # -- value-like derivation ---------------------------------------------------

    def copy(self) -> Relation:
        """Materialize into an independent plain Relation.

        Mirrors :meth:`Relation.copy`: row contents (with multiplicities)
        carry over, as do the base relation's index *declarations*.
        """
        clone = Relation(self.schema, bag=self.bag)
        clone._rows = dict(self._rows)
        indexes = self.base.indexes
        if indexes is not None and len(indexes):
            for positions in indexes.specs():
                clone.declare_index(positions)
        return clone


class OverlayIndex:
    """A built base-relation index corrected by the transaction's delta.

    Presents the probe surface of :class:`~repro.engine.indexes.HashIndex`
    (``lookup``, ``buckets``, ``touch``, ``key_of``, ``positions``,
    ``built``): probes answer from the base relation's built index, with Δ⁻
    hits subtracted (membership-checked against the overlay, so bag-mode
    partial deletes keep the row) and Δ⁺ hits added from small delta-side
    indexes.  The delta-side indexes are real hash indexes attached to the
    differential relations, so the overlay's own inserts and deletes keep
    them current via the ordinary incremental-maintenance hooks — a view
    constructed early in a transaction never goes stale.

    Usage bookkeeping is forwarded to the base index's ledger: a probe
    against the overlay is evidence for keeping the base index.
    """

    __slots__ = ("base_index", "overlay", "plus_index", "minus_index", "buckets")

    built = True

    def __init__(self, base_index, overlay: OverlayRelation):
        self.base_index = base_index
        self.overlay = overlay
        self.plus_index = overlay.plus.index_on(base_index.positions)
        self.minus_index = overlay.minus.index_on(base_index.positions)
        self.buckets = _DeltaBuckets(self)

    @property
    def positions(self) -> Tuple[int, ...]:
        return self.base_index.positions

    @property
    def usage(self):
        return self.base_index.usage

    @property
    def probes(self) -> int:
        return self.base_index.probes

    def key_of(self, row: tuple):
        return self.base_index.key_of(row)

    def __contains__(self, key) -> bool:
        return key in self.buckets

    def lookup(self, key) -> tuple:
        """Distinct overlay rows with this key (records a base-ledger use)."""
        rows = self.base_index.lookup(key)
        if self.minus_index.buckets.get(key):
            overlay = self.overlay
            rows = tuple(row for row in rows if row in overlay)
        plus_bucket = self.plus_index.buckets.get(key)
        if plus_bucket:
            base_rows = self.overlay.base._rows
            rows += tuple(row for row in plus_bucket if row not in base_rows)
        return rows

    def touch(self, kind: str = "bulk", keys: Optional[int] = None) -> None:
        self.base_index.touch(kind, keys)

    def keys(self) -> Iterator:
        return iter(self.buckets)

    @property
    def distinct_keys(self) -> int:
        return len(self.buckets)

    def __repr__(self) -> str:
        return (
            f"OverlayIndex(positions={self.positions}, "
            f"{len(self.buckets)} keys)"
        )


class _DeltaBuckets:
    """Lazy mapping view of an :class:`OverlayIndex`'s corrected buckets.

    Supports the access patterns of the physical operators: per-key ``get``
    / ``in`` (hash join and semijoin probing — O(1) for keys the delta does
    not touch, O(|bucket|) for touched ones) and wholesale ``items()``
    iteration (distinct-key semijoin probing, join build sides) that yields
    the base index's own bucket dicts for untouched keys and freshly
    corrected dicts only for the few keys the delta affects.  Base buckets
    are never mutated.
    """

    __slots__ = ("_index",)

    def __init__(self, index: OverlayIndex):
        self._index = index

    def get(self, key, default=None):
        index = self._index
        base_bucket = index.base_index.buckets.get(key)
        plus_bucket = index.plus_index.buckets.get(key)
        minus_bucket = index.minus_index.buckets.get(key)
        if plus_bucket is None and minus_bucket is None:
            return base_bucket if base_bucket else default
        corrected: dict = {}
        if base_bucket:
            if minus_bucket:
                overlay = index.overlay
                for row in base_bucket:
                    if row in overlay:
                        corrected[row] = None
            else:
                corrected.update(base_bucket)
        if plus_bucket:
            for row in plus_bucket:
                corrected.setdefault(row, None)
        return corrected if corrected else default

    def __contains__(self, key) -> bool:
        return self.get(key) is not None

    def __iter__(self) -> Iterator:
        for key, _bucket in self.items():
            yield key

    def items(self):
        index = self._index
        base_buckets = index.base_index.buckets
        plus_buckets = index.plus_index.buckets
        minus_buckets = index.minus_index.buckets
        if not plus_buckets and not minus_buckets:
            yield from base_buckets.items()
            return
        touched = set(plus_buckets) | set(minus_buckets)
        for key, bucket in base_buckets.items():
            if key in touched:
                corrected = self.get(key)
                if corrected:
                    yield key, corrected
            else:
                yield key, bucket
        for key in plus_buckets:
            if key not in base_buckets:
                corrected = self.get(key)
                if corrected:
                    yield key, corrected

    def __len__(self) -> int:
        index = self._index
        count = len(index.base_index.buckets)
        base_buckets = index.base_index.buckets
        for key in index.plus_index.buckets:
            if key not in base_buckets:
                count += 1
        for key in index.minus_index.buckets:
            bucket = base_buckets.get(key)
            if bucket is not None and self.get(key) is None:
                count -= 1
        return count
