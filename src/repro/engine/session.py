"""A convenience facade over database, parser, and transaction manager.

A :class:`Session` is the "user terminal" of the reproduction: it accepts
transactions and read-only queries in their text forms, routes transactions
through the integrity controller's transaction modification (when one is
attached), and executes them with full atomicity.

The session lazily imports the algebra parser and evaluator so that the
engine package stays a pure substrate with no upward dependencies.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.transaction import (
    Transaction,
    TransactionManager,
    TransactionResult,
)


class Session:
    """Execute textual or pre-built transactions against a database."""

    def __init__(
        self,
        database: Database,
        controller=None,
        engine: Optional[str] = None,
    ):
        self.database = database
        self.controller = controller
        self.engine = engine
        modifier = controller.modify_transaction if controller is not None else None
        self.manager = TransactionManager(database, modifier=modifier, engine=engine)

    # -- transactions -----------------------------------------------------------

    def transaction(self, source: Union[str, Transaction]) -> Transaction:
        """Build a Transaction from ``begin ... end`` text (or pass through)."""
        if isinstance(source, Transaction):
            return source
        from repro.algebra.parser import parse_transaction

        return parse_transaction(source)

    def execute(
        self,
        source: Union[str, Transaction],
        modify: bool = True,
    ) -> TransactionResult:
        """Parse (if needed), modify, and run a transaction."""
        return self.manager.execute(self.transaction(source), modify=modify)

    # -- the audit pipeline (optimistic enforcement) ------------------------------

    AUDIT_MODES = ("sync", "deferred", "async")

    def commit(
        self,
        source: Union[str, Transaction],
        audit: str = "sync",
        modify: bool = False,
    ) -> TransactionResult:
        """Run a transaction through the *audit pipeline*.

        Where :meth:`execute` enforces integrity preventively (transaction
        modification appends the checks to the program, violating
        transactions abort), ``commit`` enforces it *optimistically*: the
        transaction commits unmodified and the committed net delta — as
        recorded in the database's commit log — is audited per rule
        through the attached controller's delta plans.

        ``audit`` selects the consistency/latency trade-off:

        * ``"sync"`` — the commit log is drained on this thread before
          returning; this commit's per-rule verdicts land on
          ``result.audit``.  Strict: every attached verdict describes
          exactly this commit's delta against the state it produced.
          (Any older un-drained commits are audited in the same drain;
          their verdicts go to the scheduler's history, not this result.)
        * ``"deferred"`` — nothing is audited now; a later
          :meth:`drain_audits` call audits all accumulated commits (batched
          and, by default, coalesced) on the calling thread.
        * ``"async"`` — the scheduler drains immediately but fans
          predicted-expensive rule audits out to its worker pool and
          returns without waiting; :meth:`wait_for_audits` collects the
          verdicts.  Strict: each audit pins its commit's pre/post epochs
          (:class:`~repro.engine.epochs.EpochSpan`), so verdicts describe
          exactly the audited commit's states even while the session keeps
          committing.

        ``modify`` may be set to re-enable transaction modification on top
        (belt and braces); by default the pipeline is the enforcement.
        """
        if audit not in self.AUDIT_MODES:
            raise ValueError(f"audit must be one of {self.AUDIT_MODES}")
        result = self.manager.execute(self.transaction(source), modify=modify)
        if not result.committed or self.controller is None:
            return result
        scheduler = self.audit_scheduler()
        if audit == "sync":
            sequence = self.database.commit_log.next_sequence - 1
            result.audit = [
                outcome
                for outcome in scheduler.drain(coalesce=False)
                if sequence in outcome.sequences
            ]
        elif audit == "async":
            scheduler.drain(asynchronous=True)
        return result

    def audit_scheduler(self):
        """The controller's audit scheduler for this database."""
        if self.controller is None:
            raise ValueError("session has no integrity controller to audit with")
        return self.controller.audit_scheduler(self.database)

    def drain_audits(self, coalesce=None) -> list:
        """Audit all commits deferred so far, on this thread."""
        return self.audit_scheduler().drain(coalesce=coalesce)

    def wait_for_audits(self) -> list:
        """Collect the verdicts of all in-flight asynchronous audits."""
        return self.audit_scheduler().wait()

    def close(self) -> None:
        """Deterministic teardown: audits collected, durability flushed.

        Closes the audit scheduler (collecting in-flight verdicts into its
        history and stopping its pools) and, when the database carries a
        write-ahead log, fsyncs and closes it.  The session object stays
        usable — a later commit lazily recreates pools — but a closed WAL
        stays closed: detach or re-attach explicitly to keep committing
        durably.
        """
        if self.controller is not None:
            self.audit_scheduler().close()
        if self.database.wal is not None:
            self.database.detach_wal()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- queries -------------------------------------------------------------------

    def query(
        self, expression_text: str, pinned: Optional[bool] = None
    ) -> Relation:
        """Evaluate a read-only algebra expression against the current state.

        A bare relation name returns an epoch-pinned snapshot view of the
        relation: iterating the result is stable even while later commits
        land (the old behaviour — a live relation instance that mutated
        under a held iterator — was a race).  Pass ``pinned=False`` to get
        the live instance back (a held result then keeps tracking the
        database state), or ``pinned=True`` to evaluate a composite
        expression against a pinned epoch instead of the live relations.
        Composite expressions materialize a fresh relation either way.
        """
        from repro.algebra.evaluation import evaluate_expression
        from repro.algebra.parser import parse_expression
        from repro.algebra import expressions as E

        expression = parse_expression(expression_text)
        if pinned is None:
            pinned = isinstance(expression, E.RelationRef)
        pin = self.database.epochs.pin() if pinned else None
        return evaluate_expression(
            expression, DatabaseView(self.database, engine=self.engine, pin=pin)
        )

    def rows(self, expression_text: str) -> list:
        """Evaluate a query and return deterministically sorted rows."""
        return self.query(expression_text).sorted_rows()

    # -- integrity ---------------------------------------------------------------------

    def verify_integrity(self) -> list:
        """Directly evaluate all registered constraints on the current state.

        Returns the list of violated constraint names (empty means the state
        is correct).  Requires an attached integrity controller.
        """
        if self.controller is None:
            return []
        return self.controller.violated_constraints(self.database)


class DatabaseView:
    """Read-only name resolution over a database outside any transaction.

    Auxiliary relations resolve to sensible defaults: ``R@old`` is the
    current state (no transaction is running, so pre = current) and the
    differentials are empty.  This lets constraint conditions mentioning
    auxiliaries be evaluated between transactions as well.

    With an :class:`~repro.engine.epochs.EpochPin`, base relations resolve
    to read-only snapshot views of the pinned epoch instead of the live
    instances, so the whole evaluation observes one consistent state.
    """

    def __init__(self, database: Database, engine: Optional[str] = None, pin=None):
        self.database = database
        self.engine = engine
        self.pin = pin

    def resolve(self, name: str) -> Relation:
        from repro.engine import naming

        base, suffix = naming.split_auxiliary(name)
        if suffix is None or suffix == naming.OLD_SUFFIX:
            if self.pin is not None:
                return self.pin.relation(base)
            return self.database.relation(base)
        schema = self.database.relation_schema(base)
        return Relation(schema, bag=self.database.bag)


class DeltaView(DatabaseView):
    """Name resolution for *incremental* audits over a committed state.

    The database holds the post-transaction state; ``differentials`` is the
    committed net delta ``{base: (plus, minus)}`` (either side may be None),
    e.g. :attr:`~repro.engine.transaction.TransactionResult.differentials`.
    ``R@plus`` / ``R@minus`` bind to those O(|Δ|) relations — exactly what
    delta plans read — and ``R@old`` is reconstructed lazily as
    ``(R − R@plus) ∪ R@minus``, so even delta plans whose rewrite rules
    reach into pre-state subexpressions stay executable after commit.  (The
    reconstruction copies the current relation: with in-place delta
    application, the committed relation object *is* the pre-state object,
    so the pre-state must be rebuilt rather than merely retained.)

    With an :class:`~repro.engine.epochs.EpochSpan` the view is *strict*:
    bare names resolve to the span's pinned post-state and ``R@old`` to
    its pinned pre-state in O(Δ) — the copy-rebuild above becomes the
    fallback for spans that could not be pinned (e.g. records drained from
    a WAL older than this process).  This is what makes thread/inline
    asynchronous audit verdicts per-commit exact under a racing writer.
    """

    def __init__(
        self, database, differentials, engine: Optional[str] = None, span=None
    ):
        super().__init__(database, engine=engine)
        self.differentials = dict(differentials or {})
        self.span = span
        self._old_cache: dict = {}

    def performed_triggers(self) -> frozenset:
        """``(INS, R)`` / ``(DEL, R)`` specs for the bound differentials."""
        performed = set()
        for base, (plus, minus) in self.differentials.items():
            if plus is not None and len(plus):
                performed.add(("INS", base))
            if minus is not None and len(minus):
                performed.add(("DEL", base))
        return frozenset(performed)

    def resolve(self, name: str) -> Relation:
        from repro.engine import naming

        base, suffix = naming.split_auxiliary(name)
        if suffix is None:
            if self.span is not None:
                return self.span.post_relation(base)
            return self.database.relation(base)
        plus, minus = self.differentials.get(base, (None, None))
        if suffix == naming.PLUS_SUFFIX:
            if plus is not None:
                return plus
            return Relation(
                self.database.relation_schema(base), bag=self.database.bag
            )
        if suffix == naming.MINUS_SUFFIX:
            if minus is not None:
                return minus
            return Relation(
                self.database.relation_schema(base), bag=self.database.bag
            )
        # R@old: the span's pinned pre-state when available (exact under a
        # racing writer); otherwise untouched relations are their own
        # pre-state and touched ones are rebuilt once per view and cached
        # (audits may consult the same pre-state repeatedly).
        if self.span is not None:
            return self.span.pre_relation(base)
        current = self.database.relation(base)
        if plus is None and minus is None:
            return current
        cached = self._old_cache.get(base)
        if cached is None:
            cached = current.copy()
            if plus is not None:
                cached.delete_many(iter(plus))
            if minus is not None:
                cached.insert_many(iter(minus))
            self._old_cache[base] = cached
        return cached
