"""Database states and transitions (paper Definitions 2.2 and 2.3).

A :class:`Database` is a set of relation instances over a
:class:`~repro.engine.schema.DatabaseSchema`, stamped with a *logical time*
that advances by one on every committed transaction (single-step transitions,
Def 2.3).  Aborted transactions leave the state and its logical time
untouched (atomicity, Section 2.2).

The database object itself knows nothing about transactions in progress;
temporary and auxiliary relations live in the
:class:`~repro.engine.transaction.TransactionContext` layered on top.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from repro.engine.commitlog import CommitLog
from repro.engine.epochs import EpochManager, PinnedRelations
from repro.engine.relation import Relation
from repro.engine.schema import DatabaseSchema, RelationSchema
from repro.errors import UnknownRelationError, WalError


class Transition:
    """An ordered pair of database states ``(D^t1, D^t2)`` (Def 2.3).

    Used by the direct transition-constraint checker and by tests; the
    states are snapshots (name -> Relation copies).
    """

    __slots__ = ("pre", "post", "pre_time", "post_time")

    def __init__(self, pre: Mapping, post: Mapping, pre_time: int, post_time: int):
        self.pre = dict(pre)
        self.post = dict(post)
        self.pre_time = pre_time
        self.post_time = post_time

    @property
    def is_single_step(self) -> bool:
        return self.post_time == self.pre_time + 1

    def __repr__(self) -> str:
        return f"Transition(t={self.pre_time} -> t={self.post_time})"


#: EWMA weight of the newest observation in :class:`DeltaObservations`.
DELTA_EWMA_ALPHA = 0.5


class DeltaObservations:
    """Observed net-differential sizes of committed transactions.

    One exponentially-weighted moving average per auxiliary delta name
    (``"R@plus"`` / ``"R@minus"``), updated on every commit that touches the
    relation.  The planner's :class:`~repro.algebra.statistics.
    RuntimeStatistics` exposes these so delta-plan scans are priced from the
    *observed* |Δ| distribution instead of a fixed default — the write-path
    counterpart of the cardinality feedback loop.
    """

    __slots__ = ("sizes", "commits")

    def __init__(self):
        self.sizes: dict = {}
        self.commits = 0

    def observe(self, relation: str, plus, minus) -> None:
        """Record one committed transaction's net delta for ``relation``."""
        for kind, side in (("plus", plus), ("minus", minus)):
            size = float(len(side)) if side is not None else 0.0
            key = f"{relation}@{kind}"
            old = self.sizes.get(key)
            if old is None:
                self.sizes[key] = size
            else:
                self.sizes[key] = (
                    DELTA_EWMA_ALPHA * size + (1.0 - DELTA_EWMA_ALPHA) * old
                )
        self.commits += 1

    def expected(self, auxiliary_name: str) -> Optional[float]:
        """The EWMA |Δ| of ``"R@plus"`` / ``"R@minus"``, or None."""
        return self.sizes.get(auxiliary_name)

    def __repr__(self) -> str:
        return f"DeltaObservations({self.commits} commits, {self.sizes})"


class Database:
    """A database state: relation instances plus a logical time."""

    def __init__(self, schema: DatabaseSchema, bag: bool = False):
        self.schema = schema
        self.bag = bag
        self._relations: dict = {
            relation_schema.name: Relation(relation_schema, bag=bag)
            for relation_schema in schema
        }
        self.logical_time = 0
        self.delta_stats = DeltaObservations()
        # The enforcement pipeline's source of truth: committed net deltas
        # in order, bounded.  Audit schedulers drain it; `apply_deltas`
        # populates it.
        self.commit_log = CommitLog()
        # Optional durable layer under the bounded in-memory log; attached
        # via `attach_wal`, never pickled (file handles).
        self.wal = None
        # Epoch-based MVCC: commits retain their net delta so pinned
        # readers (snapshots, audit spans, bare-name query results) see a
        # stable state reconstructed in O(Δ).  Base relations notify the
        # manager before every mutation so writes that bypass the delta
        # path cannot silently invalidate pinned state.
        self.epochs = EpochManager(self)
        for relation in self._relations.values():
            relation._observer = self.epochs

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["wal"] = None
        # Pins and seqlock state are process-local; a deserialized copy
        # starts with a fresh, empty epoch window.
        state["epochs"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.epochs = EpochManager(self)
        for relation in self._relations.values():
            relation._observer = self.epochs

    # -- relation access ------------------------------------------------------

    def relation(self, name: str) -> Relation:
        """The instance of base relation ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    @property
    def relation_names(self) -> tuple:
        return tuple(self._relations)

    def relation_schema(self, name: str) -> RelationSchema:
        return self.relation(name).schema

    # -- data loading ----------------------------------------------------------

    def load(self, name: str, rows: Iterable[tuple]) -> int:
        """Bulk-load rows into a base relation outside any transaction.

        Intended for test fixtures and benchmarks; returns the number of rows
        actually inserted.  Loading does not advance logical time.

        Loading bypasses the delta path, so pinned epochs cannot see
        *through* it algebraically: outstanding snapshots are materialized
        at their pinned state and detached first (:meth:`EpochManager.
        quiesce`), then the bulk mutation runs inside the writer's seqlock
        window.
        """
        self.epochs.quiesce()
        self.epochs.begin_write()
        try:
            return self.relation(name).insert_many(rows)
        finally:
            self.epochs.end_write(None)

    def add_relation(self, schema: RelationSchema, rows: Iterable[tuple] = ()) -> Relation:
        """Add a new base relation to a live database (DDL helper)."""
        self.schema.add(schema)
        relation = Relation(schema, rows, bag=self.bag)
        relation._observer = self.epochs
        self._relations[schema.name] = relation
        return relation

    # -- snapshots and transitions ----------------------------------------------

    def snapshot(self) -> "DatabaseSnapshot":
        """The frozen current state, pinned by epoch — O(Δ), not O(n).

        Taking a snapshot copies *nothing*: it pins the current epoch and
        returns a mapping-compatible :class:`DatabaseSnapshot` whose
        relations are O(Δ) :class:`~repro.engine.epochs.SnapshotRelation`
        views reconstructing the pinned state from the live relations and
        the retained commit deltas.  The views are read-only (the state at
        an epoch is immutable); call ``snapshot["r"].copy()`` for a
        mutable standalone relation.  :meth:`DatabaseSnapshot.release`
        drops the pin early; otherwise it is released when the snapshot is
        garbage-collected.
        """
        pin = self.epochs.pin()
        return DatabaseSnapshot(
            PinnedRelations(pin, self.relation_names),
            self.logical_time,
            pin=pin,
        )

    def restore(self, snapshot: Mapping) -> None:
        """Restore a snapshot by applying the diff as a frozen delta.

        Unlike the pre-pipeline restore (and unlike :meth:`install`), the
        live relation objects are never replaced: per relation the row-level
        difference between the current state and the snapshot is computed
        and applied in place through the same delete/insert path commits
        use, so built hash indexes follow along incrementally and held
        query results keep tracking the restored state.  Accepts either a
        :class:`DatabaseSnapshot` (which also restores logical time) or a
        legacy ``{name: Relation}`` mapping.

        Epoch-pinned snapshots of *this* database restore in O(Δ): the
        retained commit deltas since the pin are inverted and composed
        (:meth:`EpochManager.undo_differentials`) instead of diffing every
        relation row-by-row.  Foreign or unpinned mappings fall back to
        the generic state diff.
        """
        pin = getattr(snapshot, "pin", None)
        if pin is not None and pin._manager is self.epochs:
            undo = self.epochs.undo_differentials(pin.version)
            if undo is not None:
                if undo:
                    self.apply_deltas(undo, advance_time=False, record=False)
                if isinstance(snapshot, DatabaseSnapshot):
                    self.logical_time = snapshot.logical_time
                return
        differentials: dict = {}
        for name, frozen in snapshot.items():
            current = self.relation(name)
            current_rows = dict(current.items())
            frozen_rows = dict(frozen.items())
            if current_rows == frozen_rows:
                continue
            plus = Relation(current.schema, bag=self.bag)
            minus = Relation(current.schema, bag=self.bag)
            for row, count in frozen_rows.items():
                missing = count - current_rows.get(row, 0)
                for _ in range(missing if self.bag else min(missing, 1)):
                    plus.insert(row, _validated=True)
            for row, count in current_rows.items():
                surplus = count - frozen_rows.get(row, 0)
                for _ in range(surplus if self.bag else min(surplus, 1)):
                    minus.insert(row, _validated=True)
            differentials[name] = (
                plus if len(plus) else None,
                minus if len(minus) else None,
            )
        if differentials:
            self.apply_deltas(differentials, advance_time=False, record=False)
        if isinstance(snapshot, DatabaseSnapshot):
            self.logical_time = snapshot.logical_time

    def fork(self, snapshot: Optional["DatabaseSnapshot"] = None) -> "Database":
        """An independent plain :class:`Database` frozen at a pinned epoch.

        Copies each relation *at the pinned state* (the live database may
        keep committing while the copy proceeds — the pin guarantees a
        consistent cut), and carries over the commit-log records **below**
        the pin so the fork's log is exactly consistent with its relation
        states; ``next_sequence`` continues the original numbering.  This
        is what epoch-forked WAL checkpoints pickle: a checkpointer can
        fork and serialize without ever stopping the writer.
        """
        own = snapshot is None
        if own:
            snapshot = self.snapshot()
        try:
            epoch = snapshot.epoch
            clone = Database(self.schema, bag=self.bag)
            for name in self.relation_names:
                copied = snapshot[name].copy()
                copied._observer = clone.epochs
                clone._relations[name] = copied
            clone.logical_time = snapshot.logical_time
            clone.delta_stats.sizes = dict(self.delta_stats.sizes)
            clone.delta_stats.commits = self.delta_stats.commits
            if epoch is not None:
                for record in self.commit_log:
                    if record.sequence < epoch:
                        clone.commit_log.append_at(
                            record.sequence,
                            record.differentials,
                            record.pre_time,
                            record.post_time,
                        )
                clone.commit_log.advance_to(epoch)
            return clone
        finally:
            if own:
                snapshot.release()

    def apply_deltas(
        self,
        differentials: Mapping,
        advance_time: bool = True,
        record: bool = True,
    ) -> None:
        """Apply committed net differentials in place (transaction commit).

        ``differentials`` maps relation names to ``(plus, minus)`` net-delta
        relations (either side may be None).  Each touched relation is
        mutated in place — deletes replayed before inserts — so the work is
        O(|Δ|), never O(|R|), and built hash indexes follow along through
        the relation's own incremental-maintenance hooks.  This replaces
        the PR 1–3 replace-and-migrate commit path (:meth:`install`), which
        installed whole working-copy relations.

        Observed delta sizes are recorded into :attr:`delta_stats`, feeding
        the planner's delta-scan pricing, and the committed differentials
        are appended to :attr:`commit_log` for the audit pipeline — unless
        ``record`` is false (snapshot restore replaying inverse deltas must
        not pollute either).
        """
        pre_time = self.logical_time
        committed = None
        self.epochs.begin_write()
        try:
            for name, (plus, minus) in differentials.items():
                relation = self.relation(name)
                if minus is not None:
                    delete = relation.delete
                    for row, count in minus.items():
                        delete(row)
                        for _ in range(count - 1):  # bag-mode extra occurrences
                            delete(row)
                if plus is not None:
                    insert = relation.insert
                    for row, count in plus.items():
                        insert(row, _validated=True)
                        for _ in range(count - 1):
                            insert(row, _validated=True)
                if record:
                    self.delta_stats.observe(name, plus, minus)
            if advance_time:
                self.logical_time += 1
            if record:
                committed = self.commit_log.append(
                    differentials, pre_time, self.logical_time
                )
        finally:
            # Retain the batch for pinned readers and release the seqlock;
            # recorded commits carry their sequence (the public epoch).
            self.epochs.end_write(
                differentials,
                committed.sequence if committed is not None else None,
            )
        # Durable append (and its fsync) stays *outside* the seqlock
        # window so concurrent pinned readers never spin on disk I/O;
        # the durability ordering is unchanged (in-memory commit first,
        # WAL append after, exactly as before).
        if committed is not None and self.wal is not None:
            self.wal.append(committed)

    # -- durability (write-ahead log) ---------------------------------------------

    def attach_wal(self, wal, checkpoint: bool = True) -> None:
        """Layer a durable :class:`~repro.engine.wal.WriteAheadLog` under
        the in-memory commit log.

        From this point every committed net delta is also appended —
        hash-chained, CRC-guarded — to the log's segment files, and
        :func:`~repro.engine.recovery.recover` can rebuild this database
        after a crash.  Unless one exists already, a checkpoint anchoring
        replay is written immediately (``checkpoint=False`` skips it —
        recovery re-attaching the same log must not re-anchor).

        Bulk :meth:`load` bypasses the commit path and therefore the log;
        load fixtures *before* attaching, or call
        ``wal.write_checkpoint(database)`` afterwards.
        """
        self.wal = wal
        if checkpoint and wal.latest_checkpoint() is None:
            wal.write_checkpoint(self)

    def detach_wal(self) -> None:
        """Stop durable logging; syncs and closes the attached log."""
        if self.wal is not None:
            self.wal.close()
            self.wal = None

    def checkpoint(self, delta: bool = False):
        """Write a durable checkpoint; returns its path.

        A full checkpoint pickles an epoch-forked copy of this database
        (:meth:`fork` — writers are never blocked by serialization); with
        ``delta=True`` only the net changes since the newest checkpoint
        are written (a ``.dckpt`` composing onto its parent at recovery).
        """
        if self.wal is None:
            raise WalError("no write-ahead log attached; call attach_wal first")
        if delta:
            return self.wal.write_delta_checkpoint(self)
        return self.wal.write_checkpoint(self)

    def replay_record(
        self,
        sequence: int,
        pre_time: int,
        post_time: int,
        differentials: Mapping,
    ) -> None:
        """Apply one recovered commit record through the live delta path.

        Identical to a commit's :meth:`apply_deltas` — deletes before
        inserts, incremental index maintenance, delta-size observations —
        except that the record keeps its *original* sequence number and
        logical times and is never re-appended to the durable log.
        """
        self.apply_deltas(differentials, advance_time=False, record=False)
        for name, (plus, minus) in differentials.items():
            self.delta_stats.observe(name, plus, minus)
        self.logical_time = post_time
        self.commit_log.append_at(sequence, differentials, pre_time, post_time)

    @classmethod
    def recover(cls, directory, upto: Optional[int] = None, **wal_options):
        """Rebuild a database from its durable commit log directory.

        Full recovery (no ``upto``) returns a live database with the log
        re-attached; ``upto`` gives a detached point-in-time state (see
        :func:`repro.engine.recovery.recover`).  The recovery report is
        available as ``database.last_recovery``.
        """
        from repro.engine.recovery import recover

        database, report = recover(directory, upto=upto, **wal_options)
        database.last_recovery = report
        return database

    def install(
        self,
        relations: Mapping,
        advance_time: bool = True,
        differentials: Optional[Mapping] = None,
    ) -> None:
        """Install whole replacement relation states (bulk state change).

        The transaction commit path no longer goes through here — commits
        apply their net delta in place via :meth:`apply_deltas`.  Install
        survives for wholesale state replacement (fixtures, snapshot
        restore, reference implementations): only the names present in
        ``relations`` are replaced; logical time advances by one step
        unless ``advance_time`` is false.

        ``differentials`` optionally maps a replaced name to its net
        ``(plus, minus)`` relations; when given, hash indexes built on the
        replaced relation are migrated to its successor incrementally
        (O(|delta|)) instead of being discarded, and the observed delta
        sizes are recorded into :attr:`delta_stats`.
        """
        from repro.engine.indexes import migrate_indexes

        # Wholesale replacement is invisible to the delta stream, so
        # outstanding pins are materialized-and-detached first.
        self.epochs.quiesce()
        self.epochs.begin_write()
        try:
            for name, relation in relations.items():
                if name not in self._relations:
                    raise UnknownRelationError(name)
                old = self._relations[name]
                delta = differentials.get(name) if differentials else None
                if delta is not None:
                    migrate_indexes(old, relation, plus=delta[0], minus=delta[1])
                    self.delta_stats.observe(name, delta[0], delta[1])
                else:
                    migrate_indexes(old, relation)
                old._observer = None
                relation._observer = self.epochs
                self._relations[name] = relation
            if advance_time:
                self.logical_time += 1
        finally:
            self.epochs.end_write(None)

    # -- hash indexes ----------------------------------------------------------

    def create_index(self, relation_name: str, attributes) -> None:
        """Create (and build) a hash index on a base relation.

        ``attributes`` is a sequence of attribute names or 1-based positions.
        The index is maintained incrementally by inserts/deletes and migrated
        across transaction commits; the physical plan layer uses it for
        equality selections and as a pre-built side of hash semi/anti-joins.
        """
        relation = self.relation(relation_name)
        positions = tuple(
            relation.schema.position_of(attribute) - 1 for attribute in attributes
        )
        relation.index_on(positions)

    def indexed_positions(self, relation_name: str) -> tuple:
        """The declared index position-tuples of a base relation."""
        indexes = self.relation(relation_name).indexes
        return indexes.specs() if indexes is not None else ()

    # -- statistics ---------------------------------------------------------------

    def cardinalities(self) -> dict:
        """name -> tuple count, for all base relations."""
        return {name: len(rel) for name, rel in self._relations.items()}

    def total_tuples(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}[{len(rel)}]" for name, rel in self._relations.items())
        return f"Database(t={self.logical_time}, {sizes})"


class DatabaseSnapshot:
    """A frozen database state, mapping-compatible.

    Produced by :meth:`Database.snapshot`; consumed by
    :meth:`Database.restore`, which applies the difference between the live
    state and this snapshot as an in-place frozen delta (the same
    delete/insert path commits use) instead of wholesale relation
    replacement.  Iteration and item access expose the frozen relation
    views, so the snapshot also serves anywhere a ``{name: Relation}``
    mapping did (e.g. :class:`Transition` states).

    Epoch-pinned snapshots carry the :class:`~repro.engine.epochs.EpochPin`
    keeping their reconstruction window alive; ``relations`` is then a lazy
    :class:`~repro.engine.epochs.PinnedRelations` mapping of read-only
    O(Δ) views.  Legacy eager ``{name: Relation}`` dicts (no pin) remain
    fully supported.
    """

    __slots__ = ("relations", "logical_time", "pin")

    def __init__(self, relations, logical_time: int = 0, pin=None):
        self.relations = relations
        self.logical_time = logical_time
        self.pin = pin

    @property
    def epoch(self) -> Optional[int]:
        """The pinned commit-log epoch, or None for eager snapshots."""
        return self.pin.epoch if self.pin is not None else None

    def release(self) -> None:
        """Drop the epoch pin (idempotent; a no-op for eager snapshots).

        Relations already read through the snapshot stay valid; fresh
        reads of never-touched relations may fail once the pinned epoch's
        deltas are reclaimed.
        """
        if self.pin is not None:
            self.pin.release()

    def __getitem__(self, name: str) -> Relation:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self):
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def keys(self):
        return self.relations.keys()

    def items(self):
        return self.relations.items()

    def get(self, name: str, default=None):
        return self.relations.get(name, default)

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}[{len(rel)}]" for name, rel in self.relations.items()
        )
        return f"DatabaseSnapshot(t={self.logical_time}, {sizes})"
