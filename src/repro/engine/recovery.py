"""Crash recovery and point-in-time restore: replay the durable log.

Recovery is deliberately boring: load the newest applicable checkpoint
(composing delta-checkpoint chains back to their full ancestor when the
anchor is incremental), then stream the surviving commit records through
*the same*
``apply_deltas`` path live commits use (via
:meth:`~repro.engine.database.Database.replay_record`, which preserves the
original sequence numbers and logical times).  There is no separate redo
interpreter to drift out of sync with the engine — the paper's "a
committed transaction *is* its net differential" means replaying the
differentials *is* reconstructing the state.

Failure semantics mirror :mod:`repro.engine.wal`:

* a torn tail (crash mid-write) is repaired — recovery restores exactly
  the prefix of history ending at the last whole committed record;
* a broken hash chain or sealed-region corruption hard-fails with
  :class:`~repro.errors.WalCorruptionError` — never a silent partial
  state.

``upto`` gives point-in-time restore (``replay_to``): the state after
commit ``upto`` and nothing later, which upgrades ``snapshot()/restore()``
into durable time travel.  Point-in-time databases are *detached* (no WAL
is re-attached): appending new commits after sequence ``S`` while the log
still holds records past ``S`` would fork the hash chain.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.wal import WriteAheadLog
from repro.errors import WalError


class RecoveryReport:
    """What one recovery pass did: anchor, replay extent, tail repair."""

    __slots__ = (
        "directory",
        "checkpoint_sequence",
        "replayed",
        "first_sequence",
        "last_sequence",
        "torn_tail",
        "upto",
        "logical_time",
    )

    def __init__(
        self,
        directory,
        checkpoint_sequence: int,
        replayed: int,
        first_sequence: Optional[int],
        last_sequence: Optional[int],
        torn_tail,
        upto: Optional[int],
        logical_time: int,
    ):
        self.directory = directory
        self.checkpoint_sequence = checkpoint_sequence
        self.replayed = replayed
        self.first_sequence = first_sequence
        self.last_sequence = last_sequence
        self.torn_tail = torn_tail
        self.upto = upto
        self.logical_time = logical_time

    def __repr__(self) -> str:
        span = (
            f"#{self.first_sequence}..#{self.last_sequence}"
            if self.replayed
            else "(nothing)"
        )
        torn = f", torn tail repaired at {self.torn_tail[0]}@{self.torn_tail[1]}" if self.torn_tail else ""
        return (
            f"RecoveryReport(checkpoint=#{self.checkpoint_sequence}, "
            f"replayed {self.replayed} record(s) {span}, "
            f"t={self.logical_time}{torn})"
        )


def recover(
    directory,
    upto: Optional[int] = None,
    attach: bool = True,
    **wal_options,
):
    """Rebuild a database from its durable commit log.

    Returns ``(database, report)``.  With ``attach=True`` (the default,
    full recovery) the write-ahead log stays attached to the recovered
    database and new commits append after the replayed history.  With
    ``upto`` the replay stops after that commit sequence (point-in-time
    restore) and the database is always returned detached.

    ``wal_options`` are forwarded to :class:`~repro.engine.wal.
    WriteAheadLog` (sync policy, rotation thresholds, the fault-injection
    ``opener``).  Opening the log performs tail repair; sealed-region
    corruption or a broken hash chain raises
    :class:`~repro.errors.WalCorruptionError` before any state is built.
    """
    wal = WriteAheadLog(directory, **wal_options)
    try:
        anchor = wal.load_checkpoint_chain(before=upto)
        if anchor is None:
            raise WalError(
                f"no usable checkpoint in {directory!s}"
                + (f" at or before sequence #{upto}" if upto is not None else "")
                + " — was the log created by Database.attach_wal?"
            )
        checkpoint_sequence, database = anchor
        replayed = 0
        first_sequence = None
        last_sequence = None
        for record in wal.scan(start_sequence=checkpoint_sequence, upto=upto):
            database.replay_record(
                record.sequence,
                record.pre_time,
                record.post_time,
                record.differentials,
            )
            if first_sequence is None:
                first_sequence = record.sequence
            last_sequence = record.sequence
            replayed += 1
        report = RecoveryReport(
            directory,
            checkpoint_sequence,
            replayed,
            first_sequence,
            last_sequence,
            wal.tail_repair,
            upto,
            database.logical_time,
        )
        if attach and upto is None:
            database.attach_wal(wal, checkpoint=False)
        else:
            wal.close()
        return database, report
    except BaseException:
        wal.close()
        raise


def replay_to(directory, sequence: int, **wal_options):
    """Point-in-time restore: the state right after commit ``sequence``.

    Returns ``(database, report)`` with the database detached from the
    log (read-only time travel; see module docstring).
    """
    return recover(directory, upto=sequence, attach=False, **wal_options)
