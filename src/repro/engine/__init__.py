"""Main-memory relational engine (the PRISMA/DB stand-in).

This package provides the database substrate of the reproduction: typed
relation and database schemas (paper Defs 2.1-2.2), set- and multiset-based
relation instances, database states with logical time and transitions
(Def 2.3), and a transaction manager implementing the bracketed-program
transaction model of Def 2.5 (atomicity, temporary relations, pre-transaction
auxiliary state ``R@old`` and differential relations ``R@plus``/``R@minus``).
"""

from repro.engine.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    Domain,
    NULL,
    value_in_domain,
)
from repro.engine.schema import Attribute, DatabaseSchema, RelationSchema
from repro.engine.relation import Relation
from repro.engine.overlay import OverlayRelation
from repro.engine.epochs import (
    EpochManager,
    EpochPin,
    EpochSpan,
    SnapshotRelation,
)
from repro.engine.commitlog import CommitLog, CommitRecord
from repro.engine.database import Database, DatabaseSnapshot, Transition
from repro.engine.transaction import (
    Transaction,
    TransactionManager,
    TransactionResult,
    TransactionStatus,
)
from repro.engine.session import Session
from repro.engine.wal import WriteAheadLog
from repro.engine.recovery import RecoveryReport, recover, replay_to

__all__ = [
    "RecoveryReport",
    "WriteAheadLog",
    "recover",
    "replay_to",
    "Attribute",
    "BOOL",
    "CommitLog",
    "CommitRecord",
    "Database",
    "DatabaseSchema",
    "DatabaseSnapshot",
    "Domain",
    "EpochManager",
    "EpochPin",
    "EpochSpan",
    "FLOAT",
    "INT",
    "NULL",
    "OverlayRelation",
    "Relation",
    "RelationSchema",
    "Session",
    "SnapshotRelation",
    "STRING",
    "Transaction",
    "TransactionManager",
    "TransactionResult",
    "TransactionStatus",
    "Transition",
    "value_in_domain",
]
